//! Robustness analysis: how do static plans survive execution-time noise?
//!
//! Schedules one irregular workload with every algorithm, then replays
//! each schedule in the discrete-event simulator under increasing gamma
//! noise, reporting the mean makespan degradation. Duplication-based
//! schedules carry redundancy, so they tend to degrade differently from
//! pure list schedules — this example lets you see it.
//!
//! ```text
//! cargo run --example robustness_analysis
//! ```

use hetsched::core::algorithms::all_heterogeneous;
use hetsched::metrics::table::TextTable;
use hetsched::prelude::*;
use hetsched::sim::{simulate, Noise, SimConfig};
use hetsched::workloads::irregular::irregular41;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let dag = irregular41(2.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
    println!("irregular 41-task workload, CCR 2.0, 4 heterogeneous processors\n");

    let cvs = [0.0, 0.1, 0.2, 0.3, 0.5];
    let draws = 25u64;

    let mut header = vec!["algorithm".into(), "makespan".into()];
    header.extend(cvs.iter().map(|cv| format!("cv={cv}")));
    let mut table = TextTable::new(header);

    for alg in all_heterogeneous() {
        let sched = alg.schedule(&dag, &sys);
        let base = simulate(&dag, &sys, &sched, &SimConfig::default()).makespan;
        let mut row = vec![alg.name().to_string(), format!("{:.1}", sched.makespan())];
        for &cv in &cvs {
            if cv == 0.0 {
                row.push("1.000".into());
                continue;
            }
            let mean: f64 = (0..draws)
                .map(|k| {
                    simulate(
                        &dag,
                        &sys,
                        &sched,
                        &SimConfig {
                            exec_noise: Noise::Gamma { cv },
                            comm_noise: Noise::Uniform {
                                spread: cv.min(0.9),
                            },
                            seed: k,
                        },
                    )
                    .makespan
                })
                .sum::<f64>()
                / draws as f64;
            row.push(format!("{:.3}", mean / base));
        }
        table.row(row);
    }
    println!("mean makespan degradation vs noiseless replay ({draws} draws):");
    print!("{}", table.render());
}
