//! Quick timing probe used to compare scheduler wall time across builds.
use std::time::Instant;

use hetsched::core::algorithms::by_name;
use hetsched::platform::{EtcParams, System};
use hetsched::workloads::{random_dag, RandomDagParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3200);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let mut rng = StdRng::seed_from_u64(42);
    let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
    let sys = System::heterogeneous_random(&dag, 8, &EtcParams::range_based(1.0), &mut rng);
    for name in ["HEFT", "ILS-H", "CPOP", "PETS", "PEFT", "MIN-MIN"] {
        let Some(alg) = by_name(name) else { continue };
        let mut best = f64::INFINITY;
        let mut mk = 0.0;
        for _ in 0..reps {
            let t0 = Instant::now();
            let s = alg.schedule(&dag, &sys);
            let dt = t0.elapsed().as_secs_f64();
            mk = s.makespan();
            if dt < best {
                best = dt;
            }
        }
        println!("{name}: {:.3}s makespan={mk:.6}", best);
    }
}
