//! The homogeneous half of the title: scheduling a Laplace wavefront and a
//! fork–join pipeline on a flat 8-way multicore, comparing the homogeneous
//! classic MCP against the proposed ILS-M (and HEFT degraded to the
//! homogeneous case).
//!
//! ```text
//! cargo run --example homogeneous_multicore
//! ```

use hetsched::core::algorithms::homogeneous_set;
use hetsched::core::validate;
use hetsched::metrics::table::TextTable;
use hetsched::metrics::{slr, speedup};
use hetsched::prelude::*;
use hetsched::workloads::forkjoin::fork_join;
use hetsched::workloads::laplace::laplace_wavefront;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let workloads: Vec<(&str, Dag)> = vec![
        ("laplace 10x10", laplace_wavefront(10, 0.5, &mut rng)),
        ("fork-join 4x12", fork_join(4, 12, 8.0, 0.5, &mut rng)),
    ];

    for (name, dag) in &workloads {
        let sys = System::homogeneous_unit(dag, 8);
        println!(
            "\n{name}: {} tasks on 8 identical processors",
            dag.num_tasks()
        );
        let mut table = TextTable::new(vec![
            "algorithm".into(),
            "makespan".into(),
            "NSL".into(),
            "speedup".into(),
        ]);
        for alg in homogeneous_set() {
            let sched = alg.schedule(dag, &sys);
            validate(dag, &sys, &sched).expect("valid schedule");
            let m = sched.makespan();
            table.row(vec![
                alg.name().into(),
                format!("{m:.2}"),
                // on a flat ETC the SLR denominator is the compute-only
                // critical path, i.e. the classic NSL
                format!("{:.3}", slr(dag, &sys, m)),
                format!("{:.2}", speedup(dag, &sys, m)),
            ]);
        }
        print!("{}", table.render());
    }
}
