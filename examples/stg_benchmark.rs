//! Schedule an STG-format benchmark graph (the Kasahara suite's text
//! format) with every registered algorithm and print a comparison table.
//!
//! ```text
//! cargo run --example stg_benchmark            # uses the embedded sample
//! cargo run --example stg_benchmark -- my.stg  # or a real STG file
//! ```

use hetsched::core::algorithms::all_heterogeneous;
use hetsched::core::validate;
use hetsched::dag::stg::parse_stg;
use hetsched::metrics::table::TextTable;
use hetsched::metrics::{bounds, slr};
use hetsched::prelude::*;
use rand::SeedableRng;

/// A small irregular sample in STG syntax (task id, time, preds...).
const SAMPLE_STG: &str = "\
# embedded sample: 11 tasks
11
0 5 0
1 4 1 0
2 6 1 0
3 3 1 0
4 7 2 1 2
5 2 1 2
6 5 2 2 3
7 4 2 4 5
8 6 1 5
9 3 2 6 8
10 5 3 7 8 9
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let text = match args.first() {
        Some(path) => std::fs::read_to_string(path).expect("readable STG file"),
        None => SAMPLE_STG.to_string(),
    };
    // STG files carry no communication volumes; charge 4 units per edge
    let dag = parse_stg(&text, 4.0).expect("valid STG");
    println!(
        "STG graph: {} tasks, {} edges, CCR {:.2}, depth {}",
        dag.num_tasks(),
        dag.num_edges(),
        dag.ccr(),
        hetsched::dag::topo::depth(&dag),
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(0.75), &mut rng);
    println!(
        "system: 4 heterogeneous processors, lower bound {:.2}\n",
        bounds::lower_bound(&dag, &sys)
    );

    let mut table = TextTable::new(vec![
        "algorithm".into(),
        "makespan".into(),
        "SLR".into(),
        "vs bound".into(),
    ]);
    for alg in all_heterogeneous() {
        let sched = alg.schedule(&dag, &sys);
        validate(&dag, &sys, &sched).expect("valid schedule");
        let m = sched.makespan();
        table.row(vec![
            alg.name().into(),
            format!("{m:.2}"),
            format!("{:.3}", slr(&dag, &sys, m)),
            format!("{:.3}", bounds::gap(&dag, &sys, m)),
        ]);
    }
    print!("{}", table.render());
}
