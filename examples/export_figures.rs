//! Export figure artifacts: an SVG Gantt chart per scheduler and a DOT
//! rendering of the task graph, for the irregular 41-task workload.
//!
//! ```text
//! cargo run --example export_figures
//! # -> figures/irregular41.dot, figures/gantt-<ALG>.svg
//! ```

use hetsched::core::algorithms::{DupHeft, Heft, IlsD, IlsH};
use hetsched::core::Scheduler;
use hetsched::dag::dot::to_dot;
use hetsched::metrics::gantt::{to_svg, GanttStyle};
use hetsched::prelude::*;
use hetsched::workloads::irregular::irregular41;
use rand::SeedableRng;

fn main() -> std::io::Result<()> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let dag = irregular41(2.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);

    std::fs::create_dir_all("figures")?;
    std::fs::write("figures/irregular41.dot", to_dot(&dag, "irregular41"))?;
    println!("wrote figures/irregular41.dot ({} tasks)", dag.num_tasks());

    let algs: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Heft::new()),
        Box::new(DupHeft::new()),
        Box::new(IlsH::new()),
        Box::new(IlsD::new()),
    ];
    for alg in &algs {
        let sched = alg.schedule(&dag, &sys);
        let path = format!("figures/gantt-{}.svg", alg.name());
        std::fs::write(&path, to_svg(&sched, &GanttStyle::default()))?;
        println!(
            "wrote {path} (makespan {:.2}, {} duplicates)",
            sched.makespan(),
            sched.num_duplicates()
        );
    }
    Ok(())
}
