//! Scheduling Gaussian elimination on a modelled heterogeneous cluster:
//! two fast nodes, four mid nodes, two slow nodes, connected by a star
//! network (all traffic through a head node). Compares every scheduler in
//! the registry and cross-checks each schedule in the discrete-event
//! simulator.
//!
//! ```text
//! cargo run --example heterogeneous_cluster
//! ```

use hetsched::core::algorithms::all_heterogeneous;
use hetsched::core::validate;
use hetsched::metrics::table::TextTable;
use hetsched::metrics::{efficiency, slr, speedup};
use hetsched::platform::EtcMatrix;
use hetsched::prelude::*;
use hetsched::sim::{simulate, SimConfig};
use hetsched::workloads::gauss::gaussian_elimination;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // workload: Gaussian elimination on a 12x12 matrix (77 tasks), CCR 1.0
    let dag = gaussian_elimination(12, 1.0, &mut rng);
    println!(
        "Gaussian elimination m=12: {} tasks, {} edges",
        dag.num_tasks(),
        dag.num_edges()
    );

    // system: related machines with explicit speeds + star topology
    let speeds = [2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 0.5, 0.5];
    let etc = EtcMatrix::from_speeds(&dag, &speeds);
    let net = Network::with_topology(speeds.len(), Topology::Star, 0.05, 4.0);
    let sys = System::new(etc, net);
    println!(
        "cluster: {} processors (speeds {:?}), star network\n",
        sys.num_procs(),
        speeds
    );

    let mut table = TextTable::new(vec![
        "algorithm".into(),
        "makespan".into(),
        "SLR".into(),
        "speedup".into(),
        "efficiency".into(),
        "sim replay".into(),
    ]);
    for alg in all_heterogeneous() {
        let sched = alg.schedule(&dag, &sys);
        validate(&dag, &sys, &sched).expect("valid schedule");
        let m = sched.makespan();
        // independent cross-check: event-level replay can only be faster
        let replay = simulate(&dag, &sys, &sched, &SimConfig::default()).makespan;
        assert!(replay <= m + 1e-6);
        table.row(vec![
            alg.name().into(),
            format!("{m:.2}"),
            format!("{:.3}", slr(&dag, &sys, m)),
            format!("{:.2}", speedup(&dag, &sys, m)),
            format!("{:.2}", efficiency(&dag, &sys, m)),
            format!("{replay:.2}"),
        ]);
    }
    print!("{}", table.render());
}
