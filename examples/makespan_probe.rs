//! Bit-exact makespan dump across the algorithm x workload grid, used to
//! verify schedule-identical engine changes across builds.
use hetsched::core::algorithms::by_name;
use hetsched::core::algorithms::known_names;
use hetsched::dag::Dag;
use hetsched::platform::{EtcParams, System};
use hetsched::workloads::{fft, gauss, laplace, random_dag, RandomDagParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instances() -> Vec<(String, Dag, System)> {
    let mut v = Vec::new();
    for (n, ccr) in [(60usize, 0.5), (60, 5.0), (200, 1.0)] {
        let mut rng = StdRng::seed_from_u64(7 + n as u64);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, ccr), &mut rng);
        let sys = System::heterogeneous_random(&dag, 6, &EtcParams::range_based(1.0), &mut rng);
        v.push((format!("random-n{n}-ccr{ccr}"), dag, sys));
    }
    let mut rng = StdRng::seed_from_u64(31);
    let dag = gauss::gaussian_elimination(10, 1.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
    v.push(("gauss-10".into(), dag, sys));
    let mut rng = StdRng::seed_from_u64(32);
    let dag = fft::fft_butterfly(32, 2.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(0.5), &mut rng);
    v.push(("fft-32".into(), dag, sys));
    let mut rng = StdRng::seed_from_u64(33);
    let dag = laplace::laplace_wavefront(8, 1.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
    v.push(("laplace-8".into(), dag, sys));
    let mut rng = StdRng::seed_from_u64(34);
    let dag = random_dag(&RandomDagParams::new(80, 1.0, 1.0), &mut rng);
    let sys = System::homogeneous_unit(&dag, 4);
    v.push(("hom-80".into(), dag, sys));
    v
}

fn main() {
    for (label, dag, sys) in instances() {
        for name in known_names() {
            if name == "BNB" {
                continue;
            } // exponential; skip
            let alg = by_name(name).unwrap();
            let s = alg.schedule(&dag, &sys);
            // bit-exact makespan plus a digest of all assignments
            let mut h: u64 = 0xcbf29ce484222325;
            for t in dag.task_ids() {
                let (p, st, fin) = s.assignment(t).unwrap();
                for b in [p.index() as u64, st.to_bits(), fin.to_bits()] {
                    h ^= b;
                    h = h.wrapping_mul(0x100000001b3);
                }
            }
            println!(
                "{label} {name} {:016x} {h:016x} dups={}",
                s.makespan().to_bits(),
                s.num_duplicates()
            );
        }
    }
}
