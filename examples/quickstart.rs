//! Quickstart: build a task graph, model a small heterogeneous system,
//! schedule it with HEFT and the proposed ILS-H, and inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hetsched::core::algorithms::{Heft, IlsH};
use hetsched::core::{validate, Scheduler};
use hetsched::metrics::{slr, speedup};
use hetsched::prelude::*;
use rand::SeedableRng;

fn main() {
    // 1. Describe the application as a DAG: weights are abstract work
    //    units, edge values are data volumes.
    let mut b = DagBuilder::new();
    let load = b.add_task(4.0);
    let filter_a = b.add_task(6.0);
    let filter_b = b.add_task(7.0);
    let merge = b.add_task(3.0);
    let report = b.add_task(2.0);
    b.add_edge(load, filter_a, 5.0).unwrap();
    b.add_edge(load, filter_b, 5.0).unwrap();
    b.add_edge(filter_a, merge, 2.0).unwrap();
    b.add_edge(filter_b, merge, 2.0).unwrap();
    b.add_edge(merge, report, 1.0).unwrap();
    let dag = b.build().unwrap();
    println!(
        "application: {} tasks, {} edges, CCR {:.2}",
        dag.num_tasks(),
        dag.num_edges(),
        dag.ccr()
    );

    // 2. Describe the computing system: 3 heterogeneous processors
    //    (range-based ETC, β = 1.0) over a unit-bandwidth network.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let sys = System::heterogeneous_random(&dag, 3, &EtcParams::range_based(1.0), &mut rng);

    // 3. Schedule with two algorithms and compare.
    for alg in [&Heft::new() as &dyn Scheduler, &IlsH::new()] {
        let sched = alg.schedule(&dag, &sys);
        validate(&dag, &sys, &sched).expect("schedulers produce valid schedules");
        println!("\n--- {} ---", alg.name());
        print!("{}", sched.render_gantt());
        println!(
            "SLR {:.3}, speedup {:.2}",
            slr(&dag, &sys, sched.makespan()),
            speedup(&dag, &sys, sched.makespan()),
        );
    }
}
