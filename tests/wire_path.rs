//! End-to-end tests for the raw-byte wire fast path on both tiers.
//!
//! The standing contract under test: a wire-cache hit answers with bytes
//! **identical** to what the full parse → fingerprint → memo slow path
//! would have produced — for every data op, on the shard and on the
//! gateway — and any scanner uncertainty (permuted keys, whitespace,
//! escapes) degrades to a clean slow-path answer, never a wrong one.

use std::sync::OnceLock;

use proptest::prelude::*;

use hetsched_gateway::{GatewayConfig, GatewayServer, LocalShards};
use hetsched_serve::{ServeConfig, Service};

fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        instance_cache_capacity: 16,
        default_deadline_ms: 10_000,
    }
}

/// Compact (scanner-eligible) dag/system JSON for a small fork DAG.
fn dag_json(n_tasks: usize) -> String {
    let tasks: Vec<String> = (0..n_tasks)
        .map(|i| format!("{{\"weight\":{}}}", i + 1))
        .collect();
    let edges: Vec<String> = (1..n_tasks)
        .map(|i| format!("{{\"src\":0,\"dst\":{i},\"data\":2.0}}"))
        .collect();
    format!(
        "{{\"tasks\":[{}],\"edges\":[{}]}}",
        tasks.join(","),
        edges.join(",")
    )
}

const SYSTEM_JSON: &str = "{\"processors\":{\"kind\":\"homogeneous\",\"count\":3},\
     \"network\":{\"topology\":\"fully_connected\",\"bandwidth\":1.0}}";

fn schedule_request(n_tasks: usize, algorithm: &str, options: &str) -> String {
    format!(
        "{{\"op\":\"schedule\",\"dag\":{},\"system\":{SYSTEM_JSON},\
         \"algorithm\":\"{algorithm}\",\"options\":{options}}}",
        dag_json(n_tasks)
    )
}

fn portfolio_request(n_tasks: usize, options: &str) -> String {
    format!(
        "{{\"op\":\"portfolio\",\"dag\":{},\"system\":{SYSTEM_JSON},\
         \"algorithms\":[\"HEFT\",\"CPOP\"],\"options\":{options}}}",
        dag_json(n_tasks)
    )
}

fn many_request(sizes: &[usize], options: &str) -> String {
    let instances: Vec<String> = sizes
        .iter()
        .map(|&n| format!("{{\"dag\":{},\"system\":{SYSTEM_JSON}}}", dag_json(n)))
        .collect();
    format!(
        "{{\"op\":\"schedule_many\",\"instances\":[{}],\
         \"algorithm\":\"HEFT\",\"options\":{options}}}",
        instances.join(",")
    )
}

fn patch_request(parent: &str, deltas: &str, options: &str) -> String {
    format!(
        "{{\"op\":\"patch\",\"parent\":\"{parent}\",\"algorithm\":\"HEFT\",\
         \"deltas\":{deltas},\"options\":{options}}}"
    )
}

fn parse_bytes(bytes: &[u8]) -> serde_json::Value {
    let text = std::str::from_utf8(bytes).expect("replies are UTF-8");
    serde_json::from_str(text).unwrap_or_else(|e| panic!("bad reply `{text}`: {e}"))
}

fn svc_stats(svc: &Service) -> serde_json::Value {
    parse_bytes(&svc.handle_line_bytes("{\"op\":\"stats\"}"))
}

/// Three repeats of the same line: cold compute, memo hit (warms the
/// wire cache), wire hit. Returns (memo-hit bytes, wire-hit bytes).
fn warm_triple(svc: &Service, line: &str) -> (Vec<u8>, Vec<u8>) {
    let r1 = svc.handle_line_bytes(line);
    let r2 = svc.handle_line_bytes(line);
    let r3 = svc.handle_line_bytes(line);
    assert!(
        r1.starts_with(b"{\"status\":\"ok\""),
        "cold reply not ok: {}",
        String::from_utf8_lossy(&r1)
    );
    (r2.to_vec(), r3.to_vec())
}

/// Every data op's wire hit is byte-identical to its slow-path memo hit,
/// and the wire counters account the traffic.
#[test]
fn serve_wire_hits_are_byte_identical_for_every_op() {
    let svc = Service::start(test_config());

    let schedule = schedule_request(8, "HEFT", "{\"deadline_ms\":10000}");
    let portfolio = portfolio_request(6, "{}");
    let many = many_request(&[4, 5, 6], "{}");

    for line in [&schedule, &portfolio, &many] {
        let (memo, wire) = warm_triple(&svc, line);
        assert_eq!(
            memo,
            wire,
            "wire hit must be byte-identical to the memo hit for {}",
            &line[..40.min(line.len())]
        );
    }

    // Patch: seed the parent, then repeat the patch line.
    let seeded = parse_bytes(&svc.handle_line_bytes(&schedule));
    let parent = seeded["schedule"]["problem"]
        .as_str()
        .expect("problem fingerprint");
    let patch = patch_request(
        parent,
        "[{\"kind\":\"task_weight\",\"task\":1,\"weight\":9.5}]",
        "{}",
    );
    let (memo, wire) = warm_triple(&svc, &patch);
    assert_eq!(memo, wire, "patch wire hit must match its memo hit");

    let stats = svc_stats(&svc);
    let hits = stats["stats"]["wire_hits"].as_u64().unwrap();
    let misses = stats["stats"]["wire_misses"].as_u64().unwrap();
    let fallbacks = stats["stats"]["wire_fallbacks"].as_u64().unwrap();
    assert!(hits >= 4, "one wire hit per op, got {hits}");
    assert!(misses >= 4, "every cold+memo repeat scans but misses");
    // Only the `stats` control requests themselves fall back.
    assert!(fallbacks >= 1, "control ops never take the fast path");
    svc.shutdown();
}

/// The serve wire cache is invalidated when the memo cache churns: after
/// enough distinct problems evict the warmed entry's memo line, the old
/// digest must recompute, not answer stale bytes.
#[test]
fn serve_wire_cache_follows_memo_evictions() {
    let svc = Service::start(ServeConfig {
        cache_capacity: 2,
        instance_cache_capacity: 2,
        ..test_config()
    });
    let hot = schedule_request(8, "HEFT", "{}");
    let (memo, wire) = warm_triple(&svc, &hot);
    assert_eq!(memo, wire);

    // Churn the 2-entry memo cache until `hot` is gone.
    for n in 10..16 {
        let _ = svc.handle_line_bytes(&schedule_request(n, "HEFT", "{}"));
    }
    let hits_before = svc_stats(&svc)["stats"]["wire_hits"].as_u64().unwrap();
    let again = svc.handle_line_bytes(&hot);
    let hits_after = svc_stats(&svc)["stats"]["wire_hits"].as_u64().unwrap();
    assert_eq!(
        hits_before, hits_after,
        "an epoch-stale wire entry must not answer"
    );
    // The recomputed reply carries the same placement (only the `cached`
    // flag differs: the memo entry was evicted, so this was a recompute).
    let v = parse_bytes(&again);
    let w = parse_bytes(&wire);
    assert_eq!(v["schedule"]["cached"], serde_json::Value::Bool(false));
    assert_eq!(
        v["schedule"]["schedule"], w["schedule"]["schedule"],
        "same problem, same placement"
    );
    svc.shutdown();
}

/// The gateway tier honors the same contract over real TCP: the third
/// identical request is answered from the gateway's wire cache with the
/// exact bytes of the second (shard memo hit) reply — and a repeat whose
/// deadline has already expired is shed, never served from the cache.
#[test]
fn gateway_wire_hits_are_byte_identical_and_respect_deadlines() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    let shards = LocalShards::spawn(2, &test_config()).unwrap();
    let config = GatewayConfig {
        backends: shards.addrs(),
        ..Default::default()
    };
    let server = GatewayServer::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let gateway = std::thread::spawn(move || server.run());

    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(!reply.is_empty(), "connection closed without a reply");
        reply.trim().to_string()
    };

    let lines = [
        schedule_request(8, "HEFT", "{\"deadline_ms\":10000}"),
        portfolio_request(6, "{}"),
        many_request(&[4, 5], "{}"),
    ];
    for line in &lines {
        let r1 = roundtrip(line);
        let r2 = roundtrip(line);
        let r3 = roundtrip(line);
        assert!(r1.starts_with("{\"status\":\"ok\""), "{r1}");
        assert_eq!(r2, r3, "gateway wire hit must be byte-identical");
    }

    // Patch through the gateway.
    let seeded: serde_json::Value = serde_json::from_str(&roundtrip(&lines[0])).unwrap();
    let parent = seeded["schedule"]["problem"].as_str().unwrap().to_string();
    let patch = patch_request(
        &parent,
        "[{\"kind\":\"task_weight\",\"task\":1,\"weight\":9.5}]",
        "{}",
    );
    let p1 = roundtrip(&patch);
    let p2 = roundtrip(&patch);
    let p3 = roundtrip(&patch);
    assert!(p1.starts_with("{\"status\":\"ok\""), "{p1}");
    assert_eq!(p2, p3, "patch wire hit must be byte-identical");

    // A warmed digest with an expired deadline is shed, not wire-served:
    // the fast path must never beat admission control.
    let expired = schedule_request(8, "HEFT", "{\"deadline_ms\":0}");
    let shed: serde_json::Value = serde_json::from_str(&roundtrip(&expired)).unwrap();
    assert_eq!(shed["status"].as_str(), Some("shed"), "{shed:?}");

    let stats: serde_json::Value = serde_json::from_str(&roundtrip("{\"op\":\"stats\"}")).unwrap();
    let g = &stats["gateway"];
    assert!(
        g["wire_hits"].as_u64().unwrap() >= 4,
        "one gateway wire hit per op: {g:?}"
    );
    assert!(g["wire_misses"].as_u64().unwrap() >= 4, "{g:?}");

    let bye = roundtrip("{\"op\":\"shutdown\"}");
    assert!(bye.starts_with("{\"status\":\"shutting_down\""), "{bye}");
    gateway.join().unwrap().unwrap();
    let mut shards = shards;
    shards.shutdown_all();
}

/// Shared service for the randomized property: one warmed daemon, many
/// adversarial request variants against it.
fn prop_service() -> &'static (Service, Vec<u8>) {
    static SVC: OnceLock<(Service, Vec<u8>)> = OnceLock::new();
    SVC.get_or_init(|| {
        let svc = Service::start(test_config());
        let base = base_line(60_000, 2);
        let _ = svc.handle_line_bytes(&base);
        let memo = svc.handle_line_bytes(&base).to_vec();
        (svc, memo)
    })
}

fn base_line(deadline_ms: u64, jobs: usize) -> String {
    // Built from the same segments `variant_line` permutes, in the
    // canonical order.
    variant_line(deadline_ms, jobs, &[0, 1, 2, 3, 4], 0)
}

/// A schedule request assembled from shuffled top-level segments with
/// optional whitespace injected after segment commas. Segment order and
/// whitespace never change the *parsed* request, so every variant must
/// get the same reply bytes.
fn variant_line(deadline_ms: u64, jobs: usize, order: &[usize], whitespace: usize) -> String {
    let segments = [
        "\"op\":\"schedule\"".to_string(),
        format!("\"dag\":{}", dag_json(7)),
        format!("\"system\":{SYSTEM_JSON}"),
        "\"algorithm\":\"HEFT\"".to_string(),
        format!("\"options\":{{\"deadline_ms\":{deadline_ms},\"jobs\":{jobs}}}"),
    ];
    let sep = format!(",{}", " ".repeat(whitespace));
    let body: Vec<String> = order.iter().map(|&i| segments[i].clone()).collect();
    format!("{{{}}}", body.join(&sep))
}

/// Fisher–Yates driven by a tiny splitmix-style stream, so the shuffle
/// needs nothing beyond the seed (the vendored rand has no `seq`).
fn shuffled_order(seed: u64) -> [usize; 5] {
    let mut order = [0usize, 1, 2, 3, 4];
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = || {
        state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(1);
        state >> 33
    };
    for i in (1..order.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Volatile-field mutations, key permutations, and whitespace all
    /// resolve to the same reply bytes: a byte-identical wire hit when
    /// the digest matches, a clean slow-path memo hit when it cannot —
    /// never a wrong answer.
    #[test]
    fn randomized_variants_never_get_a_wrong_reply(
        deadline_ms in 1_000u64..120_000,
        jobs in 1usize..8,
        shuffle_seed in 0u64..1_000_000,
        whitespace in 0usize..3,
    ) {
        let (svc, memo) = prop_service();
        let order = shuffled_order(shuffle_seed);
        let line = variant_line(deadline_ms, jobs, &order, whitespace);

        let hits_before = svc_stats(svc)["stats"]["wire_hits"].as_u64().unwrap();
        let reply = svc.handle_line_bytes(&line);
        let hits_after = svc_stats(svc)["stats"]["wire_hits"].as_u64().unwrap();

        prop_assert_eq!(
            reply.as_ref(),
            memo.as_slice(),
            "variant reply diverged from the canonical memo-hit bytes"
        );
        if whitespace > 0 {
            prop_assert_eq!(
                hits_before, hits_after,
                "whitespace must force a scanner fallback, not a hit"
            );
        }
    }
}

/// A variant that changes the *problem* (not just volatile fields) must
/// never collide with the warmed digest.
#[test]
fn mutated_problem_bytes_never_hit_the_warmed_entry() {
    let (svc, memo) = prop_service();
    let line = base_line(60_000, 2).replace("\"weight\":1}", "\"weight\":42}");
    let r1 = svc.handle_line_bytes(&line);
    assert!(r1.starts_with(b"{\"status\":\"ok\""));
    assert_ne!(
        r1.as_ref(),
        memo.as_slice(),
        "a different problem must get a different reply"
    );
}
