//! Integration tests for the resident scheduling daemon: a real TCP
//! round-trip covering memoization, deadlines, panic isolation, and
//! graceful drain — plus a check that concurrent clients get exactly the
//! schedules a direct library call produces.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched::core::algorithms;
use hetsched::dag::io::DagSpec;
use hetsched::platform::SystemSpec;
use hetsched::workloads::gauss::gaussian_elimination;
use hetsched_serve::{ServeConfig, TcpServer};

const SYSTEM_JSON: &str = r#"{"processors": {"kind": "speeds", "speeds": [2.0, 1.0, 1.5]},
    "network": {"topology": "fully_connected", "startup": 0.5, "bandwidth": 1.0}}"#;

fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        instance_cache_capacity: 16,
        default_deadline_ms: 10_000,
    }
}

/// DagSpec JSON for a deterministic Gaussian-elimination workload.
fn dag_json(m: usize) -> serde_json::Value {
    let mut rng = StdRng::seed_from_u64(11);
    let dag = gaussian_elimination(m, 1.0, &mut rng);
    serde_json::to_value(DagSpec::from_dag(&dag)).unwrap()
}

fn schedule_request(m: usize, algorithm: &str, options: &str) -> String {
    format!(
        "{{\"op\":\"schedule\",\"dag\":{},\"system\":{},\"algorithm\":\"{algorithm}\",\"options\":{options}}}",
        serde_json::to_string(&dag_json(m)).unwrap(),
        SYSTEM_JSON.replace('\n', ""),
    )
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, line: &str) -> serde_json::Value {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        serde_json::from_str(reply.trim()).unwrap_or_else(|e| panic!("bad reply `{reply}`: {e}"))
    }
}

/// The acceptance-criteria walk: start the daemon, schedule the same DAG
/// twice (second must be a cache hit, visible in the stats counters), blow
/// a deadline without killing the daemon, then shut down gracefully while
/// a request is in flight and observe it drain.
#[test]
fn daemon_cache_deadline_and_graceful_drain() {
    let server = TcpServer::bind("127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr().unwrap();
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr);

    // Same DAG twice: fresh compute, then a cache hit with the same result.
    let line = schedule_request(6, "HEFT", "{\"simulate\":true}");
    let first = client.roundtrip(&line);
    assert_eq!(first["status"].as_str(), Some("ok"), "{first:?}");
    assert_eq!(first["schedule"]["cached"].as_bool(), Some(false));
    assert_eq!(
        first["schedule"]["sim"]["matches_prediction"].as_bool(),
        Some(true)
    );
    let second = client.roundtrip(&line);
    assert_eq!(second["schedule"]["cached"].as_bool(), Some(true));
    assert_eq!(
        second["schedule"]["makespan"],
        first["schedule"]["makespan"]
    );
    assert_eq!(
        second["schedule"]["fingerprint"],
        first["schedule"]["fingerprint"]
    );
    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(stats["stats"]["requests"].as_u64(), Some(2));
    assert_eq!(stats["stats"]["computed"].as_u64(), Some(1));
    assert_eq!(stats["stats"]["cache_hits"].as_u64(), Some(1));

    // Deadline exceeded: `timeout` response, daemon stays up.
    let slow = schedule_request(4, "HEFT", "{\"debug_sleep_ms\":400,\"deadline_ms\":40}");
    let reply = client.roundtrip(&slow);
    assert_eq!(reply["status"].as_str(), Some("timeout"), "{reply:?}");
    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(stats["stats"]["timeouts"].as_u64(), Some(1));

    // A panicking request is isolated too.
    let reply = client.roundtrip(&schedule_request(5, "HEFT", "{\"debug_panic\":true}"));
    assert_eq!(reply["status"].as_str(), Some("error"), "{reply:?}");
    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(stats["stats"]["panics"].as_u64(), Some(1));

    // Graceful shutdown drains in-flight work: a second client submits a
    // slow request, then the first client orders shutdown. The slow
    // request must still be answered `ok` before the daemon exits.
    let inflight = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        c.roundtrip(&schedule_request(7, "HEFT", "{\"debug_sleep_ms\":300}"))
    });
    std::thread::sleep(Duration::from_millis(100));
    let bye = client.roundtrip(r#"{"op":"shutdown"}"#);
    assert_eq!(bye["status"].as_str(), Some("shutting_down"));
    let drained = inflight.join().unwrap();
    assert_eq!(drained["status"].as_str(), Some("ok"), "{drained:?}");
    daemon.join().unwrap().unwrap();
}

/// Concurrent clients all get exactly the schedule a direct library call
/// produces — computed or cached, the payload is identical.
#[test]
fn concurrent_clients_match_direct_library_call() {
    const CLIENTS: usize = 6;
    let server = TcpServer::bind("127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr().unwrap();
    let daemon = std::thread::spawn(move || server.run());

    // The ground truth, straight from the library.
    let dag_spec: DagSpec = serde_json::from_value(dag_json(6)).unwrap();
    let dag = dag_spec.build().unwrap();
    let sys_spec: SystemSpec = serde_json::from_str(SYSTEM_JSON).unwrap();
    let sys = sys_spec.build(&dag).unwrap();
    let direct = algorithms::by_name("HEFT").unwrap().schedule(&dag, &sys);
    let direct_value = serde_json::to_value(&direct).unwrap();

    let line = schedule_request(6, "HEFT", "{}");
    let replies: Vec<serde_json::Value> = (0..CLIENTS)
        .map(|_| {
            let line = line.clone();
            std::thread::spawn(move || Client::connect(addr).roundtrip(&line))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    for reply in &replies {
        assert_eq!(reply["status"].as_str(), Some("ok"), "{reply:?}");
        assert_eq!(
            reply["schedule"]["schedule"], direct_value,
            "daemon schedule differs from direct library call"
        );
        assert_eq!(
            reply["schedule"]["fingerprint"],
            replies[0]["schedule"]["fingerprint"]
        );
    }

    // Every request was either the one compute or a cache hit of it.
    let mut client = Client::connect(addr);
    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    let computed = stats["stats"]["computed"].as_u64().unwrap();
    let hits = stats["stats"]["cache_hits"].as_u64().unwrap();
    assert!(computed >= 1);
    assert_eq!(computed + hits, CLIENTS as u64);

    let bye = client.roundtrip(r#"{"op":"shutdown"}"#);
    assert_eq!(bye["status"].as_str(), Some("shutting_down"));
    daemon.join().unwrap().unwrap();
}
