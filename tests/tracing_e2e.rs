//! End-to-end tests for distributed request tracing: the standing
//! contract that tracing never changes a schedule byte or a memo key,
//! and the fleet-wide span-journal pipeline (gateway + shards drained
//! and merged into one nested Chrome-trace timeline).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched::dag::io::DagSpec;
use hetsched::workloads::gauss::gaussian_elimination;
use hetsched_gateway::{GatewayConfig, GatewayServer, LocalShards};
use hetsched_serve::{merge_chrome_trace, ServeConfig, Service, SpanRecord};

const SYSTEM_JSON: &str = r#"{"processors": {"kind": "speeds", "speeds": [2.0, 1.0, 1.5]},
    "network": {"topology": "fully_connected", "startup": 0.5, "bandwidth": 1.0}}"#;

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        instance_cache_capacity: 16,
        default_deadline_ms: 10_000,
    }
}

/// DagSpec JSON for a deterministic Gaussian-elimination workload.
fn dag_json(m: usize, seed: u64) -> serde_json::Value {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = gaussian_elimination(m, 1.0, &mut rng);
    serde_json::to_value(DagSpec::from_dag(&dag)).unwrap()
}

fn schedule_request(m: usize, seed: u64, algorithm: &str, options: &str) -> String {
    format!(
        "{{\"op\":\"schedule\",\"dag\":{},\"system\":{},\"algorithm\":\"{algorithm}\",\"options\":{options}}}",
        serde_json::to_string(&dag_json(m, seed)).unwrap(),
        SYSTEM_JSON.replace('\n', ""),
    )
}

fn traced_options(trace_id: &str) -> String {
    format!("{{\"trace_ctx\":{{\"trace_id\":\"{trace_id}\"}}}}")
}

/// Assert `traced` is byte-for-byte `plain` plus a trailing `timing`
/// block: identical prefix, then `,"timing":{...}}`. This is the
/// strongest form of the tracing-is-invisible contract — not merely
/// value-equal, but the same bytes in the same order.
fn assert_identical_modulo_timing(plain: &str, traced: &str) {
    assert!(plain.starts_with("{\"status\":\"ok\""), "{plain}");
    assert!(traced.starts_with("{\"status\":\"ok\""), "{traced}");
    let prefix = &plain[..plain.len() - 1]; // drop the closing brace
    assert!(
        traced.starts_with(prefix),
        "traced reply diverges from untraced before the timing block:\n  plain:  {plain}\n  traced: {traced}"
    );
    let tail = &traced[prefix.len()..];
    assert!(
        tail.starts_with(",\"timing\":{"),
        "traced reply's extra bytes are not a trailing timing block: {tail}"
    );
}

/// Tracing on vs off, across a grid of problems and algorithms: the
/// traced reply must be the untraced reply's exact bytes plus a trailing
/// timing block. Fresh service per side so both replies are fresh
/// computations (a memo hit flips the `cached` flag, which would be a
/// real difference, not a tracing artifact).
#[test]
fn tracing_is_invisible_across_a_problem_grid() {
    for &m in &[4usize, 5, 6] {
        for &alg in &["HEFT", "CPOP"] {
            let plain_svc = Service::start(serve_config());
            let traced_svc = Service::start(serve_config());

            let plain = plain_svc
                .handle_line(&schedule_request(m, 11, alg, "{}"))
                .to_line();
            let traced = traced_svc
                .handle_line(&schedule_request(
                    m,
                    11,
                    alg,
                    &traced_options("00c0ffee00c0ffee"),
                ))
                .to_line();
            assert_identical_modulo_timing(&plain, &traced);

            let t: serde_json::Value = serde_json::from_str(&traced).unwrap();
            assert_eq!(t["timing"]["trace_id"].as_str(), Some("00c0ffee00c0ffee"));
            assert_eq!(t["timing"]["serve"]["cache"].as_str(), Some("computed"));
            assert!(t["timing"]["serve"]["total_us"].as_u64().unwrap() > 0);

            plain_svc.shutdown();
            traced_svc.shutdown();
        }
    }
}

/// The portfolio and patch ops honor the same contract: traced replies
/// are byte-identical to untraced ones modulo the trailing timing block.
#[test]
fn tracing_is_invisible_for_portfolio_and_patch() {
    let plain_svc = Service::start(serve_config());
    let traced_svc = Service::start(serve_config());
    let dag = serde_json::to_string(&dag_json(5, 11)).unwrap();
    let sys = SYSTEM_JSON.replace('\n', "");

    let portfolio = |options: &str| {
        format!(
            "{{\"op\":\"portfolio\",\"dag\":{dag},\"system\":{sys},\"algorithms\":[\"HEFT\",\"CPOP\"],\"options\":{options}}}"
        )
    };
    let plain = plain_svc.handle_line(&portfolio("{}")).to_line();
    let traced = traced_svc
        .handle_line(&portfolio(&traced_options("00000000000ff1ce")))
        .to_line();
    assert_identical_modulo_timing(&plain, &traced);

    // Seed both instance caches with the same parent, then patch it —
    // one side traced, one not.
    let seed_line = schedule_request(5, 11, "HEFT", "{}");
    let seeded: serde_json::Value =
        serde_json::from_str(&plain_svc.handle_line(&seed_line).to_line()).unwrap();
    traced_svc.handle_line(&seed_line);
    let parent = seeded["schedule"]["problem"].as_str().unwrap().to_string();
    // Weight 7.5 genuinely differs from the generated pivot weight (m),
    // so the patched problem is a fresh fingerprint, not a memo hit.
    let patch = |options: &str| {
        format!(
            "{{\"op\":\"patch\",\"parent\":\"{parent}\",\"algorithm\":\"HEFT\",\"deltas\":[{{\"kind\":\"task_weight\",\"task\":0,\"weight\":7.5}}],\"options\":{options}}}"
        )
    };
    let plain = plain_svc.handle_line(&patch("{}")).to_line();
    let traced = traced_svc
        .handle_line(&patch(&traced_options("00000000deadbeef")))
        .to_line();
    assert_identical_modulo_timing(&plain, &traced);
    let t: serde_json::Value = serde_json::from_str(&traced).unwrap();
    assert_eq!(t["timing"]["serve"]["cache"].as_str(), Some("repaired"));

    plain_svc.shutdown();
    traced_svc.shutdown();
}

/// The trace context is not part of the memo key: a traced computation
/// populates the cache for untraced repeats (and vice versa), and a
/// traced memo hit reports `cache: "memo"` in its timing block while the
/// schedule payload stays the stored bytes.
#[test]
fn trace_context_is_excluded_from_memo_keys() {
    let svc = Service::start(serve_config());

    let traced_fresh: serde_json::Value = serde_json::from_str(
        &svc.handle_line(&schedule_request(
            6,
            11,
            "HEFT",
            &traced_options("aaaaaaaaaaaaaaaa"),
        ))
        .to_line(),
    )
    .unwrap();
    assert_eq!(traced_fresh["schedule"]["cached"].as_bool(), Some(false));
    assert_eq!(
        traced_fresh["timing"]["serve"]["cache"].as_str(),
        Some("computed")
    );

    // Untraced repeat: memo hit seeded by the traced computation, and no
    // timing block appears.
    let plain_repeat_line = svc
        .handle_line(&schedule_request(6, 11, "HEFT", "{}"))
        .to_line();
    assert!(
        !plain_repeat_line.contains("\"timing\""),
        "{plain_repeat_line}"
    );
    let plain_repeat: serde_json::Value = serde_json::from_str(&plain_repeat_line).unwrap();
    assert_eq!(plain_repeat["schedule"]["cached"].as_bool(), Some(true));
    assert_eq!(
        plain_repeat["schedule"]["schedule"],
        traced_fresh["schedule"]["schedule"]
    );

    // Traced repeat under a different trace id: still the same memo
    // entry, now reported as a memo hit.
    let traced_repeat: serde_json::Value = serde_json::from_str(
        &svc.handle_line(&schedule_request(
            6,
            11,
            "HEFT",
            &traced_options("bbbbbbbbbbbbbbbb"),
        ))
        .to_line(),
    )
    .unwrap();
    assert_eq!(traced_repeat["schedule"]["cached"].as_bool(), Some(true));
    assert_eq!(
        traced_repeat["timing"]["trace_id"].as_str(),
        Some("bbbbbbbbbbbbbbbb")
    );
    assert_eq!(
        traced_repeat["timing"]["serve"]["cache"].as_str(),
        Some("memo")
    );
    assert_eq!(
        traced_repeat["timing"]["serve"]["queue_us"].as_u64(),
        Some(0)
    );
    assert_eq!(
        traced_repeat["schedule"]["schedule"],
        traced_fresh["schedule"]["schedule"]
    );

    svc.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property form of the invisibility contract: over random workloads
    /// and algorithms, a traced fresh reply is byte-identical to an
    /// untraced fresh reply plus a trailing timing block.
    #[test]
    fn prop_tracing_never_changes_reply_bytes(
        m in 3usize..7,
        seed in 0u64..1_000,
        alg_idx in 0usize..2,
    ) {
        let alg = ["HEFT", "CPOP"][alg_idx];
        let trace_id = format!("{:016x}", seed ^ 0xabcd_0123_4567_89ef);
        let plain_svc = Service::start(serve_config());
        let traced_svc = Service::start(serve_config());
        let plain = plain_svc
            .handle_line(&schedule_request(m, seed, alg, "{}"))
            .to_line();
        let traced = traced_svc
            .handle_line(&schedule_request(m, seed, alg, &traced_options(&trace_id)))
            .to_line();
        assert_identical_modulo_timing(&plain, &traced);
        plain_svc.shutdown();
        traced_svc.shutdown();
    }
}

// ---------------------------------------------------------------------
// Fleet-wide journal pipeline over a real 2-shard TCP topology.
// ---------------------------------------------------------------------

struct Topology {
    shards: LocalShards,
    gateway: std::thread::JoinHandle<std::io::Result<()>>,
    addr: std::net::SocketAddr,
}

fn spawn_topology(shard_count: usize) -> Topology {
    let shards = LocalShards::spawn(shard_count, &serve_config()).unwrap();
    let config = GatewayConfig {
        backends: shards.addrs(),
        ..Default::default()
    };
    let server = GatewayServer::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let gateway = std::thread::spawn(move || server.run());
    Topology {
        shards,
        gateway,
        addr,
    }
}

impl Topology {
    fn shutdown(mut self) {
        let mut c = Client::connect(self.addr);
        let bye = c.roundtrip(r#"{"op":"shutdown"}"#);
        assert_eq!(bye["status"].as_str(), Some("shutting_down"), "{bye:?}");
        self.gateway.join().unwrap().unwrap();
        self.shards.shutdown_all();
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip_raw(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        assert!(!reply.is_empty(), "connection closed without a reply");
        reply.trim().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> serde_json::Value {
        let raw = self.roundtrip_raw(line);
        serde_json::from_str(&raw).unwrap_or_else(|e| panic!("bad reply `{raw}`: {e}"))
    }
}

/// Drain one tier's span journal over the wire.
fn drain_journal(addr: &str) -> Vec<SpanRecord> {
    let mut c = Client::connect(addr.parse().unwrap());
    let v = c.roundtrip(r#"{"op":"journal"}"#);
    assert_eq!(v["status"].as_str(), Some("ok"), "{v:?}");
    serde_json::from_value(v["journal"]["spans"].clone()).unwrap()
}

/// Spans of one trace id, asserting they nest inside that trace's root
/// `request` span.
fn trace_spans<'a>(spans: &'a [SpanRecord], trace_id: &str) -> Vec<&'a SpanRecord> {
    let mine: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
    let root = mine
        .iter()
        .find(|s| s.name == "request")
        .unwrap_or_else(|| panic!("trace {trace_id} has no root request span: {mine:?}"));
    assert_eq!(root.start_us, 0, "root span starts at the tier's arrival");
    for s in &mine {
        assert!(
            s.start_us + s.dur_us <= root.start_us + root.dur_us + 1,
            "span {} [{}, {}] escapes the root request span [0, {}] of trace {trace_id}",
            s.name,
            s.start_us,
            s.start_us + s.dur_us,
            root.dur_us,
        );
    }
    mine
}

/// One traced schedule + memo repeat + patch through a live 2-shard
/// topology: the reply timing blocks account for the client-observed
/// latency, both tiers journal nested spans, a second drain is empty,
/// and the merged Chrome trace nests shard spans strictly inside the
/// gateway's backend span.
#[test]
fn two_shard_journal_drain_merges_into_nested_timeline() {
    const T_FRESH: &str = "aaaa00000000aaaa";
    const T_MEMO: &str = "bbbb00000000bbbb";
    const T_PATCH: &str = "cccc00000000cccc";
    let topo = spawn_topology(2);
    let mut client = Client::connect(topo.addr);

    // Fresh traced schedule: timing block present and plausible.
    let started = Instant::now();
    let fresh = client.roundtrip(&schedule_request(6, 11, "HEFT", &traced_options(T_FRESH)));
    let elapsed_us = started.elapsed().as_micros() as u64;
    assert_eq!(fresh["status"].as_str(), Some("ok"), "{fresh:?}");
    assert_eq!(fresh["schedule"]["cached"].as_bool(), Some(false));
    let timing = &fresh["timing"];
    assert_eq!(timing["trace_id"].as_str(), Some(T_FRESH));
    assert_eq!(timing["hops"][0]["tier"].as_str(), Some("gateway"));
    assert_eq!(timing["gateway"]["dedup"].as_str(), Some("leader"));
    assert!(timing["gateway"]["attempts"].as_u64().unwrap() >= 1);
    let gw_total = timing["gateway"]["total_us"].as_u64().unwrap();
    let serve_total = timing["serve"]["total_us"].as_u64().unwrap();
    let compute = timing["serve"]["compute_us"].as_u64().unwrap();
    assert!(gw_total > 0 && serve_total > 0 && compute > 0, "{timing:?}");
    // The gateway's end-to-end time sits inside the client's observed
    // round trip, and the backend time it reports covers the shard's own
    // account of the request.
    assert!(
        gw_total <= elapsed_us,
        "gateway {gw_total}µs > client {elapsed_us}µs"
    );
    assert!(
        timing["gateway"]["backend_us"].as_u64().unwrap() >= compute,
        "backend round trip does not cover the shard compute: {timing:?}"
    );
    assert_eq!(timing["serve"]["cache"].as_str(), Some("computed"));

    // Untraced identical repeat shares the memo entry and carries no
    // timing block; the schedule payload is the stored bytes either way.
    let untraced = client.roundtrip(&schedule_request(6, 11, "HEFT", "{}"));
    assert_eq!(untraced["schedule"]["cached"].as_bool(), Some(true));
    assert!(untraced.get("timing").is_none(), "{untraced:?}");
    assert_eq!(
        untraced["schedule"]["schedule"],
        fresh["schedule"]["schedule"]
    );

    // Traced repeat under a new id: memo hit, reported as such.
    let memo = client.roundtrip(&schedule_request(6, 11, "HEFT", &traced_options(T_MEMO)));
    assert_eq!(memo["timing"]["serve"]["cache"].as_str(), Some("memo"));

    // Traced incremental patch against the fresh schedule's problem key.
    let parent = fresh["schedule"]["problem"].as_str().unwrap();
    let patch = client.roundtrip(&format!(
        "{{\"op\":\"patch\",\"parent\":\"{parent}\",\"algorithm\":\"HEFT\",\"deltas\":[{{\"kind\":\"task_weight\",\"task\":0,\"weight\":7.5}}],\"options\":{}}}",
        traced_options(T_PATCH),
    ));
    assert_eq!(patch["status"].as_str(), Some("ok"), "{patch:?}");
    assert_eq!(patch["timing"]["trace_id"].as_str(), Some(T_PATCH));

    // Drain both tiers. Every traced request journals on the gateway;
    // the shard side journals wherever each request was routed.
    let gw_spans = drain_journal(&topo.addr.to_string());
    let shard_journals: Vec<(String, Vec<SpanRecord>)> = topo
        .shards
        .addrs()
        .into_iter()
        .map(|a| {
            let spans = drain_journal(&a);
            (a, spans)
        })
        .collect();

    for t in [T_FRESH, T_MEMO, T_PATCH] {
        let mine = trace_spans(&gw_spans, t);
        assert!(mine.iter().any(|s| s.name == "admission"), "{t}: {mine:?}");
        assert!(mine.iter().any(|s| s.name == "backend"), "{t}: {mine:?}");
    }
    let all_shard_spans: Vec<SpanRecord> = shard_journals
        .iter()
        .flat_map(|(_, s)| s.iter().cloned())
        .collect();
    let shard_fresh = trace_spans(&all_shard_spans, T_FRESH);
    for name in ["queue", "compute"] {
        assert!(
            shard_fresh.iter().any(|s| s.name == name),
            "fresh compute journaled no {name} span: {shard_fresh:?}"
        );
    }
    assert!(
        shard_fresh.iter().any(|s| s.name.starts_with("engine:")),
        "no engine phase spans nested under the fresh compute: {shard_fresh:?}"
    );
    // Engine phases nest inside the worker's compute span.
    let compute_span = shard_fresh.iter().find(|s| s.name == "compute").unwrap();
    for s in shard_fresh.iter().filter(|s| s.name.starts_with("engine:")) {
        assert!(
            s.start_us >= compute_span.start_us
                && s.start_us + s.dur_us <= compute_span.start_us + compute_span.dur_us + 1,
            "engine span {s:?} escapes compute span {compute_span:?}"
        );
    }
    // The memo hit never reached a worker: no compute span under its id.
    let shard_memo = trace_spans(&all_shard_spans, T_MEMO);
    assert!(
        !shard_memo.iter().any(|s| s.name == "compute"),
        "memo hit journaled a compute span: {shard_memo:?}"
    );

    // Merge and validate the Chrome-trace document: shard spans nest
    // strictly inside the gateway backend span of the same trace, the
    // worker path renders on the worker lane, and events are in
    // nondecreasing timestamp order.
    let doc = merge_chrome_trace(&gw_spans, &shard_journals);
    let merged: serde_json::Value = serde_json::from_str(&doc).unwrap();
    let events = merged["traceEvents"].as_array().unwrap();
    let xs: Vec<&serde_json::Value> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("X"))
        .collect();
    assert!(xs.len() >= 8, "suspiciously few merged spans: {doc}");
    let mut last_ts = -1.0;
    for e in &xs {
        let ts = e["ts"].as_f64().unwrap();
        assert!(ts >= last_ts, "events out of timestamp order: {doc}");
        assert!(e["dur"].as_f64().unwrap() >= 1.0, "zero-width span: {e:?}");
        last_ts = ts;
    }
    let find = |pid_gateway: bool, name: &str, trace: &str| -> (f64, f64) {
        let e = xs
            .iter()
            .find(|e| {
                (pid_gateway == (e["pid"].as_u64() == Some(0)))
                    && e["name"].as_str() == Some(name)
                    && e["args"]["trace_id"].as_str() == Some(trace)
            })
            .unwrap_or_else(|| panic!("missing merged span {name} for {trace}"));
        (e["ts"].as_f64().unwrap(), e["dur"].as_f64().unwrap())
    };
    let (be_ts, be_dur) = find(true, "backend", T_FRESH);
    let (sh_ts, sh_dur) = find(false, "request", T_FRESH);
    let (cp_ts, cp_dur) = find(false, "compute", T_FRESH);
    assert!(
        be_ts < sh_ts && sh_ts + sh_dur < be_ts + be_dur,
        "shard request span [{sh_ts}, {}] not strictly inside gateway backend [{be_ts}, {}]",
        sh_ts + sh_dur,
        be_ts + be_dur,
    );
    assert!(
        sh_ts <= cp_ts && cp_ts + cp_dur <= sh_ts + sh_dur,
        "compute span escapes the shard request span"
    );
    let compute_event = xs
        .iter()
        .find(|e| e["name"].as_str() == Some("compute"))
        .unwrap();
    assert_eq!(
        compute_event["tid"].as_u64(),
        Some(1),
        "compute off the worker lane"
    );

    // Journals drain destructively: a second drain is empty everywhere.
    assert!(drain_journal(&topo.addr.to_string()).is_empty());
    for a in topo.shards.addrs() {
        assert!(drain_journal(&a).is_empty());
    }

    topo.shutdown();
}
