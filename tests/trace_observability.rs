//! Observability property tests: tracing must never perturb scheduling,
//! and the captured artifacts must be internally consistent — the decision
//! log accounts for every committed slot, the NDJSON export parses line by
//! line, and the Chrome-trace export carries one lane per processor.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched::core::algorithms::{all_heterogeneous, by_name, homogeneous_set};
use hetsched::core::{traced_schedule, validate, Schedule, Scheduler};
use hetsched::prelude::*;
use hetsched::workloads::{fft, gauss, laplace, random_dag, RandomDagParams};

/// Bit-exact flattening of a schedule: processor, task, start/finish bits,
/// duplicate flag for every slot, in timeline order.
fn slot_digest(s: &Schedule) -> Vec<(usize, usize, u64, u64, bool)> {
    let mut out = Vec::new();
    for p in 0..s.num_procs() {
        for slot in s.slots(ProcId(p as u32)) {
            out.push((
                p,
                slot.task.index(),
                slot.start.to_bits(),
                slot.finish.to_bits(),
                slot.duplicate,
            ));
        }
    }
    out
}

/// Assert the full tracing contract for one (algorithm, instance) pair:
/// bit-identical schedule with tracing on vs off, and a decision log whose
/// placement counts match the schedule exactly.
fn assert_tracing_contract(alg: &dyn Scheduler, label: &str, dag: &Dag, sys: &System) {
    let untraced = alg.schedule(dag, sys);
    let (traced, trace) = traced_schedule(alg, dag, sys);
    assert_eq!(
        slot_digest(&traced),
        slot_digest(&untraced),
        "{} schedule perturbed by tracing on {label}",
        alg.name()
    );
    assert_eq!(traced.makespan().to_bits(), untraced.makespan().to_bits());
    assert_eq!(validate(dag, sys, &traced), Ok(()));
    assert_eq!(
        trace.num_primary_placements(),
        dag.num_tasks(),
        "{} decision log misses tasks on {label}",
        alg.name()
    );
    assert_eq!(
        trace.num_placements() - trace.num_primary_placements(),
        traced.num_duplicates(),
        "{} duplicate placements out of sync on {label}",
        alg.name()
    );
    // the instrumented engine actually fired (every algorithm places via
    // the EFT engine or timeline inserts)
    assert!(
        trace.counters.timeline_inserts as usize >= dag.num_tasks(),
        "{} counters silent on {label}: {:?}",
        alg.name(),
        trace.counters
    );
}

/// The workload grid of the conformance sweep: random DAGs at several
/// CCRs, structured applications, and a homogeneous instance.
fn grid() -> Vec<(String, Dag, System)> {
    let mut grid: Vec<(String, Dag, System)> = Vec::new();
    for (n, ccr) in [(30usize, 0.5), (30, 5.0), (80, 1.0)] {
        let mut rng = StdRng::seed_from_u64(171 + n as u64);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, ccr), &mut rng);
        let sys = System::heterogeneous_random(&dag, 5, &EtcParams::range_based(1.0), &mut rng);
        grid.push((format!("random-n{n}-ccr{ccr}"), dag, sys));
    }
    let mut rng = StdRng::seed_from_u64(172);
    let dag = gauss::gaussian_elimination(7, 1.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
    grid.push(("gauss-7".into(), dag, sys));
    let mut rng = StdRng::seed_from_u64(173);
    let dag = fft::fft_butterfly(16, 2.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(0.5), &mut rng);
    grid.push(("fft-16".into(), dag, sys));
    let mut rng = StdRng::seed_from_u64(174);
    let dag = laplace::laplace_wavefront(5, 1.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
    grid.push(("laplace-5".into(), dag, sys));
    grid
}

/// Every heterogeneous algorithm, on every grid instance: tracing on/off
/// byte-identical and a complete decision log.
#[test]
fn tracing_never_perturbs_schedules_across_grid() {
    for (label, dag, sys) in &grid() {
        for alg in all_heterogeneous() {
            assert_tracing_contract(&*alg, label, dag, sys);
        }
    }
}

/// The homogeneous algorithm set on a homogeneous machine, plus the
/// registry-only search schedulers (branch-and-bound, CA-HEFT, GA) on a
/// small instance — the speculative schedulers are exactly where a naive
/// in-loop placement log would drift from the final schedule.
#[test]
fn tracing_contract_holds_for_search_and_homogeneous_schedulers() {
    let mut rng = StdRng::seed_from_u64(175);
    let dag = random_dag(&RandomDagParams::new(40, 1.0, 1.0), &mut rng);
    let sys = System::homogeneous_unit(&dag, 4);
    for alg in homogeneous_set() {
        assert_tracing_contract(&*alg, "hom-40", &dag, &sys);
    }

    let mut rng = StdRng::seed_from_u64(176);
    let dag = random_dag(&RandomDagParams::new(8, 1.0, 1.0), &mut rng);
    let sys = System::heterogeneous_random(&dag, 3, &EtcParams::range_based(1.0), &mut rng);
    for name in ["BNB", "CA-HEFT", "GA"] {
        let Some(alg) = by_name(name) else {
            panic!("registry lost {name}");
        };
        assert_tracing_contract(&*alg, "tiny-8", &dag, &sys);
    }
}

/// The NDJSON export parses line by line, and its placement lines agree
/// with the trace's own counts.
#[test]
fn ndjson_export_parses_and_counts_placements() {
    let mut rng = StdRng::seed_from_u64(177);
    let dag = random_dag(&RandomDagParams::new(50, 1.0, 1.0), &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
    let alg = by_name("ILS-D").unwrap();
    let (_sched, trace) = traced_schedule(&*alg, &dag, &sys);

    let full = hetsched::trace::ndjson::event_log(&trace);
    let mut placed = 0usize;
    for line in full.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("NDJSON line parses");
        assert!(v.get("event").is_some(), "line not self-describing: {line}");
        if v["event"].as_str() == Some("placed") {
            placed += 1;
        }
    }
    assert_eq!(placed, trace.num_placements());

    let decisions = hetsched::trace::ndjson::decision_log(&trace);
    assert_eq!(decisions.lines().count(), trace.num_placements());
    for line in decisions.lines() {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert_eq!(v["event"].as_str(), Some("placed"));
    }
}

/// The Chrome-trace export is valid JSON with one named lane (thread
/// metadata) per processor and one complete event per committed slot, and
/// its per-processor busy intervals equal the schedule's slots.
#[test]
fn chrome_trace_export_has_one_lane_per_processor() {
    let mut rng = StdRng::seed_from_u64(178);
    let dag = random_dag(&RandomDagParams::new(40, 1.0, 1.0), &mut rng);
    let sys = System::heterogeneous_random(&dag, 5, &EtcParams::range_based(1.0), &mut rng);
    let alg = by_name("HEFT").unwrap();
    let (sched, trace) = traced_schedule(&*alg, &dag, &sys);

    let json = hetsched::trace::chrome::to_chrome_trace(&trace, sys.num_procs());
    let v: serde_json::Value = serde_json::from_str(&json).expect("chrome trace parses");
    let events = v
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");

    let lanes = events
        .iter()
        .filter(|e| {
            e["ph"].as_str() == Some("M")
                && e["name"].as_str() == Some("thread_name")
                && e["pid"].as_u64() == Some(0)
        })
        .count();
    assert_eq!(lanes, sys.num_procs(), "one metadata lane per processor");

    let slots = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("X") && e["pid"].as_u64() == Some(0))
        .count();
    assert_eq!(slots, trace.num_placements());

    // busy intervals from the trace agree with the schedule, lane by lane
    let lanes = hetsched::trace::chrome::lanes(&trace, sys.num_procs());
    for (p, lane) in lanes.iter().enumerate() {
        let mut expected: Vec<(f64, f64)> = sched
            .slots(ProcId(p as u32))
            .iter()
            .map(|s| (s.start, s.finish))
            .collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(lane, &expected, "lane {p} diverges from schedule");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized sweep of the tracing contract over every heterogeneous
    /// algorithm: tracing on/off byte-identical schedules, decision-log
    /// placement count equal to the number of scheduled tasks (plus
    /// duplicates), on arbitrary instances.
    #[test]
    fn tracing_contract_randomized(
        n in 2usize..45,
        ccr in 0.0f64..6.0,
        procs in 1usize..7,
        seed in 0u64..100_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, ccr), &mut rng);
        let sys = System::heterogeneous_random(
            &dag, procs, &EtcParams::range_based(1.0), &mut rng);
        for alg in all_heterogeneous() {
            let untraced = alg.schedule(&dag, &sys);
            let (traced, trace) = traced_schedule(&*alg, &dag, &sys);
            prop_assert_eq!(
                slot_digest(&traced),
                slot_digest(&untraced),
                "{} perturbed (n={}, procs={}, seed={})", alg.name(), n, procs, seed
            );
            prop_assert_eq!(trace.num_primary_placements(), dag.num_tasks());
            prop_assert_eq!(
                trace.num_placements() - trace.num_primary_placements(),
                traced.num_duplicates()
            );
        }
    }
}
