//! End-to-end integration: workload generator → platform model → every
//! scheduler → validator → discrete-event simulator → metrics, across all
//! workload classes and system kinds.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched::core::algorithms::{all_heterogeneous, homogeneous_set};
use hetsched::core::validate;
use hetsched::metrics::{efficiency, slr, speedup};
use hetsched::prelude::*;
use hetsched::sim::{simulate, SimConfig};
use hetsched::workloads::{
    cholesky::tiled_cholesky, fft::fft_butterfly, forkjoin::fork_join, gauss::gaussian_elimination,
    irregular::irregular41, laplace::laplace_wavefront, random_dag, stencil::stencil_1d,
    RandomDagParams,
};

fn all_workloads(seed: u64) -> Vec<(String, Dag)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        (
            "random80".into(),
            random_dag(&RandomDagParams::new(80, 1.0, 1.0), &mut rng),
        ),
        ("gauss10".into(), gaussian_elimination(10, 1.0, &mut rng)),
        ("fft32".into(), fft_butterfly(32, 1.0, &mut rng)),
        ("laplace8".into(), laplace_wavefront(8, 1.0, &mut rng)),
        ("cholesky5".into(), tiled_cholesky(5, 1.0, &mut rng)),
        ("forkjoin".into(), fork_join(3, 8, 5.0, 1.0, &mut rng)),
        ("stencil".into(), stencil_1d(6, 8, 1.0, &mut rng)),
        ("irregular41".into(), irregular41(1.0, &mut rng)),
    ]
}

#[test]
fn full_pipeline_on_every_workload_heterogeneous() {
    for (name, dag) in all_workloads(1) {
        let mut rng = StdRng::seed_from_u64(2);
        let sys = System::heterogeneous_random(&dag, 6, &EtcParams::range_based(1.0), &mut rng);
        for alg in all_heterogeneous() {
            let sched = alg.schedule(&dag, &sys);
            // static validation
            assert_eq!(
                validate(&dag, &sys, &sched),
                Ok(()),
                "{} on {name}",
                alg.name()
            );
            // dynamic cross-check: replay can only be faster
            let replay = simulate(&dag, &sys, &sched, &SimConfig::default()).makespan;
            assert!(
                replay <= sched.makespan() + 1e-6,
                "{} on {name}: replay {replay} > predicted {}",
                alg.name(),
                sched.makespan()
            );
            // metric sanity
            let m = sched.makespan();
            assert!(slr(&dag, &sys, m) >= 1.0 - 1e-9, "{} on {name}", alg.name());
            assert!(speedup(&dag, &sys, m) > 0.0);
            // on heterogeneous systems efficiency may legitimately exceed 1
            // (superlinear vs the best single processor); only finiteness
            // is invariant here
            assert!(efficiency(&dag, &sys, m).is_finite());
        }
    }
}

#[test]
fn full_pipeline_on_every_workload_homogeneous() {
    for (name, dag) in all_workloads(3) {
        let sys = System::homogeneous_unit(&dag, 4);
        for alg in homogeneous_set() {
            let sched = alg.schedule(&dag, &sys);
            assert_eq!(
                validate(&dag, &sys, &sched),
                Ok(()),
                "{} on {name}",
                alg.name()
            );
            let replay = simulate(&dag, &sys, &sched, &SimConfig::default()).makespan;
            assert!(
                replay <= sched.makespan() + 1e-6,
                "{} on {name}",
                alg.name()
            );
        }
    }
}

#[test]
fn proposed_schedulers_beat_heft_on_average() {
    // The headline claim, in miniature: over a seeded set of random
    // heterogeneous instances, the proposed ILS-H/ILS-D average SLR is no
    // worse than HEFT's (and ILS-D strictly better at high CCR).
    use hetsched::core::algorithms::{Heft, IlsD, IlsH};
    use hetsched::core::Scheduler as _;

    let mut heft_sum = 0.0;
    let mut ilsh_sum = 0.0;
    let mut ilsd_sum = 0.0;
    let reps = 20;
    for k in 0..reps {
        let mut rng = StdRng::seed_from_u64(1000 + k);
        let dag = random_dag(&RandomDagParams::new(60, 1.0, 5.0), &mut rng);
        let sys = System::heterogeneous_random(&dag, 8, &EtcParams::range_based(1.0), &mut rng);
        heft_sum += slr(&dag, &sys, Heft::new().schedule(&dag, &sys).makespan());
        ilsh_sum += slr(&dag, &sys, IlsH::new().schedule(&dag, &sys).makespan());
        ilsd_sum += slr(&dag, &sys, IlsD::new().schedule(&dag, &sys).makespan());
    }
    assert!(
        ilsh_sum <= heft_sum * 1.02,
        "ILS-H avg SLR {} vs HEFT {}",
        ilsh_sum / reps as f64,
        heft_sum / reps as f64
    );
    assert!(
        ilsd_sum < heft_sum,
        "ILS-D avg SLR {} vs HEFT {}",
        ilsd_sum / reps as f64,
        heft_sum / reps as f64
    );
}

#[test]
fn facade_reexports_compose() {
    // the prelude suffices for the common flow
    let mut b = DagBuilder::new();
    let a = b.add_task(1.0);
    let c = b.add_task(2.0);
    b.add_edge(a, c, 3.0).unwrap();
    let dag = b.build().unwrap();
    let sys = System::homogeneous(&dag, 2, 0.1, 10.0);
    let sched = hetsched::core::algorithms::Heft::new();
    use hetsched::core::Scheduler as _;
    let s = sched.schedule(&dag, &sys);
    assert!(s.is_complete());
    assert_eq!(s.num_procs(), 2);
    let _ = (TaskId(0), ProcId(0), Topology::Ring, Network::unit(2));
}

#[test]
fn left_shift_compaction_agrees_with_simulator_replay() {
    // Two independent implementations of ASAP semantics — the schedule
    // compactor in core and the discrete-event replay in sim — must agree
    // on the realized makespan for every scheduler.
    use hetsched::core::compact::left_shift;
    for seed in [5u64, 6, 7] {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&RandomDagParams::new(50, 1.0, 2.0), &mut rng);
        let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
        for alg in all_heterogeneous() {
            let sched = alg.schedule(&dag, &sys);
            let shifted = left_shift(&dag, &sys, &sched);
            assert_eq!(validate(&dag, &sys, &shifted), Ok(()), "{}", alg.name());
            let replay = simulate(&dag, &sys, &sched, &SimConfig::default()).makespan;
            assert!(
                (shifted.makespan() - replay).abs() < 1e-6,
                "{} seed {seed}: compact {} vs replay {replay}",
                alg.name(),
                shifted.makespan()
            );
        }
    }
}

#[test]
fn ca_heft_wins_under_single_port_replay() {
    // The contention-aware scheduler's reason to exist: replay plans under
    // the single-port model; CA-HEFT must beat HEFT on average, while its
    // plan stays conservative (replay <= plan) in the free model.
    use hetsched::core::algorithms::{CaHeft, Heft};
    use hetsched::core::Scheduler as _;
    use hetsched::sim::{simulate_with, CommModel, Scenario};
    let mut ca_sum = 0.0;
    let mut heft_sum = 0.0;
    let reps = 10;
    for seed in 0..reps {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&RandomDagParams::new(40, 1.0, 5.0), &mut rng);
        let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
        let scenario = Scenario {
            proc_slowdown: vec![],
            comm_model: CommModel::SinglePort,
        };
        let ca = CaHeft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &ca), Ok(()), "seed {seed}");
        let free_replay = simulate(&dag, &sys, &ca, &SimConfig::default()).makespan;
        assert!(free_replay <= ca.makespan() + 1e-6, "seed {seed}");
        let heft = Heft::new().schedule(&dag, &sys);
        ca_sum += simulate_with(&dag, &sys, &ca, &SimConfig::default(), &scenario).makespan;
        heft_sum += simulate_with(&dag, &sys, &heft, &SimConfig::default(), &scenario).makespan;
    }
    assert!(
        ca_sum < heft_sum,
        "CA-HEFT mean {} vs HEFT mean {} under single-port replay",
        ca_sum / reps as f64,
        heft_sum / reps as f64
    );
}
