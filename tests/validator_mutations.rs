//! Mutation testing of the validator: take a known-valid schedule,
//! corrupt it through the serde escape hatch (deserialization bypasses
//! the `Schedule` API's insertion checks), and require `validate` to
//! reject every mutation class. This guards the guard.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;

use hetsched::core::algorithms::Heft;
use hetsched::core::{validate, Schedule, Scheduler};
use hetsched::prelude::*;
use hetsched::workloads::{random_dag, RandomDagParams};

fn instance(seed: u64) -> (Dag, System, Schedule) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = random_dag(&RandomDagParams::new(25, 1.0, 2.0), &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
    let sched = Heft::new().schedule(&dag, &sys);
    assert_eq!(validate(&dag, &sys, &sched), Ok(()));
    (dag, sys, sched)
}

/// Apply `mutate` to the schedule's JSON form and return the corrupted
/// schedule (must still deserialize).
fn mutate_json(sched: &Schedule, mutate: impl FnOnce(&mut Value)) -> Schedule {
    let mut v = serde_json::to_value(sched).expect("serialize");
    mutate(&mut v);
    serde_json::from_value(v).expect("mutated JSON must still deserialize")
}

/// Walk to the first non-empty timeline and return `(proc index, slots)`.
fn first_busy_timeline(v: &mut Value) -> (usize, &mut Vec<Value>) {
    let timelines = v["timelines"].as_array_mut().expect("timelines array");
    let idx = timelines
        .iter()
        .position(|tl| !tl.as_array().unwrap().is_empty())
        .expect("some processor is busy");
    (idx, timelines[idx].as_array_mut().unwrap())
}

#[test]
fn shrinking_a_slot_duration_is_caught() {
    let (dag, sys, sched) = instance(1);
    let bad = mutate_json(&sched, |v| {
        let (_, slots) = first_busy_timeline(v);
        let finish = slots[0]["finish"].as_f64().unwrap();
        slots[0]["finish"] =
            Value::from(finish - 0.5 * (finish - slots[0]["start"].as_f64().unwrap()));
    });
    assert!(
        matches!(
            validate(&dag, &sys, &bad),
            Err(hetsched::core::ValidationError::WrongDuration { .. })
        ),
        "{:?}",
        validate(&dag, &sys, &bad)
    );
}

#[test]
fn pulling_a_task_before_its_data_is_caught() {
    // find a slot with a predecessor and shift it to start at 0
    let (dag, sys, sched) = instance(2);
    // choose a non-entry task with the latest start
    let victim = dag
        .task_ids()
        .filter(|&t| dag.in_degree(t) > 0)
        .max_by(|&a, &b| {
            sched
                .assignment(a)
                .unwrap()
                .1
                .total_cmp(&sched.assignment(b).unwrap().1)
        })
        .expect("graph has non-entry tasks");
    let bad = mutate_json(&sched, |v| {
        // shift every copy of `victim` to start at 0 (keeping duration) in
        // timelines and fix the primary record accordingly
        for tl in v["timelines"].as_array_mut().unwrap() {
            for slot in tl.as_array_mut().unwrap() {
                if slot["task"] == victim.0 {
                    let dur = slot["finish"].as_f64().unwrap() - slot["start"].as_f64().unwrap();
                    slot["start"] = Value::from(0.0);
                    slot["finish"] = Value::from(dur);
                }
            }
            // keep slots sorted by start after the move
            let arr = tl.as_array_mut().unwrap();
            arr.sort_by(|a, b| {
                a["start"]
                    .as_f64()
                    .unwrap()
                    .total_cmp(&b["start"].as_f64().unwrap())
            });
        }
        let prim = &mut v["primary"][victim.index()];
        let dur = prim[2].as_f64().unwrap() - prim[1].as_f64().unwrap();
        prim[1] = Value::from(0.0);
        prim[2] = Value::from(dur);
    });
    // either the move overlaps something or it violates precedence —
    // both must be rejected
    assert!(validate(&dag, &sys, &bad).is_err());
}

#[test]
fn dropping_a_task_is_caught() {
    let (dag, sys, sched) = instance(3);
    let bad = mutate_json(&sched, |v| {
        // erase the primary record of task 0 (leaving its slot in place is
        // irrelevant: completeness is checked off the primary table)
        v["primary"][0] = Value::Null;
    });
    assert!(matches!(
        validate(&dag, &sys, &bad),
        Err(hetsched::core::ValidationError::Unscheduled(t)) if t == TaskId(0)
    ));
}

#[test]
fn overlapping_two_slots_is_caught() {
    let (dag, sys, sched) = instance(4);
    // find a processor with >= 2 slots and slide the second onto the first
    let bad = mutate_json(&sched, |v| {
        let timelines = v["timelines"].as_array_mut().unwrap();
        let tl = timelines
            .iter_mut()
            .find(|tl| tl.as_array().unwrap().len() >= 2)
            .expect("some processor runs two tasks");
        let arr = tl.as_array_mut().unwrap();
        let first_start = arr[0]["start"].as_f64().unwrap();
        let dur = arr[1]["finish"].as_f64().unwrap() - arr[1]["start"].as_f64().unwrap();
        arr[1]["start"] = Value::from(first_start);
        arr[1]["finish"] = Value::from(first_start + dur);
        arr.sort_by(|a, b| {
            a["start"]
                .as_f64()
                .unwrap()
                .total_cmp(&b["start"].as_f64().unwrap())
        });
    });
    // the mutation leaves the primary table inconsistent with timelines in
    // start time, but the overlap/duration checks run off timelines and
    // must fire
    assert!(validate(&dag, &sys, &bad).is_err());
}

#[test]
fn swapping_processor_assignment_without_retiming_is_caught() {
    let (dag, sys, sched) = instance(5);
    // move a slot to another processor in the primary table only: the
    // duration no longer matches that processor's ETC entry (and the slot
    // table disagrees). The validator works off timelines, so move the
    // slot there too.
    let bad = mutate_json(&sched, |v| {
        let timelines = v["timelines"].as_array_mut().unwrap();
        let from = timelines
            .iter()
            .position(|tl| !tl.as_array().unwrap().is_empty())
            .unwrap();
        let slot = timelines[from].as_array_mut().unwrap().remove(0);
        let to = (from + 1) % timelines.len();
        timelines[to].as_array_mut().unwrap().insert(0, slot);
        let arr = timelines[to].as_array_mut().unwrap();
        arr.sort_by(|a, b| {
            a["start"]
                .as_f64()
                .unwrap()
                .total_cmp(&b["start"].as_f64().unwrap())
        });
    });
    // heterogeneous ETC: the duration is wrong on the new processor with
    // probability ~1; if not, precedence/overlap fires. Either way: error.
    assert!(validate(&dag, &sys, &bad).is_err());
}
