//! Cross-crate property tests: invariants that tie the whole system
//! together, checked over randomized instances.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched::core::algorithms::all_heterogeneous;
use hetsched::core::validate;
use hetsched::metrics::{efficiency, slr, speedup};
use hetsched::prelude::*;
use hetsched::sim::{simulate, Noise, SimConfig};
use hetsched::workloads::{random_dag, RandomDagParams};

/// Bit-exact flattening of a schedule: processor, task, start/finish bits,
/// duplicate flag for every slot, in timeline order.
fn slot_digest(s: &hetsched::core::Schedule) -> Vec<(usize, usize, u64, u64, bool)> {
    let mut out = Vec::new();
    for p in 0..s.num_procs() {
        for slot in s.slots(ProcId(p as u32)) {
            out.push((
                p,
                slot.task.index(),
                slot.start.to_bits(),
                slot.finish.to_bits(),
                slot.duplicate,
            ));
        }
    }
    out
}

/// Conformance sweep for the optimized EFT engine: every algorithm on a
/// fixed grid of workload classes (random at three CCRs, Gaussian
/// elimination, FFT, Laplace, homogeneous) must produce a schedule
/// byte-identical to the naive reference engine's.
#[test]
fn optimized_engine_schedules_byte_identical_to_reference_across_grid() {
    use hetsched::core::with_reference_engine;
    use hetsched::workloads::{fft, gauss, laplace};

    let mut grid: Vec<(String, Dag, System)> = Vec::new();
    for (n, ccr) in [(40usize, 0.5), (40, 5.0), (150, 1.0)] {
        let mut rng = StdRng::seed_from_u64(91 + n as u64);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, ccr), &mut rng);
        let sys = System::heterogeneous_random(&dag, 6, &EtcParams::range_based(1.0), &mut rng);
        grid.push((format!("random-n{n}-ccr{ccr}"), dag, sys));
    }
    let mut rng = StdRng::seed_from_u64(92);
    let dag = gauss::gaussian_elimination(8, 1.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
    grid.push(("gauss-8".into(), dag, sys));
    let mut rng = StdRng::seed_from_u64(93);
    let dag = fft::fft_butterfly(16, 2.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(0.5), &mut rng);
    grid.push(("fft-16".into(), dag, sys));
    let mut rng = StdRng::seed_from_u64(94);
    let dag = laplace::laplace_wavefront(6, 1.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
    grid.push(("laplace-6".into(), dag, sys));
    let mut rng = StdRng::seed_from_u64(95);
    let dag = random_dag(&RandomDagParams::new(60, 1.0, 1.0), &mut rng);
    let sys = System::homogeneous_unit(&dag, 4);
    grid.push(("hom-60".into(), dag, sys));

    for (label, dag, sys) in &grid {
        // One shared, memoized instance for the whole grid point: every
        // algorithm must see exactly the schedule a fresh per-call
        // instance produces — the memo may never change a bit.
        let inst = hetsched::core::ProblemInstance::from_refs(dag, sys);
        for alg in all_heterogeneous() {
            let fast = alg.schedule(dag, sys);
            let reference = with_reference_engine(|| alg.schedule(dag, sys));
            assert_eq!(
                slot_digest(&fast),
                slot_digest(&reference),
                "{} diverged from the reference engine on {label}",
                alg.name()
            );
            assert_eq!(fast.makespan().to_bits(), reference.makespan().to_bits());
            let shared = alg.schedule_instance(&inst);
            assert_eq!(
                slot_digest(&shared),
                slot_digest(&fast),
                "{} diverged on the shared ProblemInstance on {label}",
                alg.name()
            );
        }
    }
}

/// Batched scheduling is exactly the sequential loop, bit for bit: for
/// every registered heterogeneous algorithm — the EFT-family
/// `schedule_many` overrides that share one scratch context across the
/// batch, and the default per-instance loop alike — a mixed-workload
/// batch matches per-instance `schedule_instance` calls at batch sizes
/// 1, 4, and 16.
#[test]
fn schedule_many_is_bit_identical_to_sequential_at_every_batch_size() {
    use hetsched::core::ProblemInstance;
    use hetsched::workloads::{fft, gauss, laplace};

    // A mixed pool the batches cycle through. Varying processor counts
    // within one batch exercise the shared context's `reset_for` path.
    let mut pool: Vec<ProblemInstance> = Vec::new();
    for (i, (n, ccr)) in [(12usize, 0.5), (25, 5.0), (18, 1.0)].iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(291 + i as u64);
        let dag = random_dag(&RandomDagParams::new(*n, 1.0, *ccr), &mut rng);
        let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
        pool.push(ProblemInstance::new(dag, sys));
    }
    let mut rng = StdRng::seed_from_u64(294);
    let dag = gauss::gaussian_elimination(5, 1.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 3, &EtcParams::range_based(1.0), &mut rng);
    pool.push(ProblemInstance::new(dag, sys));
    let mut rng = StdRng::seed_from_u64(295);
    let dag = fft::fft_butterfly(8, 2.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 5, &EtcParams::range_based(0.5), &mut rng);
    pool.push(ProblemInstance::new(dag, sys));
    let mut rng = StdRng::seed_from_u64(296);
    let dag = laplace::laplace_wavefront(4, 1.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
    pool.push(ProblemInstance::new(dag, sys));
    let mut rng = StdRng::seed_from_u64(297);
    let dag = random_dag(&RandomDagParams::new(20, 1.0, 1.0), &mut rng);
    let sys = System::homogeneous_unit(&dag, 4);
    pool.push(ProblemInstance::new(dag, sys));

    for &batch in &[1usize, 4, 16] {
        let insts: Vec<ProblemInstance> = (0..batch)
            .map(|i| {
                let src = &pool[i % pool.len()];
                ProblemInstance::new(src.dag().clone(), src.sys().clone())
            })
            .collect();
        for alg in all_heterogeneous() {
            let batched = alg.schedule_many(&insts);
            assert_eq!(batched.len(), insts.len(), "{}", alg.name());
            for (k, (got, inst)) in batched.iter().zip(&insts).enumerate() {
                let want = alg.schedule_instance(inst);
                assert_eq!(
                    slot_digest(got),
                    slot_digest(&want),
                    "{} batch={batch} member {k} diverged from sequential",
                    alg.name()
                );
                assert_eq!(got.makespan().to_bits(), want.makespan().to_bits());
                assert_eq!(validate(inst.dag(), inst.sys(), got), Ok(()));
            }
        }
    }
}

/// Search schedulers parallelized in the `par` layer, in cheap test
/// configurations. The boxed trait objects let one grid drive all four.
fn parallel_search_schedulers() -> Vec<Box<dyn hetsched::core::Scheduler + Send + Sync>> {
    use hetsched::core::algorithms::{BranchAndBound, DupHeft, Genetic, IlsD};
    vec![
        Box::new(Genetic {
            population: 10,
            generations: 10,
            mutation_rate: 0.1,
            seed: 7,
        }),
        Box::new(IlsD::new()),
        Box::new(DupHeft::new()),
        Box::new(BranchAndBound { node_budget: 3_000 }),
    ]
}

/// Determinism grid for the parallel search layer: every parallelized
/// algorithm (GA, ILS-D, DUP-HEFT, BNB) on every workload class must
/// produce bit-identical slot digests at jobs = 1, 2, and 8. This is the
/// contract that lets `--jobs`, `HETSCHED_JOBS`, and the serve `jobs`
/// option stay out of every cache key.
#[test]
fn parallel_search_is_bit_identical_across_thread_counts() {
    use hetsched::core::par::with_jobs;
    use hetsched::workloads::{fft, gauss, laplace};

    let mut grid: Vec<(String, Dag, System)> = Vec::new();
    for (n, ccr) in [(30usize, 0.5), (30, 5.0), (80, 1.0)] {
        let mut rng = StdRng::seed_from_u64(191 + n as u64);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, ccr), &mut rng);
        let sys = System::heterogeneous_random(&dag, 5, &EtcParams::range_based(1.0), &mut rng);
        grid.push((format!("random-n{n}-ccr{ccr}"), dag, sys));
    }
    let mut rng = StdRng::seed_from_u64(192);
    let dag = gauss::gaussian_elimination(6, 2.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
    grid.push(("gauss-6".into(), dag, sys));
    let mut rng = StdRng::seed_from_u64(193);
    let dag = fft::fft_butterfly(8, 2.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(0.5), &mut rng);
    grid.push(("fft-8".into(), dag, sys));
    let mut rng = StdRng::seed_from_u64(194);
    let dag = laplace::laplace_wavefront(5, 1.0, &mut rng);
    let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
    grid.push(("laplace-5".into(), dag, sys));
    let mut rng = StdRng::seed_from_u64(195);
    let dag = random_dag(&RandomDagParams::new(40, 1.0, 1.0), &mut rng);
    let sys = System::homogeneous_unit(&dag, 4);
    grid.push(("hom-40".into(), dag, sys));

    for (label, dag, sys) in &grid {
        for alg in parallel_search_schedulers() {
            let sequential = with_jobs(1, || alg.schedule(dag, sys));
            assert_eq!(validate(dag, sys, &sequential), Ok(()), "{label}");
            for jobs in [2usize, 8] {
                let parallel = with_jobs(jobs, || alg.schedule(dag, sys));
                assert_eq!(
                    slot_digest(&parallel),
                    slot_digest(&sequential),
                    "{} at jobs={jobs} diverged from jobs=1 on {label}",
                    alg.name()
                );
            }
        }
    }
}

/// The portfolio runner is exactly "run every member, keep the minimum":
/// its per-member schedules are bit-identical to direct library calls and
/// the winner is the per-algorithm minimum makespan.
#[test]
fn portfolio_equals_per_algorithm_minimum_of_direct_calls() {
    use hetsched::core::{run_portfolio, ProblemInstance};

    let mut rng = StdRng::seed_from_u64(96);
    let dag = random_dag(&RandomDagParams::new(80, 1.0, 2.0), &mut rng);
    let sys = System::heterogeneous_random(&dag, 5, &EtcParams::range_based(1.0), &mut rng);

    let algs = all_heterogeneous();
    let refs: Vec<&(dyn hetsched::core::Scheduler + Send + Sync)> =
        algs.iter().map(|b| &**b).collect();
    let inst = ProblemInstance::from_refs(&dag, &sys);
    let result = run_portfolio(&inst, &refs);

    assert_eq!(result.entries.len(), algs.len());
    let mut min_direct = f64::INFINITY;
    for (entry, alg) in result.entries.iter().zip(&algs) {
        assert_eq!(entry.algorithm, alg.name());
        let direct = alg.schedule(&dag, &sys);
        assert_eq!(
            slot_digest(&entry.schedule),
            slot_digest(&direct),
            "{} portfolio schedule differs from a direct call",
            alg.name()
        );
        min_direct = min_direct.min(direct.makespan());
    }
    let best = result.best_entry();
    assert_eq!(best.makespan.to_bits(), min_direct.to_bits());
    assert_eq!(validate(&dag, &sys, &best.schedule), Ok(()));
    // ties break toward the earliest member: nothing before `best` matches
    for entry in &result.entries[..result.best] {
        assert!(entry.makespan > best.makespan);
    }
}

/// Makespan sanity for the HOFT baseline on a fig10-style grid: across
/// random instances at the runtime-experiment sizes, HOFT stays inside
/// the baseline envelope — never worse than the worst other registered
/// heterogeneous scheduler on the same instance. (HOFT is excluded from
/// its own envelope; including it would make the bound vacuous.)
#[test]
fn hoft_stays_within_the_baseline_envelope_on_the_fig10_grid() {
    use hetsched::core::algorithms::by_name;

    let hoft = by_name("HOFT").expect("HOFT is registered");
    for (n, seed) in [(20usize, 910u64), (50, 911), (80, 912), (120, 913)] {
        let (dag, sys) = instance(n, 1.0, 6, 1.0, seed);
        let m = hoft.schedule(&dag, &sys).makespan();
        let worst = all_heterogeneous()
            .iter()
            .filter(|alg| alg.name() != "HOFT")
            .map(|alg| alg.schedule(&dag, &sys).makespan())
            .fold(0.0f64, f64::max);
        assert!(
            m <= worst + 1e-9,
            "HOFT makespan {m} beats nothing at n={n}: worst baseline {worst}"
        );
    }
}

fn instance(n: usize, ccr: f64, procs: usize, beta: f64, seed: u64) -> (Dag, System) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = random_dag(&RandomDagParams::new(n, 1.0, ccr), &mut rng);
    let sys = System::heterogeneous_random(&dag, procs, &EtcParams::range_based(beta), &mut rng);
    (dag, sys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every scheduler: valid schedule, SLR >= 1, efficiency <= 1, and the
    /// event-level replay never exceeds the analytical makespan.
    #[test]
    fn pipeline_invariants(
        n in 2usize..60,
        ccr in 0.0f64..8.0,
        procs in 1usize..8,
        beta in 0.0f64..1.9,
        seed in 0u64..100_000,
    ) {
        let (dag, sys) = instance(n, ccr, procs, beta, seed);
        for alg in all_heterogeneous() {
            let sched = alg.schedule(&dag, &sys);
            prop_assert_eq!(validate(&dag, &sys, &sched), Ok(()), "{}", alg.name());
            let m = sched.makespan();
            prop_assert!(slr(&dag, &sys, m) >= 1.0 - 1e-9, "{} SLR < 1", alg.name());
            // Note: on heterogeneous systems efficiency can legitimately
            // exceed 1 — tasks with different processor affinities beat the
            // best *single* processor superlinearly — so only positivity
            // and finiteness are invariant here. The <= 1 bound holds on
            // homogeneous systems and is asserted in the metrics tests.
            let eff = efficiency(&dag, &sys, m);
            prop_assert!(eff.is_finite() && eff > 0.0, "{} efficiency {}", alg.name(), eff);
            prop_assert!(speedup(&dag, &sys, m) > 0.0);
            let replay = simulate(&dag, &sys, &sched, &SimConfig::default()).makespan;
            prop_assert!(replay <= m + 1e-6, "{} replay {} > {}", alg.name(), replay, m);
        }
    }

    /// The simulator is deterministic under a fixed seed and never loses
    /// tasks, noise or not.
    #[test]
    fn simulator_determinism(
        n in 2usize..40,
        seed in 0u64..100_000,
        noise_seed in 0u64..1000,
    ) {
        let (dag, sys) = instance(n, 1.0, 4, 1.0, seed);
        use hetsched::core::Scheduler as _;
        let sched = hetsched::core::algorithms::Heft::new().schedule(&dag, &sys);
        let cfg = SimConfig {
            exec_noise: Noise::Gamma { cv: 0.4 },
            comm_noise: Noise::Uniform { spread: 0.3 },
            seed: noise_seed,
        };
        let a = simulate(&dag, &sys, &sched, &cfg);
        let b = simulate(&dag, &sys, &sched, &cfg);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.task_finish.len(), dag.num_tasks());
        prop_assert!(a.task_finish.iter().all(|&f| f.is_finite() && f >= 0.0));
        // makespan is the max primary finish
        let max_fin = a.task_finish.iter().copied().fold(0.0f64, f64::max);
        prop_assert!((a.makespan - max_fin).abs() < 1e-12);
    }

    /// Randomized thread-count invariance: on arbitrary instances, every
    /// parallelized search scheduler produces the same bits at jobs = 1
    /// and at an arbitrary jobs in 2..=8.
    #[test]
    fn parallel_search_thread_count_invariance(
        n in 2usize..40,
        ccr in 0.0f64..6.0,
        procs in 1usize..6,
        seed in 0u64..100_000,
        jobs in 2usize..9,
    ) {
        use hetsched::core::par::with_jobs;
        let (dag, sys) = instance(n, ccr, procs, 1.0, seed);
        for alg in parallel_search_schedulers() {
            let sequential = with_jobs(1, || alg.schedule(&dag, &sys));
            let parallel = with_jobs(jobs, || alg.schedule(&dag, &sys));
            prop_assert_eq!(
                slot_digest(&sequential),
                slot_digest(&parallel),
                "{} diverged at jobs={}", alg.name(), jobs
            );
        }
    }

    /// Repair bit-identity: applying a random delta sequence and repairing
    /// the parent schedule yields exactly the bits of a from-scratch run
    /// on the patched problem, for every repair-capable algorithm at
    /// jobs = 1 and jobs = 4.
    #[test]
    fn repair_is_bit_identical_to_from_scratch(
        n in 4usize..40,
        ccr in 0.0f64..6.0,
        procs in 2usize..6,
        seed in 0u64..100_000,
        raw in proptest::collection::vec(
            (0u8..6, 0u64..u64::MAX, 0u64..u64::MAX, 0.0f64..10.0),
            1..=8,
        ),
    ) {
        use hetsched::core::par::with_jobs;
        use hetsched::core::repairable;
        use hetsched::core::{Delta, ProblemInstance};
        use hetsched::core::Scheduler as _;

        let (dag, sys) = instance(n, ccr, procs, 1.0, seed);
        let parent = ProblemInstance::new(dag, sys);

        // Resolve each raw seed into a delta valid against the problem as
        // patched so far, so the whole sequence applies cleanly in order.
        let mut cur = ProblemInstance::new(parent.dag().clone(), parent.sys().clone());
        let mut deltas: Vec<Delta> = Vec::new();
        for (kind, a, b, val) in raw {
            let nt = cur.dag().num_tasks();
            let np = cur.sys().num_procs();
            let ne = cur.dag().num_edges();
            let task = TaskId((a % nt as u64) as u32);
            let delta = match kind {
                2 if ne > 0 => {
                    let e = cur.dag().edges()[(a % ne as u64) as usize];
                    Delta::EdgeData { src: e.src, dst: e.dst, data: val }
                }
                1 => Delta::EtcEntry {
                    task,
                    proc: ProcId((b % np as u64) as u32),
                    time: 0.1 + val,
                },
                3 => Delta::AddTask {
                    weight: 1.0 + val,
                    exec: (0..np).map(|p| 0.5 + ((a as usize + p) % 5) as f64).collect(),
                    // predecessor edges only, so the graph stays acyclic
                    preds: vec![(task, val)],
                    succs: vec![],
                },
                4 if nt > 2 => Delta::RemoveTask { task },
                5 if np > 1 => Delta::RemoveProc { proc: ProcId((b % np as u64) as u32) },
                _ => Delta::TaskWeight { task, weight: 0.1 + val },
            };
            cur = cur
                .apply_deltas(std::slice::from_ref(&delta))
                .expect("resolved delta must apply")
                .instance
                .into_owned();
            deltas.push(delta);
        }

        for name in ["HEFT", "HEFT-NI"] {
            let alg = repairable(name).expect("registered as repair-capable");
            let sched = hetsched::core::algorithms::by_name(name).expect("registered");
            for jobs in [1usize, 4] {
                let parent_sched = with_jobs(jobs, || sched.schedule_instance(&parent));
                let patched = parent.apply_deltas(&deltas).expect("sequence applies");
                let (repaired, stats) =
                    with_jobs(jobs, || {
                        alg.repair(&patched.instance, &patched.dirty, &parent, &parent_sched)
                    });
                let fresh = with_jobs(jobs, || sched.schedule_instance(&patched.instance));
                prop_assert_eq!(
                    slot_digest(&repaired),
                    slot_digest(&fresh),
                    "{} at jobs={} diverged from from-scratch after {:?}",
                    name, jobs, deltas
                );
                prop_assert_eq!(
                    validate(patched.instance.dag(), patched.instance.sys(), &repaired),
                    Ok(()),
                    "{} repair produced an invalid schedule", name
                );
                prop_assert_eq!(stats.replayed + stats.rescheduled,
                    patched.instance.dag().num_tasks());
            }
        }
    }

    /// HOFT conformance on arbitrary instances: the optimized engine's
    /// schedule is bit-identical to the naive reference engine's, valid,
    /// and its SLR is bounded below by 1 like every other scheduler.
    #[test]
    fn hoft_is_bit_identical_to_the_reference_engine(
        n in 2usize..50,
        ccr in 0.0f64..6.0,
        procs in 2usize..8,
        beta in 0.0f64..1.9,
        seed in 0u64..100_000,
    ) {
        use hetsched::core::algorithms::by_name;
        use hetsched::core::with_reference_engine;

        let (dag, sys) = instance(n, ccr, procs, beta, seed);
        let hoft = by_name("HOFT").expect("HOFT is registered");
        let fast = hoft.schedule(&dag, &sys);
        let reference = with_reference_engine(|| hoft.schedule(&dag, &sys));
        prop_assert_eq!(slot_digest(&fast), slot_digest(&reference));
        prop_assert_eq!(fast.makespan().to_bits(), reference.makespan().to_bits());
        prop_assert_eq!(validate(&dag, &sys, &fast), Ok(()));
        prop_assert!(slr(&dag, &sys, fast.makespan()) >= 1.0 - 1e-9);
    }

    /// Adding processors never makes the *best achievable* HEFT makespan
    /// worse by more than noise: schedule on p and 2p homogeneous
    /// processors and require the bigger machine to be no slower than 1.02x
    /// (greedy heuristics are not monotone in theory; empirically on these
    /// instances they are, and large regressions indicate bugs).
    #[test]
    fn more_processors_do_not_hurt_much(
        n in 4usize..50,
        seed in 0u64..100_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, 0.5), &mut rng);
        use hetsched::core::Scheduler as _;
        let heft = hetsched::core::algorithms::Heft::new();
        let m2 = heft.schedule(&dag, &System::homogeneous_unit(&dag, 2)).makespan();
        let m4 = heft.schedule(&dag, &System::homogeneous_unit(&dag, 4)).makespan();
        prop_assert!(m4 <= m2 * 1.02 + 1e-9, "p=4 {} vs p=2 {}", m4, m2);
    }
}
