//! Integration tests for the scale-out front door: a real gateway + shard
//! topology over TCP, covering byte-identity with direct library calls,
//! single-flight dedup, mixed unique/duplicate interleaving, and graceful
//! degradation when a shard dies mid-traffic.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched::core::algorithms;
use hetsched::dag::io::DagSpec;
use hetsched::platform::SystemSpec;
use hetsched::workloads::gauss::gaussian_elimination;
use hetsched_gateway::{GatewayConfig, GatewayServer, LocalShards};
use hetsched_serve::ServeConfig;

const SYSTEM_JSON: &str = r#"{"processors": {"kind": "speeds", "speeds": [2.0, 1.0, 1.5]},
    "network": {"topology": "fully_connected", "startup": 0.5, "bandwidth": 1.0}}"#;

fn shard_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        instance_cache_capacity: 16,
        default_deadline_ms: 10_000,
    }
}

/// A running gateway + N in-process shards, plus the handle to join.
struct Topology {
    shards: LocalShards,
    gateway: std::thread::JoinHandle<std::io::Result<()>>,
    addr: std::net::SocketAddr,
}

fn spawn_topology(shard_count: usize) -> Topology {
    let shards = LocalShards::spawn(shard_count, &shard_config()).unwrap();
    let config = GatewayConfig {
        backends: shards.addrs(),
        ..Default::default()
    };
    let server = GatewayServer::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let gateway = std::thread::spawn(move || server.run());
    Topology {
        shards,
        gateway,
        addr,
    }
}

impl Topology {
    /// Shut down via the wire (propagates to the shards) and join.
    fn shutdown(mut self) {
        let mut c = Client::connect(self.addr);
        let bye = c.roundtrip(r#"{"op":"shutdown"}"#);
        assert_eq!(bye["status"].as_str(), Some("shutting_down"), "{bye:?}");
        self.gateway.join().unwrap().unwrap();
        self.shards.shutdown_all();
    }
}

/// DagSpec JSON for a deterministic Gaussian-elimination workload.
fn dag_json(m: usize) -> serde_json::Value {
    let mut rng = StdRng::seed_from_u64(11);
    let dag = gaussian_elimination(m, 1.0, &mut rng);
    serde_json::to_value(DagSpec::from_dag(&dag)).unwrap()
}

fn schedule_request(m: usize, algorithm: &str, options: &str) -> String {
    format!(
        "{{\"op\":\"schedule\",\"dag\":{},\"system\":{},\"algorithm\":\"{algorithm}\",\"options\":{options}}}",
        serde_json::to_string(&dag_json(m)).unwrap(),
        SYSTEM_JSON.replace('\n', ""),
    )
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Send one line, return the raw reply line (trimmed).
    fn roundtrip_raw(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        assert!(!reply.is_empty(), "connection closed without a reply");
        reply.trim().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> serde_json::Value {
        let raw = self.roundtrip_raw(line);
        serde_json::from_str(&raw).unwrap_or_else(|e| panic!("bad reply `{raw}`: {e}"))
    }
}

/// Sum one counter across the `shards` array of a gateway stats reply.
fn shard_sum(stats: &serde_json::Value, key: &str) -> u64 {
    stats["shards"]
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s[key].as_u64().unwrap_or(0))
        .sum()
}

/// A fingerprint-routed request through the gateway produces exactly the
/// schedule a direct library call does — and the gateway handshake
/// identifies itself distinctly from a shard.
#[test]
fn gateway_replies_match_direct_library_call() {
    let topo = spawn_topology(2);
    let mut client = Client::connect(topo.addr);

    let hello = client.roundtrip(r#"{"op":"hello"}"#);
    assert_eq!(
        hello["hello"]["service"].as_str(),
        Some("hetsched-gateway"),
        "{hello:?}"
    );

    // Ground truth, straight from the library.
    let dag_spec: DagSpec = serde_json::from_value(dag_json(6)).unwrap();
    let dag = dag_spec.build().unwrap();
    let sys_spec: SystemSpec = serde_json::from_str(SYSTEM_JSON).unwrap();
    let sys = sys_spec.build(&dag).unwrap();
    let direct = algorithms::by_name("HEFT").unwrap().schedule(&dag, &sys);
    let direct_value = serde_json::to_value(&direct).unwrap();

    let reply = client.roundtrip(&schedule_request(6, "HEFT", "{}"));
    assert_eq!(reply["status"].as_str(), Some("ok"), "{reply:?}");
    assert_eq!(
        reply["schedule"]["schedule"], direct_value,
        "gateway schedule differs from direct library call"
    );

    // A repeat rides the home shard's memo: same payload, cached.
    let again = client.roundtrip(&schedule_request(6, "HEFT", "{}"));
    assert_eq!(again["schedule"]["cached"].as_bool(), Some(true));
    assert_eq!(again["schedule"]["schedule"], direct_value);

    topo.shutdown();
}

/// K concurrent identical requests: exactly one backend schedule (summed
/// across shard stats), K byte-identical reply lines, and K-1 dedup hits.
#[test]
fn single_flight_coalesces_identical_requests() {
    const K: usize = 6;
    let topo = spawn_topology(2);

    // The sleep holds the leader's flight open long enough that every
    // barrier-released follower joins it instead of racing past.
    let line = schedule_request(6, "HEFT", "{\"debug_sleep_ms\":800}");
    let barrier = Arc::new(Barrier::new(K));
    let replies: Vec<String> = (0..K)
        .map(|_| {
            let line = line.clone();
            let barrier = barrier.clone();
            let addr = topo.addr;
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                barrier.wait();
                c.roundtrip_raw(&line)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    for reply in &replies {
        assert_eq!(
            reply, &replies[0],
            "follower reply is not byte-identical to the leader's"
        );
        assert!(reply.starts_with("{\"status\":\"ok\""), "{reply}");
    }

    let stats = Client::connect(topo.addr).roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(shard_sum(&stats, "computed"), 1, "{stats:?}");
    assert_eq!(
        stats["gateway"]["dedup_hits"].as_u64(),
        Some((K - 1) as u64),
        "{stats:?}"
    );
    assert_eq!(stats["gateway"]["forwarded"].as_u64(), Some(1));

    topo.shutdown();
}

/// Duplicates interleaved with unique traffic: the duplicates coalesce,
/// the uniques each compute, and nobody gets the wrong payload.
#[test]
fn mixed_unique_and_duplicate_interleaving() {
    const DUPES: usize = 3;
    const UNIQUES: usize = 3;
    let topo = spawn_topology(2);

    let hot = schedule_request(6, "HEFT", "{\"debug_sleep_ms\":600}");
    let barrier = Arc::new(Barrier::new(DUPES + UNIQUES));
    let mut handles = Vec::new();
    for _ in 0..DUPES {
        let line = hot.clone();
        let barrier = barrier.clone();
        let addr = topo.addr;
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            barrier.wait();
            ("hot", c.roundtrip_raw(&line))
        }));
    }
    for i in 0..UNIQUES {
        // distinct matrix sizes: distinct fingerprints, independent routing
        let line = schedule_request(4 + i, "HEFT", "{\"debug_sleep_ms\":100}");
        let barrier = barrier.clone();
        let addr = topo.addr;
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            barrier.wait();
            ("unique", c.roundtrip_raw(&line))
        }));
    }
    let replies: Vec<(&str, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let hot_replies: Vec<&String> = replies
        .iter()
        .filter(|(kind, _)| *kind == "hot")
        .map(|(_, r)| r)
        .collect();
    for (kind, reply) in &replies {
        assert!(reply.starts_with("{\"status\":\"ok\""), "{kind}: {reply}");
    }
    for r in &hot_replies {
        assert_eq!(*r, hot_replies[0], "duplicate replies must coalesce");
    }

    let stats = Client::connect(topo.addr).roundtrip(r#"{"op":"stats"}"#);
    // one compute for the hot flight, one per unique problem
    assert_eq!(
        shard_sum(&stats, "computed"),
        (1 + UNIQUES) as u64,
        "{stats:?}"
    );
    assert_eq!(
        stats["gateway"]["dedup_hits"].as_u64(),
        Some((DUPES - 1) as u64),
        "{stats:?}"
    );

    topo.shutdown();
}

/// A `schedule_many` batch through the gateway: entries come back in
/// request order, each byte-identical to a direct library call, the
/// fan-out splits by each instance's home shard, and a repeat batch is
/// answered entirely from the shard memos.
#[test]
fn schedule_many_fans_out_by_home_shard_and_keeps_order() {
    let topo = spawn_topology(2);
    let mut client = Client::connect(topo.addr);

    let sizes = [4usize, 5, 6, 7];
    let instances: Vec<String> = sizes
        .iter()
        .map(|&m| {
            format!(
                "{{\"dag\":{},\"system\":{}}}",
                serde_json::to_string(&dag_json(m)).unwrap(),
                SYSTEM_JSON.replace('\n', ""),
            )
        })
        .collect();
    let line = format!(
        "{{\"op\":\"schedule_many\",\"instances\":[{}],\"algorithm\":\"HEFT\"}}",
        instances.join(","),
    );

    let reply = client.roundtrip(&line);
    assert_eq!(reply["status"].as_str(), Some("ok"), "{reply:?}");
    let body = &reply["many"];
    let entries = body["entries"].as_array().unwrap();
    assert_eq!(entries.len(), sizes.len());
    assert_eq!(body["cached"].as_u64(), Some(0));
    assert_eq!(body["computed"].as_u64(), Some(sizes.len() as u64));
    let sys_spec: SystemSpec = serde_json::from_str(SYSTEM_JSON).unwrap();
    for (entry, &m) in entries.iter().zip(&sizes) {
        let dag_spec: DagSpec = serde_json::from_value(dag_json(m)).unwrap();
        let dag = dag_spec.build().unwrap();
        let sys = sys_spec.build(&dag).unwrap();
        let direct = algorithms::by_name("HEFT").unwrap().schedule(&dag, &sys);
        assert_eq!(
            entry["schedule"],
            serde_json::to_value(&direct).unwrap(),
            "batch entry for m={m} differs from direct library call"
        );
        assert_eq!(entry["cached"].as_bool(), Some(false));
    }

    // The batch split across both shards (4 distinct fingerprints over 2
    // shards virtually never all land on one) and seeded their memos:
    // the identical batch answers cached, and so does a standalone
    // request for any member.
    let again = client.roundtrip(&line);
    assert_eq!(again["many"]["cached"].as_u64(), Some(sizes.len() as u64));
    assert_eq!(again["many"]["computed"].as_u64(), Some(0));
    let again_entries = again["many"]["entries"].as_array().unwrap();
    for (a, b) in again_entries.iter().zip(entries) {
        // identical payloads; only the `cached` flag flips
        assert_eq!(a["schedule"], b["schedule"]);
        assert_eq!(a["cached"].as_bool(), Some(true));
    }
    let single = client.roundtrip(&schedule_request(5, "HEFT", "{}"));
    assert_eq!(
        single["schedule"]["cached"].as_bool(),
        Some(true),
        "{single:?}"
    );

    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(shard_sum(&stats, "computed"), sizes.len() as u64);

    topo.shutdown();
}

/// Kill one shard mid-traffic: every subsequent request gets a structured
/// reply within its deadline (reroute or shed — never a hang), and tail
/// traffic still succeeds.
#[test]
fn shard_failure_degrades_gracefully() {
    const DEADLINE_MS: u64 = 2_000;
    let mut topo = spawn_topology(2);
    let mut client = Client::connect(topo.addr);

    // Warm up: both shards reachable, traffic flows.
    let warm = client.roundtrip(&schedule_request(6, "HEFT", "{}"));
    assert_eq!(warm["status"].as_str(), Some("ok"), "{warm:?}");

    topo.shards.kill(0);

    // A spread of distinct problems: with fingerprint homing, some home to
    // the dead shard and must fail over. Every reply must be structured
    // and arrive within the deadline; none may hang the client.
    let mut ok = 0;
    for m in 4..12 {
        let line = schedule_request(m, "HEFT", &format!("{{\"deadline_ms\":{DEADLINE_MS}}}"));
        let started = Instant::now();
        let reply = client.roundtrip(&line);
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_millis(DEADLINE_MS + 1_000),
            "reply took {elapsed:?}, past the {DEADLINE_MS}ms deadline"
        );
        let status = reply["status"].as_str().expect("reply carries a status");
        assert!(
            matches!(status, "ok" | "shed" | "timeout" | "error"),
            "unstructured degradation: {reply:?}"
        );
        if status == "ok" {
            ok += 1;
        }
    }
    assert!(ok > 0, "no request succeeded after losing one shard");

    // Tail traffic: the survivor serves everything homed anywhere.
    let tail = client.roundtrip(&schedule_request(6, "HEFT", "{}"));
    assert_eq!(tail["status"].as_str(), Some("ok"), "{tail:?}");

    let stats = client.roundtrip(r#"{"op":"stats"}"#);
    let rerouted = stats["gateway"]["reroutes"].as_u64().unwrap_or(0);
    let shed = stats["gateway"]["sheds"].as_u64().unwrap_or(0);
    assert!(
        rerouted + shed > 0,
        "losing a shard left no trace in the gateway counters: {stats:?}"
    );

    topo.shutdown();
}
