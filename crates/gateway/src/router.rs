//! The routing core: parse → fingerprint → admit → forward → reply.
//!
//! Every request line flows through [`Router::handle_line`]:
//!
//! 1. **Parse** and validate the problem (bad input is answered at the
//!    gateway; it never costs a shard anything).
//! 2. **Route** by content fingerprint: `fingerprint(dag, system) % N`
//!    picks the home shard, so the shard's `ProblemInstance` cache and
//!    reply memo see every repeat of the same problem.
//! 3. **Coalesce**: identical requests already in flight are joined as
//!    single-flight followers and get the leader's reply byte-for-byte.
//! 4. **Admit**: a request whose deadline has already passed, or whose
//!    home shard is at its inflight budget, is shed — it never occupies a
//!    shard slot. The remaining deadline is rewritten into the forwarded
//!    request, so shards enforce the client's clock, not their default.
//! 5. **Forward** with failover: if the home shard is down, the next
//!    healthy shard serves the request (a `reroute`); if none can, the
//!    client gets a structured `error` — never a hang.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::RecvTimeoutError;
use parking_lot::Mutex;

use hetsched_core::{Delta, ProblemInstance};
use hetsched_dag::{Dag, Fingerprint};
use hetsched_platform::System;
use hetsched_serve::cache::LruCache;
use hetsched_serve::journal::Journal;
use hetsched_serve::metrics::RequestStatus;
use hetsched_serve::protocol::{
    GatewayTiming, HelloBody, Hop, InstanceSpec, JournalBody, Request, RequestOptions, Response,
    ScheduleBody, ScheduleManyBody, SpanRecord, TimingBody,
};
use hetsched_serve::wire::{self, WireScan};

use crate::backend::Backend;
use crate::metrics::{bump, read, GatewayMetrics, ShardSnapshot};
use crate::singleflight::{Flight, SingleFlight};
use crate::GatewayConfig;

/// How long a down shard is skipped before the next probe attempt.
const RETRY_AFTER: Duration = Duration::from_millis(500);
/// Extra wait granted to single-flight followers beyond their own
/// deadline, covering the leader's reply delivery.
const FOLLOWER_SLACK: Duration = Duration::from_millis(100);
/// Extra wait granted to a shard beyond the propagated deadline: the
/// shard answers `timeout` at the deadline itself and needs a moment to
/// deliver that reply before the gateway cuts the connection.
const SHARD_GRACE: Duration = Duration::from_millis(250);
/// Deadline for control-plane fan-outs (per-shard stats, shutdown).
const CONTROL_DEADLINE: Duration = Duration::from_secs(2);
/// Capacity of the gateway's raw-byte hot-line cache. Unlike the shard's
/// wire cache (coupled to its memo evictions), the gateway has no view
/// into shard cache churn, so this stays a small fixed window over the
/// hottest request lines; a stale entry can at worst re-serve a reply
/// whose schedule bytes are deterministic anyway (see `handle_line`).
const WIRE_CACHE_CAPACITY: usize = 256;

/// The gateway routing core. Cheap to share behind an `Arc`; every public
/// method takes `&self`.
pub struct Router {
    config: GatewayConfig,
    backends: Vec<Backend>,
    singleflight: SingleFlight,
    /// Raw-byte hot-line cache: wire digest → preserialized reply line.
    wire: Mutex<LruCache<Arc<String>>>,
    metrics: GatewayMetrics,
    journal: Journal,
    shutting: AtomicBool,
}

/// Per-request trace scratchpad. Every routed request carries one; all
/// recording methods are no-ops when the request has no trace context,
/// so the untraced hot path pays a branch and nothing else.
struct TraceScratch {
    trace_id: Option<String>,
    arrival: Instant,
    admission_us: u64,
    dedup: &'static str,
    backend_us: u64,
    attempts: u32,
    spans: Vec<SpanRecord>,
}

impl TraceScratch {
    fn new(trace_id: Option<String>, arrival: Instant) -> TraceScratch {
        TraceScratch {
            trace_id,
            arrival,
            admission_us: 0,
            dedup: "none",
            backend_us: 0,
            attempts: 0,
            spans: Vec::new(),
        }
    }

    /// µs between the request's arrival and `at` on this gateway's clock.
    fn off(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.arrival).as_micros() as u64
    }

    /// Record a span (no-op when untraced).
    fn span(&mut self, name: &str, start_us: u64, dur_us: u64, detail: impl Into<String>) {
        if let Some(id) = &self.trace_id {
            self.spans.push(SpanRecord {
                trace_id: id.clone(),
                name: name.to_string(),
                start_us,
                dur_us: dur_us.max(1),
                detail: detail.into(),
            });
        }
    }
}

impl Router {
    /// Build a router for the configured backends.
    ///
    /// # Errors
    /// `InvalidInput` if no backends are configured.
    pub fn new(config: GatewayConfig) -> io::Result<Router> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "gateway needs at least one backend shard",
            ));
        }
        let connect_timeout = Duration::from_millis(config.connect_timeout_ms.max(1));
        let backends = config
            .backends
            .iter()
            .map(|addr| Backend::new(addr.clone(), connect_timeout))
            .collect();
        Ok(Router {
            config,
            backends,
            singleflight: SingleFlight::new(),
            wire: Mutex::new(LruCache::new(WIRE_CACHE_CAPACITY)),
            metrics: GatewayMetrics::new(),
            journal: Journal::default(),
            shutting: AtomicBool::new(false),
        })
    }

    /// Gateway configuration.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Live gateway counters.
    pub fn metrics(&self) -> &GatewayMetrics {
        &self.metrics
    }

    /// Whether graceful shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting.load(Ordering::SeqCst)
    }

    /// Request graceful shutdown (front door stops accepting; in-flight
    /// requests drain).
    pub fn begin_shutdown(&self) {
        self.shutting.store(true, Ordering::SeqCst);
    }

    /// Handle one NDJSON request line, returning the shared reply line
    /// (no trailing newline). `arrival` anchors the request's deadline:
    /// pass the instant the line was read off the socket, so queueing
    /// inside the gateway counts against the client's budget.
    ///
    /// Repeat traffic takes the **wire fast path**: a shallow byte scan
    /// digests the line with its volatile fields (`deadline_ms`, `jobs`,
    /// trace context) cut out, and a digest already mapped to a
    /// preserialized reply answers without parsing the request or
    /// touching a shard. The cache only admits memo-hit-shaped replies
    /// ([`wire::reply_stable`]) — whose schedule bytes are deterministic
    /// for the digest — and a hit is refused when the request's own
    /// deadline has expired (the slow path would shed) or shutdown has
    /// begun (the slow path would refuse), so the fast path answers
    /// byte-for-byte what the slow path would have.
    pub fn handle_line(&self, line: &str, arrival: Instant) -> Arc<String> {
        let Some(scan) = wire::scan(line.as_bytes()) else {
            bump(&self.metrics.wire_fallbacks);
            return self.handle_line_slow(line, arrival, None);
        };
        if self.is_shutting_down() || !self.deadline_live(&scan, arrival) {
            bump(&self.metrics.wire_fallbacks);
            return self.handle_line_slow(line, arrival, None);
        }
        let hit = self.wire.lock().get(scan.digest).cloned();
        if let Some(reply) = hit {
            self.record_wire_hit(&scan, arrival);
            return reply;
        }
        bump(&self.metrics.wire_misses);
        self.handle_line_slow(line, arrival, Some(scan.digest))
    }

    /// Whether the scanned request's deadline has not yet expired on
    /// this gateway's clock.
    fn deadline_live(&self, scan: &WireScan, arrival: Instant) -> bool {
        let deadline =
            Duration::from_millis(scan.deadline_ms.unwrap_or(self.config.default_deadline_ms));
        Instant::now() < arrival + deadline
    }

    /// Account a wire-cache hit with the same SLO bookkeeping the slow
    /// path performs in [`Router::finish_route`]. The per-shard forward
    /// counter is deliberately untouched: no shard served this request.
    fn record_wire_hit(&self, scan: &WireScan, arrival: Instant) {
        bump(&self.metrics.requests);
        bump(&self.metrics.wire_hits);
        let elapsed = arrival.elapsed();
        self.metrics.latency.record(RequestStatus::Success, elapsed);
        self.metrics
            .op_outcomes
            .bump(scan.op.as_str(), RequestStatus::Success);
        if let Some(d) = scan.deadline_ms {
            self.metrics
                .deadline_slack
                .record(Duration::from_millis(d).saturating_sub(elapsed));
        }
    }

    /// The full parse-and-route path. `store` carries the wire digest of
    /// a scanned-but-missed line; a stable reply is written back under it.
    fn handle_line_slow(&self, line: &str, arrival: Instant, store: Option<u64>) -> Arc<String> {
        let reply = match Request::parse(line) {
            Err(e) => {
                bump(&self.metrics.errors);
                Arc::new(Response::error(format!("bad request: {e}")).to_line())
            }
            Ok(Request::Hello) => Arc::new(Response::hello(self.hello_body()).to_line()),
            Ok(Request::Stats) => Arc::new(self.stats_line()),
            Ok(Request::Metrics) => Arc::new(Response::metrics(self.metrics_text()).to_line()),
            Ok(Request::Journal) => Arc::new(
                Response::journal(JournalBody {
                    source: "gateway".to_string(),
                    spans: self.journal.drain(),
                })
                .to_line(),
            ),
            Ok(Request::Shutdown) => Arc::new(self.shutdown_line()),
            Ok(req) => self.route(req, arrival),
        };
        if let Some(digest) = store {
            if wire::reply_stable(reply.as_bytes()) {
                self.wire.lock().insert(digest, reply.clone());
            }
        }
        reply
    }

    /// Identification payload for the `hello` op.
    fn hello_body(&self) -> HelloBody {
        HelloBody {
            service: "hetsched-gateway".to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            workers: self.config.router_threads,
            queue_capacity: self.config.queue_capacity,
        }
    }

    /// Route one `schedule`/`portfolio`/`patch` request: record the SLO
    /// outcome and, for traced requests, the gateway-side spans and the
    /// `timing.gateway` block around the actual routing in
    /// [`Router::route_inner`].
    fn route(&self, req: Request, arrival: Instant) -> Arc<String> {
        if self.is_shutting_down() {
            return Arc::new(Response::ShuttingDown.to_line());
        }
        bump(&self.metrics.requests);
        let (op, deadline_ms, trace_id) = {
            let options = match &req {
                Request::Schedule { options, .. }
                | Request::Portfolio { options, .. }
                | Request::ScheduleMany { options, .. }
                | Request::Patch { options, .. } => options,
                // `handle_line` only routes the scheduling ops.
                _ => unreachable!("route() called with a control op"),
            };
            let op = match &req {
                Request::Portfolio { .. } => "portfolio",
                Request::ScheduleMany { .. } => "schedule_many",
                Request::Patch { .. } => "patch",
                _ => "schedule",
            };
            (
                op,
                options.deadline_ms,
                options.trace_ctx.as_ref().map(|c| c.trace_id.clone()),
            )
        };
        let mut scratch = TraceScratch::new(trace_id, arrival);
        let reply = self.route_inner(&req, deadline_ms, arrival, &mut scratch);
        self.finish_route(reply, op, deadline_ms, arrival, scratch)
    }

    /// The routing body proper: admission, single-flight, forwarding.
    fn route_inner(
        &self,
        req: &Request,
        deadline_ms: Option<u64>,
        arrival: Instant,
        scratch: &mut TraceScratch,
    ) -> Arc<String> {
        let deadline =
            Duration::from_millis(deadline_ms.unwrap_or(self.config.default_deadline_ms));
        let deadline_at = arrival + deadline;
        // Admission control runs *before* single-flight: a request whose
        // deadline has already expired — `deadline_ms` of 0 included — is
        // shed here, leaders and followers alike. (Checking only inside
        // the leader's forward loop, as the gateway used to, let expired
        // followers join a flight and wait out the follower slack for a
        // reply that could never arrive in time, and answered `timeout`
        // or `error` instead of the honest `shed`.)
        if Instant::now() >= deadline_at {
            bump(&self.metrics.sheds);
            return Arc::new(
                Response::shed(
                    "deadline expired before dispatch; the request never reached a shard",
                )
                .to_line(),
            );
        }
        // A batch fans out to *several* home shards; it has its own
        // routing body and only shares admission and single-flight.
        if let Request::ScheduleMany {
            instances,
            algorithm,
            options,
        } = req
        {
            return self.route_many(
                instances,
                algorithm,
                options,
                deadline,
                deadline_at,
                scratch,
            );
        }
        let options = match req {
            Request::Schedule { options, .. }
            | Request::Portfolio { options, .. }
            | Request::Patch { options, .. } => options,
            _ => unreachable!("route_inner() called with a control op"),
        };

        let (home, key) = match req {
            Request::Patch {
                parent,
                algorithm,
                deltas,
                options,
            } => {
                // A patch routes to its *parent's* home shard — the one
                // whose instance cache can resolve the parent fingerprint.
                let Some(parent_fp) = parse_parent(parent) else {
                    bump(&self.metrics.errors);
                    return Arc::new(
                        Response::error(format!(
                            "unknown_parent: `{parent}` is not a 16-hex-digit problem fingerprint \
                             (use the `problem` field of an earlier schedule response)"
                        ))
                        .to_line(),
                    );
                };
                (
                    (parent_fp % self.backends.len() as u64) as usize,
                    patch_dedup_key(parent_fp, algorithm, deltas, options),
                )
            }
            _ => {
                let (dag_spec, system_spec, alg_names) = match req {
                    Request::Schedule {
                        dag,
                        system,
                        algorithm,
                        ..
                    } => (dag, system, std::slice::from_ref(algorithm).to_vec()),
                    Request::Portfolio {
                        dag,
                        system,
                        algorithms,
                        ..
                    } => (dag, system, algorithms.clone()),
                    _ => unreachable!("patch is handled above"),
                };
                // Validate at the front door; a bad problem never costs a
                // shard.
                let dag = match dag_spec.build() {
                    Ok(d) => d,
                    Err(e) => {
                        bump(&self.metrics.errors);
                        return Arc::new(Response::error(format!("invalid dag: {e}")).to_line());
                    }
                };
                let sys = match system_spec.build(&dag) {
                    Ok(s) => s,
                    Err(e) => {
                        bump(&self.metrics.errors);
                        return Arc::new(Response::error(format!("invalid system: {e}")).to_line());
                    }
                };
                (
                    (ProblemInstance::content_fingerprint(&dag, &sys) % self.backends.len() as u64)
                        as usize,
                    dedup_key(req, &dag, &sys, &alg_names, options),
                )
            }
        };
        scratch.admission_us = scratch.off(Instant::now());
        scratch.span("admission", 0, scratch.admission_us, "");

        self.coalesce(key, deadline, deadline_at, scratch, |router, scratch| {
            router.lead(req, home, deadline_at, scratch)
        })
    }

    /// Single-flight coalescing around a leader body: followers wait for
    /// the leader's reply (plus slack); the leader runs `lead_fn` and
    /// completes the flight with the *un-injected* reply — every
    /// requester, leader and followers alike, injects its own gateway
    /// timing into its own clone, so a follower's `timing.gateway`
    /// reflects its wait, not the leader's round trip. Leader and
    /// followers share the same `Arc`'d reply bytes — no follower ever
    /// copies the payload.
    fn coalesce(
        &self,
        key: u64,
        deadline: Duration,
        deadline_at: Instant,
        scratch: &mut TraceScratch,
        lead_fn: impl FnOnce(&Self, &mut TraceScratch) -> String,
    ) -> Arc<String> {
        match self.singleflight.join(key) {
            Flight::Follower(rx) => {
                scratch.dedup = "follower";
                let wait_start = Instant::now();
                let wait = deadline_at.saturating_duration_since(wait_start) + FOLLOWER_SLACK;
                let outcome = rx.recv_timeout(wait);
                let waited_us = wait_start.elapsed().as_micros() as u64;
                scratch.backend_us = waited_us;
                scratch.span("dedup_wait", scratch.off(wait_start), waited_us, "");
                match outcome {
                    Ok(reply) => {
                        bump(&self.metrics.dedup_hits);
                        reply
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        bump(&self.metrics.timeouts);
                        Arc::new(
                            Response::Timeout {
                                message: format!(
                                    "deadline of {} ms exceeded waiting for an identical in-flight request",
                                    deadline.as_millis()
                                ),
                            }
                            .to_line(),
                        )
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        bump(&self.metrics.errors);
                        Arc::new(
                            Response::error("in-flight leader vanished before replying").to_line(),
                        )
                    }
                }
            }
            Flight::Leader => {
                scratch.dedup = "leader";
                let reply = Arc::new(lead_fn(self, scratch));
                self.singleflight.complete(key, &reply);
                reply
            }
        }
    }

    /// Route one `schedule_many` batch: validate every instance at the
    /// front door, group the instances by their *own* home shards
    /// (`fingerprint(dag, system) % N`, the same placement standalone
    /// `schedule` requests get, so batches and singles share shard
    /// caches), forward one sub-batch per shard through the ordinary
    /// failover path, and reassemble the entries **in request order**.
    /// The whole batch is one single-flight key, so identical concurrent
    /// batches coalesce.
    fn route_many(
        &self,
        instances: &[InstanceSpec],
        algorithm: &str,
        options: &RequestOptions,
        deadline: Duration,
        deadline_at: Instant,
        scratch: &mut TraceScratch,
    ) -> Arc<String> {
        if instances.is_empty() {
            bump(&self.metrics.errors);
            return Arc::new(
                Response::error("schedule_many requires at least one instance").to_line(),
            );
        }
        let n = self.backends.len();
        let mut homes = Vec::with_capacity(instances.len());
        let mut content_fps = Vec::with_capacity(instances.len());
        for (i, spec) in instances.iter().enumerate() {
            let dag = match spec.dag.build() {
                Ok(d) => d,
                Err(e) => {
                    bump(&self.metrics.errors);
                    return Arc::new(
                        Response::error(format!("invalid dag (instance {i}): {e}")).to_line(),
                    );
                }
            };
            let sys = match spec.system.build(&dag) {
                Ok(s) => s,
                Err(e) => {
                    bump(&self.metrics.errors);
                    return Arc::new(
                        Response::error(format!("invalid system (instance {i}): {e}")).to_line(),
                    );
                }
            };
            let cfp = ProblemInstance::content_fingerprint(&dag, &sys);
            homes.push((cfp % n as u64) as usize);
            content_fps.push(cfp);
        }
        let key = many_dedup_key(&content_fps, algorithm, options);
        scratch.admission_us = scratch.off(Instant::now());
        scratch.span("admission", 0, scratch.admission_us, "");

        self.coalesce(key, deadline, deadline_at, scratch, |router, scratch| {
            router.lead_many(instances, algorithm, options, &homes, deadline_at, scratch)
        })
    }

    /// Forward a batch as the single-flight leader: one `schedule_many`
    /// sub-request per distinct home shard (in order of first appearance),
    /// each through [`Router::lead`]'s admission/failover loop, then
    /// scatter the sub-replies back into request order. Any non-`ok`
    /// sub-reply answers the whole batch — partial batches would silently
    /// drop instances, and the client can always retry (the completed
    /// members are already cached on their shards).
    fn lead_many(
        &self,
        instances: &[InstanceSpec],
        algorithm: &str,
        options: &RequestOptions,
        homes: &[usize],
        deadline_at: Instant,
        scratch: &mut TraceScratch,
    ) -> String {
        let mut shard_order: Vec<usize> = Vec::new();
        for &h in homes {
            if !shard_order.contains(&h) {
                shard_order.push(h);
            }
        }
        let mut entries: Vec<Option<ScheduleBody>> = vec![None; instances.len()];
        let (mut cached, mut computed) = (0usize, 0usize);
        for home in shard_order {
            let member_idx: Vec<usize> =
                (0..instances.len()).filter(|&i| homes[i] == home).collect();
            let sub_req = Request::ScheduleMany {
                instances: member_idx.iter().map(|&i| instances[i].clone()).collect(),
                algorithm: algorithm.to_string(),
                options: options.clone(),
            };
            let reply = self.lead(&sub_req, home, deadline_at, scratch);
            let Ok(Response::Ok {
                many: Some(body), ..
            }) = serde_json::from_str::<Response>(&reply)
            else {
                // busy / shed / timeout / error — or an `ok` without a
                // batch payload, which a conforming shard never sends.
                return reply;
            };
            if body.entries.len() != member_idx.len() {
                bump(&self.metrics.errors);
                return Response::error(format!(
                    "shard answered {} entries for a {}-instance sub-batch",
                    body.entries.len(),
                    member_idx.len()
                ))
                .to_line();
            }
            cached += body.cached;
            computed += body.computed;
            for (&i, entry) in member_idx.iter().zip(body.entries) {
                entries[i] = Some(entry);
            }
        }
        let entries: Vec<ScheduleBody> = entries
            .into_iter()
            .map(|e| e.expect("every instance belongs to exactly one sub-batch"))
            .collect();
        Response::many(ScheduleManyBody {
            entries,
            cached,
            computed,
        })
        .to_line()
    }

    /// Record the request's SLO outcome, journal its spans, and inject
    /// the `timing.gateway` block into traced `ok` replies.
    fn finish_route(
        &self,
        reply: Arc<String>,
        op: &str,
        deadline_ms: Option<u64>,
        arrival: Instant,
        mut scratch: TraceScratch,
    ) -> Arc<String> {
        let elapsed = arrival.elapsed();
        let Some(status) = status_of_line(&reply) else {
            return reply; // shutting_down: not an SLO outcome
        };
        self.metrics.latency.record(status, elapsed);
        self.metrics.op_outcomes.bump(op, status);
        if status == RequestStatus::Success {
            if let Some(d) = deadline_ms {
                self.metrics
                    .deadline_slack
                    .record(Duration::from_millis(d).saturating_sub(elapsed));
            }
        }
        let Some(trace_id) = scratch.trace_id.clone() else {
            return reply;
        };
        let total_us = (elapsed.as_micros() as u64).max(1);
        scratch.span("request", 0, total_us, scratch.dedup);
        let timing = GatewayTiming {
            total_us,
            admission_us: scratch.admission_us,
            dedup: scratch.dedup.to_string(),
            backend_us: scratch.backend_us,
            attempts: scratch.attempts,
        };
        self.journal.extend(scratch.spans);
        if status == RequestStatus::Success {
            Arc::new(inject_gateway_timing(&reply, &trace_id, &timing))
        } else {
            reply
        }
    }

    /// Forward a request as the single-flight leader: admission control,
    /// deadline propagation, home-shard affinity with failover.
    fn lead(
        &self,
        req: &Request,
        home: usize,
        deadline_at: Instant,
        scratch: &mut TraceScratch,
    ) -> String {
        let n = self.backends.len();
        let mut budget_full = false;
        let mut last_error: Option<io::Error> = None;
        for i in 0..n {
            let backend = &self.backends[(home + i) % n];
            if !backend.available(RETRY_AFTER) {
                continue;
            }
            let remaining = deadline_at.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                // Shed, don't forward: the reply could never arrive in
                // time, so the request must not occupy a shard slot.
                bump(&self.metrics.sheds);
                return Response::shed(
                    "deadline expired before dispatch; the request never reached a shard",
                )
                .to_line();
            }
            let Some(_slot) = backend.try_reserve(self.config.inflight_per_shard) else {
                budget_full = true;
                if i == 0 {
                    // The home shard is saturated. Shed rather than spill:
                    // spilling would break cache affinity exactly when the
                    // system is overloaded and the caches matter most.
                    break;
                }
                continue;
            };
            let sent_at = Instant::now();
            let line = forward_line(req, remaining, scratch.off(sent_at));
            scratch.attempts += 1;
            let outcome = backend.round_trip(&line, deadline_at + SHARD_GRACE);
            let round_trip_us = sent_at.elapsed().as_micros() as u64;
            scratch.backend_us += round_trip_us;
            match outcome {
                Ok(reply) => {
                    scratch.span(
                        "backend",
                        scratch.off(sent_at),
                        round_trip_us,
                        backend.addr(),
                    );
                    bump(&self.metrics.forwarded);
                    if i > 0 {
                        bump(&self.metrics.reroutes);
                    }
                    return reply;
                }
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    // The shard is alive but slow; its computation keeps
                    // running and will populate its caches, so this is a
                    // timeout, not a failover.
                    scratch.span(
                        "backend",
                        scratch.off(sent_at),
                        round_trip_us,
                        format!("{} timeout", backend.addr()),
                    );
                    bump(&self.metrics.timeouts);
                    return Response::Timeout {
                        message: format!(
                            "shard {} did not reply within the deadline; an identical retry may hit its cache",
                            backend.addr()
                        ),
                    }
                    .to_line();
                }
                Err(e) => {
                    scratch.span(
                        "backend",
                        scratch.off(sent_at),
                        round_trip_us,
                        format!("{} error: {e}", backend.addr()),
                    );
                    bump(&self.metrics.shard_errors);
                    last_error = Some(e);
                    continue;
                }
            }
        }
        if budget_full {
            bump(&self.metrics.sheds);
            Response::shed(format!(
                "shard inflight budget exhausted ({} per shard)",
                self.config.inflight_per_shard
            ))
            .to_line()
        } else {
            bump(&self.metrics.errors);
            let detail = match last_error {
                Some(e) => format!("no shard could serve the request: {e}"),
                None => "no healthy shard available".to_string(),
            };
            Response::error(detail).to_line()
        }
    }

    /// Aggregate stats: gateway counters plus a live `stats` fan-out to
    /// every shard (`null` for shards that cannot be reached).
    fn stats_line(&self) -> String {
        let shard_stats: Vec<serde_json::Value> = self
            .backends
            .iter()
            .map(|b| {
                b.round_trip(r#"{"op":"stats"}"#, Instant::now() + CONTROL_DEADLINE)
                    .ok()
                    .and_then(|reply| serde_json::from_str::<serde_json::Value>(&reply).ok())
                    .map(|v| v["stats"].clone())
                    .unwrap_or(serde_json::Value::Null)
            })
            .collect();
        let m = &self.metrics;
        let gateway = serde_json::json!({
            "requests": read(&m.requests),
            "forwarded": read(&m.forwarded),
            "dedup_hits": read(&m.dedup_hits),
            "sheds": read(&m.sheds),
            "timeouts": read(&m.timeouts),
            "reroutes": read(&m.reroutes),
            "shard_errors": read(&m.shard_errors),
            "errors": read(&m.errors),
            "wire_hits": read(&m.wire_hits),
            "wire_misses": read(&m.wire_misses),
            "wire_fallbacks": read(&m.wire_fallbacks),
            "inflight_keys": self.singleflight.len(),
            "latency_samples": m.latency.success().count(),
            "latency_p50_us": m.latency.success().quantile_us(0.50),
            "latency_p99_us": m.latency.success().quantile_us(0.99),
            "shards": self.snapshots(),
        });
        serde_json::to_string(&serde_json::json!({
            "status": "ok",
            "gateway": gateway,
            "shards": shard_stats,
        }))
        .expect("stats serialization is infallible")
    }

    /// Gateway metric families in Prometheus text exposition format.
    fn metrics_text(&self) -> String {
        self.metrics.render_prometheus(&self.snapshots())
    }

    fn snapshots(&self) -> Vec<ShardSnapshot> {
        self.backends.iter().map(Backend::snapshot).collect()
    }

    /// Acknowledge shutdown, optionally propagating it to every shard so
    /// one client request winds the whole deployment down.
    fn shutdown_line(&self) -> String {
        self.begin_shutdown();
        if self.config.propagate_shutdown {
            for b in &self.backends {
                let _ = b.round_trip(r#"{"op":"shutdown"}"#, Instant::now() + CONTROL_DEADLINE);
            }
        }
        Response::ShuttingDown.to_line()
    }
}

/// Dedup key for single-flight coalescing: the op kind, the (DAG, system)
/// content, the algorithm list, and the response-shaping options. Mirrors
/// [`hetsched_serve::request_fingerprint`]'s exclusions: `deadline_ms`
/// bounds the wait, `jobs` changes speed — neither changes the reply, so
/// requests differing only in them coalesce.
fn dedup_key(
    req: &Request,
    dag: &Dag,
    sys: &System,
    alg_names: &[String],
    options: &RequestOptions,
) -> u64 {
    let mut fp = Fingerprint::new();
    fp.tag("gateway-op");
    fp.push_str(match req {
        Request::Portfolio { .. } => "portfolio",
        _ => "schedule",
    });
    dag.fold_fingerprint(&mut fp);
    sys.fold_fingerprint(&mut fp);
    fp.tag("algorithms");
    fp.push_u64(alg_names.len() as u64);
    for name in alg_names {
        fp.push_str(name);
    }
    fp.tag("options");
    fp.push_u8(options.simulate as u8);
    fp.push_u8(options.debug_panic as u8);
    fp.push_u64(options.debug_sleep_ms.unwrap_or(0));
    fp.push_u8(options.trace as u8);
    fp.finish()
}

/// Dedup key for `schedule_many` batches: the per-instance content
/// fingerprints **in request order**, the algorithm, and the
/// response-shaping options. The op tag differs from `dedup_key`'s, so a
/// one-instance batch never coalesces with the equivalent standalone
/// `schedule` (their replies have different shapes). Order matters by
/// design: the reply is ordered, so a permuted batch is a different
/// request.
fn many_dedup_key(content_fps: &[u64], algorithm: &str, options: &RequestOptions) -> u64 {
    let mut fp = Fingerprint::new();
    fp.tag("gateway-op");
    fp.push_str("schedule_many");
    fp.tag("instances");
    fp.push_u64(content_fps.len() as u64);
    for &c in content_fps {
        fp.push_u64(c);
    }
    fp.tag("algorithms");
    fp.push_u64(1);
    fp.push_str(algorithm);
    fp.tag("options");
    fp.push_u8(options.simulate as u8);
    fp.push_u8(options.debug_panic as u8);
    fp.push_u64(options.debug_sleep_ms.unwrap_or(0));
    fp.push_u8(options.trace as u8);
    fp.finish()
}

/// Parse a `patch` parent key: exactly 16 hex digits, as the `problem`
/// field of a schedule response carries it.
fn parse_parent(parent: &str) -> Option<u64> {
    if parent.len() != 16 || !parent.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(parent, 16).ok()
}

/// Dedup key for `patch` requests: the parent fingerprint, the algorithm,
/// the deltas' canonical wire form, and the response-shaping options. A
/// patch never hashes the (DAG, system) content, and the op tag differs
/// from `dedup_key`'s — so a patch can never coalesce with its parent's
/// full request, not even when its deltas are a no-op. (Coalescing them
/// would hand the parent's reply to a client that asked for the patched
/// problem.)
fn patch_dedup_key(
    parent_fp: u64,
    algorithm: &str,
    deltas: &[Delta],
    options: &RequestOptions,
) -> u64 {
    let mut fp = Fingerprint::new();
    fp.tag("gateway-op");
    fp.push_str("patch");
    fp.push_u64(parent_fp);
    fp.tag("algorithms");
    fp.push_u64(1);
    fp.push_str(algorithm);
    fp.tag("deltas");
    fp.push_str(&serde_json::to_string(&deltas).expect("delta serialization is infallible"));
    fp.tag("options");
    fp.push_u8(options.simulate as u8);
    fp.push_u8(options.debug_panic as u8);
    fp.push_u64(options.debug_sleep_ms.unwrap_or(0));
    fp.push_u8(options.trace as u8);
    fp.finish()
}

/// Re-serialize a request with its deadline rewritten to the time
/// actually remaining, so the shard enforces the client's clock (minus
/// gateway queueing) rather than its own default. A traced request also
/// gets a `gateway` hop stamp (`sent_at_us` on the gateway's clock,
/// relative to the request's arrival) appended to its trace context.
fn forward_line(req: &Request, remaining: Duration, sent_at_us: u64) -> String {
    let remaining_ms = (remaining.as_millis() as u64).max(1);
    let mut rewritten = req.clone();
    match &mut rewritten {
        Request::Schedule { options, .. }
        | Request::Portfolio { options, .. }
        | Request::ScheduleMany { options, .. }
        | Request::Patch { options, .. } => {
            options.deadline_ms = Some(remaining_ms);
            if let Some(ctx) = options.trace_ctx.as_mut() {
                ctx.hops.push(Hop {
                    tier: "gateway".to_string(),
                    sent_at_us,
                });
            }
        }
        _ => {}
    }
    serde_json::to_string(&rewritten).expect("request serialization is infallible")
}

/// Classify a reply line by its leading `status` field. Relies on serde's
/// tag-first serialization, so no parse is needed on the hot path.
/// `None` for `shutting_down` (not an SLO outcome) and for anything
/// unrecognizable.
fn status_of_line(line: &str) -> Option<RequestStatus> {
    let rest = line.strip_prefix("{\"status\":\"")?;
    if rest.starts_with("ok\"") {
        Some(RequestStatus::Success)
    } else if rest.starts_with("busy\"") || rest.starts_with("shed\"") {
        Some(RequestStatus::Shed)
    } else if rest.starts_with("timeout\"") {
        Some(RequestStatus::Timeout)
    } else if rest.starts_with("error\"") {
        Some(RequestStatus::Error)
    } else {
        None
    }
}

/// Insert the gateway's timing into a traced `ok` reply. The round trip
/// goes through the typed [`Response`] — not `serde_json::Value`, which
/// would reorder keys and break the `{"status":"ok"` prefix contract —
/// so everything but the `timing.gateway` section is re-emitted
/// byte-for-byte. The shard's serve breakdown and hop stamps are
/// preserved; a reply that somehow reached `ok` without a shard timing
/// block gets a fresh one with the gateway section only. Falls back to
/// the untouched reply if it does not parse (it was produced by
/// `Response::to_line`, so it always should).
fn inject_gateway_timing(reply: &str, trace_id: &str, timing: &GatewayTiming) -> String {
    let Ok(mut resp) = serde_json::from_str::<Response>(reply) else {
        return reply.to_string();
    };
    let Response::Ok {
        timing: block_slot, ..
    } = &mut resp
    else {
        return reply.to_string();
    };
    let block = block_slot.get_or_insert_with(|| TimingBody {
        trace_id: trace_id.to_string(),
        hops: Vec::new(),
        serve: None,
        gateway: None,
    });
    block.gateway = Some(timing.clone());
    resp.to_line()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_parts() -> (Dag, System, Request) {
        let line = r#"{"op":"schedule","dag":{"tasks":[{"weight":1.0},{"weight":2.0}],"edges":[{"src":0,"dst":1,"data":1.5}]},"system":{"processors":{"kind":"homogeneous","count":2},"network":{"topology":"fully_connected","bandwidth":1.0}},"algorithm":"HEFT","options":{"deadline_ms":5000,"jobs":4}}"#;
        let req = Request::parse(line).unwrap();
        let Request::Schedule { dag, system, .. } = &req else {
            unreachable!()
        };
        let dag = dag.build().unwrap();
        let sys = system.build(&dag).unwrap();
        (dag, sys, req)
    }

    #[test]
    fn dedup_key_ignores_deadline_and_jobs_but_not_content() {
        let (dag, sys, req) = small_parts();
        let base = RequestOptions::default();
        let k1 = dedup_key(&req, &dag, &sys, &["HEFT".to_string()], &base);
        let with_deadline = RequestOptions {
            deadline_ms: Some(10),
            jobs: Some(8),
            ..base.clone()
        };
        assert_eq!(
            k1,
            dedup_key(&req, &dag, &sys, &["HEFT".to_string()], &with_deadline),
            "deadline/jobs must not split flights"
        );
        let traced = RequestOptions {
            trace: true,
            ..base.clone()
        };
        assert_ne!(
            k1,
            dedup_key(&req, &dag, &sys, &["HEFT".to_string()], &traced),
            "trace changes the reply, so it must split flights"
        );
        assert_ne!(
            k1,
            dedup_key(&req, &dag, &sys, &["CPOP".to_string()], &base),
            "different algorithm must split flights"
        );
    }

    #[test]
    fn forward_line_rewrites_only_the_deadline() {
        let (_, _, req) = small_parts();
        let line = forward_line(&req, Duration::from_millis(1234), 0);
        let back = Request::parse(&line).unwrap();
        let Request::Schedule {
            algorithm, options, ..
        } = back
        else {
            panic!("op changed");
        };
        assert_eq!(algorithm, "HEFT");
        assert_eq!(options.deadline_ms, Some(1234));
        assert_eq!(options.jobs, Some(4), "other options must survive");
    }

    #[test]
    fn router_requires_backends() {
        assert!(Router::new(GatewayConfig::default()).is_err());
    }

    #[test]
    fn unreachable_backends_give_structured_error_not_hang() {
        let cfg = GatewayConfig {
            backends: vec!["127.0.0.1:1".to_string()],
            connect_timeout_ms: 100,
            ..GatewayConfig::default()
        };
        let router = Router::new(cfg).unwrap();
        let line = r#"{"op":"schedule","dag":{"tasks":[{"weight":1.0}],"edges":[]},"system":{"processors":{"kind":"homogeneous","count":1},"network":{"topology":"fully_connected","bandwidth":1.0}},"algorithm":"HEFT","options":{"deadline_ms":2000}}"#;
        let started = Instant::now();
        let reply = router.handle_line(line, Instant::now());
        assert!(started.elapsed() < Duration::from_secs(2), "must not hang");
        let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["status"].as_str(), Some("error"), "{reply}");
        assert_eq!(read(&router.metrics().shard_errors), 1);

        // Malformed lines are answered at the gateway.
        let bad = router.handle_line("not json", Instant::now());
        let v: serde_json::Value = serde_json::from_str(&bad).unwrap();
        assert_eq!(v["status"].as_str(), Some("error"));
    }

    #[test]
    fn expired_deadline_is_shed_before_dispatch() {
        let cfg = GatewayConfig {
            backends: vec!["127.0.0.1:1".to_string()],
            ..GatewayConfig::default()
        };
        let router = Router::new(cfg).unwrap();
        let line = r#"{"op":"schedule","dag":{"tasks":[{"weight":1.0}],"edges":[]},"system":{"processors":{"kind":"homogeneous","count":1},"network":{"topology":"fully_connected","bandwidth":1.0}},"algorithm":"HEFT","options":{"deadline_ms":10}}"#;
        // Arrival far enough in the past that the deadline already passed.
        let arrival = Instant::now() - Duration::from_millis(100);
        let reply = router.handle_line(line, arrival);
        let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["status"].as_str(), Some("shed"), "{reply}");
        assert!(
            v["message"]
                .as_str()
                .unwrap()
                .contains("expired before dispatch"),
            "{reply}"
        );
        assert_eq!(read(&router.metrics().sheds), 1);
        assert_eq!(
            read(&router.metrics().shard_errors),
            0,
            "a shed request must never touch a shard"
        );
    }

    #[test]
    fn zero_deadline_is_shed_before_joining_a_flight() {
        // `deadline_ms: 0` means "already expired at arrival". The shed
        // must happen before single-flight: the request must not become a
        // leader (occupying the flight slot) or a follower (waiting out
        // the follower slack for a reply that cannot arrive in time).
        let cfg = GatewayConfig {
            backends: vec!["127.0.0.1:1".to_string()],
            ..GatewayConfig::default()
        };
        let router = Router::new(cfg).unwrap();
        let line = r#"{"op":"schedule","dag":{"tasks":[{"weight":1.0}],"edges":[]},"system":{"processors":{"kind":"homogeneous","count":1},"network":{"topology":"fully_connected","bandwidth":1.0}},"algorithm":"HEFT","options":{"deadline_ms":0}}"#;
        for expected_sheds in 1..=2 {
            let started = Instant::now();
            let reply = router.handle_line(line, Instant::now());
            assert!(
                started.elapsed() < FOLLOWER_SLACK,
                "a zero-deadline request must be shed immediately, not waited out"
            );
            let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
            assert_eq!(v["status"].as_str(), Some("shed"), "{reply}");
            assert!(
                v["message"]
                    .as_str()
                    .unwrap()
                    .contains("expired before dispatch"),
                "{reply}"
            );
            assert_eq!(read(&router.metrics().sheds), expected_sheds);
        }
        assert_eq!(
            router.singleflight.len(),
            0,
            "a shed request must never register as a flight leader"
        );
        assert_eq!(read(&router.metrics().shard_errors), 0);
    }

    #[test]
    fn expired_patch_is_shed_not_errored() {
        let cfg = GatewayConfig {
            backends: vec!["127.0.0.1:1".to_string()],
            ..GatewayConfig::default()
        };
        let router = Router::new(cfg).unwrap();
        let line = r#"{"op":"patch","parent":"0123456789abcdef","algorithm":"HEFT","deltas":[],"options":{"deadline_ms":0}}"#;
        let reply = router.handle_line(line, Instant::now());
        let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["status"].as_str(), Some("shed"), "{reply}");
        assert_eq!(read(&router.metrics().sheds), 1);
    }

    #[test]
    fn patch_with_malformed_parent_is_answered_at_the_gateway() {
        let cfg = GatewayConfig {
            backends: vec!["127.0.0.1:1".to_string()],
            ..GatewayConfig::default()
        };
        let router = Router::new(cfg).unwrap();
        for parent in ["nope", "abc", "0123456789abcdef0"] {
            let line =
                format!(r#"{{"op":"patch","parent":"{parent}","algorithm":"HEFT","deltas":[]}}"#);
            let reply = router.handle_line(&line, Instant::now());
            let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
            assert_eq!(v["status"].as_str(), Some("error"), "{reply}");
            assert!(
                v["message"].as_str().unwrap().starts_with("unknown_parent"),
                "{reply}"
            );
        }
        assert_eq!(
            read(&router.metrics().shard_errors),
            0,
            "malformed parents must never touch a shard"
        );
    }

    #[test]
    fn patch_key_never_coalesces_with_the_parents_schedule_key() {
        let (dag, sys, req) = small_parts();
        let base = RequestOptions::default();
        let parent_fp = ProblemInstance::content_fingerprint(&dag, &sys);
        let schedule_key = dedup_key(&req, &dag, &sys, &["HEFT".to_string()], &base);
        // Even a delta-free patch of the same problem under the same
        // algorithm must be its own flight.
        let patch_key = patch_dedup_key(parent_fp, "HEFT", &[], &base);
        assert_ne!(patch_key, schedule_key);
        // Different deltas split patches from each other; identical
        // patches coalesce.
        let d1 = vec![Delta::TaskWeight {
            task: hetsched_dag::TaskId(0),
            weight: 2.0,
        }];
        let k1 = patch_dedup_key(parent_fp, "HEFT", &d1, &base);
        assert_ne!(k1, patch_key);
        assert_eq!(k1, patch_dedup_key(parent_fp, "HEFT", &d1.clone(), &base));
        // Deadline and jobs still never split flights.
        let with_deadline = RequestOptions {
            deadline_ms: Some(10),
            jobs: Some(8),
            ..base.clone()
        };
        assert_eq!(k1, patch_dedup_key(parent_fp, "HEFT", &d1, &with_deadline));
    }

    #[test]
    fn many_dedup_key_is_order_sensitive_and_ignores_deadline() {
        let base = RequestOptions::default();
        let fps = [11u64, 22, 33];
        let k = many_dedup_key(&fps, "HEFT", &base);
        assert_eq!(k, many_dedup_key(&[11, 22, 33], "HEFT", &base));
        assert_ne!(
            k,
            many_dedup_key(&[22, 11, 33], "HEFT", &base),
            "the reply is ordered, so a permuted batch is a different request"
        );
        assert_ne!(k, many_dedup_key(&fps, "CPOP", &base));
        let with_deadline = RequestOptions {
            deadline_ms: Some(10),
            jobs: Some(8),
            ..base.clone()
        };
        assert_eq!(k, many_dedup_key(&fps, "HEFT", &with_deadline));
        // a one-instance batch never coalesces with the standalone op
        let (dag, sys, req) = small_parts();
        let single = dedup_key(&req, &dag, &sys, &["HEFT".to_string()], &base);
        let one = many_dedup_key(
            &[ProblemInstance::content_fingerprint(&dag, &sys)],
            "HEFT",
            &base,
        );
        assert_ne!(single, one);
    }

    #[test]
    fn forward_line_rewrites_schedule_many_deadline() {
        let line = r#"{"op":"schedule_many","instances":[{"dag":{"tasks":[{"weight":1.0}],"edges":[]},"system":{"processors":{"kind":"homogeneous","count":2},"network":{"topology":"fully_connected","bandwidth":1.0}}}],"algorithm":"HEFT","options":{"jobs":2}}"#;
        let req = Request::parse(line).unwrap();
        let out = forward_line(&req, Duration::from_millis(321), 0);
        let back = Request::parse(&out).unwrap();
        let Request::ScheduleMany {
            instances, options, ..
        } = back
        else {
            panic!("op changed");
        };
        assert_eq!(instances.len(), 1);
        assert_eq!(options.deadline_ms, Some(321));
        assert_eq!(options.jobs, Some(2), "other options must survive");
    }

    #[test]
    fn schedule_many_with_invalid_instance_is_answered_at_the_gateway() {
        let cfg = GatewayConfig {
            backends: vec!["127.0.0.1:1".to_string()],
            ..GatewayConfig::default()
        };
        let router = Router::new(cfg).unwrap();
        for (line, needle) in [
            (
                r#"{"op":"schedule_many","instances":[],"algorithm":"HEFT"}"#.to_string(),
                "at least one instance",
            ),
            (
                r#"{"op":"schedule_many","instances":[{"dag":{"tasks":[],"edges":[]},"system":{"processors":{"kind":"homogeneous","count":1},"network":{"topology":"fully_connected","bandwidth":1.0}}}],"algorithm":"HEFT"}"#.to_string(),
                "invalid dag (instance 0)",
            ),
        ] {
            let reply = router.handle_line(&line, Instant::now());
            let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
            assert_eq!(v["status"].as_str(), Some("error"), "{reply}");
            assert!(
                v["message"].as_str().unwrap().contains(needle),
                "{reply}"
            );
        }
        assert_eq!(
            read(&router.metrics().shard_errors),
            0,
            "invalid batches must never touch a shard"
        );
    }

    #[test]
    fn parse_parent_requires_exactly_16_hex_digits() {
        assert_eq!(parse_parent("0123456789abcdef"), Some(0x0123456789abcdef));
        assert_eq!(parse_parent("ffffffffffffffff"), Some(u64::MAX));
        assert_eq!(parse_parent("0123456789abcde"), None, "15 digits");
        assert_eq!(parse_parent("0123456789abcdef0"), None, "17 digits");
        assert_eq!(parse_parent("0123456789abcdeg"), None, "not hex");
        assert_eq!(parse_parent(""), None);
        assert_eq!(parse_parent("+123456789abcdef"), None, "no sign prefix");
    }

    #[test]
    fn forward_line_appends_gateway_hop_for_traced_requests() {
        let line = r#"{"op":"schedule","dag":{"tasks":[{"weight":1.0}],"edges":[]},"system":{"processors":{"kind":"homogeneous","count":1},"network":{"topology":"fully_connected","bandwidth":1.0}},"algorithm":"HEFT","options":{"deadline_ms":500,"trace_ctx":{"trace_id":"00000000deadbeef"}}}"#;
        let req = Request::parse(line).unwrap();
        let out = forward_line(&req, Duration::from_millis(250), 42);
        let back = Request::parse(&out).unwrap();
        let Request::Schedule { options, .. } = back else {
            panic!("op changed");
        };
        let ctx = options.trace_ctx.expect("trace context must survive");
        assert_eq!(ctx.trace_id, "00000000deadbeef");
        assert_eq!(ctx.hops.len(), 1, "one gateway hop appended");
        assert_eq!(ctx.hops[0].tier, "gateway");
        assert_eq!(ctx.hops[0].sent_at_us, 42);

        // Untraced requests stay hop-free (and byte-stable).
        let (_, _, plain) = small_parts();
        let out = forward_line(&plain, Duration::from_millis(250), 42);
        assert!(!out.contains("trace_ctx"), "{out}");
    }

    #[test]
    fn status_of_line_classifies_reply_prefixes() {
        assert_eq!(
            status_of_line(r#"{"status":"ok","algorithm":"HEFT"}"#),
            Some(RequestStatus::Success)
        );
        assert_eq!(
            status_of_line(&Response::shed("x").to_line()),
            Some(RequestStatus::Shed)
        );
        assert_eq!(
            status_of_line(
                &Response::Timeout {
                    message: "m".to_string()
                }
                .to_line()
            ),
            Some(RequestStatus::Timeout)
        );
        assert_eq!(
            status_of_line(&Response::error("x").to_line()),
            Some(RequestStatus::Error)
        );
        assert_eq!(status_of_line(&Response::ShuttingDown.to_line()), None);
        assert_eq!(status_of_line("not json"), None);
    }

    #[test]
    fn traced_requests_journal_spans_and_account_outcomes_even_on_failure() {
        let cfg = GatewayConfig {
            backends: vec!["127.0.0.1:1".to_string()],
            connect_timeout_ms: 100,
            ..GatewayConfig::default()
        };
        let router = Router::new(cfg).unwrap();
        let line = r#"{"op":"schedule","dag":{"tasks":[{"weight":1.0}],"edges":[]},"system":{"processors":{"kind":"homogeneous","count":1},"network":{"topology":"fully_connected","bandwidth":1.0}},"algorithm":"HEFT","options":{"deadline_ms":2000,"trace_ctx":{"trace_id":"feedfacecafebeef"}}}"#;
        let reply = router.handle_line(line, Instant::now());
        let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["status"].as_str(), Some("error"), "{reply}");

        // The failed request is an SLO outcome, not a lost sample.
        let m = router.metrics();
        assert_eq!(m.latency.get(RequestStatus::Error).count(), 1);
        assert_eq!(m.latency.get(RequestStatus::Success).count(), 0);
        assert_eq!(m.op_outcomes.get("schedule", RequestStatus::Error), 1);

        // Its spans are journaled: admission, the failed backend attempt,
        // and the root request span that covers both.
        let jline = router.handle_line(r#"{"op":"journal"}"#, Instant::now());
        let jv: serde_json::Value = serde_json::from_str(&jline).unwrap();
        assert_eq!(jv["status"].as_str(), Some("ok"), "{jline}");
        assert_eq!(jv["journal"]["source"].as_str(), Some("gateway"));
        let spans = jv["journal"]["spans"].as_array().unwrap();
        let names: Vec<&str> = spans.iter().map(|s| s["name"].as_str().unwrap()).collect();
        for expect in ["admission", "backend", "request"] {
            assert!(names.contains(&expect), "missing `{expect}` in {names:?}");
        }
        let root = spans
            .iter()
            .find(|s| s["name"] == "request")
            .expect("root span");
        assert_eq!(root["start_us"].as_u64(), Some(0));
        assert_eq!(root["detail"].as_str(), Some("leader"));
        let root_end = root["dur_us"].as_u64().unwrap();
        for s in spans {
            assert_eq!(s["trace_id"].as_str(), Some("feedfacecafebeef"));
            let end = s["start_us"].as_u64().unwrap() + s["dur_us"].as_u64().unwrap();
            assert!(end <= root_end + 1, "span escapes the root: {s:?}");
        }

        // Drained means drained.
        let again = router.handle_line(r#"{"op":"journal"}"#, Instant::now());
        let jv: serde_json::Value = serde_json::from_str(&again).unwrap();
        assert_eq!(jv["journal"]["spans"].as_array().map(Vec::len), Some(0));
    }

    #[test]
    fn forward_line_rewrites_patch_deadline() {
        let line = r#"{"op":"patch","parent":"0123456789abcdef","algorithm":"HEFT","deltas":[{"kind":"task_weight","task":0,"weight":2.0}],"options":{"jobs":3}}"#;
        let req = Request::parse(line).unwrap();
        let out = forward_line(&req, Duration::from_millis(777), 0);
        let back = Request::parse(&out).unwrap();
        let Request::Patch {
            parent,
            deltas,
            options,
            ..
        } = back
        else {
            panic!("op changed");
        };
        assert_eq!(parent, "0123456789abcdef");
        assert_eq!(deltas.len(), 1);
        assert_eq!(options.deadline_ms, Some(777));
        assert_eq!(options.jobs, Some(3), "other options must survive");
    }
}
