//! The gateway front door: a hand-rolled non-blocking readiness loop.
//!
//! One reactor thread owns every client socket: it accepts connections,
//! reads complete NDJSON lines into bounded per-connection queues, and
//! dispatches them to a small pool of router workers over a bounded
//! channel. Workers run [`Router::handle_line`] (which blocks on shard
//! I/O) and write the reply back themselves.
//!
//! Two invariants shape the loop:
//!
//! - **Replies stay in request order.** At most one request per
//!   connection is dispatched at a time, and admission-control sheds are
//!   queued as markers in the same per-connection queue rather than
//!   answered immediately — so a shed for request 5 is never written
//!   before the reply for request 4.
//! - **Backlog is bounded everywhere.** Lines beyond
//!   [`max_pending_per_conn`](crate::GatewayConfig::max_pending_per_conn)
//!   become shed markers at read time; when the bounded dispatch queue is
//!   full the line simply stays queued, where the router's deadline check
//!   will shed it if it waits too long. No queue grows without limit, and
//!   a request past its deadline never occupies a shard slot.

use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;

use hetsched_serve::protocol::Response;

use crate::router::Router;
use crate::GatewayConfig;

/// Shortest reactor idle sleep: the latency floor for noticing new bytes
/// right after a burst of activity.
const BACKOFF_FLOOR: Duration = Duration::from_millis(1);
/// Longest reactor idle sleep, reached after sustained quiet. Bounds the
/// wake-up latency for the first request of a new burst.
const BACKOFF_CEILING: Duration = Duration::from_millis(16);
/// Sleep while a blocked reply write waits for the kernel buffer to
/// drain (the peer controls the pace here, not the reactor).
const WRITE_RETRY: Duration = Duration::from_millis(2);
/// Per-connection read chunk.
const CHUNK: usize = 16 * 1024;
/// Cap on a single buffered line; a peer streaming an unbounded line
/// would otherwise grow the read buffer without limit.
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Adaptive reactor idle backoff: sleeps start at [`BACKOFF_FLOOR`]
/// right after activity and double toward [`BACKOFF_CEILING`] while the
/// loop stays idle, so a busy gateway polls at the floor and a quiet one
/// burns almost no CPU. Any progress snaps the next sleep back to the
/// floor.
#[derive(Debug)]
pub(crate) struct Backoff {
    next: Duration,
}

impl Backoff {
    pub(crate) fn new() -> Backoff {
        Backoff {
            next: BACKOFF_FLOOR,
        }
    }

    /// Work happened: the next idle sleep restarts at the floor.
    pub(crate) fn reset(&mut self) {
        self.next = BACKOFF_FLOOR;
    }

    /// The duration an idle iteration should sleep now; each call while
    /// idle doubles the following one, up to the ceiling.
    pub(crate) fn idle(&mut self) -> Duration {
        let cur = self.next;
        self.next = (cur * 2).min(BACKOFF_CEILING);
        cur
    }
}

/// One unit of work for a router worker.
struct DispatchJob {
    conn_id: u64,
    line: String,
    arrival: Instant,
    writer: Arc<Mutex<TcpStream>>,
}

/// Worker → reactor completion notice. `write_ok == false` means the
/// reply could not be delivered and the connection should be dropped.
struct Done {
    conn_id: u64,
    write_ok: bool,
}

/// A queued request line, or a shed decision taken at read time that
/// must still be answered in arrival order.
enum PendingLine {
    /// A complete request line and the instant it was read.
    Job(String, Instant),
    /// The connection's pending queue was over depth when this line
    /// arrived: answer `shed` (in order) without routing.
    Shed,
}

/// Per-connection reactor state.
struct ClientConn {
    stream: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    buf: Vec<u8>,
    pending: VecDeque<PendingLine>,
    /// A job from this connection is currently with a worker.
    busy: bool,
    /// Peer closed its write side; serve out `pending`, then drop.
    eof: bool,
    /// Unrecoverable I/O error; drop as soon as no job is in flight.
    dead: bool,
}

/// The gateway TCP front door. Bind with [`GatewayServer::bind`], then
/// [`run`](GatewayServer::run) the readiness loop.
pub struct GatewayServer {
    listener: TcpListener,
    router: Arc<Router>,
}

impl GatewayServer {
    /// Bind `addr` and construct the router for `config.backends`. Shard
    /// connections are opened lazily, so the shards may come up after the
    /// gateway.
    pub fn bind(addr: &str, config: GatewayConfig) -> io::Result<GatewayServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let router = Arc::new(Router::new(config)?);
        Ok(GatewayServer { listener, router })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared handle to the routing core (metrics, programmatic
    /// shutdown).
    pub fn router(&self) -> Arc<Router> {
        self.router.clone()
    }

    /// Run the readiness loop until a `shutdown` request arrives (or
    /// [`Router::begin_shutdown`] is called), then drain: every queued
    /// and in-flight request is answered before the loop returns.
    pub fn run(self) -> io::Result<()> {
        let config = self.router.config().clone();
        let (jobs_tx, jobs_rx) = bounded::<DispatchJob>(config.queue_capacity.max(1));
        let (done_tx, done_rx) = unbounded::<Done>();
        let workers = spawn_workers(
            config.router_threads.max(1),
            self.router.clone(),
            jobs_rx,
            done_tx,
        );

        let mut conns: HashMap<u64, ClientConn> = HashMap::new();
        let mut next_id: u64 = 0;
        let mut backoff = Backoff::new();
        // Reactor-side write scratch, reused across every shed marker.
        let mut scratch: Vec<u8> = Vec::new();
        loop {
            let mut progressed = false;

            // New connections (until shutdown).
            if !self.router.is_shutting_down() {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _peer)) => {
                            if let Ok(conn) = ClientConn::new(stream) {
                                conns.insert(next_id, conn);
                                next_id += 1;
                                progressed = true;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
            }

            // Worker completions.
            while let Ok(done) = done_rx.try_recv() {
                if let Some(conn) = conns.get_mut(&done.conn_id) {
                    conn.busy = false;
                    if !done.write_ok {
                        conn.dead = true;
                    }
                }
                progressed = true;
            }

            // Readable bytes → pending lines (reads stop at shutdown so
            // the drain converges).
            if !self.router.is_shutting_down() {
                for conn in conns.values_mut() {
                    if conn.read_some(config.max_pending_per_conn) {
                        progressed = true;
                    }
                }
            }

            // Dispatch: at most one in-flight job per connection keeps
            // replies in request order.
            for (&conn_id, conn) in conns.iter_mut() {
                if conn.busy || conn.dead {
                    continue;
                }
                while let Some(front) = conn.pending.pop_front() {
                    match front {
                        PendingLine::Shed => {
                            // Ordered: every earlier reply has been
                            // written (busy was false).
                            crate::metrics::bump(&self.router.metrics().sheds);
                            let line = Response::shed(format!(
                                "connection backlog over {} pending requests",
                                config.max_pending_per_conn
                            ))
                            .to_line();
                            if write_line(&conn.writer, &mut scratch, &line).is_err() {
                                conn.dead = true;
                                break;
                            }
                            progressed = true;
                        }
                        PendingLine::Job(line, arrival) => {
                            let job = DispatchJob {
                                conn_id,
                                line,
                                arrival,
                                writer: conn.writer.clone(),
                            };
                            match jobs_tx.try_send(job) {
                                Ok(()) => {
                                    conn.busy = true;
                                    progressed = true;
                                }
                                Err(TrySendError::Full(job)) => {
                                    // Queue full: leave the line queued;
                                    // the router sheds it on dispatch if
                                    // its deadline expires while waiting.
                                    conn.pending
                                        .push_front(PendingLine::Job(job.line, job.arrival));
                                }
                                Err(TrySendError::Disconnected(_)) => conn.dead = true,
                            }
                            break;
                        }
                    }
                }
            }

            // Retire finished connections.
            conns.retain(|_, c| !(c.dead || (c.eof && !c.busy && c.pending.is_empty())));

            // Shutdown drain: exit once nothing is queued or in flight.
            if self.router.is_shutting_down()
                && conns.values().all(|c| !c.busy && c.pending.is_empty())
            {
                break;
            }
            if progressed {
                backoff.reset();
            } else {
                thread::sleep(backoff.idle());
            }
        }

        drop(jobs_tx);
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

impl ClientConn {
    fn new(stream: TcpStream) -> io::Result<ClientConn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        let writer = Arc::new(Mutex::new(stream.try_clone()?));
        Ok(ClientConn {
            stream,
            writer,
            buf: Vec::new(),
            pending: VecDeque::new(),
            busy: false,
            eof: false,
            dead: false,
        })
    }

    /// Pull whatever bytes are ready and split them into pending lines,
    /// shedding (as ordered markers) past the depth bound. Returns
    /// whether anything happened.
    fn read_some(&mut self, max_pending: usize) -> bool {
        if self.eof || self.dead {
            return false;
        }
        let mut chunk = [0u8; CHUNK];
        let mut progressed = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    progressed = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return true;
                }
            }
        }
        let arrival = Instant::now();
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            // Slice the line in place; only a queued job owns a String
            // (it must outlive the buffer), so blank lines and shed
            // markers cost no allocation at all.
            {
                let line = String::from_utf8_lossy(&self.buf[..pos]);
                let line = line.trim();
                if !line.is_empty() {
                    if self.pending.len() >= max_pending {
                        self.pending.push_back(PendingLine::Shed);
                    } else {
                        self.pending
                            .push_back(PendingLine::Job(line.to_string(), arrival));
                    }
                    progressed = true;
                }
            }
            self.buf.drain(..=pos);
        }
        if self.buf.len() > MAX_LINE_BYTES {
            self.dead = true;
        }
        progressed
    }
}

/// Spawn the router worker pool. Each worker routes one line at a time
/// and writes the reply itself, so slow shard round trips never stall
/// the reactor.
fn spawn_workers(
    count: usize,
    router: Arc<Router>,
    jobs_rx: Receiver<DispatchJob>,
    done_tx: Sender<Done>,
) -> Vec<JoinHandle<()>> {
    (0..count)
        .map(|i| {
            let router = router.clone();
            let jobs_rx = jobs_rx.clone();
            let done_tx = done_tx.clone();
            thread::Builder::new()
                .name(format!("gw-router-{i}"))
                .spawn(move || {
                    // Per-worker write scratch, reused across every reply.
                    let mut scratch: Vec<u8> = Vec::new();
                    while let Ok(job) = jobs_rx.recv() {
                        let reply = router.handle_line(&job.line, job.arrival);
                        let write_ok = write_line(&job.writer, &mut scratch, &reply).is_ok();
                        let _ = done_tx.send(Done {
                            conn_id: job.conn_id,
                            write_ok,
                        });
                    }
                })
                .expect("spawning a router worker cannot fail")
        })
        .collect()
}

/// Write one reply line to a (non-blocking) client socket, retrying
/// `WouldBlock` until the kernel buffer drains. `scratch` is the
/// caller's reusable buffer for the `reply + '\n'` payload — no
/// per-write allocation at steady state.
fn write_line(writer: &Arc<Mutex<TcpStream>>, scratch: &mut Vec<u8>, line: &str) -> io::Result<()> {
    scratch.clear();
    scratch.extend_from_slice(line.as_bytes());
    scratch.push(b'\n');
    let mut stream = writer.lock();
    let mut written = 0;
    while written < scratch.len() {
        match stream.write(&scratch[written..]) {
            Ok(0) => return Err(io::Error::new(ErrorKind::WriteZero, "peer stalled")),
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(WRITE_RETRY),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_while_idle_and_resets_on_progress() {
        let mut b = Backoff::new();
        // Idle sleeps double from the floor to the ceiling and stay there.
        let mut seen = Vec::new();
        for _ in 0..8 {
            seen.push(b.idle());
        }
        assert_eq!(seen[0], BACKOFF_FLOOR, "first idle sleep is the floor");
        for pair in seen.windows(2) {
            assert!(
                pair[1] == (pair[0] * 2).min(BACKOFF_CEILING),
                "each idle sleep doubles (capped): {seen:?}"
            );
        }
        assert_eq!(*seen.last().unwrap(), BACKOFF_CEILING, "ceiling reached");
        assert_eq!(b.idle(), BACKOFF_CEILING, "and held");

        // Any progress snaps the next sleep back to the floor.
        b.reset();
        assert_eq!(b.idle(), BACKOFF_FLOOR);
        assert_eq!(b.idle(), BACKOFF_FLOOR * 2);
    }
}
