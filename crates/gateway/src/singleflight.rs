//! Single-flight request coalescing: at most one copy of an identical
//! request is ever in flight toward the shards.
//!
//! The first arrival for a key becomes the *leader* and forwards the
//! request; arrivals while the leader is in flight become *followers* and
//! block on a channel. When the leader completes — with any reply,
//! including `shed`, `timeout`, or `error` — every follower receives the
//! leader's reply byte-for-byte. Keys are removed on completion, so a
//! request arriving after completion leads a fresh flight (and typically
//! hits the shard's reply memo instead).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

/// The coalescing table, keyed by the request dedup fingerprint.
#[derive(Default)]
pub struct SingleFlight {
    inflight: Mutex<HashMap<u64, Vec<Sender<Arc<String>>>>>,
}

/// Outcome of joining a flight.
pub enum Flight {
    /// This request is the first for its key: forward it, then call
    /// [`SingleFlight::complete`] with the reply (on every path).
    Leader,
    /// An identical request is already in flight: wait on the receiver
    /// for the leader's reply.
    Follower(Receiver<Arc<String>>),
}

impl SingleFlight {
    /// Fresh, empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Join the flight for `key`: leader if none is in flight, follower
    /// otherwise.
    pub fn join(&self, key: u64) -> Flight {
        match self.inflight.lock().entry(key) {
            Entry::Occupied(mut e) => {
                let (tx, rx) = bounded(1);
                e.get_mut().push(tx);
                Flight::Follower(rx)
            }
            Entry::Vacant(e) => {
                e.insert(Vec::new());
                Flight::Leader
            }
        }
    }

    /// Publish the leader's reply to every follower and retire the key.
    /// Returns how many followers were notified. Followers that already
    /// gave up (deadline) have dropped their receivers; sending to them
    /// fails silently, which is correct — they were answered `timeout`.
    pub fn complete(&self, key: u64, reply: &Arc<String>) -> usize {
        let followers = self.inflight.lock().remove(&key).unwrap_or_default();
        let n = followers.len();
        for tx in followers {
            let _ = tx.send(reply.clone());
        }
        n
    }

    /// Keys currently in flight (for stats).
    pub fn len(&self) -> usize {
        self.inflight.lock().len()
    }

    /// Whether no flight is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn leader_then_followers_then_fresh_leader() {
        let sf = SingleFlight::new();
        assert!(matches!(sf.join(7), Flight::Leader));
        let Flight::Follower(rx_a) = sf.join(7) else {
            panic!("second join must follow");
        };
        let Flight::Follower(rx_b) = sf.join(7) else {
            panic!("third join must follow");
        };
        // A different key gets its own leader.
        assert!(matches!(sf.join(8), Flight::Leader));
        assert_eq!(sf.len(), 2);

        let reply = Arc::new("{\"status\":\"ok\"}".to_string());
        assert_eq!(sf.complete(7, &reply), 2);
        assert_eq!(*rx_a.recv_timeout(Duration::from_secs(1)).unwrap(), *reply);
        assert_eq!(*rx_b.recv_timeout(Duration::from_secs(1)).unwrap(), *reply);

        // The key is retired: the next arrival leads again.
        assert!(matches!(sf.join(7), Flight::Leader));
        sf.complete(7, &reply);
        sf.complete(8, &reply);
        assert!(sf.is_empty());
    }

    #[test]
    fn complete_tolerates_departed_followers() {
        let sf = SingleFlight::new();
        assert!(matches!(sf.join(1), Flight::Leader));
        let Flight::Follower(rx) = sf.join(1) else {
            panic!("must follow");
        };
        drop(rx); // follower gave up (deadline)
        let reply = Arc::new("r".to_string());
        // Notification count includes the departed follower; the send to
        // it fails silently.
        assert_eq!(sf.complete(1, &reply), 1);
    }

    #[test]
    fn concurrent_joins_elect_exactly_one_leader() {
        let sf = Arc::new(SingleFlight::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let sf = sf.clone();
            handles.push(std::thread::spawn(move || match sf.join(42) {
                Flight::Leader => {
                    std::thread::sleep(Duration::from_millis(20));
                    sf.complete(42, &Arc::new("done".to_string()));
                    (1usize, 0usize)
                }
                Flight::Follower(rx) => {
                    let got = rx.recv_timeout(Duration::from_secs(2)).unwrap();
                    assert_eq!(*got, "done");
                    (0, 1)
                }
            }));
        }
        let (leaders, followers) = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0), |(l, f), (dl, df)| (l + dl, f + df));
        assert_eq!(leaders, 1);
        assert_eq!(followers, 7);
    }
}
