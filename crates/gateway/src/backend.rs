//! One backend shard as seen by the gateway: a small pool of persistent
//! NDJSON connections, the `hello` handshake that verifies the peer is a
//! `hetsched-serve` daemon, gateway-side inflight accounting, and health
//! state with timed re-probing.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::metrics::ShardSnapshot;

/// Per-read timeout while waiting for a reply; bounds how stale the
/// deadline check can get, not the total wait.
const READ_SLICE: Duration = Duration::from_millis(200);

/// A backend shard: address, pooled connections, inflight budget state,
/// and health.
pub struct Backend {
    addr: String,
    connect_timeout: Duration,
    pool: Mutex<Vec<Conn>>,
    inflight: AtomicUsize,
    forwarded: AtomicU64,
    errors: AtomicU64,
    healthy: AtomicBool,
    last_failure: Mutex<Option<Instant>>,
}

/// RAII guard for one reserved inflight slot on a backend.
pub struct InflightGuard<'a> {
    backend: &'a Backend,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.backend.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Backend {
    /// A backend for `addr`, starting healthy with an empty pool;
    /// connections are opened (and handshaken) lazily on first use.
    pub fn new(addr: impl Into<String>, connect_timeout: Duration) -> Backend {
        Backend {
            addr: addr.into(),
            connect_timeout,
            pool: Mutex::new(Vec::new()),
            inflight: AtomicUsize::new(0),
            forwarded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            healthy: AtomicBool::new(true),
            last_failure: Mutex::new(None),
        }
    }

    /// Shard address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether this backend may be attempted: healthy, or unhealthy but
    /// due for a re-probe (`retry_after` has elapsed since the last
    /// failure). A probe that succeeds flips the backend healthy again.
    pub fn available(&self, retry_after: Duration) -> bool {
        if self.healthy.load(Ordering::Relaxed) {
            return true;
        }
        match *self.last_failure.lock() {
            Some(at) => at.elapsed() >= retry_after,
            None => true,
        }
    }

    /// Reserve one inflight slot if the budget allows, else `None`. The
    /// slot is released when the guard drops.
    pub fn try_reserve(&self, budget: usize) -> Option<InflightGuard<'_>> {
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current >= budget {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(InflightGuard { backend: self }),
                Err(now) => current = now,
            }
        }
    }

    /// Send one request line and wait for the reply line, using a pooled
    /// connection (opening and handshaking a fresh one if the pool is
    /// empty). On success the connection returns to the pool and the
    /// backend is marked healthy. On failure the connection is dropped;
    /// a non-timeout failure also marks the backend down. A timeout
    /// (`ErrorKind::TimedOut`) does *not* mark the backend down — the
    /// shard is presumed alive but slow, and its computation may still
    /// finish and populate its caches.
    pub fn round_trip(&self, line: &str, deadline_at: Instant) -> io::Result<String> {
        let pooled = self.pool.lock().pop();
        let mut conn = match pooled {
            Some(c) => c,
            None => match self.fresh_conn() {
                Ok(c) => c,
                Err(e) => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    self.mark_down();
                    return Err(e);
                }
            },
        };
        match conn.round_trip(line, deadline_at) {
            Ok(reply) => {
                self.forwarded.fetch_add(1, Ordering::Relaxed);
                self.mark_up();
                self.pool.lock().push(conn);
                Ok(reply)
            }
            Err(e) => {
                // Drop the connection either way: after a timeout its
                // reply is still owed and would corrupt the next round
                // trip's framing.
                self.errors.fetch_add(1, Ordering::Relaxed);
                if e.kind() != ErrorKind::TimedOut {
                    self.mark_down();
                }
                Err(e)
            }
        }
    }

    /// Open a connection and run the `hello` handshake.
    fn fresh_conn(&self) -> io::Result<Conn> {
        let mut conn = Conn::connect(&self.addr, self.connect_timeout)?;
        conn.handshake(self.connect_timeout)?;
        Ok(conn)
    }

    fn mark_down(&self) {
        self.healthy.store(false, Ordering::Relaxed);
        *self.last_failure.lock() = Some(Instant::now());
        // Sibling pooled connections are likely broken too.
        self.pool.lock().clear();
    }

    fn mark_up(&self) {
        self.healthy.store(true, Ordering::Relaxed);
    }

    /// Point-in-time snapshot for stats/metrics.
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            addr: self.addr.clone(),
            up: self.healthy.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed) as u64,
            forwarded: self.forwarded.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// One persistent NDJSON connection to a shard. Keeps its own read
/// buffer so bytes over-read past a reply line are never lost between
/// round trips.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    fn connect(addr: &str, timeout: Duration) -> io::Result<Conn> {
        let sock_addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(ErrorKind::InvalidInput, format!("bad addr {addr}")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            buf: Vec::new(),
        })
    }

    /// The shard handshake: send `{"op":"hello"}` and require an `ok`
    /// reply whose `hello.service` is `"hetsched-serve"`. Catches a
    /// misconfigured backend (wrong port, wrong protocol) before any
    /// request is routed to it.
    fn handshake(&mut self, timeout: Duration) -> io::Result<()> {
        let reply = self.round_trip(r#"{"op":"hello"}"#, Instant::now() + timeout)?;
        let v: serde_json::Value = serde_json::from_str(&reply).map_err(|e| {
            io::Error::new(ErrorKind::InvalidData, format!("handshake not JSON: {e}"))
        })?;
        let service = v["hello"]["service"].as_str().unwrap_or("");
        if v["status"].as_str() != Some("ok") || service != "hetsched-serve" {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!("peer is not a hetsched-serve shard: {reply}"),
            ));
        }
        Ok(())
    }

    /// Write `line` and read exactly one reply line, or fail with
    /// `ErrorKind::TimedOut` once `deadline_at` passes.
    fn round_trip(&mut self, line: &str, deadline_at: Instant) -> io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line_bytes: Vec<u8> = self.buf.drain(..=pos).collect();
                let reply = String::from_utf8_lossy(&line_bytes).trim().to_string();
                return Ok(reply);
            }
            let remaining = deadline_at.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    ErrorKind::TimedOut,
                    "deadline passed waiting for shard reply",
                ));
            }
            self.stream
                .set_read_timeout(Some(remaining.min(READ_SLICE)))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "shard closed the connection",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_budget_reserve_and_release() {
        let b = Backend::new("127.0.0.1:1", Duration::from_millis(100));
        let g1 = b.try_reserve(2).expect("slot 1");
        let _g2 = b.try_reserve(2).expect("slot 2");
        assert!(b.try_reserve(2).is_none(), "budget of 2 exhausted");
        drop(g1);
        assert!(b.try_reserve(2).is_some(), "released slot is reusable");
    }

    #[test]
    fn connect_failure_marks_backend_down_then_probes() {
        // Nothing listens on this port (bound but not accepting would be
        // flaky; an unroutable connect fails fast on loopback).
        let b = Backend::new("127.0.0.1:1", Duration::from_millis(100));
        assert!(b.available(Duration::from_millis(50)));
        let err = b
            .round_trip(
                r#"{"op":"stats"}"#,
                Instant::now() + Duration::from_millis(200),
            )
            .unwrap_err();
        assert_ne!(err.kind(), ErrorKind::TimedOut);
        assert!(!b.snapshot().up);
        assert_eq!(b.snapshot().errors, 1);
        // Down backends are skipped until the retry window elapses.
        assert!(!b.available(Duration::from_secs(60)));
        std::thread::sleep(Duration::from_millis(60));
        assert!(b.available(Duration::from_millis(50)), "probe is due");
    }

    #[test]
    fn handshake_rejects_non_shard_peer() {
        // A fake peer that answers the hello with garbage.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 256];
            let _ = s.read(&mut buf);
            s.write_all(b"{\"status\":\"ok\"}\n").unwrap();
        });
        let b = Backend::new(addr.to_string(), Duration::from_millis(500));
        let err = b
            .round_trip(
                r#"{"op":"stats"}"#,
                Instant::now() + Duration::from_millis(500),
            )
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
        assert!(!b.snapshot().up);
        fake.join().unwrap();
    }
}
