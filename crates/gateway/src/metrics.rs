//! Gateway counters and Prometheus rendering.
//!
//! Same conventions as the shard-side [`hetsched_serve::metrics`]: relaxed
//! atomics for monotone counts, the shared log₂ latency histogram for
//! end-to-end request latency, and text-exposition rendering with a
//! `hetsched_gateway_` prefix so a scrape of gateway + shards never
//! collides.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

use hetsched_serve::metrics::{
    escape_label, render_histogram, LatencyHistogram, OpOutcomes, StatusLatency,
};

/// All gateway counters.
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    /// Schedule/portfolio requests received (sheds included).
    pub requests: AtomicU64,
    /// Requests forwarded to a shard and answered by it.
    pub forwarded: AtomicU64,
    /// Requests answered with another request's in-flight reply
    /// (single-flight followers).
    pub dedup_hits: AtomicU64,
    /// Requests refused by admission control (`shed` responses).
    pub sheds: AtomicU64,
    /// Requests answered `timeout` by the gateway (shard did not reply
    /// within the propagated deadline).
    pub timeouts: AtomicU64,
    /// Requests served by a non-home shard after a failover.
    pub reroutes: AtomicU64,
    /// Shard I/O failures (connect refused, handshake mismatch, broken
    /// connection); each triggers failover or a structured error.
    pub shard_errors: AtomicU64,
    /// Error responses originated by the gateway (malformed requests,
    /// invalid problems, no healthy shard).
    pub errors: AtomicU64,
    /// Requests answered from the gateway's raw-byte hot-line cache —
    /// no parse, no shard round trip.
    pub wire_hits: AtomicU64,
    /// Requests the wire scanner digested but whose reply was not (yet)
    /// cached; routed normally.
    pub wire_misses: AtomicU64,
    /// Requests the wire scanner declined (control ops, traced requests,
    /// non-compact or escaped JSON) or that arrived during shutdown or
    /// past their deadline; routed normally without a digest.
    pub wire_fallbacks: AtomicU64,
    /// End-to-end latency of routed requests, split by outcome
    /// (`status` label in the exposition).
    pub latency: StatusLatency,
    /// Per-op request outcomes (`hetsched_gateway_op_outcomes_total`).
    pub op_outcomes: OpOutcomes,
    /// Remaining deadline slack when a request that carried an explicit
    /// deadline was answered `ok`.
    pub deadline_slack: LatencyHistogram,
}

/// Point-in-time view of one backend shard, for `stats` and `metrics`.
#[derive(Debug, Clone, Serialize)]
pub struct ShardSnapshot {
    /// Shard address.
    pub addr: String,
    /// Whether the shard is currently considered healthy.
    pub up: bool,
    /// Requests currently in flight on this shard (gateway-side view).
    pub inflight: u64,
    /// Requests this shard has answered.
    pub forwarded: u64,
    /// I/O failures attributed to this shard.
    pub errors: u64,
}

/// Relaxed increment helper.
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Relaxed read helper.
pub fn read(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

impl GatewayMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Render every gateway metric family in the Prometheus text
    /// exposition format, including per-shard labeled series from the
    /// supplied snapshots.
    pub fn render_prometheus(&self, shards: &[ShardSnapshot]) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "hetsched_gateway_requests_total",
            "Schedule/portfolio requests received by the gateway.",
            read(&self.requests),
        );
        counter(
            "hetsched_gateway_forwarded_total",
            "Requests forwarded to a shard and answered by it.",
            read(&self.forwarded),
        );
        counter(
            "hetsched_gateway_dedup_hits_total",
            "Requests coalesced onto an identical in-flight request.",
            read(&self.dedup_hits),
        );
        counter(
            "hetsched_gateway_sheds_total",
            "Requests refused by admission control.",
            read(&self.sheds),
        );
        counter(
            "hetsched_gateway_timeouts_total",
            "Requests that exceeded their deadline at the gateway.",
            read(&self.timeouts),
        );
        counter(
            "hetsched_gateway_reroutes_total",
            "Requests served by a non-home shard after failover.",
            read(&self.reroutes),
        );
        counter(
            "hetsched_gateway_shard_errors_total",
            "Shard I/O failures observed by the gateway.",
            read(&self.shard_errors),
        );
        counter(
            "hetsched_gateway_errors_total",
            "Error responses originated by the gateway.",
            read(&self.errors),
        );
        counter(
            "hetsched_gateway_wire_hits_total",
            "Requests answered from the raw-byte hot-line cache.",
            read(&self.wire_hits),
        );
        counter(
            "hetsched_gateway_wire_misses_total",
            "Wire-scanned requests whose reply was not cached.",
            read(&self.wire_misses),
        );
        counter(
            "hetsched_gateway_wire_fallbacks_total",
            "Requests the wire scanner declined; routed via full parse.",
            read(&self.wire_fallbacks),
        );

        let _ = writeln!(
            out,
            "# HELP hetsched_gateway_shards Configured backend shards."
        );
        let _ = writeln!(out, "# TYPE hetsched_gateway_shards gauge");
        let _ = writeln!(out, "hetsched_gateway_shards {}", shards.len());
        let mut per_shard =
            |name: &str, help: &str, kind: &str, value: &dyn Fn(&ShardSnapshot) -> u64| {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} {kind}");
                for s in shards {
                    let _ = writeln!(
                        out,
                        "{name}{{shard=\"{}\"}} {}",
                        escape_label(&s.addr),
                        value(s)
                    );
                }
            };
        per_shard(
            "hetsched_gateway_shard_up",
            "Whether the shard is currently considered healthy.",
            "gauge",
            &|s| s.up as u64,
        );
        per_shard(
            "hetsched_gateway_shard_inflight",
            "Requests currently in flight on the shard.",
            "gauge",
            &|s| s.inflight,
        );
        per_shard(
            "hetsched_gateway_shard_forwarded_total",
            "Requests the shard has answered.",
            "counter",
            &|s| s.forwarded,
        );
        per_shard(
            "hetsched_gateway_shard_errors_total",
            "I/O failures attributed to the shard.",
            "counter",
            &|s| s.errors,
        );

        self.latency.render(
            &mut out,
            "hetsched_gateway_latency_seconds",
            "End-to-end latency of routed requests, by outcome status.",
        );
        self.op_outcomes.render(
            &mut out,
            "hetsched_gateway_op_outcomes_total",
            "Routed request outcomes by op and status.",
        );
        render_histogram(
            &mut out,
            "hetsched_gateway_deadline_slack_seconds",
            "Remaining deadline slack of ok replies that carried an explicit deadline.",
            "",
            &self.deadline_slack,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_serve::metrics::RequestStatus;
    use std::time::Duration;

    #[test]
    fn prometheus_rendering_contains_gateway_families() {
        let m = GatewayMetrics::new();
        bump(&m.requests);
        bump(&m.requests);
        bump(&m.dedup_hits);
        bump(&m.sheds);
        m.latency
            .record(RequestStatus::Success, Duration::from_micros(300));
        m.latency
            .record(RequestStatus::Shed, Duration::from_micros(40));
        m.op_outcomes.bump("schedule", RequestStatus::Success);
        m.op_outcomes.bump("patch", RequestStatus::Shed);
        m.deadline_slack.record(Duration::from_millis(12));
        bump(&m.wire_hits);
        bump(&m.wire_misses);
        bump(&m.wire_misses);
        bump(&m.wire_fallbacks);
        let shards = vec![
            ShardSnapshot {
                addr: "127.0.0.1:7001".to_string(),
                up: true,
                inflight: 2,
                forwarded: 5,
                errors: 0,
            },
            ShardSnapshot {
                addr: "127.0.0.1:7002".to_string(),
                up: false,
                inflight: 0,
                forwarded: 1,
                errors: 3,
            },
        ];
        let text = m.render_prometheus(&shards);
        for family in [
            "hetsched_gateway_requests_total 2",
            "hetsched_gateway_dedup_hits_total 1",
            "hetsched_gateway_sheds_total 1",
            "hetsched_gateway_wire_hits_total 1",
            "hetsched_gateway_wire_misses_total 2",
            "hetsched_gateway_wire_fallbacks_total 1",
            "hetsched_gateway_shards 2",
            "hetsched_gateway_shard_up{shard=\"127.0.0.1:7001\"} 1",
            "hetsched_gateway_shard_up{shard=\"127.0.0.1:7002\"} 0",
            "hetsched_gateway_shard_inflight{shard=\"127.0.0.1:7001\"} 2",
            "hetsched_gateway_shard_errors_total{shard=\"127.0.0.1:7002\"} 3",
            "# TYPE hetsched_gateway_latency_seconds histogram",
            "hetsched_gateway_latency_seconds_count{status=\"success\"} 1",
            "hetsched_gateway_latency_seconds_count{status=\"shed\"} 1",
            "hetsched_gateway_latency_seconds_count{status=\"timeout\"} 0",
            "hetsched_gateway_op_outcomes_total{op=\"schedule\",status=\"success\"} 1",
            "hetsched_gateway_op_outcomes_total{op=\"patch\",status=\"shed\"} 1",
            "hetsched_gateway_op_outcomes_total{op=\"portfolio\",status=\"error\"} 0",
            "hetsched_gateway_deadline_slack_seconds_count 1",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
        for line in text.lines() {
            assert!(!line.is_empty());
        }
    }
}
