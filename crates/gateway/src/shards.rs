//! An in-process shard set: N `hetsched-serve` TCP servers on ephemeral
//! loopback ports, each on its own thread.
//!
//! This is how `hetsched serve --shards N` runs a whole deployment in
//! one process, and how the integration tests and the load harness get a
//! gateway + shards topology without spawning child processes. Each
//! shard is a real [`TcpServer`] speaking the real wire protocol — the
//! gateway talks to it over loopback TCP exactly as it would talk to a
//! remote shard, so killing one ([`LocalShards::kill`]) exercises the
//! same failover paths a crashed process would.

use std::io;
use std::sync::Arc;
use std::thread::JoinHandle;

use hetsched_serve::{ServeConfig, Service, TcpServer};

/// A set of in-process shard servers.
pub struct LocalShards {
    shards: Vec<Option<Shard>>,
}

struct Shard {
    addr: String,
    service: Arc<Service>,
    thread: JoinHandle<io::Result<()>>,
}

impl LocalShards {
    /// Spawn `count` shards, each a [`TcpServer`] bound to
    /// `127.0.0.1:0` (kernel-assigned port) running `config`.
    pub fn spawn(count: usize, config: &ServeConfig) -> io::Result<LocalShards> {
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            let server = TcpServer::bind("127.0.0.1:0", config.clone())?;
            let addr = server.local_addr()?.to_string();
            let service = server.service();
            let thread = std::thread::Builder::new()
                .name(format!("shard-{addr}"))
                .spawn(move || server.run())?;
            shards.push(Some(Shard {
                addr,
                service,
                thread,
            }));
        }
        Ok(LocalShards { shards })
    }

    /// Shard addresses in index order — exactly the `backends` list for
    /// [`GatewayConfig`](crate::GatewayConfig). Killed shards keep their
    /// slot (and address) so routing indices stay stable.
    pub fn addrs(&self) -> Vec<String> {
        self.shards
            .iter()
            .map(|s| match s {
                Some(shard) => shard.addr.clone(),
                None => "killed".to_string(),
            })
            .collect()
    }

    /// How many shards were spawned (killed ones included).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The service handle of shard `i` (for stats assertions in tests),
    /// or `None` if it was killed.
    pub fn service(&self, i: usize) -> Option<Arc<Service>> {
        self.shards
            .get(i)
            .and_then(|s| s.as_ref())
            .map(|s| s.service.clone())
    }

    /// Kill shard `i`: begin its shutdown, join its thread, drop its
    /// listener. Subsequent gateway traffic to it fails at connect, which
    /// is exactly what a crashed shard process looks like.
    pub fn kill(&mut self, i: usize) {
        if let Some(shard) = self.shards.get_mut(i).and_then(Option::take) {
            shard.service.begin_shutdown();
            let _ = shard.thread.join();
            shard.service.shutdown();
        }
    }

    /// Shut every remaining shard down and join its thread.
    pub fn shutdown_all(&mut self) {
        for i in 0..self.shards.len() {
            self.kill(i);
        }
    }
}

impl Drop for LocalShards {
    fn drop(&mut self) {
        self.shutdown_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 4,
            instance_cache_capacity: 4,
            default_deadline_ms: 5_000,
        }
    }

    #[test]
    fn spawn_kill_and_drop() {
        let mut shards = LocalShards::spawn(2, &tiny_config()).unwrap();
        assert_eq!(shards.len(), 2);
        let addrs = shards.addrs();
        assert_ne!(addrs[0], addrs[1]);
        assert!(shards.service(0).is_some());

        shards.kill(0);
        assert!(shards.service(0).is_none());
        assert_eq!(shards.addrs()[0], "killed");
        // The surviving shard still answers.
        let svc = shards.service(1).unwrap();
        assert!(!svc.is_shutting_down());
        shards.shutdown_all();
        assert!(shards.service(1).is_none());
    }
}
