//! `hetsched-gateway` — a scale-out front door for the resident
//! scheduling daemon.
//!
//! One gateway process fronts N `hetsched-serve` shard processes and
//! speaks the same NDJSON protocol to clients, adding three things the
//! shards cannot provide on their own:
//!
//! - **Fingerprint routing.** Every `schedule`/`portfolio` request is
//!   routed to the shard chosen by the (DAG, system) content fingerprint,
//!   so repeat traffic for one problem always lands where that problem's
//!   `ProblemInstance` cache and reply memo already live. A down shard is
//!   failed over to the next healthy one (affinity degrades, correctness
//!   does not).
//! - **Single-flight dedup.** Identical requests that arrive while a
//!   matching one is already in flight do not reach a shard at all: they
//!   wait for the leader's reply and receive it byte-for-byte.
//! - **Admission control.** Beyond the shards' own `busy` backpressure,
//!   the gateway enforces a per-shard inflight budget, sheds when a
//!   connection's pending queue exceeds its depth bound, and propagates
//!   per-request deadlines — a request whose deadline has already passed
//!   is shed before it can occupy a shard slot. Shed requests get a
//!   distinct `shed` status, never an unbounded queue.
//!
//! | module         | contents |
//! |----------------|----------|
//! | [`backend`]    | shard connection pool, `hello` handshake, health state |
//! | [`singleflight`] | in-flight request coalescing table |
//! | [`router`]     | parse → fingerprint → admit → forward → reply |
//! | [`frontdoor`]  | non-blocking accept/readiness loop, worker dispatch |
//! | [`metrics`]    | gateway counters, latency histogram, Prometheus text |
//! | [`shards`]     | in-process shard set (for `serve --shards N` and tests) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod frontdoor;
pub mod metrics;
pub mod router;
pub mod shards;
pub mod singleflight;

pub use frontdoor::GatewayServer;
pub use router::Router;
pub use shards::LocalShards;

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Backend shard addresses (`host:port`), in shard-index order. The
    /// content-fingerprint routing is `fingerprint % backends.len()`, so
    /// the order must be identical across gateway restarts for affinity
    /// to persist.
    pub backends: Vec<String>,
    /// Maximum requests in flight per shard; the budget admission bound.
    /// A request whose home shard is at its budget is shed, not queued.
    pub inflight_per_shard: usize,
    /// Bounded router queue capacity (requests accepted but not yet
    /// dispatched to a shard, across all connections).
    pub queue_capacity: usize,
    /// Maximum complete lines buffered per client connection; lines over
    /// this depth are shed immediately (in reply order).
    pub max_pending_per_conn: usize,
    /// Router worker threads forwarding requests to shards.
    pub router_threads: usize,
    /// Deadline applied when a request carries no `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Timeout for connecting to (and handshaking with) a shard.
    pub connect_timeout_ms: u64,
    /// Forward a client `shutdown` to every shard, so one request winds
    /// the whole deployment down. Disable when shards are shared.
    pub propagate_shutdown: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            backends: Vec::new(),
            inflight_per_shard: 16,
            queue_capacity: 64,
            max_pending_per_conn: 32,
            router_threads: 8,
            default_deadline_ms: 30_000,
            connect_timeout_ms: 1_000,
            propagate_shutdown: true,
        }
    }
}
