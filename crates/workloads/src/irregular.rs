//! A fixed 41-task irregular application-like graph.
//!
//! The HEFT-era literature evaluates on an irregular 41-node molecular-
//! dynamics task graph (Kim & Browne). The exact node/edge table of that
//! graph is not reproduced here; this module provides a *fixed* irregular
//! 41-task DAG with a comparable profile — uneven branching, a long
//! critical spine, fan-ins up to 4, and mixed task sizes — so experiments
//! have a deterministic irregular instance that is not drawn from the
//! layered random generator.

use rand::Rng;

use hetsched_dag::{Dag, DagBuilder, TaskId};

use crate::ccr::edge_volumes_for_ccr;

/// Edge list of the fixed irregular graph (41 tasks, 61 edges).
const EDGES: &[(u32, u32)] = &[
    // spine: 0 - 3 - 9 - 16 - 24 - 31 - 37 - 40
    (0, 3),
    (3, 9),
    (9, 16),
    (16, 24),
    (24, 31),
    (31, 37),
    (37, 40),
    // early fan-out from the root
    (0, 1),
    (0, 2),
    (0, 4),
    (0, 5),
    (1, 6),
    (1, 7),
    (2, 7),
    (2, 8),
    (4, 10),
    (5, 10),
    (5, 11),
    // mid-graph braids
    (6, 12),
    (7, 12),
    (7, 13),
    (8, 13),
    (8, 14),
    (10, 15),
    (11, 15),
    (12, 17),
    (13, 17),
    (13, 18),
    (14, 18),
    (15, 19),
    (15, 20),
    (9, 17),
    (9, 19),
    (17, 21),
    (18, 22),
    (19, 23),
    (20, 23),
    (21, 25),
    (22, 25),
    (22, 26),
    (23, 27),
    (16, 26),
    (25, 28),
    (26, 29),
    (27, 30),
    (27, 28),
    (28, 32),
    (29, 32),
    (29, 33),
    (30, 34),
    (24, 33),
    (32, 35),
    (33, 35),
    (33, 36),
    (34, 36),
    (35, 38),
    (36, 39),
    (31, 38),
    (38, 40),
    (39, 40),
    (36, 40),
];

/// Task weights (mixed sizes, spine slightly heavier).
const WEIGHTS: &[f64] = &[
    8.0, 3.0, 4.0, 9.0, 2.0, 5.0, 3.0, 6.0, 4.0, 10.0, 5.0, 2.0, 7.0, 4.0, 3.0, 6.0, 9.0, 8.0, 5.0,
    4.0, 2.0, 6.0, 5.0, 7.0, 10.0, 4.0, 3.0, 8.0, 6.0, 5.0, 4.0, 9.0, 7.0, 5.0, 3.0, 8.0, 6.0,
    10.0, 4.0, 3.0, 12.0,
];

/// Build the fixed 41-task irregular DAG with edge volumes scaled to `ccr`.
///
/// The structure and weights are constants; only the per-edge volume split
/// depends on `rng` (totals are exact for the requested CCR).
pub fn irregular41<R: Rng + ?Sized>(ccr: f64, rng: &mut R) -> Dag {
    let mut b = DagBuilder::with_capacity(WEIGHTS.len(), EDGES.len());
    for &w in WEIGHTS {
        b.add_task(w);
    }
    let total: f64 = WEIGHTS.iter().sum();
    let volumes = edge_volumes_for_ccr(total, EDGES.len(), ccr, rng);
    for (k, &(u, v)) in EDGES.iter().enumerate() {
        b.add_edge(TaskId(u), TaskId(v), volumes[k])
            .expect("fixed edge table is valid");
    }
    b.build().expect("fixed irregular graph is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn is_a_41_task_single_entry_single_exit_dag() {
        let mut rng = StdRng::seed_from_u64(1);
        let dag = irregular41(1.0, &mut rng);
        assert_eq!(dag.num_tasks(), 41);
        assert_eq!(dag.entry_tasks().collect::<Vec<_>>(), vec![TaskId(0)]);
        assert_eq!(dag.exit_tasks().collect::<Vec<_>>(), vec![TaskId(40)]);
        assert!(topo::depth(&dag) >= 8, "has a long spine");
        assert!(topo::width(&dag) >= 4, "has wide levels");
    }

    #[test]
    fn structure_is_deterministic_volumes_follow_seed() {
        let a = irregular41(1.0, &mut StdRng::seed_from_u64(5));
        let b = irregular41(1.0, &mut StdRng::seed_from_u64(5));
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!(ea.data, eb.data);
        }
        assert!((a.ccr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weights_match_table() {
        let mut rng = StdRng::seed_from_u64(2);
        let dag = irregular41(0.5, &mut rng);
        assert_eq!(dag.task_weight(TaskId(40)), 12.0);
        assert_eq!(dag.task_weight(TaskId(0)), 8.0);
    }
}
