//! Gaussian-elimination task graph (the application graph of the HEFT
//! evaluation).
//!
//! For an `m × m` matrix, elimination step `k` (0-based, `k < m-1`) has one
//! *pivot* task `P_k` and `m-1-k` *update* tasks `U_{k,j}` (`j > k`):
//!
//! * `P_k → U_{k,j}` for every `j` (the pivot row is broadcast);
//! * `U_{k,k+1} → P_{k+1}` (the next pivot needs the updated column);
//! * `U_{k,j} → U_{k+1,j}` for `j > k+1` (column `j` carries forward).
//!
//! Total tasks: `(m² + m − 2) / 2`. Costs shrink as elimination proceeds:
//! a step-`k` task touches rows of length `m − k`, so its weight is
//! proportional to `m − k` (pivot) or `2(m − k)` (update).

use rand::Rng;

use hetsched_dag::{Dag, DagBuilder, TaskId};

use crate::ccr::edge_volumes_for_ccr;

/// Number of tasks in the Gaussian elimination DAG for matrix size `m`.
pub fn gaussian_task_count(m: usize) -> usize {
    (m * m + m - 2) / 2
}

/// Build the Gaussian-elimination DAG for an `m × m` matrix (`m ≥ 2`),
/// with edge volumes scaled to the target `ccr`.
///
/// # Panics
/// Panics if `m < 2` or `ccr < 0`.
pub fn gaussian_elimination<R: Rng + ?Sized>(m: usize, ccr: f64, rng: &mut R) -> Dag {
    assert!(m >= 2, "Gaussian elimination needs m >= 2, got {m}");
    let steps = m - 1;
    let mut b = DagBuilder::new();

    // ids: pivot[k], update[k][j] for j in k+1..m
    let mut pivot = Vec::with_capacity(steps);
    let mut update: Vec<Vec<TaskId>> = Vec::with_capacity(steps);
    let mut total_weight = 0.0;
    for k in 0..steps {
        let wp = (m - k) as f64;
        total_weight += wp;
        pivot.push(b.add_task(wp));
        let mut row = Vec::with_capacity(m - 1 - k);
        for _j in (k + 1)..m {
            let wu = 2.0 * (m - k) as f64;
            total_weight += wu;
            row.push(b.add_task(wu));
        }
        update.push(row);
    }

    // structural edges
    let mut edges: Vec<(TaskId, TaskId)> = Vec::new();
    for k in 0..steps {
        for (ji, &u) in update[k].iter().enumerate() {
            edges.push((pivot[k], u));
            let j = k + 1 + ji;
            if k + 1 < steps {
                if j == k + 1 {
                    edges.push((u, pivot[k + 1]));
                } else {
                    // U_{k,j} -> U_{k+1,j}; in row k+1, column j sits at
                    // index j - (k + 2)
                    edges.push((u, update[k + 1][j - (k + 2)]));
                }
            }
        }
    }

    let volumes = edge_volumes_for_ccr(total_weight, edges.len(), ccr, rng);
    for (i, &(u, v)) in edges.iter().enumerate() {
        b.add_edge(u, v, volumes[i]).expect("structural edge valid");
    }
    b.build().expect("Gaussian elimination DAG is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::analysis::critical_path;
    use hetsched_dag::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn task_count_formula() {
        let mut rng = StdRng::seed_from_u64(1);
        for m in 2..12 {
            let dag = gaussian_elimination(m, 1.0, &mut rng);
            assert_eq!(dag.num_tasks(), gaussian_task_count(m), "m={m}");
        }
    }

    #[test]
    fn m5_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let dag = gaussian_elimination(5, 0.0, &mut rng);
        // (25 + 5 - 2)/2 = 14 tasks
        assert_eq!(dag.num_tasks(), 14);
        // single entry (P_0), single exit (U_{3,4})
        assert_eq!(dag.entry_tasks().count(), 1);
        assert_eq!(dag.exit_tasks().count(), 1);
        // depth: alternating pivot/update layers = 2(m-1) = 8
        assert_eq!(topo::depth(&dag), 8);
    }

    #[test]
    fn ccr_is_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let dag = gaussian_elimination(8, 3.0, &mut rng);
        assert!((dag.ccr() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_walks_pivot_chain() {
        let mut rng = StdRng::seed_from_u64(4);
        let dag = gaussian_elimination(6, 0.0, &mut rng);
        let (_, path) = critical_path(&dag);
        // with zero comm, the CP alternates pivot/update: 2(m-1) tasks
        assert_eq!(path.len(), 10);
        assert_eq!(path[0], TaskId(0), "starts at P_0");
    }

    #[test]
    #[should_panic(expected = "m >= 2")]
    fn rejects_tiny_matrix() {
        let mut rng = StdRng::seed_from_u64(5);
        gaussian_elimination(1, 1.0, &mut rng);
    }
}
