//! # hetsched-workloads
//!
//! Workload generators for scheduling experiments: the parameterized
//! random DAGs of the Topcuoglu evaluation protocol and the application
//! task graphs the static-scheduling literature reports on.
//!
//! Every generator produces a validated [`hetsched_dag::Dag`] whose task
//! weights are abstract work units and whose edge data volumes are scaled
//! to hit a requested **CCR** (communication-to-computation ratio) under
//! unit-speed processors and unit-bandwidth links, matching how the
//! literature parameterizes experiments.
//!
//! | Generator | Shape |
//! |-----------|-------|
//! | [`random::RandomDagParams`] | layered random DAGs (n, shape α, out-degree, CCR) |
//! | [`gauss::gaussian_elimination`] | Gaussian elimination on an m×m matrix |
//! | [`fft::fft_butterfly`] | FFT butterfly over p points |
//! | [`laplace::laplace_wavefront`] | g×g wavefront sweep (Laplace solver) |
//! | [`cholesky::tiled_cholesky`] | tiled Cholesky factorization (POTRF/TRSM/SYRK/GEMM) |
//! | [`forkjoin::fork_join`] | repeated fork–join sections |
//! | [`stencil::stencil_1d`] | 1-D stencil over time steps |
//! | [`irregular::irregular41`] | a fixed 41-task irregular application-like graph |
//! | [`trees::out_tree`] / [`trees::in_tree`] / [`trees::divide_and_conquer`] | tree-shaped graphs |
//! | [`series_parallel::series_parallel`] | random series–parallel graphs |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod fft;
pub mod forkjoin;
pub mod gauss;
pub mod irregular;
pub mod laplace;
pub mod random;
pub mod series_parallel;
pub mod stencil;
pub mod trees;

pub(crate) mod ccr;

pub use random::{random_dag, RandomDagParams};

#[cfg(test)]
mod proptests;
