//! Repeated fork–join sections — the bulk-synchronous pattern.
//!
//! `sections` sequential phases; phase `s` forks `width` parallel worker
//! tasks between a fork task and a join task (the join of phase `s` is the
//! fork of phase `s + 1`).

use rand::Rng;

use hetsched_dag::{Dag, DagBuilder};

use crate::ccr::edge_volumes_for_ccr;

/// Build a fork–join DAG: `sections` phases of `width` parallel workers.
/// Fork/join tasks have unit weight, workers are uniform in
/// `[0.5, 1.5] × avg_comp`; edge volumes are scaled to `ccr`.
///
/// # Panics
/// Panics if `sections == 0`, `width == 0`, `avg_comp <= 0`, or `ccr < 0`.
pub fn fork_join<R: Rng + ?Sized>(
    sections: usize,
    width: usize,
    avg_comp: f64,
    ccr: f64,
    rng: &mut R,
) -> Dag {
    assert!(sections >= 1, "need at least one section");
    assert!(width >= 1, "need at least one worker per section");
    assert!(avg_comp > 0.0, "avg_comp must be positive");

    let mut b = DagBuilder::new();
    let mut total_weight = 0.0;
    let mut edges = Vec::new();

    let mut sync = b.add_task(1.0); // initial fork
    total_weight += 1.0;
    for _ in 0..sections {
        let workers: Vec<_> = (0..width)
            .map(|_| {
                let w = rng.gen_range(0.5 * avg_comp..1.5 * avg_comp);
                total_weight += w;
                b.add_task(w)
            })
            .collect();
        let join = b.add_task(1.0);
        total_weight += 1.0;
        for &w in &workers {
            edges.push((sync, w));
            edges.push((w, join));
        }
        sync = join;
    }

    let volumes = edge_volumes_for_ccr(total_weight, edges.len(), ccr, rng);
    for (k, &(u, v)) in edges.iter().enumerate() {
        b.add_edge(u, v, volumes[k]).expect("fork-join edge valid");
    }
    b.build().expect("fork-join is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let dag = fork_join(3, 5, 4.0, 1.0, &mut rng);
        // 1 + 3 * (5 + 1) tasks
        assert_eq!(dag.num_tasks(), 19);
        assert_eq!(dag.num_edges(), 3 * 10);
        assert_eq!(topo::depth(&dag), 1 + 2 * 3);
        assert_eq!(topo::width(&dag), 5);
        assert_eq!(dag.entry_tasks().count(), 1);
        assert_eq!(dag.exit_tasks().count(), 1);
    }

    #[test]
    fn single_section_single_worker_is_a_chain() {
        let mut rng = StdRng::seed_from_u64(2);
        let dag = fork_join(1, 1, 2.0, 0.5, &mut rng);
        assert_eq!(dag.num_tasks(), 3);
        assert_eq!(topo::depth(&dag), 3);
        assert!((dag.ccr() - 0.5).abs() < 1e-9);
    }
}
