//! Property-based tests over all generators: structural invariants and
//! parameter fidelity.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_dag::topo;

use crate::cholesky::tiled_cholesky;
use crate::fft::fft_butterfly;
use crate::forkjoin::fork_join;
use crate::gauss::{gaussian_elimination, gaussian_task_count};
use crate::laplace::laplace_wavefront;
use crate::random::{random_dag, RandomDagParams};
use crate::stencil::stencil_1d;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_dag_invariants(
        n in 1usize..150,
        alpha in 0.3f64..3.0,
        ccr in 0.0f64..10.0,
        out_deg in 0usize..6,
        seed in 0u64..100_000,
    ) {
        let params = RandomDagParams {
            n, alpha, ccr,
            max_out_degree: out_deg,
            avg_comp: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&params, &mut rng);
        prop_assert_eq!(dag.num_tasks(), n);
        if dag.num_edges() > 0 {
            prop_assert!((dag.ccr() - ccr).abs() < 1e-6, "ccr {} target {}", dag.ccr(), ccr);
        }
        // weights in the documented band
        for t in dag.task_ids() {
            let w = dag.task_weight(t);
            prop_assert!((5.0..15.0).contains(&w), "weight {}", w);
        }
        // topological order valid (build() guarantees acyclicity; this is a
        // belt-and-braces check of the generator's layering)
        prop_assert!(topo::is_topological(&dag, dag.topo_order()));
    }

    #[test]
    fn gaussian_counts_and_ccr(m in 2usize..15, ccr in 0.0f64..8.0, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = gaussian_elimination(m, ccr, &mut rng);
        prop_assert_eq!(dag.num_tasks(), gaussian_task_count(m));
        if ccr > 0.0 {
            prop_assert!((dag.ccr() - ccr).abs() < 1e-6);
        }
        prop_assert_eq!(dag.entry_tasks().count(), 1);
        prop_assert_eq!(dag.exit_tasks().count(), 1);
    }

    #[test]
    fn fft_structure(levels in 1u32..7, seed in 0u64..1000) {
        let p = 1usize << levels;
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = fft_butterfly(p, 1.0, &mut rng);
        prop_assert_eq!(dag.num_tasks(), p * (levels as usize + 1));
        prop_assert_eq!(dag.num_edges(), 2 * p * levels as usize);
        prop_assert_eq!(topo::width(&dag), p);
    }

    #[test]
    fn wavefront_monotone_parallelism(g in 1usize..12, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = laplace_wavefront(g, 1.0, &mut rng);
        let layers = topo::layers(&dag);
        // wavefront widths ramp 1,2,...,g,...,2,1
        for (l, layer) in layers.iter().enumerate() {
            let expect = if l < g { l + 1 } else { 2 * g - 1 - l };
            prop_assert_eq!(layer.len(), expect, "layer {}", l);
        }
    }

    #[test]
    fn cholesky_single_entry_exit(b in 1usize..8, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = tiled_cholesky(b, 1.0, &mut rng);
        prop_assert_eq!(dag.entry_tasks().count(), 1);
        prop_assert_eq!(dag.exit_tasks().count(), 1);
    }

    #[test]
    fn forkjoin_and_stencil_shapes(
        sections in 1usize..5,
        width in 1usize..8,
        steps in 1usize..6,
        cells in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fj = fork_join(sections, width, 5.0, 1.0, &mut rng);
        prop_assert_eq!(fj.num_tasks(), 1 + sections * (width + 1));
        let st = stencil_1d(steps, cells, 1.0, &mut rng);
        prop_assert_eq!(st.num_tasks(), steps * cells);
        prop_assert_eq!(topo::depth(&st), steps);
    }
}
