//! FFT butterfly task graph.
//!
//! For `p` points (`p` a power of two) the graph has `log₂p + 1` levels of
//! `p` tasks each: level 0 holds the input tasks, and task `(l+1, i)`
//! depends on `(l, i)` and its butterfly partner `(l, i XOR 2^l)`.
//! Total tasks: `p · (log₂p + 1)`; every non-input task has in-degree 2.

use rand::Rng;

use hetsched_dag::{Dag, DagBuilder, TaskId};

use crate::ccr::edge_volumes_for_ccr;

/// Number of tasks in the butterfly DAG for `p` points.
pub fn fft_task_count(p: usize) -> usize {
    p * (p.trailing_zeros() as usize + 1)
}

/// Build the FFT butterfly DAG over `p` points (`p ≥ 2`, power of two),
/// with unit-cost butterflies and edge volumes scaled to `ccr`.
///
/// # Panics
/// Panics if `p < 2` or `p` is not a power of two, or `ccr < 0`.
pub fn fft_butterfly<R: Rng + ?Sized>(p: usize, ccr: f64, rng: &mut R) -> Dag {
    assert!(
        p >= 2 && p.is_power_of_two(),
        "p must be a power of two >= 2, got {p}"
    );
    let levels = p.trailing_zeros() as usize; // log2(p)
    let mut b = DagBuilder::with_capacity(p * (levels + 1), 2 * p * levels);

    // one task per (level, index); all unit weight
    let id = |l: usize, i: usize| TaskId((l * p + i) as u32);
    for _ in 0..p * (levels + 1) {
        b.add_task(1.0);
    }
    let total_weight = (p * (levels + 1)) as f64;

    let mut edges: Vec<(TaskId, TaskId)> = Vec::with_capacity(2 * p * levels);
    for l in 0..levels {
        let stride = 1usize << l;
        for i in 0..p {
            edges.push((id(l, i), id(l + 1, i)));
            edges.push((id(l, i ^ stride), id(l + 1, i)));
        }
    }
    let volumes = edge_volumes_for_ccr(total_weight, edges.len(), ccr, rng);
    for (k, &(u, v)) in edges.iter().enumerate() {
        b.add_edge(u, v, volumes[k]).expect("butterfly edge valid");
    }
    b.build().expect("butterfly is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_and_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2usize, 4, 8, 16, 32] {
            let dag = fft_butterfly(p, 1.0, &mut rng);
            assert_eq!(dag.num_tasks(), fft_task_count(p), "p={p}");
            let levels = p.trailing_zeros() as usize + 1;
            assert_eq!(topo::depth(&dag), levels);
            assert_eq!(topo::width(&dag), p);
            // every non-input task has exactly two parents
            for t in dag.task_ids() {
                let l = t.index() / p;
                if l > 0 {
                    assert_eq!(dag.in_degree(t), 2, "task {t}");
                }
            }
        }
    }

    #[test]
    fn butterfly_partners_are_correct_for_p4() {
        let mut rng = StdRng::seed_from_u64(2);
        let dag = fft_butterfly(4, 0.0, &mut rng);
        // level 1, index 0 depends on level-0 indices 0 and 1
        let preds: Vec<u32> = dag.predecessors(TaskId(4)).map(|(t, _)| t.0).collect();
        assert_eq!(preds, vec![0, 1]);
        // level 2, index 0 depends on level-1 indices 0 and 2
        let preds: Vec<u32> = dag.predecessors(TaskId(8)).map(|(t, _)| t.0).collect();
        assert_eq!(preds, vec![4, 6]);
    }

    #[test]
    fn ccr_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let dag = fft_butterfly(16, 5.0, &mut rng);
        assert!((dag.ccr() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut rng = StdRng::seed_from_u64(4);
        fft_butterfly(12, 1.0, &mut rng);
    }
}
