//! Tiled Cholesky factorization task graph (right-looking variant), the
//! dense-linear-algebra workload of modern runtime-scheduling papers.
//!
//! For `b × b` tiles, iteration `k` spawns:
//!
//! * `POTRF(k)` — factor the diagonal tile; depends on `SYRK(k, j)` for all
//!   `j < k`;
//! * `TRSM(i, k)` for `i > k` — triangular solve of panel tile `i`;
//!   depends on `POTRF(k)` and `GEMM(i, k, j)` for all `j < k`;
//! * `SYRK(i, k)` for `i > k` — symmetric update of diagonal tile `i`;
//!   depends on `TRSM(i, k)`;
//! * `GEMM(i, j, k)` for `i > j > k` — update of interior tile `(i, j)`;
//!   depends on `TRSM(i, k)` and `TRSM(j, k)`.
//!
//! Kernel weights follow the classic flop ratios (`POTRF 1/3, TRSM 1,
//! SYRK 1, GEMM 2` per tile, scaled ×3 to integers).

use rand::Rng;

use hetsched_dag::{Dag, DagBuilder, TaskId};

use crate::ccr::edge_volumes_for_ccr;

/// Number of tasks in the tiled Cholesky DAG for `b` tiles.
pub fn cholesky_task_count(b: usize) -> usize {
    let gemm = if b >= 3 { b * (b - 1) * (b - 2) / 6 } else { 0 };
    b + b * b.saturating_sub(1) + gemm
}

/// Build the tiled Cholesky DAG for `b ≥ 1` tiles with edge volumes scaled
/// to `ccr`.
///
/// # Panics
/// Panics if `b == 0` or `ccr < 0`.
#[allow(clippy::needless_range_loop)] // j indexes parallel kernel tables, matching the math
pub fn tiled_cholesky<R: Rng + ?Sized>(b: usize, ccr: f64, rng: &mut R) -> Dag {
    assert!(b >= 1, "need at least one tile");
    let mut builder = DagBuilder::new();
    let mut total_weight = 0.0;
    let add = |builder: &mut DagBuilder, w: f64, total: &mut f64| {
        *total += w;
        builder.add_task(w)
    };

    // id tables
    let mut potrf = vec![None::<TaskId>; b];
    let mut trsm = vec![vec![None::<TaskId>; b]; b]; // [i][k]
    let mut syrk = vec![vec![None::<TaskId>; b]; b]; // [i][k]
    let mut gemm = vec![vec![vec![None::<TaskId>; b]; b]; b]; // [i][j][k]

    let mut edges: Vec<(TaskId, TaskId)> = Vec::new();
    for k in 0..b {
        let p = add(&mut builder, 1.0, &mut total_weight);
        potrf[k] = Some(p);
        for j in 0..k {
            edges.push((syrk[k][j].expect("SYRK(k,j) exists"), p));
        }
        for i in (k + 1)..b {
            let t = add(&mut builder, 3.0, &mut total_weight);
            trsm[i][k] = Some(t);
            edges.push((p, t));
            for j in 0..k {
                edges.push((gemm[i][k][j].expect("GEMM(i,k,j) exists"), t));
            }
        }
        for i in (k + 1)..b {
            let s = add(&mut builder, 3.0, &mut total_weight);
            syrk[i][k] = Some(s);
            edges.push((trsm[i][k].expect("TRSM(i,k) exists"), s));
            if k > 0 {
                // serialize successive updates of diagonal tile i
                edges.push((syrk[i][k - 1].expect("SYRK(i,k-1) exists"), s));
            }
        }
        for i in (k + 1)..b {
            for j in (k + 1)..i {
                let g = add(&mut builder, 6.0, &mut total_weight);
                gemm[i][j][k] = Some(g);
                edges.push((trsm[i][k].expect("TRSM(i,k)"), g));
                edges.push((trsm[j][k].expect("TRSM(j,k)"), g));
                if k > 0 {
                    edges.push((gemm[i][j][k - 1].expect("GEMM(i,j,k-1)"), g));
                }
            }
        }
    }

    let volumes = edge_volumes_for_ccr(total_weight, edges.len(), ccr, rng);
    for (idx, &(u, v)) in edges.iter().enumerate() {
        builder
            .add_edge(u, v, volumes[idx])
            .expect("Cholesky structural edge valid");
    }
    builder.build().expect("tiled Cholesky is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn task_count_formula() {
        let mut rng = StdRng::seed_from_u64(1);
        for b in 1..8 {
            let dag = tiled_cholesky(b, 1.0, &mut rng);
            assert_eq!(dag.num_tasks(), cholesky_task_count(b), "b={b}");
        }
    }

    #[test]
    fn b1_is_a_single_potrf() {
        let mut rng = StdRng::seed_from_u64(2);
        let dag = tiled_cholesky(1, 1.0, &mut rng);
        assert_eq!(dag.num_tasks(), 1);
        assert_eq!(dag.num_edges(), 0);
    }

    #[test]
    fn b3_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let dag = tiled_cholesky(3, 0.0, &mut rng);
        // 3 potrf + 6 trsm/syrk... count: 3 + 3*2 + 3*2*1/6 = 3 + 6 + 1 = 10
        assert_eq!(dag.num_tasks(), 10);
        // first POTRF is the single entry
        assert_eq!(dag.entry_tasks().count(), 1);
        // last POTRF is the single exit
        assert_eq!(dag.exit_tasks().count(), 1);
        // depth grows with k: potrf -> trsm -> {syrk,gemm} -> potrf ...
        assert!(topo::depth(&dag) >= 7, "depth {}", topo::depth(&dag));
    }

    #[test]
    fn ccr_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        let dag = tiled_cholesky(5, 2.0, &mut rng);
        assert!((dag.ccr() - 2.0).abs() < 1e-9);
    }
}
