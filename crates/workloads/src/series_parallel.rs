//! Random series–parallel task graphs.
//!
//! Built by recursive expansion: start from a single edge and repeatedly
//! replace a random edge by either a *series* composition (`u → w → v`)
//! or a *parallel* composition (a second `u → v` branch through a fresh
//! task). SP graphs are the structured-programming subset of DAGs —
//! several scheduling results are exact on them, which makes them a
//! useful stress class distinct from layered random graphs.

use rand::Rng;

use hetsched_dag::{Dag, DagBuilder, TaskId};

use crate::ccr::edge_volumes_for_ccr;

/// Generate a series–parallel DAG with `n ≥ 2` tasks (source and sink
/// included); `series_prob ∈ [0, 1]` biases expansion toward chains
/// (1.0 → a pure chain, 0.0 → maximal branching). Task weights uniform in
/// `[0.5, 1.5] × avg_comp`, edge volumes scaled to `ccr`.
///
/// # Panics
/// Panics if `n < 2`, `series_prob ∉ [0, 1]`, `avg_comp <= 0`, or
/// `ccr < 0`.
pub fn series_parallel<R: Rng + ?Sized>(
    n: usize,
    series_prob: f64,
    avg_comp: f64,
    ccr: f64,
    rng: &mut R,
) -> Dag {
    assert!(
        n >= 2,
        "series-parallel graph needs at least source and sink"
    );
    assert!(
        (0.0..=1.0).contains(&series_prob),
        "series_prob must be in [0, 1]"
    );
    assert!(avg_comp > 0.0, "avg_comp must be positive");

    // tasks 0 (source) and 1 (sink); structural edge list grows by
    // replacement
    let mut weights: Vec<f64> = Vec::with_capacity(n);
    let w = |rng: &mut R, weights: &mut Vec<f64>| -> u32 {
        weights.push(rng.gen_range(0.5 * avg_comp..1.5 * avg_comp));
        (weights.len() - 1) as u32
    };
    let src = w(rng, &mut weights);
    let snk = w(rng, &mut weights);
    let mut edges: Vec<(u32, u32)> = vec![(src, snk)];

    while weights.len() < n {
        let ei = rng.gen_range(0..edges.len());
        let (u, v) = edges[ei];
        let fresh = w(rng, &mut weights);
        if rng.gen::<f64>() < series_prob {
            // series: u -> fresh -> v replaces u -> v
            edges.swap_remove(ei);
            edges.push((u, fresh));
            edges.push((fresh, v));
        } else {
            // parallel: add a second branch u -> fresh -> v
            edges.push((u, fresh));
            edges.push((fresh, v));
        }
    }
    // dedup possible duplicate (u, v) pairs created by parallel expansion
    edges.sort_unstable();
    edges.dedup();

    let mut b = DagBuilder::with_capacity(weights.len(), edges.len());
    for &x in &weights {
        b.add_task(x);
    }
    let volumes = edge_volumes_for_ccr(weights.iter().sum(), edges.len(), ccr, rng);
    for (k, &(u, v)) in edges.iter().enumerate() {
        b.add_edge(TaskId(u), TaskId(v), volumes[k])
            .expect("SP edge valid");
    }
    b.build().expect("series-parallel construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::analysis::Reachability;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn has_single_source_and_sink() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 5, 20, 60] {
            let g = series_parallel(n, 0.5, 5.0, 1.0, &mut rng);
            assert_eq!(g.num_tasks(), n, "n={n}");
            assert_eq!(g.entry_tasks().count(), 1, "n={n}");
            assert_eq!(g.exit_tasks().count(), 1, "n={n}");
            // everything lies between source and sink
            let r = Reachability::new(&g);
            let src = g.entry_tasks().next().unwrap();
            let snk = g.exit_tasks().next().unwrap();
            for t in g.task_ids() {
                if t != src {
                    assert!(r.reaches(src, t), "source reaches {t}");
                }
                if t != snk {
                    assert!(r.reaches(t, snk), "{t} reaches sink");
                }
            }
        }
    }

    #[test]
    fn series_prob_one_gives_a_chain() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = series_parallel(10, 1.0, 5.0, 0.5, &mut rng);
        assert_eq!(hetsched_dag::topo::depth(&g), 10);
        assert_eq!(hetsched_dag::topo::width(&g), 1);
    }

    #[test]
    fn series_prob_zero_is_wider_and_shallower_than_one() {
        // parallel expansion may pick branch edges and nest, so the graph
        // is not a flat 3-level fan — but it must still be strictly wider
        // and shallower than the pure chain. Width >= 3 is distributional
        // (an unlucky seed can nest every branch), so assert it over a
        // handful of seeds rather than pinning one RNG stream.
        let mut saw_width_3 = 0;
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let wide = series_parallel(12, 0.0, 5.0, 0.5, &mut rng);
            let chain = series_parallel(12, 1.0, 5.0, 0.5, &mut rng);
            assert!(hetsched_dag::topo::width(&wide) > hetsched_dag::topo::width(&chain));
            assert!(hetsched_dag::topo::depth(&wide) < hetsched_dag::topo::depth(&chain));
            if hetsched_dag::topo::width(&wide) >= 3 {
                saw_width_3 += 1;
            }
        }
        assert!(
            saw_width_3 >= 4,
            "only {saw_width_3}/8 seeds reached width 3"
        );
    }

    #[test]
    fn ccr_is_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = series_parallel(30, 0.5, 5.0, 3.0, &mut rng);
        assert!((g.ccr() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn minimal_graph_is_an_edge() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = series_parallel(2, 0.5, 5.0, 1.0, &mut rng);
        assert_eq!(g.num_tasks(), 2);
        assert_eq!(g.num_edges(), 1);
    }
}
