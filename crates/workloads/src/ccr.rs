//! Internal helper: scale edge data volumes to hit a target CCR.

use rand::Rng;

/// Given a DAG structure with computed task weights, return per-edge data
/// volumes whose total is `ccr × total_weight`, each drawn uniformly in
/// `[0.5, 1.5] ×` the mean edge volume (then rescaled exactly).
///
/// Returns an empty vector when there are no edges; a zero `ccr` yields
/// all-zero volumes.
pub fn edge_volumes_for_ccr<R: Rng + ?Sized>(
    total_weight: f64,
    n_edges: usize,
    ccr: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(ccr >= 0.0, "CCR must be non-negative, got {ccr}");
    if n_edges == 0 {
        return Vec::new();
    }
    if ccr == 0.0 {
        return vec![0.0; n_edges];
    }
    let mean = ccr * total_weight / n_edges as f64;
    let mut v: Vec<f64> = (0..n_edges)
        .map(|_| rng.gen_range(0.5 * mean..1.5 * mean))
        .collect();
    // rescale so the total is exact (keeps experiment CCRs precise)
    let sum: f64 = v.iter().sum();
    let k = ccr * total_weight / sum;
    for x in &mut v {
        *x *= k;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn total_matches_target_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = edge_volumes_for_ccr(100.0, 37, 2.5, &mut rng);
        assert_eq!(v.len(), 37);
        let total: f64 = v.iter().sum();
        assert!((total - 250.0).abs() < 1e-9, "total {total}");
        assert!(v.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn zero_ccr_and_no_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(edge_volumes_for_ccr(100.0, 5, 0.0, &mut rng)
            .iter()
            .all(|&x| x == 0.0));
        assert!(edge_volumes_for_ccr(100.0, 0, 3.0, &mut rng).is_empty());
    }
}
