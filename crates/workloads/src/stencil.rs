//! 1-D stencil over time: `steps` time levels of `cells` tasks; task
//! `(t+1, i)` depends on `(t, i−1)`, `(t, i)`, `(t, i+1)` (clamped at the
//! boundary). The nearest-neighbour exchange pattern of explicit PDE
//! solvers.

use rand::Rng;

use hetsched_dag::{Dag, DagBuilder, TaskId};

use crate::ccr::edge_volumes_for_ccr;

/// Build the stencil DAG (`steps ≥ 1` time levels × `cells ≥ 1` cells),
/// unit task weights, edge volumes scaled to `ccr`.
///
/// # Panics
/// Panics if `steps == 0`, `cells == 0`, or `ccr < 0`.
pub fn stencil_1d<R: Rng + ?Sized>(steps: usize, cells: usize, ccr: f64, rng: &mut R) -> Dag {
    assert!(
        steps >= 1 && cells >= 1,
        "stencil needs positive dimensions"
    );
    let id = |t: usize, i: usize| TaskId((t * cells + i) as u32);
    let mut b = DagBuilder::with_capacity(steps * cells, 3 * steps * cells);
    for _ in 0..steps * cells {
        b.add_task(1.0);
    }
    let mut edges = Vec::new();
    for t in 0..steps - 1 {
        for i in 0..cells {
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(cells - 1);
            for j in lo..=hi {
                edges.push((id(t, j), id(t + 1, i)));
            }
        }
    }
    let volumes = edge_volumes_for_ccr((steps * cells) as f64, edges.len(), ccr, rng);
    for (k, &(u, v)) in edges.iter().enumerate() {
        b.add_edge(u, v, volumes[k]).expect("stencil edge valid");
    }
    b.build().expect("stencil is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let dag = stencil_1d(4, 6, 1.0, &mut rng);
        assert_eq!(dag.num_tasks(), 24);
        assert_eq!(topo::depth(&dag), 4);
        assert_eq!(topo::width(&dag), 6);
        // interior cell has 3 parents, boundary 2
        assert_eq!(dag.in_degree(TaskId(6 + 2)), 3);
        assert_eq!(dag.in_degree(TaskId(6)), 2);
    }

    #[test]
    fn single_cell_is_a_chain() {
        let mut rng = StdRng::seed_from_u64(2);
        let dag = stencil_1d(5, 1, 1.0, &mut rng);
        assert_eq!(dag.num_tasks(), 5);
        assert_eq!(topo::depth(&dag), 5);
        assert_eq!(dag.num_edges(), 4);
    }

    #[test]
    fn single_step_has_no_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        let dag = stencil_1d(1, 8, 1.0, &mut rng);
        assert_eq!(dag.num_edges(), 0);
        assert_eq!(dag.entry_tasks().count(), 8);
    }
}
