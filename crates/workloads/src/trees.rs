//! Tree-shaped task graphs: out-trees (divide), in-trees (conquer), and
//! their composition (divide-and-conquer). Trees are the workloads where
//! task duplication provably helps most — every in-tree join is a
//! communication funnel.

use rand::Rng;

use hetsched_dag::{Dag, DagBuilder, TaskId};

use crate::ccr::edge_volumes_for_ccr;

/// Complete out-tree (root fans out): `depth` levels with branching
/// factor `fanout`; tasks uniform in `[0.5, 1.5] × avg_comp`, edge
/// volumes scaled to `ccr`.
///
/// Task count: `(fanout^depth − 1) / (fanout − 1)` (or `depth` for
/// `fanout == 1`).
///
/// # Panics
/// Panics if `depth == 0`, `fanout == 0`, `avg_comp <= 0`, or `ccr < 0`.
pub fn out_tree<R: Rng + ?Sized>(
    depth: usize,
    fanout: usize,
    avg_comp: f64,
    ccr: f64,
    rng: &mut R,
) -> Dag {
    assert!(depth >= 1 && fanout >= 1, "tree needs positive dimensions");
    assert!(avg_comp > 0.0, "avg_comp must be positive");
    let mut b = DagBuilder::new();
    let mut total = 0.0;
    let mut level: Vec<TaskId> = vec![{
        let w = rng.gen_range(0.5 * avg_comp..1.5 * avg_comp);
        total += w;
        b.add_task(w)
    }];
    let mut edges: Vec<(TaskId, TaskId)> = Vec::new();
    for _ in 1..depth {
        let mut next = Vec::with_capacity(level.len() * fanout);
        for &parent in &level {
            for _ in 0..fanout {
                let w = rng.gen_range(0.5 * avg_comp..1.5 * avg_comp);
                total += w;
                let c = b.add_task(w);
                edges.push((parent, c));
                next.push(c);
            }
        }
        level = next;
    }
    let volumes = edge_volumes_for_ccr(total, edges.len(), ccr, rng);
    for (k, &(u, v)) in edges.iter().enumerate() {
        b.add_edge(u, v, volumes[k]).expect("tree edge valid");
    }
    b.build().expect("tree is acyclic")
}

/// Complete in-tree: the mirror of [`out_tree`] (leaves reduce toward a
/// single root at the bottom).
///
/// # Panics
/// Same conditions as [`out_tree`].
pub fn in_tree<R: Rng + ?Sized>(
    depth: usize,
    fanout: usize,
    avg_comp: f64,
    ccr: f64,
    rng: &mut R,
) -> Dag {
    // build the out-tree structure, then reverse every edge
    let out = out_tree(depth, fanout, avg_comp, ccr, rng);
    let mut b = DagBuilder::with_capacity(out.num_tasks(), out.num_edges());
    for t in out.task_ids() {
        b.add_task(out.task_weight(t));
    }
    for e in out.edges() {
        b.add_edge(e.dst, e.src, e.data)
            .expect("reversed edge valid");
    }
    b.build().expect("reversed tree is acyclic")
}

/// Divide-and-conquer: an out-tree glued to an in-tree at the leaves
/// (fork to `fanout^(depth−1)` leaves, compute, reduce back).
///
/// # Panics
/// Same conditions as [`out_tree`].
pub fn divide_and_conquer<R: Rng + ?Sized>(
    depth: usize,
    fanout: usize,
    avg_comp: f64,
    ccr: f64,
    rng: &mut R,
) -> Dag {
    assert!(depth >= 1 && fanout >= 1, "tree needs positive dimensions");
    assert!(avg_comp > 0.0, "avg_comp must be positive");
    let mut b = DagBuilder::new();
    let mut total = 0.0;
    let w = |b: &mut DagBuilder, total: &mut f64, rng: &mut R| {
        let x = rng.gen_range(0.5 * avg_comp..1.5 * avg_comp);
        *total += x;
        b.add_task(x)
    };
    let mut edges: Vec<(TaskId, TaskId)> = Vec::new();

    // divide phase
    let mut level = vec![w(&mut b, &mut total, rng)];
    let mut fork_levels = vec![level.clone()];
    for _ in 1..depth {
        let mut next = Vec::new();
        for &parent in &level {
            for _ in 0..fanout {
                let c = w(&mut b, &mut total, rng);
                edges.push((parent, c));
                next.push(c);
            }
        }
        fork_levels.push(next.clone());
        level = next;
    }
    // conquer phase: mirror the fork levels back down
    for lvl in (1..fork_levels.len()).rev() {
        let children = &fork_levels[lvl];
        let joins: Vec<TaskId> = (0..fork_levels[lvl - 1].len())
            .map(|_| w(&mut b, &mut total, rng))
            .collect();
        for (ci, &c) in children.iter().enumerate() {
            edges.push((c, joins[ci / fanout]));
        }
        // replacing the level with its join layer makes the next
        // (shallower) iteration reduce joins into joins, mirroring the
        // fork phase exactly
        fork_levels[lvl - 1] = joins;
    }

    let volumes = edge_volumes_for_ccr(total, edges.len(), ccr, rng);
    for (k, &(u, v)) in edges.iter().enumerate() {
        b.add_edge(u, v, volumes[k]).expect("d&c edge valid");
    }
    b.build().expect("divide-and-conquer is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn out_tree_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = out_tree(4, 2, 5.0, 1.0, &mut rng);
        assert_eq!(t.num_tasks(), 15); // 1 + 2 + 4 + 8
        assert_eq!(t.entry_tasks().count(), 1);
        assert_eq!(t.exit_tasks().count(), 8);
        assert_eq!(topo::depth(&t), 4);
        for task in t.task_ids() {
            assert!(t.out_degree(task) == 2 || t.is_exit(task));
            assert!(t.in_degree(task) <= 1);
        }
    }

    #[test]
    fn in_tree_is_the_mirror() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = in_tree(3, 3, 5.0, 1.0, &mut rng);
        assert_eq!(t.num_tasks(), 13); // 1 + 3 + 9
        assert_eq!(t.entry_tasks().count(), 9);
        assert_eq!(t.exit_tasks().count(), 1);
        for task in t.task_ids() {
            assert!(t.in_degree(task) == 3 || t.is_entry(task));
        }
    }

    #[test]
    fn fanout_one_is_a_chain() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = out_tree(5, 1, 5.0, 0.5, &mut rng);
        assert_eq!(t.num_tasks(), 5);
        assert_eq!(topo::depth(&t), 5);
        assert!((t.ccr() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn divide_and_conquer_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = divide_and_conquer(3, 2, 5.0, 1.0, &mut rng);
        // fork: 1 + 2 + 4 = 7; joins: 2 + 1 = 3 -> 10 tasks
        assert_eq!(t.num_tasks(), 10);
        assert_eq!(t.entry_tasks().count(), 1);
        assert_eq!(t.exit_tasks().count(), 1);
        assert_eq!(topo::depth(&t), 5); // fork 3 levels + join 2 levels
        assert!((t.ccr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_level_degenerates_to_one_task() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(out_tree(1, 4, 5.0, 1.0, &mut rng).num_tasks(), 1);
        assert_eq!(divide_and_conquer(1, 4, 5.0, 1.0, &mut rng).num_tasks(), 1);
    }
}
