//! Laplace-solver wavefront task graph.
//!
//! One sweep of a Gauss–Seidel style Laplace solver over a `g × g` grid:
//! cell `(i, j)` depends on its west neighbour `(i, j−1)` and north
//! neighbour `(i−1, j)`. The result is the classic wavefront (diamond)
//! DAG: depth `2g − 1`, width `g`.

use rand::Rng;

use hetsched_dag::{Dag, DagBuilder, TaskId};

use crate::ccr::edge_volumes_for_ccr;

/// Build the `g × g` wavefront DAG (`g ≥ 1`) with unit task weights and
/// edge volumes scaled to `ccr`.
///
/// # Panics
/// Panics if `g == 0` or `ccr < 0`.
pub fn laplace_wavefront<R: Rng + ?Sized>(g: usize, ccr: f64, rng: &mut R) -> Dag {
    assert!(g >= 1, "grid must be non-empty");
    let id = |i: usize, j: usize| TaskId((i * g + j) as u32);
    let mut b = DagBuilder::with_capacity(g * g, 2 * g * (g - 1));
    for _ in 0..g * g {
        b.add_task(1.0);
    }
    let mut edges: Vec<(TaskId, TaskId)> = Vec::new();
    for i in 0..g {
        for j in 0..g {
            if j + 1 < g {
                edges.push((id(i, j), id(i, j + 1)));
            }
            if i + 1 < g {
                edges.push((id(i, j), id(i + 1, j)));
            }
        }
    }
    let volumes = edge_volumes_for_ccr((g * g) as f64, edges.len(), ccr, rng);
    for (k, &(u, v)) in edges.iter().enumerate() {
        b.add_edge(u, v, volumes[k]).expect("grid edge valid");
    }
    b.build().expect("wavefront is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::analysis::critical_path;
    use hetsched_dag::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape() {
        let mut rng = StdRng::seed_from_u64(1);
        for g in [1usize, 2, 4, 7] {
            let dag = laplace_wavefront(g, 1.0, &mut rng);
            assert_eq!(dag.num_tasks(), g * g);
            assert_eq!(dag.num_edges(), 2 * g * (g - 1));
            assert_eq!(topo::depth(&dag), 2 * g - 1);
            assert_eq!(topo::width(&dag), g);
            assert_eq!(dag.entry_tasks().count(), 1);
            assert_eq!(dag.exit_tasks().count(), 1);
        }
    }

    #[test]
    fn critical_path_is_the_anti_diagonal_walk() {
        let mut rng = StdRng::seed_from_u64(2);
        let dag = laplace_wavefront(5, 0.0, &mut rng);
        let (len, path) = critical_path(&dag);
        assert_eq!(len, 9.0, "2g - 1 unit tasks");
        assert_eq!(path.len(), 9);
        assert_eq!(path[0], TaskId(0));
        assert_eq!(path[8], TaskId(24));
    }

    #[test]
    fn interior_cells_have_two_parents() {
        let mut rng = StdRng::seed_from_u64(3);
        let dag = laplace_wavefront(4, 1.0, &mut rng);
        // cell (1,1) = id 5
        assert_eq!(dag.in_degree(TaskId(5)), 2);
        assert_eq!(dag.out_degree(TaskId(5)), 2);
    }
}
