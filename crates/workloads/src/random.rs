//! Parameterized random DAGs per the Topcuoglu et al. evaluation protocol.
//!
//! A graph is drawn in layers: the depth is `⌈√n / α⌉` on average (large
//! `α` ⇒ short and wide ⇒ high parallelism; small `α` ⇒ long and narrow),
//! tasks are spread over the layers, every non-entry task gets at least
//! one parent in an earlier layer (so the graph is a single rooted DAG up
//! to the random extra edges), and additional forward edges are added up
//! to the out-degree limit. Edge data volumes are scaled to the requested
//! CCR.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hetsched_dag::{Dag, DagBuilder, TaskId};

use crate::ccr::edge_volumes_for_ccr;

/// Parameters of the random-DAG generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomDagParams {
    /// Number of tasks (≥ 1).
    pub n: usize,
    /// Shape parameter `α > 0`: mean depth is `√n / α`.
    pub alpha: f64,
    /// Maximum extra out-degree per task (the guaranteed parent edge does
    /// not count toward this limit).
    pub max_out_degree: usize,
    /// Target communication-to-computation ratio (≥ 0).
    pub ccr: f64,
    /// Mean task computation weight (> 0); weights are uniform in
    /// `[0.5, 1.5] ×` this.
    pub avg_comp: f64,
}

impl Default for RandomDagParams {
    fn default() -> Self {
        RandomDagParams {
            n: 100,
            alpha: 1.0,
            max_out_degree: 4,
            ccr: 1.0,
            avg_comp: 10.0,
        }
    }
}

impl RandomDagParams {
    /// Convenience constructor for the common sweep axes.
    pub fn new(n: usize, alpha: f64, ccr: f64) -> Self {
        RandomDagParams {
            n,
            alpha,
            ccr,
            ..Default::default()
        }
    }
}

/// Generate one random DAG.
///
/// ```
/// use hetsched_workloads::{random_dag, RandomDagParams};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let dag = random_dag(&RandomDagParams::new(50, 1.0, 2.0), &mut rng);
/// assert_eq!(dag.num_tasks(), 50);
/// assert!((dag.ccr() - 2.0).abs() < 1e-9);
/// ```
///
/// # Panics
/// Panics on invalid parameters (`n == 0`, `alpha <= 0`, `ccr < 0`,
/// `avg_comp <= 0`).
pub fn random_dag<R: Rng + ?Sized>(params: &RandomDagParams, rng: &mut R) -> Dag {
    let &RandomDagParams {
        n,
        alpha,
        max_out_degree,
        ccr,
        avg_comp,
    } = params;
    assert!(n >= 1, "need at least one task");
    assert!(alpha > 0.0, "alpha must be positive, got {alpha}");
    assert!(ccr >= 0.0, "ccr must be non-negative, got {ccr}");
    assert!(avg_comp > 0.0, "avg_comp must be positive, got {avg_comp}");

    // --- layer structure -------------------------------------------------
    let mean_depth = ((n as f64).sqrt() / alpha).round().max(1.0) as usize;
    let depth = mean_depth.min(n);
    // every layer gets one task; the rest are spread uniformly
    let mut layer_of: Vec<usize> = (0..depth).collect();
    for _ in depth..n {
        layer_of.push(rng.gen_range(0..depth));
    }
    layer_of.sort_unstable();
    // layer_sizes / layer_start for indexed access
    let mut layer_start = vec![0usize; depth + 1];
    for &l in &layer_of {
        layer_start[l + 1] += 1;
    }
    for l in 0..depth {
        layer_start[l + 1] += layer_start[l];
    }
    let layer_range = |l: usize| layer_start[l]..layer_start[l + 1];

    // --- edges ------------------------------------------------------------
    // (1) connectivity: every task in layer l > 0 gets a parent in layer l-1
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for l in 1..depth {
        for i in layer_range(l) {
            let prev = layer_range(l - 1);
            let p = rng.gen_range(prev.start..prev.end);
            edges.push((p as u32, i as u32));
        }
    }
    // (2) extra forward edges up to the out-degree limit
    let mut edge_set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
    let mut extra_out = vec![0usize; n];
    if depth > 1 && max_out_degree > 0 {
        for l in 0..depth - 1 {
            for i in layer_range(l) {
                let budget = rng.gen_range(0..=max_out_degree);
                for _ in 0..budget {
                    if extra_out[i] >= max_out_degree {
                        break;
                    }
                    // pick a target in a strictly later layer
                    let tl = rng.gen_range(l + 1..depth);
                    let tr = layer_range(tl);
                    let t = rng.gen_range(tr.start..tr.end);
                    if edge_set.insert((i as u32, t as u32)) {
                        edges.push((i as u32, t as u32));
                        extra_out[i] += 1;
                    }
                }
            }
        }
    }

    // --- weights, then edge volumes for the target CCR --------------------
    // One deterministic RNG pass: structure first, then weights, then
    // volumes.
    let mut b = DagBuilder::with_capacity(n, edges.len());
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        let w = rng.gen_range(0.5 * avg_comp..1.5 * avg_comp);
        weights.push(w);
        b.add_task(w);
    }
    let volumes = edge_volumes_for_ccr(weights.iter().sum(), edges.len(), ccr, rng);
    for (k, &(u, v)) in edges.iter().enumerate() {
        b.add_edge(TaskId(u), TaskId(v), volumes[k])
            .expect("generator edges are valid");
    }
    b.build().expect("layered edges are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_task_count_and_ccr() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = RandomDagParams::new(120, 1.0, 2.0);
        let dag = random_dag(&p, &mut rng);
        assert_eq!(dag.num_tasks(), 120);
        assert!((dag.ccr() - 2.0).abs() < 1e-9, "ccr {}", dag.ccr());
    }

    #[test]
    fn alpha_controls_depth() {
        let mut rng = StdRng::seed_from_u64(4);
        let deep = random_dag(&RandomDagParams::new(100, 0.5, 1.0), &mut rng);
        let wide = random_dag(&RandomDagParams::new(100, 2.0, 1.0), &mut rng);
        assert!(
            topo::depth(&deep) > topo::depth(&wide),
            "deep {} vs wide {}",
            topo::depth(&deep),
            topo::depth(&wide)
        );
        assert!(topo::width(&wide) > topo::width(&deep));
    }

    #[test]
    fn single_entry_layer_connectivity() {
        let mut rng = StdRng::seed_from_u64(5);
        let dag = random_dag(&RandomDagParams::new(80, 1.0, 1.0), &mut rng);
        // every non-first-layer task has at least one parent
        let levels = topo::asap_levels(&dag);
        for t in dag.task_ids() {
            if levels[t.index()] > 0 {
                assert!(dag.in_degree(t) >= 1, "{t} disconnected");
            }
        }
    }

    #[test]
    fn is_reproducible_from_seed() {
        let p = RandomDagParams::new(60, 1.0, 0.5);
        let a = random_dag(&p, &mut StdRng::seed_from_u64(9));
        let b = random_dag(&p, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!((ea.src, ea.dst), (eb.src, eb.dst));
            assert_eq!(ea.data, eb.data);
        }
    }

    #[test]
    fn tiny_graphs_work() {
        let mut rng = StdRng::seed_from_u64(6);
        for n in [1usize, 2, 3] {
            let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
            assert_eq!(dag.num_tasks(), n);
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_bad_alpha() {
        let mut rng = StdRng::seed_from_u64(7);
        random_dag(&RandomDagParams::new(10, 0.0, 1.0), &mut rng);
    }
}
