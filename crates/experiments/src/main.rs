//! `hetsched-exp` — the experiment harness.
//!
//! Regenerates every table and figure of the evaluation (see DESIGN.md §4
//! for the experiment index). Each experiment prints a plain-text table to
//! stdout and writes a JSON record under `--out` (default `results/`).
//!
//! ```text
//! hetsched-exp all                 # run everything
//! hetsched-exp fig2-slr-vs-ccr     # one experiment
//! hetsched-exp fig1-slr-vs-tasks --reps 10 --seed 7 --quick
//! ```

mod config;
mod experiments;
mod runner;

use std::process::ExitCode;

use config::Config;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (ids, cfg) = match config::parse_args(&args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", config::USAGE);
            return ExitCode::FAILURE;
        }
    };
    // Process-wide search-thread override; results are bit-identical at
    // any thread count, so this affects wall-clock only.
    hetsched_core::par::set_global_jobs(cfg.jobs);
    if ids.is_empty() {
        eprintln!("{}", config::USAGE);
        eprintln!("available experiments:");
        for (id, desc) in experiments::catalog() {
            eprintln!("  {id:<22} {desc}");
        }
        return ExitCode::FAILURE;
    }
    for id in &ids {
        if let Err(msg) = run_one(id, &cfg) {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn run_one(id: &str, cfg: &Config) -> Result<(), String> {
    if id == "perf" {
        // hot-path benchmark: its own output/check flow (see `perf.rs`)
        return experiments::perf::run_perf(cfg);
    }
    if id == "load" {
        // gateway load harness: its own output/check flow (see `load.rs`)
        return experiments::load::run_load(cfg);
    }
    let known: Vec<&str> = experiments::catalog().iter().map(|(i, _)| *i).collect();
    if !known.contains(&id) {
        return Err(format!("unknown experiment `{id}`; try `all`"));
    }
    let mut report = experiments::run(id, cfg);
    println!("== {id} ==");
    println!("{}", report.text);
    // Echo the seed and config fingerprint into every record, so any
    // results file pins the exact invocation that produced it.
    if let serde_json::Value::Object(map) = &mut report.json {
        map.insert("meta".to_string(), cfg.meta_json(id));
    }
    if let Some(dir) = &cfg.out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        let path = format!("{dir}/{id}.json");
        std::fs::write(&path, serde_json::to_string_pretty(&report.json).unwrap())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
        if let Some(svg) = report.json.get("svg").and_then(|v| v.as_str()) {
            let fig = format!("{dir}/{id}.svg");
            std::fs::write(&fig, svg).map_err(|e| format!("writing {fig}: {e}"))?;
            eprintln!("wrote {fig}");
        }
    }
    Ok(())
}
