//! CLI configuration for the experiment harness.

use hetsched_dag::Fingerprint;

/// Usage string printed on argument errors.
pub const USAGE: &str = "\
usage: hetsched-exp <experiment-id|all|perf> [options]
options:
  --seed <u64>       base RNG seed (default 42)
  --reps <n>         repetitions per parameter point (default 5)
  --procs <n>        default processor count (default 8)
  --out <dir>        JSON output directory (default results; `--out -` disables)
  --quick            smaller grids for smoke runs
  --jobs <n>         intra-algorithm search threads (GA, ILS-D, DUP-HEFT,
                     BNB); schedules are bit-identical at any thread count,
                     so this never changes results. HETSCHED_JOBS is the
                     env fallback; default is the machine parallelism
perf options:
  --bench-out <file> write the perf benchmark JSON to <file>
  --check <file>     compare against a baseline benchmark JSON; exit
                     nonzero when any entry regresses by more than 25%
                     (after normalizing out the machine-speed factor)
load options (saturation sweep against a gateway + shards topology):
  --target <addr>    drive an already-running gateway instead of spawning
                     an in-process gateway + shards topology
  --shards <n>       shards of the in-process topology (default 2)
  --rate <r>         base arrival rate in requests/second (default 150);
                     the sweep runs 0.5x, 1x, and 3x (just 1x with --quick)
  --duration-ms <ms> wall time per sweep step (default 3000)
  --mix <u,d,p[,b]>  unique/duplicate/patch[/batch] request shares
                     (default 0.5,0.3,0.2, batch 0); duplicates exercise
                     single-flight dedup, patches send real `patch` ops
                     against a parent learned from earlier replies, and
                     batch sends `schedule_many` requests of 4-16
                     instances each
  --hot-ms <ms>      debug-sleep carried by duplicate requests, holding
                     the dedup leader in flight (default 25)
  --work-ms <ms>     debug-sleep carried by unique/patch requests — a
                     deterministic stand-in for compute cost (default 20)
  --strict           exit nonzero on any protocol error, when a
                     duplicate-carrying mix produces zero dedup hits,
                     when a patch-carrying mix sends zero patch ops, or
                     when a batch reply's entries come back out of order
  --bench-out <file> merge `load/r<rate>/p50|p99` client latency entries
                     plus `load/r<rate>/qwait_p99|compute_p99` server-side
                     breakdown entries into <file> (other keys, e.g. perf
                     entries, are kept)
  --check <file>     compare latency percentiles against a baseline, like
                     perf --check but with a 50% tolerance";

/// Parsed harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Base RNG seed; every instance derives a unique sub-seed from it.
    pub seed: u64,
    /// Repetitions per parameter point.
    pub reps: usize,
    /// Default processor count for experiments that do not sweep it.
    pub procs: usize,
    /// JSON output directory (`None` disables writing).
    pub out_dir: Option<String>,
    /// Smaller grids for smoke runs.
    pub quick: bool,
    /// Intra-algorithm search threads (`None` keeps the process default).
    /// Excluded from the fingerprint: schedules are bit-identical at any
    /// thread count, so `jobs` changes speed, never numbers.
    pub jobs: Option<usize>,
    /// `perf`/`load`: write (or, for `load`, merge into) the benchmark
    /// JSON at this file.
    pub bench_out: Option<String>,
    /// `perf`/`load`: baseline benchmark JSON to compare against.
    pub check: Option<String>,
    /// `load`: drive this already-running gateway instead of spawning an
    /// in-process topology.
    pub target: Option<String>,
    /// `load`: shard count of the in-process topology.
    pub shards: usize,
    /// `load`: base arrival rate (requests/second).
    pub rate: f64,
    /// `load`: wall time per sweep step, in milliseconds.
    pub duration_ms: u64,
    /// `load`: unique / duplicate / patch-shaped request shares.
    pub mix: (f64, f64, f64),
    /// `load`: share of `schedule_many` batch requests (the optional
    /// fourth `--mix` component; 0 when `--mix` has three parts).
    pub mix_batch: f64,
    /// `load`: debug-sleep carried by duplicate requests (ms).
    pub hot_ms: u64,
    /// `load`: debug-sleep carried by unique/patch requests (ms).
    pub work_ms: u64,
    /// `load`: fail on protocol errors, a dedup-free duplicate mix, or a
    /// patch-free patch mix.
    pub strict: bool,
}

impl Config {
    /// Fingerprint over every configuration field that influences the
    /// numbers an experiment produces (`out_dir`/`bench_out`/`check` only
    /// steer where output goes, so they are excluded).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.tag("exp-config");
        fp.push_u64(self.seed);
        fp.push_usize(self.reps);
        fp.push_usize(self.procs);
        fp.push_u8(self.quick as u8);
        fp.finish()
    }

    /// Reproducibility metadata echoed into every JSON output record: the
    /// experiment id, the RNG seed and sweep parameters that generated the
    /// numbers, and the config fingerprint tying them together.
    pub fn meta_json(&self, id: &str) -> serde_json::Value {
        serde_json::json!({
            "experiment": id,
            "seed": self.seed,
            "reps": self.reps,
            "procs": self.procs,
            "quick": self.quick,
            "config_fingerprint": format!("{:016x}", self.fingerprint()),
        })
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 42,
            reps: 5,
            procs: 8,
            out_dir: Some("results".into()),
            quick: false,
            jobs: None,
            bench_out: None,
            check: None,
            target: None,
            shards: 2,
            rate: 150.0,
            duration_ms: 3_000,
            mix: (0.5, 0.3, 0.2),
            mix_batch: 0.0,
            hot_ms: 25,
            work_ms: 20,
            strict: false,
        }
    }
}

/// Parse CLI arguments into experiment ids and a [`Config`].
pub fn parse_args(args: &[String]) -> Result<(Vec<String>, Config), String> {
    let mut cfg = Config::default();
    let mut ids = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let mut take_value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--seed" => {
                cfg.seed = take_value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--reps" => {
                cfg.reps = take_value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--procs" => {
                cfg.procs = take_value("--procs")?
                    .parse()
                    .map_err(|e| format!("--procs: {e}"))?
            }
            "--out" => {
                let v = take_value("--out")?;
                cfg.out_dir = if v == "-" { None } else { Some(v) };
            }
            "--quick" => cfg.quick = true,
            "--jobs" => {
                cfg.jobs = Some(
                    take_value("--jobs")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?,
                )
            }
            "--bench-out" => cfg.bench_out = Some(take_value("--bench-out")?),
            "--check" => cfg.check = Some(take_value("--check")?),
            "--target" => cfg.target = Some(take_value("--target")?),
            "--shards" => {
                cfg.shards = take_value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--rate" => {
                cfg.rate = take_value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--duration-ms" => {
                cfg.duration_ms = take_value("--duration-ms")?
                    .parse()
                    .map_err(|e| format!("--duration-ms: {e}"))?
            }
            "--mix" => {
                let v = take_value("--mix")?;
                let parts: Vec<f64> = v
                    .split(',')
                    .map(|p| p.trim().parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--mix: {e}"))?;
                let (u, d, p, b) = match parts[..] {
                    [u, d, p] => (u, d, p, 0.0),
                    [u, d, p, b] => (u, d, p, b),
                    _ => {
                        return Err(
                            "--mix needs three or four comma-separated shares (u,d,p[,b])".into(),
                        )
                    }
                };
                if u < 0.0 || d < 0.0 || p < 0.0 || b < 0.0 || u + d + p + b <= 0.0 {
                    return Err("--mix shares must be non-negative and not all zero".into());
                }
                let total = u + d + p + b;
                cfg.mix = (u / total, d / total, p / total);
                cfg.mix_batch = b / total;
            }
            "--hot-ms" => {
                cfg.hot_ms = take_value("--hot-ms")?
                    .parse()
                    .map_err(|e| format!("--hot-ms: {e}"))?
            }
            "--work-ms" => {
                cfg.work_ms = take_value("--work-ms")?
                    .parse()
                    .map_err(|e| format!("--work-ms: {e}"))?
            }
            "--strict" => cfg.strict = true,
            _ if a.starts_with("--") => return Err(format!("unknown option {a}")),
            _ => ids.push(a.clone()),
        }
        i += 1;
    }
    if cfg.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    if cfg.procs == 0 {
        return Err("--procs must be at least 1".into());
    }
    if cfg.jobs == Some(0) {
        return Err("--jobs must be at least 1".into());
    }
    if cfg.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if !(cfg.rate > 0.0 && cfg.rate.is_finite()) {
        return Err("--rate must be a positive number".into());
    }
    if cfg.duration_ms == 0 {
        return Err("--duration-ms must be at least 1".into());
    }
    if ids.iter().any(|i| i == "all") {
        ids = crate::experiments::catalog()
            .iter()
            .map(|(id, _)| id.to_string())
            .collect();
    }
    Ok((ids, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_flags() {
        let (ids, cfg) = parse_args(&[
            "fig2-slr-vs-ccr".into(),
            "--seed".into(),
            "7".into(),
            "--reps".into(),
            "3".into(),
            "--quick".into(),
        ])
        .unwrap();
        assert_eq!(ids, vec!["fig2-slr-vs-ccr"]);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.reps, 3);
        assert!(cfg.quick);
        assert_eq!(cfg.out_dir.as_deref(), Some("results"));
    }

    #[test]
    fn all_expands() {
        let (ids, _) = parse_args(&["all".into()]).unwrap();
        assert!(ids.len() >= 10);
    }

    #[test]
    fn out_dash_disables_json() {
        let (_, cfg) = parse_args(&["x".into(), "--out".into(), "-".into()]).unwrap();
        assert!(cfg.out_dir.is_none());
    }

    #[test]
    fn meta_echoes_seed_and_fingerprint() {
        let cfg = Config {
            seed: 7,
            reps: 3,
            quick: true,
            ..Config::default()
        };
        let meta = cfg.meta_json("fig1-slr-vs-tasks");
        assert_eq!(meta["experiment"].as_str(), Some("fig1-slr-vs-tasks"));
        assert_eq!(meta["seed"].as_u64(), Some(7));
        assert_eq!(meta["reps"].as_u64(), Some(3));
        assert_eq!(meta["quick"].as_bool(), Some(true));
        let fp = meta["config_fingerprint"].as_str().unwrap();
        assert_eq!(fp.len(), 16);
        // the fingerprint pins every result-influencing field
        let other = Config {
            seed: 8,
            ..cfg.clone()
        };
        assert_ne!(cfg.fingerprint(), other.fingerprint());
        assert_eq!(cfg.fingerprint(), cfg.clone().fingerprint());
        // ...but not output routing
        let routed = Config {
            out_dir: None,
            ..cfg.clone()
        };
        assert_eq!(cfg.fingerprint(), routed.fingerprint());
        // ...and not --jobs: schedules are thread-count-invariant
        let threaded = Config {
            jobs: Some(4),
            ..cfg.clone()
        };
        assert_eq!(cfg.fingerprint(), threaded.fingerprint());
    }

    #[test]
    fn jobs_flag_parses_and_rejects_zero() {
        let (_, cfg) = parse_args(&["x".into(), "--jobs".into(), "4".into()]).unwrap();
        assert_eq!(cfg.jobs, Some(4));
        assert!(parse_args(&["x".into(), "--jobs".into(), "0".into()]).is_err());
    }

    #[test]
    fn rejects_unknown_flag_and_zero_reps() {
        assert!(parse_args(&["--frobnicate".into()]).is_err());
        assert!(parse_args(&["x".into(), "--reps".into(), "0".into()]).is_err());
    }

    #[test]
    fn load_flags_parse_and_mix_normalizes() {
        let (ids, cfg) = parse_args(&[
            "load".into(),
            "--target".into(),
            "127.0.0.1:7070".into(),
            "--shards".into(),
            "3".into(),
            "--rate".into(),
            "80".into(),
            "--duration-ms".into(),
            "500".into(),
            "--mix".into(),
            "1,2,1".into(),
            "--hot-ms".into(),
            "10".into(),
            "--work-ms".into(),
            "5".into(),
            "--strict".into(),
        ])
        .unwrap();
        assert_eq!(ids, vec!["load"]);
        assert_eq!(cfg.target.as_deref(), Some("127.0.0.1:7070"));
        assert_eq!(cfg.shards, 3);
        assert_eq!(cfg.rate, 80.0);
        assert_eq!(cfg.duration_ms, 500);
        assert_eq!(cfg.mix, (0.25, 0.5, 0.25), "shares normalize to sum 1");
        assert_eq!(cfg.hot_ms, 10);
        assert_eq!(cfg.work_ms, 5);
        assert!(cfg.strict);
    }

    #[test]
    fn mix_accepts_an_optional_batch_share() {
        let (_, cfg) = parse_args(&["load".into(), "--mix".into(), "1,1,1,1".into()]).unwrap();
        assert_eq!(cfg.mix, (0.25, 0.25, 0.25));
        assert_eq!(cfg.mix_batch, 0.25);
        // three components keep batch at zero
        let (_, cfg) = parse_args(&["load".into(), "--mix".into(), "1,1,2".into()]).unwrap();
        assert_eq!(cfg.mix_batch, 0.0);
        // a batch-only mix is valid: the other shares may all be zero
        let (_, cfg) = parse_args(&["load".into(), "--mix".into(), "0,0,0,1".into()]).unwrap();
        assert_eq!(cfg.mix_batch, 1.0);
        assert!(parse_args(&["load".into(), "--mix".into(), "1,1,1,-1".into()]).is_err());
        assert!(parse_args(&["load".into(), "--mix".into(), "1,1,1,1,1".into()]).is_err());
    }

    #[test]
    fn load_flags_reject_bad_values() {
        assert!(parse_args(&["load".into(), "--shards".into(), "0".into()]).is_err());
        assert!(parse_args(&["load".into(), "--rate".into(), "0".into()]).is_err());
        assert!(parse_args(&["load".into(), "--rate".into(), "-5".into()]).is_err());
        assert!(parse_args(&["load".into(), "--duration-ms".into(), "0".into()]).is_err());
        assert!(parse_args(&["load".into(), "--mix".into(), "1,2".into()]).is_err());
        assert!(parse_args(&["load".into(), "--mix".into(), "0,0,0".into()]).is_err());
    }
}
