//! Parallel sweep runner: fan independent experiment points out over a
//! thread pool fed by a crossbeam channel. Results are returned in input
//! order and every point derives its own deterministic seed, so parallel
//! and serial runs produce identical numbers.

use crossbeam::channel;
use parking_lot::Mutex;

/// Map `f` over `items` in parallel, preserving order.
///
/// Uses one worker per available core (capped by the item count). `f` must
/// be deterministic per item for reproducibility — the runner guarantees
/// only ordering, not execution sequence.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..n {
        tx.send(i).expect("unbounded channel accepts all items");
    }
    drop(tx);

    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let results = &results;
            let f = &f;
            let items = &items;
            scope.spawn(move || {
                while let Ok(i) = rx.recv() {
                    let r = f(&items[i]);
                    results.lock()[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

/// Derive a per-instance seed from a base seed and coordinates (SplitMix64
/// finalizer — decorrelates neighbouring points).
pub fn instance_seed(base: u64, point: u64, rep: u64) -> u64 {
    let mut z = base
        .wrapping_add(point.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(rep.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(items.clone(), |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn matches_serial_execution() {
        let items: Vec<u64> = (0..64).collect();
        let serial: Vec<u64> = items.iter().map(|&x| instance_seed(1, x, 0)).collect();
        let parallel = parallel_map(items, |&x| instance_seed(1, x, 0));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn seeds_decorrelate() {
        let a = instance_seed(42, 0, 0);
        let b = instance_seed(42, 0, 1);
        let c = instance_seed(42, 1, 0);
        let d = instance_seed(43, 0, 0);
        let all = [a, b, c, d];
        let mut uniq = all.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "seeds collide: {all:?}");
    }
}
