//! tab5 (extension): optimality gap — how far from the exact optimum the
//! heuristics land on instances small enough for branch-and-bound to
//! close.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::algorithms::{all_heterogeneous, BranchAndBound};
use hetsched_metrics::table::TextTable;
use hetsched_platform::{EtcParams, System};
use hetsched_workloads::{random_dag, RandomDagParams};
use serde_json::json;

use super::Report;
use crate::config::Config;
use crate::runner::{instance_seed, parallel_map};

/// tab5: mean heuristic/optimal makespan ratio over tiny random instances
/// (n = 8, 3 processors). Duplication-based schedulers can dip *below*
/// 1.0 — the exact search covers non-duplication schedules only. On
/// instances the node budget cannot close, the denominator is the best
/// schedule found (an upper bound on the optimum), so reported ratios are
/// conservative.
pub fn optimality_gap(cfg: &Config) -> Report {
    let n = 8usize;
    let procs = 3usize;
    let reps = if cfg.quick { cfg.reps } else { cfg.reps * 4 };
    let algs = all_heterogeneous();

    let work: Vec<u64> = (0..reps as u64).collect();
    // per instance: (proven, ratios per alg)
    let rows: Vec<(bool, Vec<f64>)> = parallel_map(work, |&rep| {
        let seed = instance_seed(cfg.seed ^ 0x9a9, 0, rep);
        let mut rng = StdRng::seed_from_u64(seed);
        let ccr = [0.5, 1.0, 5.0][(rep % 3) as usize];
        let dag = random_dag(&RandomDagParams::new(n, 1.0, ccr), &mut rng);
        let sys = System::heterogeneous_random(&dag, procs, &EtcParams::range_based(1.0), &mut rng);
        let r = BranchAndBound {
            node_budget: 4_000_000,
        }
        .solve(&dag, &sys);
        let opt = r.schedule.makespan();
        let ratios = algs
            .iter()
            .map(|alg| alg.schedule(&dag, &sys).makespan() / opt)
            .collect();
        (r.proven_optimal, ratios)
    });
    let proven = rows.iter().filter(|(p, _)| *p).count();

    let mut table = TextTable::new(vec![
        "algorithm".into(),
        "mean ratio".into(),
        "worst ratio".into(),
        "% optimal".into(),
    ]);
    let mut json_rows = Vec::new();
    for (ai, alg) in algs.iter().enumerate() {
        let vals: Vec<f64> = rows.iter().map(|(_, r)| r[ai]).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let worst = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let hits = vals.iter().filter(|&&v| v <= 1.0 + 1e-9).count();
        table.row(vec![
            alg.name().into(),
            format!("{mean:.3}"),
            format!("{worst:.3}"),
            format!("{:.0}%", 100.0 * hits as f64 / vals.len() as f64),
        ]);
        json_rows.push(json!({
            "alg": alg.name(), "mean": mean, "worst": worst,
            "optimal_fraction": hits as f64 / vals.len() as f64,
        }));
    }
    Report {
        text: format!(
            "heuristic / exact-optimal makespan, n={n}, {procs} procs ({} instances, {proven} proven optimal)\n{}",
            rows.len(),
            table.render()
        ),
        json: json!({
            "instances": rows.len(),
            "proven_optimal_instances": proven,
            "rows": json_rows,
        }),
    }
}
