//! The generic sweep engine shared by most experiments: a list of labelled
//! points, each generating `reps` random instances; every algorithm is run
//! on every instance and a chosen metric is averaged per (point, algorithm).

use hetsched_core::Scheduler;
use hetsched_dag::Dag;
use hetsched_metrics::table::TextTable;
use hetsched_metrics::{slr, speedup};
use hetsched_platform::System;
use serde_json::json;

use crate::runner::{instance_seed, parallel_map};

/// Which per-instance metric a sweep averages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Schedule length ratio (lower is better).
    AvgSlr,
    /// Speedup over the best single processor (higher is better).
    AvgSpeedup,
}

impl Metric {
    fn of(&self, dag: &Dag, sys: &System, makespan: f64) -> f64 {
        match self {
            Metric::AvgSlr => slr(dag, sys, makespan),
            Metric::AvgSpeedup => speedup(dag, sys, makespan),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Metric::AvgSlr => "avg SLR",
            Metric::AvgSpeedup => "avg speedup",
        }
    }
}

/// A labelled sweep point: generates one `(Dag, System)` instance per seed.
pub struct Point {
    /// Axis value label (e.g. `"100"` for n = 100).
    pub label: String,
    /// Instance generator: seed → instance.
    pub gen: Box<dyn Fn(u64) -> (Dag, System) + Sync>,
}

/// Run the sweep and render a table with one row per point and one column
/// per algorithm. Returns the report pieces: text, JSON, and the raw means
/// (`means[point][alg]`).
pub fn metric_sweep(
    axis: &str,
    points: &[Point],
    algs: &[Box<dyn Scheduler + Send + Sync>],
    reps: usize,
    base_seed: u64,
    metric: Metric,
) -> (String, serde_json::Value, Vec<Vec<f64>>) {
    // work items: (point index, rep)
    let work: Vec<(usize, u64)> = (0..points.len())
        .flat_map(|pi| (0..reps as u64).map(move |r| (pi, r)))
        .collect();
    // each item yields one metric value per algorithm
    let per_instance: Vec<Vec<f64>> = parallel_map(work.clone(), |&(pi, rep)| {
        let seed = instance_seed(base_seed, pi as u64, rep);
        let (dag, sys) = (points[pi].gen)(seed);
        algs.iter()
            .map(|alg| {
                let sched = alg.schedule(&dag, &sys);
                debug_assert_eq!(
                    hetsched_core::validate(&dag, &sys, &sched),
                    Ok(()),
                    "{} produced an invalid schedule",
                    alg.name()
                );
                metric.of(&dag, &sys, sched.makespan())
            })
            .collect()
    });

    // aggregate: per-cell sample vectors -> means and 95% CIs
    let mut cells: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::with_capacity(reps); algs.len()]; points.len()];
    for ((pi, _), vals) in work.iter().zip(&per_instance) {
        for (ai, v) in vals.iter().enumerate() {
            cells[*pi][ai].push(*v);
        }
    }
    let summaries: Vec<Vec<hetsched_metrics::Summary>> = cells
        .iter()
        .map(|row| {
            row.iter()
                .map(|xs| hetsched_metrics::Summary::of(xs))
                .collect()
        })
        .collect();
    let means: Vec<Vec<f64>> = summaries
        .iter()
        .map(|row| row.iter().map(|s| s.mean).collect())
        .collect();
    let ci95: Vec<Vec<f64>> = summaries
        .iter()
        .map(|row| row.iter().map(|s| s.ci95).collect())
        .collect();

    // render
    let mut header = vec![axis.to_string()];
    header.extend(algs.iter().map(|a| a.name().to_string()));
    let mut table = TextTable::new(header);
    for (pi, point) in points.iter().enumerate() {
        let mut row = vec![point.label.clone()];
        row.extend(means[pi].iter().map(|v| format!("{v:.3}")));
        table.row(row);
    }
    let text = format!(
        "{} ({} reps/point)\n{}",
        metric.label(),
        reps,
        table.render()
    );

    // paper-style SVG figure alongside the numbers
    let svg = hetsched_metrics::plot::line_chart(
        &format!("{} vs {axis}", metric.label()),
        &points.iter().map(|p| p.label.clone()).collect::<Vec<_>>(),
        &algs
            .iter()
            .enumerate()
            .map(|(ai, a)| {
                (
                    a.name().to_string(),
                    means.iter().map(|row| row[ai]).collect::<Vec<f64>>(),
                )
            })
            .collect::<Vec<_>>(),
        &hetsched_metrics::plot::PlotStyle::default(),
    );

    let json = json!({
        "axis": axis,
        "metric": metric.label(),
        "reps": reps,
        "seed": base_seed,
        "points": points.iter().map(|p| p.label.clone()).collect::<Vec<_>>(),
        "algorithms": algs.iter().map(|a| a.name()).collect::<Vec<_>>(),
        "means": means,
        "ci95": ci95,
        "svg": svg,
    });
    (text, json, means)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_core::algorithms::{Heft, MinMin};
    use hetsched_platform::EtcParams;
    use hetsched_workloads::{random_dag, RandomDagParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn points() -> Vec<Point> {
        vec![Point {
            label: "n=20".into(),
            gen: Box::new(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let dag = random_dag(&RandomDagParams::new(20, 1.0, 1.0), &mut rng);
                let sys =
                    System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
                (dag, sys)
            }),
        }]
    }

    #[test]
    fn sweep_is_deterministic_and_well_formed() {
        let algs: Vec<Box<dyn Scheduler + Send + Sync>> =
            vec![Box::new(Heft::new()), Box::new(MinMin::new())];
        let (text1, json1, means1) = metric_sweep("n", &points(), &algs, 3, 7, Metric::AvgSlr);
        let (_, _, means2) = metric_sweep("n", &points(), &algs, 3, 7, Metric::AvgSlr);
        assert_eq!(means1, means2, "same seed, same means");
        assert_eq!(means1.len(), 1);
        assert_eq!(means1[0].len(), 2);
        assert!(means1[0].iter().all(|&v| v >= 1.0), "SLR >= 1");
        assert!(text1.contains("HEFT") && text1.contains("MinMin"));
        assert!(text1.contains("n=20"));
        assert_eq!(json1["reps"], 3);
        assert_eq!(json1["algorithms"][0], "HEFT");
    }

    #[test]
    fn speedup_metric_is_positive() {
        let algs: Vec<Box<dyn Scheduler + Send + Sync>> = vec![Box::new(Heft::new())];
        let (_, _, means) = metric_sweep("n", &points(), &algs, 2, 9, Metric::AvgSpeedup);
        assert!(means[0][0] > 0.0);
    }
}
