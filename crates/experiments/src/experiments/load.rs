//! `load`: an open-loop load harness for the gateway + shards topology.
//!
//! Drives a saturation sweep of Poisson-ish arrivals (seeded, vendored
//! RNG — the arrival schedule and request mix are deterministic) against
//! either an in-process gateway + shards topology it spawns itself, or an
//! already-running gateway (`--target`). Requests come in four shapes:
//!
//! - **unique** — a fresh problem every time; exercises fingerprint
//!   routing and the shard compute path.
//! - **duplicate** — the current *hot* problem, identical byte-for-byte
//!   across every connection. Hot problems rotate every couple of
//!   `--hot-ms` windows and carry `debug_sleep_ms = hot_ms`, so each
//!   rotation's first arrival leads a flight long enough for followers to
//!   coalesce on — the single-flight dedup path, exercised on purpose
//!   rather than by luck. Once a rotation's reply is memoized shard-side
//!   (its second flight), later duplicates answer from the gateway's
//!   raw-byte wire cache without a shard round trip; `--strict` requires
//!   nonzero wire hits whenever the duplicate pressure is high enough
//!   to make a third same-rotation wave statistically certain.
//! - **patch** — a real `patch` op against the latest `problem`
//!   fingerprint this connection learned from an earlier reply: the shard
//!   resolves the parent from its instance cache, applies a one-weight
//!   delta, and repairs incrementally. Patches route to the parent's home
//!   shard and must NOT coalesce with the parent's flight. Before the
//!   first reply arrives (no parent known yet) the connection falls back
//!   to a pre-built near-identical full problem. A patch whose parent was
//!   evicted from the shard's instance cache answers `unknown_parent`;
//!   the harness counts those separately and `--strict` tolerates them.
//! - **batch** — a `schedule_many` request of 4–16 instances (the
//!   optional fourth `--mix` share, 0 by default). Batch member `i`
//!   carries a strictly increasing task count, so the reply's per-entry
//!   slot counts witness the request order; `--strict` fails when any
//!   batch reply's entries come back out of order. Batch members carry
//!   no compute stand-in (see [`many_line`]) — the shape measures
//!   ordering and fan-out overhead, not saturation.
//!
//! Unique/patch requests carry `debug_sleep_ms = work_ms`, a
//! deterministic stand-in for compute cost, so the saturation point of
//! the sweep is a function of the flags, not of the machine. Client-side
//! latency percentiles come from the shared log₂ histogram; the top
//! sweep step is sized to exceed shard capacity so admission-control
//! sheds are observed, not just theorized. `--bench-out` merges
//! `load/r<rate>/p50|p99` entries into an existing benchmark JSON (perf
//! entries are kept); `--check` gates them against a committed baseline
//! like `perf --check`, with a wider 50% tolerance because latency under
//! load is noisier than hot-path wall time.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;

use hetsched_dag::io::DagSpec;
use hetsched_gateway::{GatewayConfig, GatewayServer, LocalShards};
use hetsched_metrics::table::TextTable;
use hetsched_serve::metrics::LatencyHistogram;
use hetsched_serve::ServeConfig;
use hetsched_workloads::{random_dag, RandomDagParams};

use crate::config::Config;

/// Relative latency slowdown tolerated by `load --check`. Wider than the
/// perf tolerance: percentiles under open-loop load carry queueing noise
/// that per-entry minima do not.
const LOAD_TOLERANCE: f64 = 0.5;
/// Per-request deadline carried by every generated request.
const DEADLINE_MS: u64 = 2_000;
/// Tasks per generated problem: small enough that parse + schedule are
/// cheap and `debug_sleep_ms` dominates the (deterministic) service time.
const TASKS_PER_PROBLEM: usize = 30;
/// Tasks in the smallest batch member. Member `i` has
/// `BATCH_BASE_TASKS + i` tasks — strictly increasing within a batch, so
/// a reply entry's slot count identifies which member it answers.
const BATCH_BASE_TASKS: usize = 8;
/// Reply-wait bound: no reply within this window is a protocol error (a
/// hung server must fail the harness, not wedge it).
const READ_TIMEOUT: Duration = Duration::from_secs(15);

/// Shared per-step counters, bumped by the reader threads.
#[derive(Default)]
struct Counts {
    sent: AtomicU64,
    ok: AtomicU64,
    shed: AtomicU64,
    busy: AtomicU64,
    timeout: AtomicU64,
    error: AtomicU64,
    protocol_errors: AtomicU64,
    /// Real `patch` ops sent (the mix's patch share minus the pre-parent
    /// fallback sends).
    patched: AtomicU64,
    /// `unknown_parent` replies: the parent aged out of the shard's
    /// instance cache between learning it and patching it.
    patch_miss: AtomicU64,
    /// `schedule_many` batch requests sent (the mix's batch share).
    batch: AtomicU64,
    /// Batch replies whose entries did not match the request order (or
    /// count) — always zero against a correct server; fatal with
    /// `--strict`.
    batch_ooo: AtomicU64,
}

/// Outcome of one sweep step.
struct StepResult {
    rate: f64,
    sent: u64,
    ok: u64,
    shed: u64,
    busy: u64,
    timeout: u64,
    error: u64,
    protocol_errors: u64,
    patched: u64,
    patch_miss: u64,
    batch: u64,
    batch_ooo: u64,
    p50_us: f64,
    p99_us: f64,
    /// Server-side 99th-percentile queue wait (worst shard), µs,
    /// cumulative through the end of this step.
    qwait_p99_us: f64,
    /// Server-side 99th-percentile worker compute (worst shard), µs,
    /// cumulative through the end of this step.
    compute_p99_us: f64,
    dedup_delta: u64,
    reroute_delta: u64,
    /// Gateway wire-cache hits during this step: duplicates answered
    /// from the raw-byte hot-line cache without a shard round trip.
    wire_delta: u64,
}

/// Pre-generated request lines for one step.
struct Pools {
    unique: Vec<String>,
    patch: Vec<String>,
    /// Hot problems in rotation order; index = elapsed / rotation.
    hot: Vec<String>,
    /// `schedule_many` lines, paired with their instance count so the
    /// reader knows how many entries (and which sizes) to expect.
    batch: Vec<(String, usize)>,
    rotation: Duration,
}

impl Pools {
    /// The hot line for the rotation window containing `elapsed` — the
    /// same for every connection, so duplicates coalesce gateway-wide.
    fn hot_line(&self, elapsed: Duration) -> &str {
        let idx = (elapsed.as_millis() / self.rotation.as_millis().max(1)) as usize;
        &self.hot[idx.min(self.hot.len() - 1)]
    }
}

/// One deterministic problem as a JSON value.
fn problem_value(seed: u64) -> Value {
    problem_value_n(seed, TASKS_PER_PROBLEM)
}

/// One deterministic problem of `tasks` tasks as a JSON value.
fn problem_value_n(seed: u64, tasks: usize) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = random_dag(&RandomDagParams::new(tasks, 1.0, 1.0), &mut rng);
    serde_json::to_value(DagSpec::from_dag(&dag)).expect("DagSpec serializes")
}

fn system_value(procs: usize) -> Value {
    serde_json::from_str(&format!(
        "{{\"processors\":{{\"kind\":\"homogeneous\",\"count\":{procs}}},\
         \"network\":{{\"topology\":\"fully_connected\",\"bandwidth\":1.0}}}}"
    ))
    .expect("literal system JSON parses")
}

/// Serialize one real `patch` request line: reschedule the cached parent
/// problem with one task weight nudged. The nudge varies with `nudge`, so
/// consecutive patches are distinct problems (own flight each), and a
/// `task_weight` delta is valid against any parent regardless of its edge
/// set.
fn patch_line(parent: &str, nudge: u64, sleep_ms: u64) -> String {
    let mut options = serde_json::Map::new();
    options.insert("deadline_ms", serde_json::to_value(DEADLINE_MS).unwrap());
    if sleep_ms > 0 {
        options.insert("debug_sleep_ms", serde_json::to_value(sleep_ms).unwrap());
    }
    let weight = 1.0 + nudge as f64 * 0.25;
    let mut req = serde_json::Map::new();
    req.insert("op", Value::String("patch".into()));
    req.insert("parent", Value::String(parent.into()));
    req.insert("algorithm", Value::String("HEFT".into()));
    let delta = serde_json::json!({"kind": "task_weight", "task": 0, "weight": weight});
    req.insert("deltas", Value::Array(vec![delta]));
    req.insert("options", Value::Object(options));
    serde_json::to_string(&Value::Object(req)).expect("request serializes")
}

/// Nudge one task weight: a distinct content fingerprint (own routing,
/// own flight) from a problem that is byte-identical otherwise. Used as
/// the patch share's fallback until the connection learns a parent
/// fingerprint from a reply.
fn patched(dag: &Value) -> Value {
    let mut v = dag.clone();
    if let Some(w) = v
        .as_object_mut()
        .and_then(|o| o.get_mut("tasks"))
        .and_then(Value::as_array_mut)
        .and_then(|a| a.first_mut())
        .and_then(Value::as_object_mut)
        .and_then(|t| t.get_mut("weight"))
    {
        let bumped = w.as_f64().unwrap_or(1.0) + 0.5;
        *w = serde_json::to_value(bumped).expect("f64 serializes");
    }
    v
}

/// Serialize one `schedule_many` request line of `count` instances.
/// Member `i` carries `BATCH_BASE_TASKS + i` tasks: strictly increasing
/// sizes, so the reply's per-entry slot counts witness the answer order.
///
/// Batch members deliberately carry **no** `debug_sleep_ms`: the batch
/// mix exercises ordering, fan-out, and batching overhead — not compute
/// saturation. A per-member sleep would multiply by the batch size and
/// let a cold batch pool (before the memo absorbs its 16 distinct
/// lines) shed the whole measurement window, which is exactly the kind
/// of host-dependent transient the deterministic stand-in exists to
/// avoid.
fn many_line(seed: u64, count: usize, system: &Value) -> String {
    let instances: Vec<Value> = (0..count)
        .map(|i| {
            let dag = problem_value_n(seed ^ (i as u64 + 1), BATCH_BASE_TASKS + i);
            serde_json::json!({"dag": dag, "system": system})
        })
        .collect();
    let mut options = serde_json::Map::new();
    options.insert("deadline_ms", serde_json::to_value(DEADLINE_MS).unwrap());
    let mut req = serde_json::Map::new();
    req.insert("op", Value::String("schedule_many".into()));
    req.insert("instances", Value::Array(instances));
    req.insert("algorithm", Value::String("HEFT".into()));
    req.insert("options", Value::Object(options));
    serde_json::to_string(&Value::Object(req)).expect("request serializes")
}

/// Total scheduled slots in one batch-reply entry: HEFT places exactly
/// one slot per task, so this recovers the member's task count.
fn entry_slot_count(entry: &Value) -> Option<usize> {
    let timelines = entry.get("schedule")?.get("timelines")?.as_array()?;
    Some(
        timelines
            .iter()
            .filter_map(Value::as_array)
            .map(Vec::len)
            .sum(),
    )
}

/// Serialize one schedule request line.
fn request_line(dag: &Value, system: &Value, sleep_ms: u64) -> String {
    let mut options = serde_json::Map::new();
    options.insert("deadline_ms", serde_json::to_value(DEADLINE_MS).unwrap());
    if sleep_ms > 0 {
        options.insert("debug_sleep_ms", serde_json::to_value(sleep_ms).unwrap());
    }
    let mut req = serde_json::Map::new();
    req.insert("op", Value::String("schedule".into()));
    req.insert("dag", dag.clone());
    req.insert("system", system.clone());
    req.insert("algorithm", Value::String("HEFT".into()));
    req.insert("options", Value::Object(options));
    serde_json::to_string(&Value::Object(req)).expect("request serializes")
}

/// Build the request pools for one step. Pool sizes cover the expected
/// send count with slack; an overrun wraps around (repeats then hit the
/// shard reply memo, which only flatters latency, never correctness).
fn build_pools(cfg: &Config, rate: f64, step: usize) -> Pools {
    let system = system_value(4);
    let expected = rate * cfg.duration_ms as f64 / 1e3;
    let (u_share, _d, p_share) = cfg.mix;
    let size = |share: f64| (((expected * share).ceil() as usize) + 16).min(4096);
    let base = cfg
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(step as u64);
    let unique: Vec<String> = (0..size(u_share))
        .map(|i| {
            let dag = problem_value(base ^ (0x1000 + i as u64));
            request_line(&dag, &system, cfg.work_ms)
        })
        .collect();
    let patch: Vec<String> = (0..size(p_share))
        .map(|i| {
            // near-identical: the patch pool reuses unique seeds with one
            // weight nudged
            let dag = patched(&problem_value(base ^ (0x1000 + i as u64)));
            request_line(&dag, &system, cfg.work_ms)
        })
        .collect();
    let rotation = Duration::from_millis((2 * cfg.hot_ms).max(20));
    let hot_count = (cfg.duration_ms / rotation.as_millis().max(1) as u64) as usize + 2;
    let hot: Vec<String> = (0..hot_count)
        .map(|i| {
            let dag = problem_value(base ^ (0x8000_0000 + i as u64));
            request_line(&dag, &system, cfg.hot_ms)
        })
        .collect();
    let batch_pool = if cfg.mix_batch > 0.0 {
        size(cfg.mix_batch)
    } else {
        0 // no batch share: skip generating the (multi-instance) lines
    };
    let batch: Vec<(String, usize)> = (0..batch_pool)
        .map(|i| {
            // 4..=16 instances, cycling deterministically through sizes
            let count = 4 + (i % 13);
            let seed = base ^ (0x4000_0000 + ((i as u64) << 8));
            (many_line(seed, count, &system), count)
        })
        .collect();
    Pools {
        unique,
        patch,
        hot,
        batch,
        rotation,
    }
}

/// Fetch the target's full `stats` reply (`None` when unreachable).
fn fetch_stats_value(addr: &str) -> Option<Value> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer.write_all(b"{\"op\":\"stats\"}\n").ok()?;
    writer.flush().ok()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).ok()?;
    serde_json::from_str(reply.trim()).ok()
}

/// Fetch the gateway's `stats` counters (`None` when the peer is
/// unreachable or does not expose a gateway section — e.g. a plain
/// `serve` daemon under `--target`).
fn fetch_gateway_stats(addr: &str) -> Option<Value> {
    fetch_stats_value(addr)?
        .as_object()?
        .get("gateway")
        .cloned()
}

/// Server-side 99th-percentile queue wait and compute time, µs: the
/// worst shard behind a gateway, or the target's own stats body when it
/// is a plain `serve` daemon. Cumulative since server start — the
/// closing step of a sweep reflects the whole sweep's pressure.
fn fetch_server_percentiles(addr: &str) -> (f64, f64) {
    let Some(v) = fetch_stats_value(addr) else {
        return (0.0, 0.0);
    };
    let bodies: Vec<&Value> = match v.get("shards").and_then(Value::as_array) {
        Some(arr) if !arr.is_empty() => arr.iter().collect(),
        _ => v.get("stats").into_iter().collect(),
    };
    let pick = |key: &str| {
        bodies
            .iter()
            .filter_map(|b| b.get(key).and_then(Value::as_f64))
            .fold(0.0, f64::max)
    };
    (pick("qwait_p99_us"), pick("compute_p99_us"))
}

fn counter(stats: &Option<Value>, key: &str) -> u64 {
    stats
        .as_ref()
        .and_then(|v| v.as_object())
        .and_then(|o| o.get(key))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// Run one open-loop step at `rate` requests/second.
fn run_step(cfg: &Config, addr: &str, rate: f64, step: usize) -> Result<StepResult, String> {
    // Fixed connection count, independent of --quick: the gateway serves
    // one in-flight request per connection, so the connection count sets
    // the effective concurrency — varying it would make quick-mode
    // latency entries incomparable with a full-sweep baseline.
    let conns = 4;
    let pools = Arc::new(build_pools(cfg, rate, step));
    let counts = Arc::new(Counts::default());
    let hist = Arc::new(LatencyHistogram::default());
    let before = fetch_gateway_stats(addr);
    let start = Instant::now();
    let duration = Duration::from_millis(cfg.duration_ms);

    let mut handles = Vec::new();
    for c in 0..conns {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let reader_stream = stream.try_clone().map_err(|e| e.to_string())?;
        reader_stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
        // send instant + expected batch entry count (0 for non-batch)
        let (meta_tx, meta_rx) = unbounded::<(Instant, usize)>();
        // The latest `problem` fingerprint this connection saw in a
        // reply: the reader learns it, the writer patches against it.
        let parent = Arc::new(std::sync::Mutex::new(None::<String>));

        let writer = {
            let pools = pools.clone();
            let counts = counts.clone();
            let parent = parent.clone();
            let mix = cfg.mix;
            let mix_batch = cfg.mix_batch;
            let work_ms = cfg.work_ms;
            let seed = cfg.seed ^ ((step as u64) << 32) ^ (c as u64);
            let mut stream = stream;
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let lambda = (rate / conns as f64).max(1e-9);
                let mut t = 0.0f64;
                // stride by connection count so no two connections draw
                // the same unique/patch entry
                let mut unique_idx = c;
                let mut patch_idx = c;
                let mut batch_idx = c;
                loop {
                    let u: f64 = rng.gen();
                    t += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / lambda;
                    if t >= duration.as_secs_f64() {
                        break;
                    }
                    let wake = start + Duration::from_secs_f64(t);
                    if let Some(d) = wake.checked_duration_since(Instant::now()) {
                        std::thread::sleep(d);
                    }
                    let roll: f64 = rng.gen();
                    let (line, expected): (String, usize) = if roll < mix.1 {
                        (pools.hot_line(start.elapsed()).to_string(), 0)
                    } else if roll < mix.1 + mix.2 {
                        let learned = parent.lock().unwrap().clone();
                        let l = match learned {
                            // real incremental reschedule against the
                            // learned parent (distinct weight per send,
                            // so every patch is its own flight)
                            Some(p) => {
                                counts.patched.fetch_add(1, Ordering::Relaxed);
                                patch_line(&p, patch_idx as u64, work_ms)
                            }
                            // no reply seen yet: fall back to the
                            // near-identical full problem
                            None => pools.patch[patch_idx % pools.patch.len()].clone(),
                        };
                        patch_idx += conns;
                        (l, 0)
                    } else if roll < mix.1 + mix.2 + mix_batch && !pools.batch.is_empty() {
                        let (l, count) = &pools.batch[batch_idx % pools.batch.len()];
                        batch_idx += conns;
                        counts.batch.fetch_add(1, Ordering::Relaxed);
                        (l.clone(), *count)
                    } else {
                        let l = pools.unique[unique_idx % pools.unique.len()].clone();
                        unique_idx += conns;
                        (l, 0)
                    };
                    let sent_at = Instant::now();
                    if stream.write_all(line.as_bytes()).is_err()
                        || stream.write_all(b"\n").is_err()
                    {
                        counts.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    counts.sent.fetch_add(1, Ordering::Relaxed);
                    if meta_tx.send((sent_at, expected)).is_err() {
                        break; // reader gave up
                    }
                }
                // dropping meta_tx tells the reader no more replies are due
            })
        };
        let reader = {
            let counts = counts.clone();
            let hist = hist.clone();
            let parent = parent.clone();
            std::thread::spawn(move || {
                let mut reader = BufReader::new(reader_stream);
                // the gateway answers in request order per connection, so
                // FIFO pairing of send instants with reply lines is exact
                while let Ok((sent_at, expected)) = meta_rx.recv() {
                    let mut line = String::new();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => {
                            counts.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Ok(_) => {
                            let latency = sent_at.elapsed();
                            let reply = serde_json::from_str::<Value>(line.trim()).ok();
                            let status = reply
                                .as_ref()
                                .and_then(|v| v.as_object()?.get("status")?.as_str());
                            match status {
                                Some("ok") => {
                                    counts.ok.fetch_add(1, Ordering::Relaxed);
                                    hist.record(latency);
                                    if expected > 0 {
                                        // batch reply: entry i must answer
                                        // member i, whose task count (and so
                                        // HEFT slot count) is
                                        // BATCH_BASE_TASKS + i
                                        let in_order = reply
                                            .as_ref()
                                            .and_then(|v| v.get("many")?.get("entries")?.as_array())
                                            .is_some_and(|entries| {
                                                entries.len() == expected
                                                    && entries.iter().enumerate().all(|(i, e)| {
                                                        entry_slot_count(e)
                                                            == Some(BATCH_BASE_TASKS + i)
                                                    })
                                            });
                                        if !in_order {
                                            counts.batch_ooo.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                    // learn the problem fingerprint so the
                                    // writer's patch share has a parent
                                    if let Some(p) = reply
                                        .as_ref()
                                        .and_then(|v| v.get("schedule"))
                                        .and_then(|s| s.get("problem"))
                                        .and_then(Value::as_str)
                                        .filter(|p| !p.is_empty())
                                    {
                                        *parent.lock().unwrap() = Some(p.to_string());
                                    }
                                }
                                Some("shed") => {
                                    counts.shed.fetch_add(1, Ordering::Relaxed);
                                }
                                Some("busy") => {
                                    counts.busy.fetch_add(1, Ordering::Relaxed);
                                }
                                Some("timeout") => {
                                    counts.timeout.fetch_add(1, Ordering::Relaxed);
                                }
                                Some("error") | Some("shutting_down") => {
                                    let unknown_parent = reply
                                        .as_ref()
                                        .and_then(|v| v.get("message"))
                                        .and_then(Value::as_str)
                                        .is_some_and(|m| m.contains("unknown_parent"));
                                    if unknown_parent {
                                        // the parent aged out of the shard's
                                        // instance cache: an expected miss
                                        // under churn, not a failure
                                        counts.patch_miss.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        counts.error.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                _ => {
                                    counts.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
            })
        };
        handles.push(writer);
        handles.push(reader);
    }
    for h in handles {
        h.join().map_err(|_| "load worker thread panicked")?;
    }
    let after = fetch_gateway_stats(addr);
    let (qwait_p99_us, compute_p99_us) = fetch_server_percentiles(addr);
    let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
    Ok(StepResult {
        rate,
        sent: get(&counts.sent),
        ok: get(&counts.ok),
        shed: get(&counts.shed),
        busy: get(&counts.busy),
        timeout: get(&counts.timeout),
        error: get(&counts.error),
        protocol_errors: get(&counts.protocol_errors),
        patched: get(&counts.patched),
        patch_miss: get(&counts.patch_miss),
        batch: get(&counts.batch),
        batch_ooo: get(&counts.batch_ooo),
        p50_us: hist.quantile_us(0.50),
        p99_us: hist.quantile_us(0.99),
        qwait_p99_us,
        compute_p99_us,
        dedup_delta: counter(&after, "dedup_hits").saturating_sub(counter(&before, "dedup_hits")),
        reroute_delta: counter(&after, "reroutes").saturating_sub(counter(&before, "reroutes")),
        wire_delta: counter(&after, "wire_hits").saturating_sub(counter(&before, "wire_hits")),
    })
}

/// The in-process topology `load` spawns when no `--target` is given.
struct OwnedTopology {
    shards: LocalShards,
    gateway: std::thread::JoinHandle<std::io::Result<()>>,
    addr: String,
}

fn spawn_topology(cfg: &Config) -> Result<OwnedTopology, String> {
    let shard_config = ServeConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 256,
        instance_cache_capacity: 64,
        default_deadline_ms: DEADLINE_MS,
    };
    let shards = LocalShards::spawn(cfg.shards, &shard_config)
        .map_err(|e| format!("spawning shards: {e}"))?;
    let gw_config = GatewayConfig {
        backends: shards.addrs(),
        // modest budget so the 3x sweep step actually exhausts it and
        // sheds are observed, not just theorized
        inflight_per_shard: 8,
        default_deadline_ms: DEADLINE_MS,
        ..Default::default()
    };
    let server =
        GatewayServer::bind("127.0.0.1:0", gw_config).map_err(|e| format!("gateway bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?.to_string();
    let gateway = std::thread::spawn(move || server.run());
    Ok(OwnedTopology {
        shards,
        gateway,
        addr,
    })
}

fn shutdown_topology(mut topo: OwnedTopology) {
    // one shutdown request winds the gateway AND (propagated) every shard
    // down; the gateway drains before its run() returns
    if let Ok(stream) = TcpStream::connect(&topo.addr) {
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let _ = writer.write_all(b"{\"op\":\"shutdown\"}\n");
        let _ = writer.flush();
        let mut reply = String::new();
        let _ = BufReader::new(stream).read_line(&mut reply);
    }
    let _ = topo.gateway.join();
    topo.shards.shutdown_all();
}

/// Merge the load entries into `path` (created if absent), keeping every
/// key already present — perf entries and load entries share one
/// benchmark document.
fn merge_bench_out(path: &str, entries: &[(String, Value)], meta: Value) -> Result<(), String> {
    let mut doc = match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str::<Value>(&text)
            .map_err(|e| format!("parsing existing {path}: {e}"))?,
        Err(_) => Value::Object(serde_json::Map::new()),
    };
    let Some(obj) = doc.as_object_mut() else {
        return Err(format!("{path} is not a JSON object"));
    };
    obj.insert("load_meta", meta);
    for (id, entry) in entries {
        obj.insert(id.clone(), entry.clone());
    }
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap())
        .map_err(|e| format!("writing {path}: {e}"))
}

/// Run the load sweep: spawn (or target) the topology, sweep the rates,
/// print the table, merge `--bench-out`, gate `--check` and `--strict`.
pub fn run_load(cfg: &Config) -> Result<(), String> {
    let multipliers: &[f64] = if cfg.quick { &[1.0] } else { &[0.5, 1.0, 3.0] };
    let topology = match &cfg.target {
        Some(_) => None,
        None => Some(spawn_topology(cfg)?),
    };
    let addr = match (&cfg.target, &topology) {
        (Some(a), _) => a.clone(),
        (None, Some(t)) => t.addr.clone(),
        (None, None) => unreachable!(),
    };

    let run = (|| -> Result<Vec<StepResult>, String> {
        let mut steps = Vec::new();
        for (i, &mult) in multipliers.iter().enumerate() {
            steps.push(run_step(cfg, &addr, cfg.rate * mult, i)?);
        }
        Ok(steps)
    })();
    if let Some(topo) = topology {
        shutdown_topology(topo);
    }
    let steps = run?;

    let mut table = TextTable::new(vec![
        "rate/s".into(),
        "sent".into(),
        "ok".into(),
        "dedup".into(),
        "wire".into(),
        "shed".into(),
        "busy".into(),
        "timeout".into(),
        "error".into(),
        "proto".into(),
        "reroute".into(),
        "patch".into(),
        "pmiss".into(),
        "batch".into(),
        "booo".into(),
        "p50_ms".into(),
        "p99_ms".into(),
        "qw99_ms".into(),
        "cp99_ms".into(),
    ]);
    for s in &steps {
        table.row(vec![
            format!("{:.0}", s.rate),
            s.sent.to_string(),
            s.ok.to_string(),
            s.dedup_delta.to_string(),
            s.wire_delta.to_string(),
            s.shed.to_string(),
            s.busy.to_string(),
            s.timeout.to_string(),
            s.error.to_string(),
            s.protocol_errors.to_string(),
            s.reroute_delta.to_string(),
            s.patched.to_string(),
            s.patch_miss.to_string(),
            s.batch.to_string(),
            s.batch_ooo.to_string(),
            format!("{:.2}", s.p50_us / 1e3),
            format!("{:.2}", s.p99_us / 1e3),
            format!("{:.2}", s.qwait_p99_us / 1e3),
            format!("{:.2}", s.compute_p99_us / 1e3),
        ]);
    }
    println!(
        "== load ({} steps x {} ms, mix u/d/p/b {:.2}/{:.2}/{:.2}/{:.2}) ==",
        steps.len(),
        cfg.duration_ms,
        cfg.mix.0,
        cfg.mix.1,
        cfg.mix.2,
        cfg.mix_batch
    );
    println!("{}", table.render());

    // benchmark entries in the perf schema: client-side p50 + p99 plus
    // server-side queue-wait and compute p99, per rate
    let bench_entries: Vec<(String, Value)> = steps
        .iter()
        .flat_map(|s| {
            [
                (format!("load/r{:.0}/p50", s.rate), s.p50_us),
                (format!("load/r{:.0}/p99", s.rate), s.p99_us),
                (format!("load/r{:.0}/qwait_p99", s.rate), s.qwait_p99_us),
                (format!("load/r{:.0}/compute_p99", s.rate), s.compute_p99_us),
            ]
            .map(|(id, us)| {
                let mut e = serde_json::Map::new();
                e.insert("n", serde_json::to_value(s.sent).unwrap());
                e.insert("procs", serde_json::to_value(cfg.shards).unwrap());
                e.insert("algo", Value::String("gateway".into()));
                e.insert("median_ns", serde_json::to_value(us * 1e3).unwrap());
                e.insert("min_ns", serde_json::to_value(us * 1e3).unwrap());
                e.insert("reps", serde_json::to_value(1).unwrap());
                (id, Value::Object(e))
            })
        })
        .collect();

    if let Some(path) = &cfg.bench_out {
        let mut meta = serde_json::Map::new();
        meta.insert("seed", serde_json::to_value(cfg.seed).unwrap());
        meta.insert("rate", serde_json::to_value(cfg.rate).unwrap());
        meta.insert(
            "duration_ms",
            serde_json::to_value(cfg.duration_ms).unwrap(),
        );
        meta.insert("shards", serde_json::to_value(cfg.shards).unwrap());
        meta.insert(
            "mix",
            serde_json::to_value([cfg.mix.0, cfg.mix.1, cfg.mix.2, cfg.mix_batch]).unwrap(),
        );
        meta.insert("quick", Value::Bool(cfg.quick));
        merge_bench_out(path, &bench_entries, Value::Object(meta))?;
        println!("merged {} load entries into {path}", bench_entries.len());
    }

    if let Some(path) = &cfg.check {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let baseline: Value =
            serde_json::from_str(&text).map_err(|e| format!("parsing baseline {path}: {e}"))?;
        let pairs: Vec<(String, f64)> = bench_entries
            .iter()
            .map(|(id, e)| (id.clone(), e["min_ns"].as_f64().unwrap_or(0.0)))
            .collect();
        let failures = super::baseline::check_against(&pairs, &baseline, LOAD_TOLERANCE)?;
        if failures.is_empty() {
            println!("load check vs {path}: OK");
        } else {
            return Err(format!(
                "load latency regression vs {path}:\n  {}",
                failures.join("\n  ")
            ));
        }
    }

    if cfg.strict {
        let proto: u64 = steps.iter().map(|s| s.protocol_errors).sum();
        if proto > 0 {
            return Err(format!("strict: {proto} protocol errors"));
        }
        let dedup: u64 = steps.iter().map(|s| s.dedup_delta).sum();
        if cfg.mix.1 > 0.0 && dedup == 0 {
            return Err("strict: duplicate mix produced zero dedup hits".into());
        }
        // Each hot rotation warms the gateway's raw-byte cache by its
        // second flight, so a wire hit needs a *third* wave of
        // duplicates inside one rotation window. The gate only arms
        // when the duplicate pressure makes that statistically certain
        // (≥ 2 expected duplicates per rotation at the sweep's top
        // rate, across dozens of rotations); below that, zero hits
        // means the traffic was too sparse, not that the path broke.
        let wire: u64 = steps.iter().map(|s| s.wire_delta).sum();
        let top_rate = cfg.rate * if cfg.quick { 1.0 } else { 3.0 };
        let rotation_s = (2 * cfg.hot_ms).max(20) as f64 / 1e3;
        let dups_per_rotation = top_rate * cfg.mix.1 * rotation_s;
        if cfg.mix.1 > 0.0 && dups_per_rotation >= 2.0 && wire == 0 {
            return Err(format!(
                "strict: duplicate mix produced zero wire-cache hits \
                 ({dups_per_rotation:.1} expected duplicates per hot rotation)"
            ));
        }
        let patched: u64 = steps.iter().map(|s| s.patched).sum();
        if cfg.mix.2 > 0.0 && patched == 0 {
            return Err("strict: patch mix produced zero patch ops".into());
        }
        let batches: u64 = steps.iter().map(|s| s.batch).sum();
        if cfg.mix_batch > 0.0 && batches == 0 {
            return Err("strict: batch mix sent zero schedule_many requests".into());
        }
        let ooo: u64 = steps.iter().map(|s| s.batch_ooo).sum();
        if ooo > 0 {
            return Err(format!("strict: {ooo} batch replies arrived out of order"));
        }
        // unknown_parent replies are expected under instance-cache churn
        // and explicitly tolerated; they are reported, never fatal
        let misses: u64 = steps.iter().map(|s| s.patch_miss).sum();
        println!(
            "strict checks passed: 0 protocol errors, {dedup} dedup hits, \
             {wire} wire-cache hits, \
             {patched} patch ops ({misses} unknown_parent, tolerated), \
             {batches} batches all in order"
        );
    }
    Ok(())
}
