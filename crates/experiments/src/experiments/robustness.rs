//! fig11 (extension): how gracefully each scheduler's plan degrades when
//! execution times deviate from the ETC matrix — measured by replaying
//! schedules in the discrete-event simulator under gamma noise.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::algorithms::all_heterogeneous;
use hetsched_metrics::table::TextTable;
use hetsched_platform::{EtcParams, System};
use hetsched_sim::{simulate, Noise, SimConfig};
use hetsched_workloads::{random_dag, RandomDagParams};
use serde_json::json;

use super::Report;
use crate::config::Config;
use crate::runner::{instance_seed, parallel_map};

/// fig11: mean makespan degradation (noisy / noiseless replay) vs the
/// execution-noise coefficient of variation.
pub fn degradation_vs_noise(cfg: &Config) -> Report {
    let cvs: &[f64] = if cfg.quick {
        &[0.1, 0.3]
    } else {
        &[0.1, 0.2, 0.3, 0.4, 0.5]
    };
    let n = if cfg.quick { 40 } else { 80 };
    let algs = all_heterogeneous();
    let procs = cfg.procs;
    let noise_reps = 5u64; // noise draws per (instance, cv)

    let work: Vec<u64> = (0..cfg.reps as u64).collect();
    // per instance: degradation[cv][alg]
    let per_instance: Vec<Vec<Vec<f64>>> = parallel_map(work, |&rep| {
        let seed = instance_seed(cfg.seed ^ 0x0b5, 0, rep);
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
        let sys = System::heterogeneous_random(&dag, procs, &EtcParams::range_based(1.0), &mut rng);
        let scheds: Vec<_> = algs.iter().map(|a| a.schedule(&dag, &sys)).collect();
        let bases: Vec<f64> = scheds
            .iter()
            .map(|s| simulate(&dag, &sys, s, &SimConfig::default()).makespan)
            .collect();
        cvs.iter()
            .map(|&cv| {
                scheds
                    .iter()
                    .zip(&bases)
                    .map(|(s, &base)| {
                        let mean_noisy: f64 = (0..noise_reps)
                            .map(|k| {
                                simulate(
                                    &dag,
                                    &sys,
                                    s,
                                    &SimConfig {
                                        exec_noise: Noise::Gamma { cv },
                                        comm_noise: Noise::None,
                                        seed: seed ^ (k + 1),
                                    },
                                )
                                .makespan
                            })
                            .sum::<f64>()
                            / noise_reps as f64;
                        mean_noisy / base
                    })
                    .collect()
            })
            .collect()
    });

    // aggregate means[cv][alg]
    let mut means = vec![vec![0.0f64; algs.len()]; cvs.len()];
    for inst in &per_instance {
        for (ci, row) in inst.iter().enumerate() {
            for (ai, v) in row.iter().enumerate() {
                means[ci][ai] += v;
            }
        }
    }
    for row in &mut means {
        for v in row.iter_mut() {
            *v /= per_instance.len() as f64;
        }
    }

    let mut table = TextTable::new(
        std::iter::once("noise cv".to_string())
            .chain(algs.iter().map(|a| a.name().to_string()))
            .collect(),
    );
    for (ci, &cv) in cvs.iter().enumerate() {
        let mut cells = vec![format!("{cv}")];
        cells.extend(means[ci].iter().map(|v| format!("{v:.3}")));
        table.row(cells);
    }
    let json = json!({
        "metric": "mean makespan degradation (noisy/noiseless)",
        "noise_cvs": cvs,
        "algorithms": algs.iter().map(|a| a.name()).collect::<Vec<_>>(),
        "means": means,
    });
    Report {
        text: format!(
            "makespan degradation under Gamma execution noise ({} instances x {noise_reps} draws)\n{}",
            per_instance.len(),
            table.render()
        ),
        json,
    }
}
