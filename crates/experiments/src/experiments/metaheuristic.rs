//! tab7 (extension): how much does search buy over construction? The GA
//! metaheuristic (orders of magnitude slower) against the one-pass list
//! schedulers, with quality *and* cost reported side by side.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::algorithms::{Genetic, Heft, IlsD, IlsH};
use hetsched_core::Scheduler;
use hetsched_metrics::slr;
use hetsched_metrics::table::TextTable;
use hetsched_platform::{EtcParams, System};
use hetsched_workloads::{random_dag, RandomDagParams};
use serde_json::json;

use super::Report;
use crate::config::Config;
use crate::runner::{instance_seed, parallel_map};

/// tab7: mean SLR and mean scheduling time for GA vs the list schedulers
/// on random n=40 instances at CCR ∈ {1, 5}.
pub fn ga_vs_list(cfg: &Config) -> Report {
    let n = if cfg.quick { 25 } else { 40 };
    let procs = cfg.procs.min(4); // GA convergence degrades on huge machines
    let algs: Vec<Box<dyn Scheduler + Send + Sync>> = vec![
        Box::new(Heft::new()),
        Box::new(IlsH::new()),
        Box::new(IlsD::new()),
        Box::new(Genetic::new()),
    ];

    let work: Vec<u64> = (0..cfg.reps as u64 * 2).collect();
    // per instance: (slr, ms) per algorithm
    let rows: Vec<Vec<(f64, f64)>> = parallel_map(work, |&rep| {
        let seed = instance_seed(cfg.seed ^ 0x9e4e, 0, rep);
        let mut rng = StdRng::seed_from_u64(seed);
        let ccr = [1.0, 5.0][(rep % 2) as usize];
        let dag = random_dag(&RandomDagParams::new(n, 1.0, ccr), &mut rng);
        let sys = System::heterogeneous_random(&dag, procs, &EtcParams::range_based(1.0), &mut rng);
        algs.iter()
            .map(|alg| {
                let t0 = Instant::now();
                let sched = alg.schedule(&dag, &sys);
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                (slr(&dag, &sys, sched.makespan()), ms)
            })
            .collect()
    });

    let mut table = TextTable::new(vec![
        "algorithm".into(),
        "mean SLR".into(),
        "mean time (ms)".into(),
    ]);
    let mut json_rows = Vec::new();
    for (ai, alg) in algs.iter().enumerate() {
        let k = rows.len() as f64;
        let mslr = rows.iter().map(|r| r[ai].0).sum::<f64>() / k;
        let mms = rows.iter().map(|r| r[ai].1).sum::<f64>() / k;
        table.row(vec![
            alg.name().into(),
            format!("{mslr:.3}"),
            format!("{mms:.2}"),
        ]);
        json_rows.push(json!({"alg": alg.name(), "mean_slr": mslr, "mean_ms": mms}));
    }
    Report {
        text: format!(
            "GA search vs one-pass list scheduling, n={n}, {procs} procs ({} instances)\n{}",
            rows.len(),
            table.render()
        ),
        json: json!({"instances": rows.len(), "rows": json_rows}),
    }
}
