//! tab2: how each scheduler uses the machine — processors touched, idle
//! fraction, duplicate copies.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::algorithms::all_heterogeneous;
use hetsched_metrics::occupancy::occupancy;
use hetsched_metrics::table::TextTable;
use hetsched_platform::{EtcParams, System};
use hetsched_workloads::{random_dag, RandomDagParams};
use serde_json::json;

use super::Report;
use crate::config::Config;
use crate::runner::{instance_seed, parallel_map};

/// tab2: occupancy statistics averaged over a random grid (high CCR, where
/// duplication actually triggers).
pub fn occupancy_table(cfg: &Config) -> Report {
    let n = if cfg.quick { 40 } else { 100 };
    let reps = cfg.reps * 2;
    let algs = all_heterogeneous();
    let procs = cfg.procs;

    let work: Vec<u64> = (0..reps as u64).collect();
    let rows: Vec<Vec<(f64, f64, f64)>> = parallel_map(work, |&rep| {
        let seed = instance_seed(cfg.seed ^ 0x0cc, 0, rep);
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, 5.0), &mut rng);
        let sys = System::heterogeneous_random(&dag, procs, &EtcParams::range_based(1.0), &mut rng);
        algs.iter()
            .map(|alg| {
                let o = occupancy(&alg.schedule(&dag, &sys));
                (o.procs_used as f64, o.idle_fraction, o.duplicates as f64)
            })
            .collect()
    });

    let mut table = TextTable::new(vec![
        "algorithm".into(),
        "procs used".into(),
        "idle frac".into(),
        "duplicates".into(),
    ]);
    let mut json_rows = Vec::new();
    for (ai, alg) in algs.iter().enumerate() {
        let k = rows.len() as f64;
        let used = rows.iter().map(|r| r[ai].0).sum::<f64>() / k;
        let idle = rows.iter().map(|r| r[ai].1).sum::<f64>() / k;
        let dups = rows.iter().map(|r| r[ai].2).sum::<f64>() / k;
        table.row(vec![
            alg.name().into(),
            format!("{used:.1}/{procs}"),
            format!("{idle:.3}"),
            format!("{dups:.1}"),
        ]);
        json_rows.push(json!({
            "alg": alg.name(),
            "procs_used": used,
            "idle_fraction": idle,
            "duplicates": dups,
        }));
    }
    Report {
        text: format!(
            "occupancy on random n={n} CCR=5 graphs ({} instances)\n{}",
            rows.len(),
            table.render()
        ),
        json: json!({ "instances": rows.len(), "rows": json_rows }),
    }
}
