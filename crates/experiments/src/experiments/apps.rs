//! Application-graph experiments: Gaussian elimination (fig6), FFT (fig7),
//! and the Laplace wavefront (fig8).

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::algorithms::all_heterogeneous;
use hetsched_platform::{EtcParams, System};
use hetsched_workloads::{fft, gauss, laplace};
use serde_json::json;

use super::sweep::{metric_sweep, Metric, Point};
use super::Report;
use crate::config::Config;

/// fig6: average SLR vs matrix size for Gaussian elimination.
pub fn gauss(cfg: &Config) -> Report {
    let sizes: &[usize] = if cfg.quick {
        &[5, 10]
    } else {
        &[5, 8, 11, 14, 17, 20]
    };
    let procs = cfg.procs;
    let points: Vec<Point> = sizes
        .iter()
        .map(|&m| Point {
            label: format!("m={m} (n={})", gauss::gaussian_task_count(m)),
            gen: Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let ccr = [0.5, 1.0, 5.0][(seed % 3) as usize];
                let dag = gauss::gaussian_elimination(m, ccr, &mut rng);
                let sys = System::heterogeneous_random(
                    &dag,
                    procs,
                    &EtcParams::range_based(0.75),
                    &mut rng,
                );
                (dag, sys)
            }),
        })
        .collect();
    let algs = all_heterogeneous();
    let (text, json, _) =
        metric_sweep("matrix", &points, &algs, cfg.reps, cfg.seed, Metric::AvgSlr);
    Report { text, json }
}

/// fig7: average SLR and speedup vs FFT size.
pub fn fft(cfg: &Config) -> Report {
    let sizes: &[usize] = if cfg.quick {
        &[8, 16]
    } else {
        &[8, 16, 32, 64]
    };
    let procs = cfg.procs;
    let mk_points = |sizes: &[usize]| -> Vec<Point> {
        sizes
            .iter()
            .map(|&p| Point {
                label: format!("p={p} (n={})", fft::fft_task_count(p)),
                gen: Box::new(move |seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let ccr = [0.5, 1.0, 5.0][(seed % 3) as usize];
                    let dag = fft::fft_butterfly(p, ccr, &mut rng);
                    let sys = System::heterogeneous_random(
                        &dag,
                        procs,
                        &EtcParams::range_based(0.75),
                        &mut rng,
                    );
                    (dag, sys)
                }),
            })
            .collect()
    };
    let algs = all_heterogeneous();
    let (t1, j1, _) = metric_sweep(
        "points",
        &mk_points(sizes),
        &algs,
        cfg.reps,
        cfg.seed,
        Metric::AvgSlr,
    );
    let (t2, j2, _) = metric_sweep(
        "points",
        &mk_points(sizes),
        &algs,
        cfg.reps,
        cfg.seed,
        Metric::AvgSpeedup,
    );
    Report {
        text: format!("{t1}\n{t2}"),
        json: json!({ "slr": j1, "speedup": j2 }),
    }
}

/// fig8: average SLR vs grid size for the Laplace wavefront.
pub fn laplace(cfg: &Config) -> Report {
    let sizes: &[usize] = if cfg.quick { &[4, 8] } else { &[4, 8, 12, 16] };
    let procs = cfg.procs;
    let points: Vec<Point> = sizes
        .iter()
        .map(|&g| Point {
            label: format!("g={g} (n={})", g * g),
            gen: Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let ccr = [0.5, 1.0, 5.0][(seed % 3) as usize];
                let dag = laplace::laplace_wavefront(g, ccr, &mut rng);
                let sys = System::heterogeneous_random(
                    &dag,
                    procs,
                    &EtcParams::range_based(0.75),
                    &mut rng,
                );
                (dag, sys)
            }),
        })
        .collect();
    let algs = all_heterogeneous();
    let (text, json, _) = metric_sweep("grid", &points, &algs, cfg.reps, cfg.seed, Metric::AvgSlr);
    Report { text, json }
}
