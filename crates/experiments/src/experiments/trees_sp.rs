//! fig12 (extension): structured graph classes — trees and
//! series–parallel graphs — where in-tree joins make duplication's case
//! most sharply.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::algorithms::all_heterogeneous;
use hetsched_platform::{EtcParams, System};
use hetsched_workloads::series_parallel::series_parallel;
use hetsched_workloads::trees::{divide_and_conquer, in_tree, out_tree};

use super::sweep::{metric_sweep, Metric, Point};
use super::Report;
use crate::config::Config;

/// fig12: average SLR per structured graph class.
pub fn structured_graphs(cfg: &Config) -> Report {
    let (depth, fanout) = if cfg.quick { (3, 2) } else { (5, 2) };
    let sp_n = if cfg.quick { 20 } else { 60 };
    let procs = cfg.procs;
    let mk_sys = move |dag: &hetsched_dag::Dag, rng: &mut StdRng| {
        System::heterogeneous_random(dag, procs, &EtcParams::range_based(1.0), rng)
    };
    let points: Vec<Point> = vec![
        Point {
            label: format!("out-tree d{depth}"),
            gen: Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let ccr = [1.0, 5.0][(seed % 2) as usize];
                let dag = out_tree(depth, fanout, 10.0, ccr, &mut rng);
                let sys = mk_sys(&dag, &mut rng);
                (dag, sys)
            }),
        },
        Point {
            label: format!("in-tree d{depth}"),
            gen: Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let ccr = [1.0, 5.0][(seed % 2) as usize];
                let dag = in_tree(depth, fanout, 10.0, ccr, &mut rng);
                let sys = mk_sys(&dag, &mut rng);
                (dag, sys)
            }),
        },
        Point {
            label: format!("div&conq d{depth}"),
            gen: Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let ccr = [1.0, 5.0][(seed % 2) as usize];
                let dag = divide_and_conquer(depth, fanout, 10.0, ccr, &mut rng);
                let sys = mk_sys(&dag, &mut rng);
                (dag, sys)
            }),
        },
        Point {
            label: format!("series-par n{sp_n}"),
            gen: Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let ccr = [1.0, 5.0][(seed % 2) as usize];
                let dag = series_parallel(sp_n, 0.5, 10.0, ccr, &mut rng);
                let sys = mk_sys(&dag, &mut rng);
                (dag, sys)
            }),
        },
    ];
    let algs = all_heterogeneous();
    let (text, json, _) = metric_sweep("class", &points, &algs, cfg.reps, cfg.seed, Metric::AvgSlr);
    Report { text, json }
}
