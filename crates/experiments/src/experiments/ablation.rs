//! tab3 (extension): which ILS knob buys what — rank aggregation ×
//! lookahead × duplication, each toggled independently, against the HEFT
//! reference.

use hetsched_core::algorithms::{Heft, IlsD, IlsH};
use hetsched_core::{CostAggregation, Scheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_platform::{EtcParams, System};
use hetsched_workloads::{random_dag, RandomDagParams};

use super::sweep::{metric_sweep, Metric, Point};
use super::Report;
use crate::config::Config;

/// tab3: average SLR of each ILS configuration on the random grid.
pub fn ils_knobs(cfg: &Config) -> Report {
    let n = if cfg.quick { 40 } else { 100 };
    let procs = cfg.procs;
    let points: Vec<Point> = [0.5, 1.0, 5.0]
        .iter()
        .map(|&ccr| Point {
            label: format!("CCR={ccr}"),
            gen: Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let dag = random_dag(&RandomDagParams::new(n, 1.0, ccr), &mut rng);
                let sys = System::heterogeneous_random(
                    &dag,
                    procs,
                    &EtcParams::range_based(1.0),
                    &mut rng,
                );
                (dag, sys)
            }),
        })
        .collect();

    // the ablation ladder: HEFT -> +rank -> +lookahead -> +duplication
    let algs: Vec<Box<dyn Scheduler + Send + Sync>> = vec![
        Box::new(Heft::new()),
        Box::new(IlsH {
            agg: CostAggregation::Mean,
            tolerance: 0.0,
            lookahead: false,
        }), // == HEFT modulo tie-breaks
        Box::new(IlsH {
            agg: CostAggregation::MeanStd(1.0),
            tolerance: 0.0,
            lookahead: false,
        }), // + spread-aware rank
        Box::new(IlsH {
            agg: CostAggregation::MeanStd(1.0),
            tolerance: 0.1,
            lookahead: true,
        }), // + lookahead (= ILS-H)
        Box::new(IlsD::new()), // + duplication (= ILS-D)
    ];
    let labels = ["HEFT", "base", "+rank", "+look (ILS-H)", "+dup (ILS-D)"];

    let (mut text, mut json, _) =
        metric_sweep("config", &points, &algs, cfg.reps, cfg.seed, Metric::AvgSlr);
    // metric_sweep labels columns with Scheduler::name(), which repeats
    // "ILS-H" for the ablation variants; annotate the legend explicitly.
    text.push_str("\ncolumns, left to right: ");
    text.push_str(&labels.join(" | "));
    text.push('\n');
    json["column_legend"] = serde_json::json!(labels);
    Report { text, json }
}
