//! fig9: the homogeneous half of the paper's title — the same random-graph
//! sweep on a flat ETC matrix, comparing the homogeneous classics (MCP)
//! against the proposed ILS-M and the heterogeneous algorithms degraded to
//! the homogeneous case.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::algorithms::homogeneous_set;
use hetsched_platform::System;
use hetsched_workloads::{random_dag, RandomDagParams};

use super::sweep::{metric_sweep, Metric, Point};
use super::Report;
use crate::config::Config;

/// fig9: average SLR vs number of tasks on a homogeneous system.
///
/// On a flat ETC matrix the SLR denominator is the ordinary compute-only
/// critical path, so this is the classic NSL (normalized schedule length).
pub fn slr_vs_tasks(cfg: &Config) -> Report {
    let sizes: &[usize] = if cfg.quick {
        &[20, 60]
    } else {
        &[20, 40, 80, 150, 300]
    };
    let procs = cfg.procs;
    let points: Vec<Point> = sizes
        .iter()
        .map(|&n| Point {
            label: n.to_string(),
            gen: Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let ccr = [0.1, 0.5, 1.0, 5.0][(seed % 4) as usize];
                let alpha = [0.5, 1.0, 2.0][(seed % 3) as usize];
                let dag = random_dag(
                    &RandomDagParams {
                        n,
                        alpha,
                        ccr,
                        ..Default::default()
                    },
                    &mut rng,
                );
                let sys = System::homogeneous_unit(&dag, procs);
                (dag, sys)
            }),
        })
        .collect();
    let algs = homogeneous_set();
    let (text, json, _) = metric_sweep("tasks", &points, &algs, cfg.reps, cfg.seed, Metric::AvgSlr);
    Report { text, json }
}
