//! fig10: scheduler running time vs DAG size — the complexity half of a
//! heuristic's value proposition.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::algorithms::all_heterogeneous;
use hetsched_metrics::table::TextTable;
use hetsched_platform::{EtcParams, System};
use hetsched_workloads::{random_dag, RandomDagParams};
use serde_json::json;

use super::Report;
use crate::config::Config;
use crate::runner::instance_seed;

/// fig10: wall-clock scheduling time (milliseconds) per algorithm and DAG
/// size, median of `reps` runs on the same instance per size.
pub fn runtime_vs_tasks(cfg: &Config) -> Report {
    let sizes: &[usize] = if cfg.quick {
        &[100, 200]
    } else {
        &[100, 200, 400, 800, 1600]
    };
    let algs = all_heterogeneous();
    let mut table = TextTable::new(
        std::iter::once("tasks".to_string())
            .chain(algs.iter().map(|a| a.name().to_string()))
            .collect(),
    );
    let mut means: Vec<Vec<f64>> = Vec::new();
    for (si, &n) in sizes.iter().enumerate() {
        let seed = instance_seed(cfg.seed ^ 0xf16, si as u64, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
        let sys =
            System::heterogeneous_random(&dag, cfg.procs, &EtcParams::range_based(1.0), &mut rng);
        let mut row_ms = Vec::with_capacity(algs.len());
        for alg in &algs {
            let mut samples: Vec<f64> = (0..cfg.reps.max(3))
                .map(|_| {
                    let t0 = Instant::now();
                    let sched = alg.schedule(&dag, &sys);
                    let dt = t0.elapsed().as_secs_f64() * 1e3;
                    std::hint::black_box(sched.makespan());
                    dt
                })
                .collect();
            samples.sort_by(f64::total_cmp);
            row_ms.push(samples[samples.len() / 2]); // median
        }
        let mut cells = vec![n.to_string()];
        cells.extend(row_ms.iter().map(|ms| format!("{ms:.2}")));
        table.row(cells);
        means.push(row_ms);
    }
    let json = json!({
        "unit": "ms (median)",
        "sizes": sizes,
        "algorithms": algs.iter().map(|a| a.name()).collect::<Vec<_>>(),
        "times_ms": means,
    });
    Report {
        text: format!(
            "scheduling time, ms (median of {} runs)\n{}",
            cfg.reps.max(3),
            table.render()
        ),
        json,
    }
}
