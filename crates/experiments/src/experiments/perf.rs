//! `perf`: wall-clock benchmark of the scheduling hot path — the
//! fig10-runtime grid (every heterogeneous scheduler × DAG size), the
//! large-instance point the engine optimizations target (n = 3200), and
//! the serve cache-miss path (request parse → queue → schedule → reply).
//!
//! Results are keyed `"<experiment>/n<N>/<algo>"` and stored as
//! `{n, procs, algo, median_ns, min_ns, reps}`, the schema of the
//! committed `BENCH_PR2.json` trajectory baseline. `--check <file>`
//! compares the fresh run's per-entry minimum against such a baseline and
//! fails on a >25% regression after dividing out the machine-speed factor
//! (the median ratio across all shared entries), so a uniformly slower CI
//! runner passes while a genuinely regressed hot path does not. Entries
//! above tolerance are re-measured up to three times before failing, so
//! only a slowdown that persists across independent passes counts.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::algorithms::{all_heterogeneous, by_name};
use hetsched_core::{
    repairable, run_portfolio, CostAggregation, Delta, ProblemInstance, Schedule, Scheduler,
};
use hetsched_dag::TaskId;
use hetsched_metrics::table::TextTable;
use hetsched_platform::{EtcParams, ProcId, System};
use hetsched_serve::{ServeConfig, Service};
use hetsched_workloads::{random_dag, RandomDagParams};
use serde_json::{json, Value};

use crate::config::Config;
use crate::runner::instance_seed;

/// Relative slowdown (after machine-factor normalization) tolerated by
/// `--check` before an entry counts as a regression.
const REGRESSION_TOLERANCE: f64 = 0.25;

/// One measured point of the benchmark.
struct BenchEntry {
    id: String,
    n: usize,
    procs: usize,
    algo: String,
    median_ns: f64,
    min_ns: f64,
    reps: usize,
}

/// Target wall time per sample: short runs are batched until one sample
/// spans at least this long, averaging out timer and OS-scheduler jitter.
const SAMPLE_TARGET_NS: f64 = 2e6;

/// Time `reps` samples of `f`, returning `(median_ns, min_ns)` per run.
///
/// A calibration run sizes a batch so each sample covers
/// [`SAMPLE_TARGET_NS`]; microsecond-scale runs are then measured as the
/// mean of dozens of consecutive runs instead of a single noisy interval.
/// The median is what humans read; the minimum is what `--check`
/// compares, because contention on a shared machine only ever adds time.
fn bench<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, f64) {
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_nanos() as f64;
    let batch = ((SAMPLE_TARGET_NS / once.max(1.0)).ceil() as usize).clamp(1, 1000);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            t0.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], samples[0])
}

/// The fig10-runtime grid: every heterogeneous scheduler on one random
/// instance per size, same seeds as the `fig10-runtime` experiment.
fn grid_entries(cfg: &Config, reps: usize) -> Vec<BenchEntry> {
    let sizes: &[usize] = if cfg.quick {
        &[100, 200]
    } else {
        &[100, 200, 400, 800, 1600]
    };
    let algs = all_heterogeneous();
    let mut out = Vec::new();
    for (si, &n) in sizes.iter().enumerate() {
        let seed = instance_seed(cfg.seed ^ 0xf16, si as u64, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
        let sys =
            System::heterogeneous_random(&dag, cfg.procs, &EtcParams::range_based(1.0), &mut rng);
        // sub-millisecond runs at small n need more samples for a stable
        // median than the second-scale large instances
        let reps = if n <= 400 { reps.max(15) } else { reps };
        for alg in &algs {
            let (med, min) = bench(reps, || alg.schedule(&dag, &sys).makespan());
            out.push(BenchEntry {
                id: format!("fig10/n{n}/{}", alg.name()),
                n,
                procs: cfg.procs,
                algo: alg.name().to_string(),
                median_ns: med,
                min_ns: min,
                reps,
            });
        }
    }
    out
}

/// The large-instance point the EFT engine overhaul targets: HEFT and
/// ILS-H at n = 3200 (skipped under `--quick`; the grid covers the smoke
/// run).
fn large_entries(cfg: &Config, reps: usize) -> Vec<BenchEntry> {
    if cfg.quick {
        return Vec::new();
    }
    let n = 3200usize;
    let seed = instance_seed(cfg.seed ^ 0xf16, 0x3200, 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
    let sys = System::heterogeneous_random(&dag, cfg.procs, &EtcParams::range_based(1.0), &mut rng);
    ["HEFT", "ILS-H"]
        .iter()
        .map(|name| {
            let alg = by_name(name).expect("registry has HEFT and ILS-H");
            let (med, min) = bench(reps, || alg.schedule(&dag, &sys).makespan());
            BenchEntry {
                id: format!("large/n{n}/{name}"),
                n,
                procs: cfg.procs,
                algo: name.to_string(),
                median_ns: med,
                min_ns: min,
                reps,
            }
        })
        .collect()
}

/// The incremental-rescheduling section the repair path targets: a fresh
/// HEFT run on the patched problem versus `apply_deltas` + `repair` from
/// the parent schedule, on a one-ETC-entry delta near the sink (most of
/// the rank order replays, only the tail reschedules). Quick mode keeps
/// the n = 800 point so CI gates the same ids against a full baseline;
/// the full run adds the n = 3200 headline entry.
fn repair_entries(cfg: &Config, reps: usize) -> Vec<BenchEntry> {
    let sizes: &[usize] = if cfg.quick { &[800] } else { &[800, 3200] };
    let reps = reps.max(5);
    let mut out = Vec::new();
    for &n in sizes {
        let seed = instance_seed(cfg.seed ^ 0x4e9a, n as u64, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
        let sys =
            System::heterogeneous_random(&dag, cfg.procs, &EtcParams::range_based(1.0), &mut rng);
        let parent_inst = ProblemInstance::from_refs(&dag, &sys);
        let heft = by_name("HEFT").expect("registry has HEFT");
        let repairer = repairable("HEFT").expect("HEFT is repair-capable");
        // scheduling the parent warms its rank memo, exactly as a serve
        // shard's instance cache would hold it when a patch arrives
        let parent = heft.schedule_instance(&parent_inst);
        // dirty the task HEFT schedules last (minimum upward rank) and
        // nudge one of its ETC entries by 2%: a realistic re-estimate
        // small enough to leave the prefix rank order intact, so nearly
        // the whole parent schedule replays
        let ranks = parent_inst.upward_rank(CostAggregation::Mean);
        let last = ranks
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty DAG");
        let task = TaskId(last as u32);
        let deltas = [Delta::EtcEntry {
            task,
            proc: ProcId(0),
            time: sys.exec_time(task, ProcId(0)) * 1.02,
        }];
        let patched_once = parent_inst
            .apply_deltas(&deltas)
            .expect("ETC delta applies");
        let entry = |id: String, algo: &str, (median_ns, min_ns): (f64, f64)| BenchEntry {
            id,
            n,
            procs: cfg.procs,
            algo: algo.to_string(),
            median_ns,
            min_ns,
            reps,
        };
        out.push(entry(
            format!("repair/n{n}/fresh"),
            "HEFT",
            bench(reps, || {
                heft.schedule(patched_once.instance.dag(), patched_once.instance.sys())
                    .makespan()
            }),
        ));
        out.push(entry(
            format!("repair/n{n}/repair"),
            "HEFT",
            bench(reps, || {
                let patched = parent_inst
                    .apply_deltas(&deltas)
                    .expect("ETC delta applies");
                let (sched, _stats) =
                    repairer.repair(&patched.instance, &patched.dirty, &parent_inst, &parent);
                sched.makespan()
            }),
        ));
    }
    out
}

/// The serve cache-miss path: a fresh daemon per repetition handles one
/// schedule request end to end (parse, validate, enqueue, schedule on a
/// worker thread, reply) with a cold cache.
fn serve_entries(cfg: &Config, reps: usize) -> Vec<BenchEntry> {
    // thread spawn + channel round-trips make single runs noisy; take more
    // samples than the scheduling-only entries need
    let reps = reps.max(15);
    let n = if cfg.quick { 100usize } else { 400 };
    let tasks: Vec<String> = (0..n)
        .map(|i| format!("{{\"weight\":{}}}", i % 7 + 1))
        .collect();
    let edges: Vec<String> = (1..n)
        .map(|i| format!("{{\"src\":{},\"dst\":{i},\"data\":2.5}}", (i - 1) / 2))
        .collect();
    let line = format!(
        "{{\"op\":\"schedule\",\"dag\":{{\"tasks\":[{}],\"edges\":[{}]}},\
         \"system\":{{\"processors\":{{\"kind\":\"homogeneous\",\"count\":{}}},\
         \"network\":{{\"topology\":\"fully_connected\",\"bandwidth\":1.0}}}},\
         \"algorithm\":\"HEFT\",\"options\":{{}}}}",
        tasks.join(","),
        edges.join(","),
        cfg.procs,
    );
    let (med, min) = bench(reps, || {
        let svc = Service::start(ServeConfig {
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 8,
            instance_cache_capacity: 8,
            default_deadline_ms: 60_000,
        });
        let resp = svc.handle_line(&line);
        svc.shutdown();
        resp
    });
    vec![BenchEntry {
        id: format!("serve-cache-miss/n{n}/HEFT"),
        n,
        procs: cfg.procs,
        algo: "HEFT".to_string(),
        median_ns: med,
        min_ns: min,
        reps,
    }]
}

/// The wire-path section the raw-byte hot-line cache targets: one warmed
/// daemon answers the same n = 50 schedule request three ways. The
/// `memo-hit` entry is the pre-wire round trip — `handle_line` parses the
/// JSON, hits the result memo, and re-serializes the reply per call. The
/// `fallback` entry pushes a scanner-declined variant of the same line
/// (one extra space) through `handle_line_bytes`: full parse, memo hit,
/// preserialized reply bytes. The `hit` entry is the wire fast path on
/// the compact line: one digest probe returns the cached reply `Arc`
/// with no parsing or serialization at all. `run_perf` reports the
/// memo-hit → wire-hit ratio as the headline wire speedup.
fn wire_entries(cfg: &Config, reps: usize) -> Vec<BenchEntry> {
    let reps = reps.max(15);
    let n = 50usize;
    let tasks: Vec<String> = (0..n)
        .map(|i| format!("{{\"weight\":{}}}", i % 7 + 1))
        .collect();
    let edges: Vec<String> = (1..n)
        .map(|i| format!("{{\"src\":{},\"dst\":{i},\"data\":2.5}}", (i - 1) / 2))
        .collect();
    let line = format!(
        "{{\"op\":\"schedule\",\"dag\":{{\"tasks\":[{}],\"edges\":[{}]}},\
         \"system\":{{\"processors\":{{\"kind\":\"homogeneous\",\"count\":{}}},\
         \"network\":{{\"topology\":\"fully_connected\",\"bandwidth\":1.0}}}},\
         \"algorithm\":\"HEFT\",\"options\":{{}}}}",
        tasks.join(","),
        edges.join(","),
        cfg.procs,
    );
    // one leading space after the opening brace: parses identically, but
    // the scanner declines it, forcing the full-parse fallback
    let loose_line = format!(" {line}");
    let svc = Service::start(ServeConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 8,
        instance_cache_capacity: 8,
        default_deadline_ms: 60_000,
    });
    // warm to the fixed point: first call computes and fills the memo,
    // second replays the memo and writes the reply through to the wire
    // cache, so every benched call below is a steady-state repeat
    let first = svc.handle_line_bytes(&line);
    assert!(
        first.starts_with(b"{\"status\":\"ok\""),
        "wire bench warmup failed: {}",
        String::from_utf8_lossy(&first)
    );
    svc.handle_line_bytes(&line);

    let entry = |id: String, (median_ns, min_ns): (f64, f64)| BenchEntry {
        id,
        n,
        procs: cfg.procs,
        algo: "HEFT".to_string(),
        median_ns,
        min_ns,
        reps,
    };
    let out = vec![
        entry(
            format!("wire/n{n}/memo-hit"),
            bench(reps, || svc.handle_line(&line).to_line()),
        ),
        entry(
            format!("wire/n{n}/fallback"),
            bench(reps, || svc.handle_line_bytes(&loose_line)),
        ),
        entry(
            format!("wire/n{n}/hit"),
            bench(reps, || svc.handle_line_bytes(&line)),
        ),
    ];
    svc.shutdown();
    out
}

/// The multi-algorithm path the shared [`ProblemInstance`] targets: the
/// same (DAG, system) pair scheduled by every registered heterogeneous
/// algorithm, measured three ways — fresh per-call transient instances
/// (the pre-IR cost), one shared memoized instance walked sequentially,
/// and the parallel portfolio runner. `run_perf` reports the fresh →
/// portfolio ratio as the headline multi-algorithm speedup.
fn multi_alg_entries(cfg: &Config, reps: usize) -> Vec<BenchEntry> {
    let reps = reps.max(10);
    let n = if cfg.quick { 100usize } else { 400 };
    let seed = instance_seed(cfg.seed ^ 0x9f0, n as u64, 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
    let sys = System::heterogeneous_random(&dag, cfg.procs, &EtcParams::range_based(1.0), &mut rng);
    let algs = all_heterogeneous();
    let refs: Vec<&(dyn Scheduler + Send + Sync)> = algs.iter().map(|b| &**b).collect();

    let entry = |id: String, (median_ns, min_ns): (f64, f64), reps: usize| BenchEntry {
        id,
        n,
        procs: cfg.procs,
        algo: "ALL".to_string(),
        median_ns,
        min_ns,
        reps,
    };
    vec![
        entry(
            format!("multi-alg/n{n}/fresh"),
            bench(reps, || {
                let mut acc = 0.0f64;
                for alg in &algs {
                    acc += alg.schedule(&dag, &sys).makespan();
                }
                acc
            }),
            reps,
        ),
        entry(
            format!("multi-alg/n{n}/shared"),
            bench(reps, || {
                // instance construction inside the sample: the comparison
                // includes everything a caller pays per (DAG, system) pair
                let inst = ProblemInstance::from_refs(&dag, &sys);
                let mut acc = 0.0f64;
                for alg in &algs {
                    acc += alg.schedule_instance(&inst).makespan();
                }
                acc
            }),
            reps,
        ),
        entry(
            format!("multi-alg/n{n}/portfolio"),
            bench(reps, || {
                let inst = ProblemInstance::from_refs(&dag, &sys);
                run_portfolio(&inst, &refs).best_entry().makespan
            }),
            reps,
        ),
    ]
}

/// The serve-side multi-algorithm path, measured both ways a client can
/// get four algorithms out of the daemon: one `portfolio` request (the
/// request is parsed once, the instance is built once, the members fan out
/// across the worker pool) versus four individual `schedule` requests
/// (each pays its own JSON parse, spec validation, and reply round-trip —
/// the instance cache only spares the rebuild from the second request on).
/// Both run against a fresh daemon with cold caches; `run_perf` reports
/// the individual → portfolio ratio as the serve multi-algorithm speedup.
fn serve_portfolio_entries(cfg: &Config, reps: usize) -> Vec<BenchEntry> {
    let reps = reps.max(10);
    let n = if cfg.quick { 100usize } else { 400 };
    const ALGS: [&str; 4] = ["HEFT", "CPOP", "PETS", "ILS-H"];
    let tasks: Vec<String> = (0..n)
        .map(|i| format!("{{\"weight\":{}}}", i % 7 + 1))
        .collect();
    let edges: Vec<String> = (1..n)
        .map(|i| format!("{{\"src\":{},\"dst\":{i},\"data\":2.5}}", (i - 1) / 2))
        .collect();
    let problem = format!(
        "\"dag\":{{\"tasks\":[{}],\"edges\":[{}]}},\
         \"system\":{{\"processors\":{{\"kind\":\"homogeneous\",\"count\":{}}},\
         \"network\":{{\"topology\":\"fully_connected\",\"bandwidth\":1.0}}}}",
        tasks.join(","),
        edges.join(","),
        cfg.procs,
    );
    let portfolio_line = format!(
        "{{\"op\":\"portfolio\",{problem},\
         \"algorithms\":[\"HEFT\",\"CPOP\",\"PETS\",\"ILS-H\"],\"options\":{{}}}}"
    );
    let schedule_lines: Vec<String> = ALGS
        .iter()
        .map(|a| {
            format!("{{\"op\":\"schedule\",{problem},\"algorithm\":\"{a}\",\"options\":{{}}}}")
        })
        .collect();
    let fresh_service = || {
        Service::start(ServeConfig {
            workers: 4,
            queue_capacity: 16,
            cache_capacity: 8,
            instance_cache_capacity: 8,
            default_deadline_ms: 60_000,
        })
    };
    let entry = |id: String, (median_ns, min_ns): (f64, f64)| BenchEntry {
        id,
        n,
        procs: cfg.procs,
        algo: ALGS.join(","),
        median_ns,
        min_ns,
        reps,
    };
    vec![
        entry(
            format!("serve-portfolio/n{n}/4algs"),
            bench(reps, || {
                let svc = fresh_service();
                let resp = svc.handle_line(&portfolio_line);
                svc.shutdown();
                resp
            }),
        ),
        entry(
            format!("serve-multi-alg/n{n}/individual"),
            bench(reps, || {
                let svc = fresh_service();
                let mut out = Vec::with_capacity(ALGS.len());
                for line in &schedule_lines {
                    out.push(svc.handle_line(line));
                }
                svc.shutdown();
                out
            }),
        ),
    ]
}

/// The batched-scheduling section `Scheduler::schedule_many` targets: a
/// stream of small (n = 50) random DAGs — the high-QPS serve regime —
/// scheduled by HEFT as N sequential `schedule_instance` calls versus one
/// `schedule_many` call (one context, one arena checkout threaded through
/// the whole stream). The same comparison runs through the daemon: N
/// individual `schedule` request lines versus one `schedule_many` line,
/// both against a fresh daemon with cold caches, so the serve pair prices
/// the per-request parse/validate/enqueue/reply overhead the batch op
/// amortizes. `run_perf` reports both ratios as headline numbers.
fn many_entries(cfg: &Config, reps: usize) -> Vec<BenchEntry> {
    let reps = reps.max(10);
    let batch = if cfg.quick { 8usize } else { 16 };
    let n = 50usize;

    // library level: distinct random instances, one per stream slot
    let insts: Vec<ProblemInstance<'static>> = (0..batch)
        .map(|bi| {
            let seed = instance_seed(cfg.seed ^ 0x3a9, bi as u64, 0);
            let mut rng = StdRng::seed_from_u64(seed);
            let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
            let sys = System::heterogeneous_random(
                &dag,
                cfg.procs,
                &EtcParams::range_based(1.0),
                &mut rng,
            );
            ProblemInstance::new(dag, sys)
        })
        .collect();
    let heft = by_name("HEFT").expect("registry has HEFT");

    // serve level: the same stream shape as NDJSON lines (deterministic
    // weights varied per slot so every instance fingerprints distinctly)
    let problem_json = |bi: usize| {
        let tasks: Vec<String> = (0..n)
            .map(|i| format!("{{\"weight\":{}}}", (i + bi) % 7 + 1))
            .collect();
        let edges: Vec<String> = (1..n)
            .map(|i| format!("{{\"src\":{},\"dst\":{i},\"data\":2.5}}", (i - 1) / 2))
            .collect();
        format!(
            "\"dag\":{{\"tasks\":[{}],\"edges\":[{}]}},\
             \"system\":{{\"processors\":{{\"kind\":\"homogeneous\",\"count\":{}}},\
             \"network\":{{\"topology\":\"fully_connected\",\"bandwidth\":1.0}}}}",
            tasks.join(","),
            edges.join(","),
            cfg.procs,
        )
    };
    let schedule_lines: Vec<String> = (0..batch)
        .map(|bi| {
            format!(
                "{{\"op\":\"schedule\",{},\"algorithm\":\"HEFT\",\"options\":{{}}}}",
                problem_json(bi)
            )
        })
        .collect();
    let many_line = format!(
        "{{\"op\":\"schedule_many\",\"instances\":[{}],\"algorithm\":\"HEFT\",\"options\":{{}}}}",
        (0..batch)
            .map(|bi| format!("{{{}}}", problem_json(bi)))
            .collect::<Vec<_>>()
            .join(","),
    );
    let fresh_service = || {
        Service::start(ServeConfig {
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 32,
            instance_cache_capacity: 32,
            default_deadline_ms: 60_000,
        })
    };

    let entry = |id: String, (median_ns, min_ns): (f64, f64)| BenchEntry {
        id,
        n,
        procs: cfg.procs,
        algo: "HEFT".to_string(),
        median_ns,
        min_ns,
        reps,
    };
    vec![
        entry(
            format!("many/n{n}x{batch}/sequential"),
            bench(reps, || {
                let mut acc = 0.0f64;
                for inst in &insts {
                    acc += heft.schedule_instance(inst).makespan();
                }
                acc
            }),
        ),
        entry(
            format!("many/n{n}x{batch}/batched"),
            bench(reps, || {
                heft.schedule_many(&insts)
                    .iter()
                    .map(Schedule::makespan)
                    .sum::<f64>()
            }),
        ),
        entry(
            format!("many/n{n}x{batch}/serve-individual"),
            bench(reps, || {
                let svc = fresh_service();
                let mut out = Vec::with_capacity(schedule_lines.len());
                for line in &schedule_lines {
                    out.push(svc.handle_line(line));
                }
                svc.shutdown();
                out
            }),
        ),
        entry(
            format!("many/n{n}x{batch}/serve-batch"),
            bench(reps, || {
                let svc = fresh_service();
                let resp = svc.handle_line(&many_line);
                svc.shutdown();
                resp
            }),
        ),
    ]
}

/// The search-scheduler section the deterministic parallel layer targets:
/// GA, ILS-D, and DUP-HEFT at `jobs` 1 vs 4 on fig10-style instances,
/// plus a budget-capped BNB. Ids are `search/<algo>/n<N>/jobs<J>`.
/// Schedules are bit-identical at any thread count, so the jobs=4 entries
/// measure pure wall-clock effect; on a single-core host the jobs=4/jobs=1
/// ratio is ~1x (the pool degenerates to one busy worker), while a
/// multi-core host shows the fan-out win. `--check` normalizes by the
/// median ratio, so both kinds of host pass against either baseline.
fn search_entries(cfg: &Config, reps: usize) -> Vec<BenchEntry> {
    let reps = reps.max(5);
    let sizes: &[usize] = if cfg.quick { &[200] } else { &[200, 400] };
    let mut out = Vec::new();
    for &n in sizes {
        let seed = instance_seed(cfg.seed ^ 0x5ea, n as u64, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
        let sys =
            System::heterogeneous_random(&dag, cfg.procs, &EtcParams::range_based(1.0), &mut rng);
        for name in ["GA", "ILS-D", "DUP-HEFT"] {
            let alg = by_name(name).expect("registry has the search schedulers");
            for jobs in [1usize, 4] {
                let (med, min) = bench(reps, || {
                    hetsched_core::par::with_jobs(jobs, || alg.schedule(&dag, &sys).makespan())
                });
                out.push(BenchEntry {
                    id: format!("search/{name}/n{n}/jobs{jobs}"),
                    n,
                    procs: cfg.procs,
                    algo: name.to_string(),
                    median_ns: med,
                    min_ns: min,
                    reps,
                });
            }
        }
    }
    // BNB explores a fixed node budget regardless of thread count, so a
    // small instance with a capped budget gives a stable per-node cost.
    let n = 30usize;
    let seed = instance_seed(cfg.seed ^ 0x5ea, 0xb0b, 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
    let sys = System::heterogeneous_random(&dag, 3, &EtcParams::range_based(1.0), &mut rng);
    let bnb = hetsched_core::algorithms::BranchAndBound {
        node_budget: 20_000,
    };
    for jobs in [1usize, 4] {
        let (med, min) = bench(reps, || {
            hetsched_core::par::with_jobs(jobs, || bnb.schedule(&dag, &sys).makespan())
        });
        out.push(BenchEntry {
            id: format!("search/BNB/n{n}/jobs{jobs}"),
            n,
            procs: 3,
            algo: "BNB".to_string(),
            median_ns: med,
            min_ns: min,
            reps,
        });
    }
    out
}

fn to_json(entries: &[BenchEntry], cfg: &Config) -> Value {
    let mut obj = serde_json::Map::new();
    // `meta` pins the invocation (seed, reps, config fingerprint); the
    // `--check` comparator looks up entries by their own ids only, so a
    // baseline with or without this key works either way.
    obj.insert("meta".to_string(), cfg.meta_json("perf"));
    for e in entries {
        obj.insert(
            e.id.clone(),
            json!({
                "n": e.n,
                "procs": e.procs,
                "algo": e.algo,
                "median_ns": e.median_ns,
                "min_ns": e.min_ns,
                "reps": e.reps,
            }),
        );
    }
    Value::Object(obj)
}

/// Phase-level profile: one traced run per headline algorithm on a
/// fig10-sized instance, splitting wall time into the spans the schedulers
/// mark (rank computation vs the placement loop). Runs with tracing
/// enabled, so these numbers carry the (small) capture overhead and are
/// reported separately from the benchmark entries `--check` compares.
fn phase_profile(cfg: &Config) -> (String, Value) {
    let n = if cfg.quick { 200usize } else { 1600 };
    let seed = instance_seed(cfg.seed ^ 0xfa5e, n as u64, 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
    let sys = System::heterogeneous_random(&dag, cfg.procs, &EtcParams::range_based(1.0), &mut rng);

    let mut table = TextTable::new(vec![
        "algo".into(),
        "phase".into(),
        "ms".into(),
        "share".into(),
    ]);
    let mut obj = serde_json::Map::new();
    for name in ["HEFT", "ILS-H", "ILS-D"] {
        let alg = by_name(name).expect("registry has the headline algorithms");
        let (_sched, trace) = hetsched_core::traced_schedule(&alg, &dag, &sys);
        let wall = trace.wall_ns.max(1) as f64;
        let mut phases = Vec::new();
        for p in &trace.phases {
            let pct = 100.0 * p.dur_ns as f64 / wall;
            table.row(vec![
                name.to_string(),
                p.name.clone(),
                format!("{:.3}", p.dur_ns as f64 / 1e6),
                format!("{pct:.1}%"),
            ]);
            phases.push(json!({
                "name": p.name,
                "ms": p.dur_ns as f64 / 1e6,
                "pct": pct,
            }));
        }
        obj.insert(
            name.to_string(),
            json!({
                "wall_ms": trace.wall_ns as f64 / 1e6,
                "phases": phases,
            }),
        );
    }
    let text = format!(
        "== perf phase profile (traced, n={n}) ==\n{}",
        table.render()
    );
    (text, json!({ "n": n, "algos": Value::Object(obj) }))
}

/// Compare fresh entries (by their noise-robust minimum) against a
/// baseline JSON document via the shared machine-factor-normalizing
/// comparator. Returns the list of regression messages (empty = pass).
fn check_against(entries: &[BenchEntry], baseline: &Value) -> Result<Vec<String>, String> {
    let pairs: Vec<(String, f64)> = entries.iter().map(|e| (e.id.clone(), e.min_ns)).collect();
    super::baseline::check_against(&pairs, baseline, REGRESSION_TOLERANCE)
}

/// Measure every benchmark entry once.
fn measure(cfg: &Config, reps: usize) -> Vec<BenchEntry> {
    let mut entries = grid_entries(cfg, reps);
    entries.extend(large_entries(cfg, reps));
    entries.extend(repair_entries(cfg, reps));
    entries.extend(serve_entries(cfg, reps));
    entries.extend(wire_entries(cfg, reps));
    entries.extend(multi_alg_entries(cfg, reps));
    entries.extend(serve_portfolio_entries(cfg, reps));
    entries.extend(many_entries(cfg, reps));
    entries.extend(search_entries(cfg, reps));
    entries
}

/// Run the perf benchmark: measure, print, optionally write `--bench-out`,
/// optionally compare against `--check`.
pub fn run_perf(cfg: &Config) -> Result<(), String> {
    let reps = cfg.reps.max(3);
    let mut entries = measure(cfg, reps);

    let mut table = TextTable::new(vec![
        "id".into(),
        "n".into(),
        "procs".into(),
        "median_ms".into(),
    ]);
    for e in &entries {
        table.row(vec![
            e.id.clone(),
            e.n.to_string(),
            e.procs.to_string(),
            format!("{:.3}", e.median_ns / 1e6),
        ]);
    }
    println!("== perf (median of {reps} runs) ==");
    println!("{}", table.render());

    // headline ratio of the shared-instance work: the same algorithm set
    // over the same pair, sequential fresh instances vs the portfolio
    let fresh = entries
        .iter()
        .find(|e| e.id.starts_with("multi-alg/") && e.id.ends_with("/fresh"));
    let shared = entries
        .iter()
        .find(|e| e.id.starts_with("multi-alg/") && e.id.ends_with("/shared"));
    let port = entries
        .iter()
        .find(|e| e.id.starts_with("multi-alg/") && e.id.ends_with("/portfolio"));
    if let (Some(f), Some(s), Some(p)) = (fresh, shared, port) {
        println!(
            "multi-algorithm path: fresh {:.2} ms, shared instance {:.2} ms ({:.2}x), \
             portfolio {:.2} ms ({:.2}x speedup)\n",
            f.min_ns / 1e6,
            s.min_ns / 1e6,
            f.min_ns / s.min_ns,
            p.min_ns / 1e6,
            f.min_ns / p.min_ns,
        );
    }

    // the wire path: the same warmed repeat answered by full parse +
    // re-serialization, full parse + preserialized bytes, and the raw-byte
    // hot-line cache
    let memo = entries
        .iter()
        .find(|e| e.id.starts_with("wire/") && e.id.ends_with("/memo-hit"));
    let fall = entries
        .iter()
        .find(|e| e.id.starts_with("wire/") && e.id.ends_with("/fallback"));
    let hit = entries.iter().find(|e| {
        e.id.starts_with("wire/") && e.id.ends_with("/hit") && !e.id.ends_with("memo-hit")
    });
    if let (Some(m), Some(f), Some(h)) = (memo, fall, hit) {
        println!(
            "wire path: memo-hit round trip {:.1} us, preserialized fallback {:.1} us ({:.2}x), \
             wire hit {:.1} us ({:.2}x speedup)\n",
            m.min_ns / 1e3,
            f.min_ns / 1e3,
            m.min_ns / f.min_ns,
            h.min_ns / 1e3,
            m.min_ns / h.min_ns,
        );
    }

    // same comparison through the daemon: four schedule round-trips vs one
    // portfolio request, both against cold caches
    let individual = entries
        .iter()
        .find(|e| e.id.starts_with("serve-multi-alg/") && e.id.ends_with("/individual"));
    let serve_port = entries
        .iter()
        .find(|e| e.id.starts_with("serve-portfolio/"));
    if let (Some(i), Some(p)) = (individual, serve_port) {
        println!(
            "serve multi-algorithm path: 4 schedule requests {:.2} ms, \
             1 portfolio request {:.2} ms ({:.2}x speedup)\n",
            i.min_ns / 1e6,
            p.min_ns / 1e6,
            i.min_ns / p.min_ns,
        );
    }

    // the batched-scheduling path: one schedule_many call / request line
    // vs the equivalent stream of individual calls / round trips
    let seq = entries
        .iter()
        .find(|e| e.id.starts_with("many/") && e.id.ends_with("/sequential"));
    let bat = entries
        .iter()
        .find(|e| e.id.starts_with("many/") && e.id.ends_with("/batched"));
    if let (Some(s), Some(b)) = (seq, bat) {
        println!(
            "batched scheduling: sequential {:.3} ms, schedule_many {:.3} ms ({:.2}x speedup)",
            s.min_ns / 1e6,
            b.min_ns / 1e6,
            s.min_ns / b.min_ns,
        );
    }
    let srv_ind = entries
        .iter()
        .find(|e| e.id.starts_with("many/") && e.id.ends_with("/serve-individual"));
    let srv_bat = entries
        .iter()
        .find(|e| e.id.starts_with("many/") && e.id.ends_with("/serve-batch"));
    if let (Some(i), Some(b)) = (srv_ind, srv_bat) {
        println!(
            "serve batched path: individual requests {:.2} ms, 1 schedule_many request {:.2} ms ({:.2}x speedup)\n",
            i.min_ns / 1e6,
            b.min_ns / 1e6,
            i.min_ns / b.min_ns,
        );
    }

    // the incremental-rescheduling path: apply_deltas + repair from the
    // parent schedule vs a fresh run on the patched problem
    for ef in entries
        .iter()
        .filter(|e| e.id.starts_with("repair/") && e.id.ends_with("/fresh"))
    {
        let rid = ef.id.replace("/fresh", "/repair");
        if let Some(er) = entries.iter().find(|e| e.id == rid) {
            println!(
                "repair n={}: fresh {:.2} ms, apply+repair {:.2} ms ({:.2}x speedup)",
                ef.n,
                ef.min_ns / 1e6,
                er.min_ns / 1e6,
                ef.min_ns / er.min_ns,
            );
        }
    }
    println!();

    // the search-scheduler parallel layer: jobs=4 against jobs=1 per
    // algorithm (≈1x on a single-core host; the speedup needs real cores)
    for e1 in entries
        .iter()
        .filter(|e| e.id.starts_with("search/") && e.id.ends_with("/jobs1"))
    {
        let id4 = e1.id.replace("/jobs1", "/jobs4");
        if let Some(e4) = entries.iter().find(|e| e.id == id4) {
            println!(
                "search {}: jobs=1 {:.2} ms, jobs=4 {:.2} ms ({:.2}x speedup)",
                e1.algo,
                e1.min_ns / 1e6,
                e4.min_ns / 1e6,
                e1.min_ns / e4.min_ns,
            );
        }
    }
    println!();

    let (phase_text, phase_json) = phase_profile(cfg);
    println!("{phase_text}");

    if let Some(path) = &cfg.bench_out {
        let mut doc = to_json(&entries, cfg);
        if let Value::Object(map) = &mut doc {
            map.insert("phase_profile".to_string(), phase_json);
        }
        std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &cfg.check {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let baseline: Value =
            serde_json::from_str(&text).map_err(|e| format!("parsing baseline {path}: {e}"))?;
        let mut failures = check_against(&entries, &baseline)?;
        // a contended runner can elevate even the min of a whole pass;
        // only a slowdown that persists across independent re-measures is
        // a regression, so retry and keep the best min seen per entry
        let mut attempt = 0;
        while !failures.is_empty() && attempt < 3 {
            attempt += 1;
            println!(
                "perf check: {} entries above tolerance, re-measuring ({attempt}/3)",
                failures.len()
            );
            for fresh in measure(cfg, reps) {
                if let Some(e) = entries.iter_mut().find(|e| e.id == fresh.id) {
                    e.min_ns = e.min_ns.min(fresh.min_ns);
                }
            }
            failures = check_against(&entries, &baseline)?;
        }
        if failures.is_empty() {
            println!("perf check vs {path}: OK");
        } else {
            return Err(format!(
                "perf regression vs {path}:\n  {}",
                failures.join("\n  ")
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, ns: f64) -> BenchEntry {
        BenchEntry {
            id: id.into(),
            n: 100,
            procs: 8,
            algo: "HEFT".into(),
            median_ns: ns,
            min_ns: ns,
            reps: 3,
        }
    }

    #[test]
    fn check_normalizes_out_machine_speed() {
        // everything uniformly 3x slower: a slower machine, not a
        // regression
        let entries = vec![entry("a", 300.0), entry("b", 600.0), entry("c", 900.0)];
        let baseline = json!({
            "a": json!({"min_ns": 100.0}),
            "b": json!({"min_ns": 200.0}),
            "c": json!({"min_ns": 300.0}),
        });
        assert!(check_against(&entries, &baseline).unwrap().is_empty());
    }

    #[test]
    fn check_flags_single_entry_regression() {
        // one entry 2x while the rest hold: a real hot-path regression
        let entries = vec![entry("a", 100.0), entry("b", 200.0), entry("c", 600.0)];
        let baseline = json!({
            "a": json!({"min_ns": 100.0}),
            "b": json!({"min_ns": 200.0}),
            "c": json!({"min_ns": 300.0}),
        });
        let failures = check_against(&entries, &baseline).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].starts_with("c:"), "{failures:?}");
    }

    #[test]
    fn check_rejects_disjoint_baseline() {
        let entries = vec![entry("a", 100.0)];
        let baseline = json!({"z": json!({"median_ns": 100.0})});
        assert!(check_against(&entries, &baseline).is_err());
    }
}
