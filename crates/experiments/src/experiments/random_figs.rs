//! Random-graph experiments: figures 1–5 and the win/tie/loss table.
//!
//! All follow the Topcuoglu protocol: instances are layered random DAGs
//! (`hetsched_workloads::random_dag`) on range-based heterogeneous systems;
//! one axis varies per figure, the others are averaged over a small grid
//! via the per-rep RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hetsched_core::algorithms::all_heterogeneous;
use hetsched_metrics::WtlTable;
use hetsched_platform::{EtcParams, System};
use hetsched_workloads::{random_dag, RandomDagParams};
use serde_json::json;

use super::sweep::{metric_sweep, Metric, Point};
use super::Report;
use crate::config::Config;
use crate::runner::{instance_seed, parallel_map};

/// Default grids the random figures draw nuisance parameters from.
const ALPHAS: [f64; 3] = [0.5, 1.0, 2.0];
const CCRS: [f64; 5] = [0.1, 0.5, 1.0, 5.0, 10.0];

/// Generate one random instance: the seed drives nuisance-parameter
/// selection, the DAG, and the ETC matrix, so a single `u64` reproduces
/// the instance exactly.
fn instance(
    seed: u64,
    n: usize,
    procs: usize,
    alpha: Option<f64>,
    ccr: Option<f64>,
    beta: Option<f64>,
) -> (hetsched_dag::Dag, System) {
    let mut rng = StdRng::seed_from_u64(seed);
    let alpha = alpha.unwrap_or_else(|| ALPHAS[rng.gen_range(0..ALPHAS.len())]);
    let ccr = ccr.unwrap_or_else(|| CCRS[rng.gen_range(0..CCRS.len())]);
    let beta = beta.unwrap_or_else(|| rng.gen_range(0.25..1.0));
    let dag = random_dag(
        &RandomDagParams {
            n,
            alpha,
            ccr,
            ..Default::default()
        },
        &mut rng,
    );
    let sys = System::heterogeneous_random(&dag, procs, &EtcParams::range_based(beta), &mut rng);
    (dag, sys)
}

/// fig1: average SLR vs number of tasks.
pub fn slr_vs_tasks(cfg: &Config) -> Report {
    let sizes: &[usize] = if cfg.quick {
        &[20, 40, 80]
    } else {
        &[20, 40, 60, 80, 100, 200, 400]
    };
    let procs = cfg.procs;
    let points: Vec<Point> = sizes
        .iter()
        .map(|&n| Point {
            label: n.to_string(),
            gen: Box::new(move |seed| instance(seed, n, procs, None, None, None)),
        })
        .collect();
    let algs = all_heterogeneous();
    let (text, json, _) = metric_sweep("tasks", &points, &algs, cfg.reps, cfg.seed, Metric::AvgSlr);
    Report { text, json }
}

/// fig2: average SLR vs CCR.
pub fn slr_vs_ccr(cfg: &Config) -> Report {
    let ccrs: &[f64] = if cfg.quick {
        &[0.1, 1.0, 10.0]
    } else {
        &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0]
    };
    let n = if cfg.quick { 50 } else { 100 };
    let procs = cfg.procs;
    let points: Vec<Point> = ccrs
        .iter()
        .map(|&ccr| Point {
            label: format!("{ccr}"),
            gen: Box::new(move |seed| instance(seed, n, procs, None, Some(ccr), None)),
        })
        .collect();
    let algs = all_heterogeneous();
    let (text, json, _) = metric_sweep("CCR", &points, &algs, cfg.reps, cfg.seed, Metric::AvgSlr);
    Report { text, json }
}

/// fig3: average speedup vs processor count.
pub fn speedup_vs_procs(cfg: &Config) -> Report {
    let procs: &[usize] = if cfg.quick {
        &[2, 4, 8]
    } else {
        &[2, 4, 8, 16, 32]
    };
    let n = if cfg.quick { 50 } else { 200 };
    let points: Vec<Point> = procs
        .iter()
        .map(|&p| Point {
            label: p.to_string(),
            gen: Box::new(move |seed| instance(seed, n, p, None, Some(0.5), None)),
        })
        .collect();
    let algs = all_heterogeneous();
    let (text, json, _) = metric_sweep(
        "procs",
        &points,
        &algs,
        cfg.reps,
        cfg.seed,
        Metric::AvgSpeedup,
    );
    Report { text, json }
}

/// fig4: average SLR vs heterogeneity factor β.
pub fn slr_vs_heterogeneity(cfg: &Config) -> Report {
    let betas: &[f64] = if cfg.quick {
        &[0.1, 0.75, 1.5]
    } else {
        &[0.1, 0.25, 0.5, 0.75, 1.0, 1.5]
    };
    let n = if cfg.quick { 50 } else { 100 };
    let procs = cfg.procs;
    let points: Vec<Point> = betas
        .iter()
        .map(|&beta| Point {
            label: format!("{beta}"),
            gen: Box::new(move |seed| instance(seed, n, procs, None, None, Some(beta))),
        })
        .collect();
    let algs = all_heterogeneous();
    let (text, json, _) = metric_sweep("beta", &points, &algs, cfg.reps, cfg.seed, Metric::AvgSlr);
    Report { text, json }
}

/// fig5: average SLR vs shape parameter α.
pub fn slr_vs_shape(cfg: &Config) -> Report {
    let n = if cfg.quick { 50 } else { 100 };
    let procs = cfg.procs;
    let points: Vec<Point> = ALPHAS
        .iter()
        .map(|&alpha| Point {
            label: format!("{alpha}"),
            gen: Box::new(move |seed| instance(seed, n, procs, Some(alpha), None, None)),
        })
        .collect();
    let algs = all_heterogeneous();
    let (text, json, _) = metric_sweep("alpha", &points, &algs, cfg.reps, cfg.seed, Metric::AvgSlr);
    Report { text, json }
}

/// tab1: pairwise win/tie/loss percentages over the full random grid.
pub fn wtl_table(cfg: &Config) -> Report {
    let sizes: &[usize] = if cfg.quick { &[30] } else { &[40, 80, 150] };
    let algs = all_heterogeneous();
    let names: Vec<String> = algs.iter().map(|a| a.name().to_string()).collect();
    let procs = cfg.procs;

    let work: Vec<(usize, u64)> = sizes
        .iter()
        .enumerate()
        .flat_map(|(si, _)| (0..cfg.reps as u64 * 3).map(move |r| (si, r)))
        .collect();
    let rows: Vec<Vec<f64>> = parallel_map(work.clone(), |&(si, rep)| {
        let seed = instance_seed(cfg.seed ^ 0x7ab1, si as u64, rep);
        let (dag, sys) = instance(seed, sizes[si], procs, None, None, None);
        algs.iter()
            .map(|a| a.schedule(&dag, &sys).makespan())
            .collect()
    });

    let mut table = WtlTable::new(names.clone());
    for r in &rows {
        table.record(r);
    }
    let mut text = table.render();
    text.push('\n');
    text.push_str("overall strict win rate:\n");
    let mut ranked: Vec<(usize, f64)> = (0..names.len())
        .map(|a| (a, table.overall_win_rate(a)))
        .collect();
    ranked.sort_by(|x, y| y.1.total_cmp(&x.1));
    for (a, rate) in &ranked {
        text.push_str(&format!("  {:<10} {:.1}%\n", names[*a], 100.0 * rate));
    }
    let json = json!({
        "instances": table.instances(),
        "algorithms": names,
        "overall_win_rate": ranked.iter().map(|(a, r)| json!({"alg": names[*a], "rate": r})).collect::<Vec<_>>(),
    });
    Report { text, json }
}
