//! tab4 (extension): systematic model error — one processor turns out 2×
//! slower than its ETC entries (throttling, co-tenancy). How much does
//! each scheduler's plan suffer, and how much would it have suffered had
//! it *known*?

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::algorithms::all_heterogeneous;
use hetsched_metrics::table::TextTable;
use hetsched_platform::{EtcParams, System};
use hetsched_sim::{simulate, simulate_scenario, SimConfig};
use hetsched_workloads::{random_dag, RandomDagParams};
use serde_json::json;

use super::Report;
use crate::config::Config;
use crate::runner::{instance_seed, parallel_map};

/// tab4: mean makespan degradation when processor 0 is secretly 2× slower.
pub fn slowdown_table(cfg: &Config) -> Report {
    let n = if cfg.quick { 40 } else { 80 };
    let factor = 2.0;
    let algs = all_heterogeneous();
    let procs = cfg.procs;

    let work: Vec<u64> = (0..cfg.reps as u64 * 2).collect();
    let rows: Vec<Vec<f64>> = parallel_map(work, |&rep| {
        let seed = instance_seed(cfg.seed ^ 0x510, 0, rep);
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng);
        let sys = System::heterogeneous_random(&dag, procs, &EtcParams::range_based(1.0), &mut rng);
        let mut slowdown = vec![1.0; procs];
        slowdown[0] = factor;
        algs.iter()
            .map(|alg| {
                let sched = alg.schedule(&dag, &sys);
                let base = simulate(&dag, &sys, &sched, &SimConfig::default()).makespan;
                let degraded =
                    simulate_scenario(&dag, &sys, &sched, &SimConfig::default(), &slowdown)
                        .makespan;
                degraded / base
            })
            .collect()
    });

    let mut table = TextTable::new(vec!["algorithm".into(), "degradation".into()]);
    let mut json_rows = Vec::new();
    for (ai, alg) in algs.iter().enumerate() {
        let mean = rows.iter().map(|r| r[ai]).sum::<f64>() / rows.len() as f64;
        table.row(vec![alg.name().into(), format!("{mean:.3}")]);
        json_rows.push(json!({"alg": alg.name(), "degradation": mean}));
    }
    Report {
        text: format!(
            "mean makespan degradation with p0 secretly {factor}x slower ({} instances)\n{}",
            rows.len(),
            table.render()
        ),
        json: json!({"factor": factor, "instances": rows.len(), "rows": json_rows}),
    }
}
