//! Experiment implementations, one per table/figure of DESIGN.md §4.

mod ablation;
mod apps;
pub mod baseline;
mod contention;
mod gap;
mod homogeneous;
pub mod load;
mod metaheuristic;
mod occupancy;
pub mod perf;
mod random_figs;
mod robustness;
mod runtime;
mod slowdown;
mod sweep;
mod trees_sp;

use crate::config::Config;

/// One experiment's output: a printable table and a JSON record.
pub struct Report {
    /// Plain-text rendering (printed to stdout).
    pub text: String,
    /// Machine-readable record (written to `results/<id>.json`).
    pub json: serde_json::Value,
}

/// The experiment catalog: `(id, description)` in presentation order.
pub fn catalog() -> Vec<(&'static str, &'static str)> {
    vec![
        ("fig1-slr-vs-tasks", "avg SLR vs DAG size (random graphs)"),
        ("fig2-slr-vs-ccr", "avg SLR vs CCR (random graphs)"),
        ("fig3-speedup-vs-procs", "avg speedup vs processor count"),
        ("fig4-slr-vs-het", "avg SLR vs heterogeneity factor"),
        ("fig5-slr-vs-shape", "avg SLR vs shape parameter alpha"),
        ("tab1-wtl", "pairwise win/tie/loss percentages"),
        (
            "fig6-gauss",
            "avg SLR vs matrix size (Gaussian elimination)",
        ),
        ("fig7-fft", "avg SLR and speedup vs FFT points"),
        ("fig8-laplace", "avg SLR vs grid size (Laplace wavefront)"),
        (
            "fig9-homogeneous",
            "avg SLR vs DAG size on homogeneous systems",
        ),
        ("fig10-runtime", "scheduler running time vs DAG size"),
        (
            "tab2-occupancy",
            "processor occupancy and duplication counts",
        ),
        (
            "fig11-robustness",
            "makespan degradation under execution noise",
        ),
        (
            "tab3-ablation",
            "ILS knob ablation (rank agg x lookahead x dup)",
        ),
        ("fig12-trees", "avg SLR on trees and series-parallel graphs"),
        (
            "tab4-slowdown",
            "degradation under a secretly slow processor",
        ),
        (
            "tab5-gap",
            "optimality gap vs exact branch-and-bound (tiny instances)",
        ),
        (
            "tab6-contention",
            "makespan inflation under single-port / shared-bus contention",
        ),
        (
            "tab7-ga",
            "GA metaheuristic vs one-pass list scheduling (quality and cost)",
        ),
    ]
}

/// Run one experiment by id.
///
/// # Panics
/// Panics on an unknown id (the CLI validates ids first).
pub fn run(id: &str, cfg: &Config) -> Report {
    match id {
        "fig1-slr-vs-tasks" => random_figs::slr_vs_tasks(cfg),
        "fig2-slr-vs-ccr" => random_figs::slr_vs_ccr(cfg),
        "fig3-speedup-vs-procs" => random_figs::speedup_vs_procs(cfg),
        "fig4-slr-vs-het" => random_figs::slr_vs_heterogeneity(cfg),
        "fig5-slr-vs-shape" => random_figs::slr_vs_shape(cfg),
        "tab1-wtl" => random_figs::wtl_table(cfg),
        "fig6-gauss" => apps::gauss(cfg),
        "fig7-fft" => apps::fft(cfg),
        "fig8-laplace" => apps::laplace(cfg),
        "fig9-homogeneous" => homogeneous::slr_vs_tasks(cfg),
        "fig10-runtime" => runtime::runtime_vs_tasks(cfg),
        "tab2-occupancy" => occupancy::occupancy_table(cfg),
        "fig11-robustness" => robustness::degradation_vs_noise(cfg),
        "tab3-ablation" => ablation::ils_knobs(cfg),
        "fig12-trees" => trees_sp::structured_graphs(cfg),
        "tab4-slowdown" => slowdown::slowdown_table(cfg),
        "tab5-gap" => gap::optimality_gap(cfg),
        "tab6-contention" => contention::contention_table(cfg),
        "tab7-ga" => metaheuristic::ga_vs_list(cfg),
        _ => panic!("unknown experiment id {id}"),
    }
}
