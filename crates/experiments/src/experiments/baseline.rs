//! Baseline comparison shared by `perf --check` and `load --check`.
//!
//! Both benchmarks store entries as `{..., "min_ns": N}` keyed by a
//! stable id and compare a fresh run against a committed baseline after
//! dividing out the machine-speed factor — the median ratio across all
//! shared entries. A uniformly faster or slower runner moves every ratio
//! by the same factor and passes; a single regressed entry sticks out
//! above it and fails.

use serde_json::Value;

/// Compare fresh `(id, value_ns)` pairs against a baseline JSON document
/// whose entries carry `min_ns` (or, for older baselines, `median_ns`).
/// Entries regressing more than `tolerance` (relative, after
/// machine-factor normalization) are reported; an empty return means the
/// check passed.
///
/// # Errors
/// When the baseline is not an object or shares no entry ids with the
/// fresh run (comparing against the wrong file should fail loudly, not
/// pass vacuously).
pub fn check_against(
    pairs: &[(String, f64)],
    baseline: &Value,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let base = baseline
        .as_object()
        .ok_or("baseline is not a JSON object")?;
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for (id, value) in pairs {
        let Some(b) = base
            .get(id)
            .and_then(|v| v.get("min_ns").or_else(|| v.get("median_ns")))
            .and_then(Value::as_f64)
        else {
            continue;
        };
        if b > 0.0 {
            ratios.push((id.clone(), value / b));
        }
    }
    if ratios.is_empty() {
        return Err("baseline shares no entries with this run (did you forget --quick?)".into());
    }
    // machine-speed factor: the median ratio. A uniformly faster or slower
    // machine moves every ratio by the same factor; regressions stick out
    // above it.
    let mut sorted: Vec<f64> = ratios.iter().map(|&(_, r)| r).collect();
    sorted.sort_by(f64::total_cmp);
    let factor = sorted[sorted.len() / 2];
    let limit = factor * (1.0 + tolerance);
    Ok(ratios
        .iter()
        .filter(|&&(_, r)| r > limit)
        .map(|(id, r)| {
            format!(
                "{id}: {:.2}x the baseline ({:.2}x after machine factor {factor:.2})",
                r,
                r / factor
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(xs: &[(&str, f64)]) -> Vec<(String, f64)> {
        xs.iter().map(|(id, v)| (id.to_string(), *v)).collect()
    }

    fn baseline_100_200_300() -> Value {
        serde_json::from_str(
            r#"{"a": {"min_ns": 100.0}, "b": {"min_ns": 200.0}, "c": {"min_ns": 300.0}}"#,
        )
        .unwrap()
    }

    #[test]
    fn check_normalizes_out_machine_speed() {
        // everything uniformly 3x slower: a slower machine, not a
        // regression
        let fresh = pairs(&[("a", 300.0), ("b", 600.0), ("c", 900.0)]);
        let baseline = baseline_100_200_300();
        assert!(check_against(&fresh, &baseline, 0.25).unwrap().is_empty());
    }

    #[test]
    fn check_flags_single_entry_regression() {
        // one entry 2x while the rest hold: a real regression
        let fresh = pairs(&[("a", 100.0), ("b", 200.0), ("c", 600.0)]);
        let baseline = baseline_100_200_300();
        let failures = check_against(&fresh, &baseline, 0.25).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].starts_with("c:"), "{failures:?}");
    }

    #[test]
    fn tolerance_is_a_parameter() {
        // 1.4x above the others: a regression at 25%, noise at 50%
        let fresh = pairs(&[("a", 100.0), ("b", 200.0), ("c", 420.0)]);
        let baseline = baseline_100_200_300();
        assert_eq!(check_against(&fresh, &baseline, 0.25).unwrap().len(), 1);
        assert!(check_against(&fresh, &baseline, 0.50).unwrap().is_empty());
    }

    #[test]
    fn check_rejects_disjoint_baseline_and_older_median_fallback() {
        let fresh = pairs(&[("a", 100.0)]);
        let disjoint: Value = serde_json::from_str(r#"{"z": {"median_ns": 100.0}}"#).unwrap();
        assert!(check_against(&fresh, &disjoint, 0.25).is_err());
        let older: Value = serde_json::from_str(r#"{"a": {"median_ns": 100.0}}"#).unwrap();
        assert!(check_against(&fresh, &older, 0.25).unwrap().is_empty());
    }
}
