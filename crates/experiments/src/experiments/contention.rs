//! tab6 (extension): what the contention-free assumption costs — replay
//! every scheduler's plan under single-port and shared-bus communication
//! and measure the makespan inflation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::algorithms::{all_heterogeneous, CaHeft};
use hetsched_metrics::table::TextTable;
use hetsched_platform::{EtcParams, System};
use hetsched_sim::{simulate, simulate_with, CommModel, Scenario, SimConfig};
use hetsched_workloads::{random_dag, RandomDagParams};
use serde_json::json;

use super::Report;
use crate::config::Config;
use crate::runner::{instance_seed, parallel_map};

/// tab6: mean makespan inflation (contended / contention-free replay) per
/// algorithm, for the single-port and shared-bus models, at CCR 1 and 5.
/// CA-HEFT — which plans *for* the single-port model — is appended as the
/// treatment row.
pub fn contention_table(cfg: &Config) -> Report {
    let n = if cfg.quick { 30 } else { 60 };
    let mut algs = all_heterogeneous();
    // the contention-aware scheduler is the punchline of this table
    algs.push(Box::new(CaHeft::new()));
    let procs = cfg.procs;
    let ccrs = [1.0, 5.0];

    let work: Vec<(usize, u64)> = ccrs
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| (0..cfg.reps as u64).map(move |r| (ci, r)))
        .collect();
    // per item: inflation[model][alg]
    let rows: Vec<(usize, Vec<Vec<f64>>)> = parallel_map(work, |&(ci, rep)| {
        let seed = instance_seed(cfg.seed ^ 0xc027, ci as u64, rep);
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_dag(&RandomDagParams::new(n, 1.0, ccrs[ci]), &mut rng);
        let sys = System::heterogeneous_random(&dag, procs, &EtcParams::range_based(1.0), &mut rng);
        let scheds: Vec<_> = algs.iter().map(|a| a.schedule(&dag, &sys)).collect();
        let frees: Vec<f64> = scheds
            .iter()
            .map(|s| simulate(&dag, &sys, s, &SimConfig::default()).makespan)
            .collect();
        // rows: [single-port inflation, bus inflation, single-port absolute]
        let mut blocks: Vec<Vec<f64>> = Vec::with_capacity(3);
        let mut sp_abs = Vec::new();
        for model in [CommModel::SinglePort, CommModel::SharedBus] {
            let contended: Vec<f64> = scheds
                .iter()
                .map(|s| {
                    simulate_with(
                        &dag,
                        &sys,
                        s,
                        &SimConfig::default(),
                        &Scenario {
                            proc_slowdown: vec![],
                            comm_model: model,
                        },
                    )
                    .makespan
                })
                .collect();
            if model == CommModel::SinglePort {
                sp_abs = contended.clone();
            }
            blocks.push(contended.iter().zip(&frees).map(|(c, f)| c / f).collect());
        }
        // absolute single-port makespan normalized by HEFT's (HEFT is the
        // third algorithm in registry order — look it up by name instead)
        let heft_idx = algs
            .iter()
            .position(|a| a.name() == "HEFT")
            .expect("HEFT in set");
        blocks.push(sp_abs.iter().map(|m| m / sp_abs[heft_idx]).collect());
        (ci, blocks)
    });

    let mut text = String::new();
    let mut json_blocks = Vec::new();
    for (ci, &ccr) in ccrs.iter().enumerate() {
        let per_ccr: Vec<&Vec<Vec<f64>>> = rows
            .iter()
            .filter(|(c, _)| *c == ci)
            .map(|(_, v)| v)
            .collect();
        let mut table = TextTable::new(vec![
            "algorithm".into(),
            "single-port".into(),
            "shared-bus".into(),
            "sp vs HEFT".into(),
        ]);
        let mut json_rows = Vec::new();
        for (ai, alg) in algs.iter().enumerate() {
            let mean =
                |mi: usize| per_ccr.iter().map(|v| v[mi][ai]).sum::<f64>() / per_ccr.len() as f64;
            let (sp, bus, vs_heft) = (mean(0), mean(1), mean(2));
            table.row(vec![
                alg.name().into(),
                format!("{sp:.3}"),
                format!("{bus:.3}"),
                format!("{vs_heft:.3}"),
            ]);
            json_rows.push(json!({
                "alg": alg.name(), "single_port": sp, "shared_bus": bus,
                "single_port_vs_heft": vs_heft,
            }));
        }
        text.push_str(&format!(
            "makespan inflation vs contention-free replay (and absolute single-port makespan normalized by HEFT's), CCR={ccr} ({} instances)\n{}\n",
            per_ccr.len(),
            table.render()
        ));
        json_blocks.push(json!({"ccr": ccr, "rows": json_rows}));
    }
    Report {
        text,
        json: json!({"blocks": json_blocks}),
    }
}
