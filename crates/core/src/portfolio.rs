//! Algorithm-portfolio execution: run several schedulers against one
//! shared [`ProblemInstance`] in parallel and keep the best schedule.
//!
//! Static scheduling heuristics are incomparable across workload classes —
//! HEFT wins on one DAG shape, PETS or a duplication scheduler on another
//! — so a portfolio that runs a set of them and keeps the minimum-makespan
//! result dominates any single member. The shared instance makes this
//! cheap: rank vectors are memoized once and every member reads the same
//! `Arc`s, so the marginal cost of an extra member is its EFT sweep only.

use crate::instance::ProblemInstance;
use crate::{Schedule, Scheduler};

/// One portfolio member's result.
#[derive(Debug, Clone)]
pub struct PortfolioEntry {
    /// The member's [`Scheduler::name`].
    pub algorithm: String,
    /// Makespan of the member's schedule.
    pub makespan: f64,
    /// The member's complete schedule.
    pub schedule: Schedule,
}

/// Results of a portfolio run: every member's schedule plus the winner.
#[derive(Debug, Clone)]
pub struct PortfolioResult {
    /// Per-member results, in the order the algorithms were given.
    pub entries: Vec<PortfolioEntry>,
    /// Index into `entries` of the winning (minimum-makespan) member; ties
    /// go to the earliest member in the given order.
    pub best: usize,
}

impl PortfolioResult {
    /// The winning entry.
    pub fn best_entry(&self) -> &PortfolioEntry {
        &self.entries[self.best]
    }
}

/// Run every scheduler in `algs` against `inst` on scoped threads and
/// collect all results.
///
/// Each member runs `schedule_instance` against the same shared instance,
/// so memoized ranks are computed once across the whole portfolio. Results
/// come back in input order regardless of thread completion order, and the
/// winner is the minimum makespan under `total_cmp` with ties broken
/// toward the earliest member — fully deterministic.
///
/// The calling thread's [`crate::par::with_jobs`] override (the serve
/// daemon's per-request `jobs`, for example) is re-established inside
/// every member thread, so search members parallelize — or stay
/// sequential — exactly as the caller configured.
///
/// # Panics
///
/// Panics if `algs` is empty, or propagates a member's panic.
pub fn run_portfolio<S: Scheduler + Sync + ?Sized>(
    inst: &ProblemInstance,
    algs: &[&S],
) -> PortfolioResult {
    assert!(!algs.is_empty(), "portfolio needs at least one algorithm");
    let jobs = crate::par::jobs_override();
    let entries: Vec<PortfolioEntry> = std::thread::scope(|scope| {
        let handles: Vec<_> = algs
            .iter()
            .map(|alg| {
                scope.spawn(move || {
                    let run = || {
                        let schedule = alg.schedule_instance(inst);
                        PortfolioEntry {
                            algorithm: alg.name().to_string(),
                            makespan: schedule.makespan(),
                            schedule,
                        }
                    };
                    match jobs {
                        Some(j) => crate::par::with_jobs(j, run),
                        None => run(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("portfolio member panicked"))
            .collect()
    });
    let best = entries
        .iter()
        .enumerate()
        .min_by(|(ia, a), (ib, b)| a.makespan.total_cmp(&b.makespan).then_with(|| ia.cmp(ib)))
        .map(|(i, _)| i)
        .expect("non-empty");
    PortfolioResult { entries, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::System;

    fn diamond() -> ProblemInstance<'static> {
        let dag = dag_from_edges(
            &[2.0, 3.0, 4.0, 1.0],
            &[(0, 1, 5.0), (0, 2, 5.0), (1, 3, 5.0), (2, 3, 5.0)],
        )
        .unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        ProblemInstance::new(dag, sys)
    }

    #[test]
    fn portfolio_matches_direct_calls_and_picks_minimum() {
        let inst = diamond();
        let algs = algorithms::all_heterogeneous();
        let refs: Vec<&(dyn Scheduler + Send + Sync)> = algs.iter().map(|b| &**b).collect();
        let result = run_portfolio(&inst, &refs);
        assert_eq!(result.entries.len(), algs.len());
        let mut best_direct = f64::INFINITY;
        for (entry, alg) in result.entries.iter().zip(&algs) {
            assert_eq!(entry.algorithm, alg.name());
            let direct = alg.schedule_instance(&inst);
            assert_eq!(entry.makespan.to_bits(), direct.makespan().to_bits());
            best_direct = best_direct.min(direct.makespan());
        }
        assert_eq!(
            result.best_entry().makespan.to_bits(),
            best_direct.to_bits()
        );
        // tie-break: no earlier entry has the winning makespan
        for entry in &result.entries[..result.best] {
            assert!(entry.makespan > result.best_entry().makespan);
        }
    }

    #[test]
    #[should_panic(expected = "at least one algorithm")]
    fn empty_portfolio_panics() {
        let inst = diamond();
        let refs: Vec<&(dyn Scheduler + Send + Sync)> = Vec::new();
        run_portfolio(&inst, &refs);
    }
}
