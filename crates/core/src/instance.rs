//! The immutable problem IR shared by every scheduler.
//!
//! [`ProblemInstance`] bundles one (DAG, system) pair behind a single
//! handle. The underlying arenas are already struct-of-arrays — the
//! [`Dag`] holds CSR predecessor/successor adjacency plus a cached
//! topological order, and the [`System`] holds flattened ETC rows and a
//! dense link-cost table — so the instance does not copy them; what it
//! adds is a *memo* of the derived rank vectors (upward/downward rank,
//! static level, ALST, PETS rank, critical-path membership) so that every
//! algorithm run against the same instance shares one computation per
//! `(rank kind, aggregation)` pair instead of recomputing privately.
//!
//! # Bit-identity contract
//!
//! Memoization never changes float results: each rank vector is computed
//! by exactly the same fold, in exactly the same order, as the
//! per-algorithm code previously ran — it is simply computed once and the
//! resulting `Arc` shared. Every consumer therefore observes values
//! bit-identical to a fresh computation, which is what keeps the PR 2
//! reference-engine cross-check (and the cross-crate grid test) green.
//!
//! # Sharing
//!
//! `ProblemInstance` is `Send + Sync`: the serve daemon caches instances
//! behind `Arc` keyed by content fingerprint so concurrent workers share
//! one build, and the portfolio runner fans a single `&ProblemInstance`
//! out across scoped threads.

use std::borrow::Cow;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use hetsched_dag::{Dag, Fingerprint, TaskId};
use hetsched_platform::System;

use crate::cost::CostAggregation;
use crate::rank;

/// Lazily memoized rank vectors, keyed by aggregation policy.
///
/// Linear-scan association lists: real runs touch one or two aggregation
/// policies per instance, so a `Vec` beats any map.
#[derive(Debug, Default)]
struct RankMemo {
    upward: Vec<(CostAggregation, Arc<Vec<f64>>)>,
    downward: Vec<(CostAggregation, Arc<Vec<f64>>)>,
    static_level: Vec<(CostAggregation, Arc<Vec<f64>>)>,
    alst: Vec<(CostAggregation, Arc<Vec<f64>>)>,
    pets: Vec<(CostAggregation, Arc<Vec<f64>>)>,
    critical_path: Vec<(CostAggregation, Arc<Vec<TaskId>>)>,
}

fn lookup<T>(slot: &[(CostAggregation, Arc<T>)], agg: CostAggregation) -> Option<Arc<T>> {
    slot.iter()
        .find(|(a, _)| *a == agg)
        .map(|(_, v)| Arc::clone(v))
}

/// One immutable (DAG, system) pair with shared, lazily memoized ranks.
///
/// Build it once per problem with [`ProblemInstance::new`] (taking
/// ownership — what long-lived holders like the serve instance cache
/// need) or [`ProblemInstance::from_refs`] (borrowing the arenas with no
/// copy or hash — what the transient default [`crate::Scheduler::schedule`]
/// path uses), then hand `&ProblemInstance` to any number of schedulers —
/// sequentially or concurrently.
#[derive(Debug)]
pub struct ProblemInstance<'a> {
    dag: Cow<'a, Dag>,
    sys: Cow<'a, System>,
    fingerprint: OnceLock<u64>,
    memo: Mutex<RankMemo>,
}

impl ProblemInstance<'static> {
    /// Build an instance, taking ownership of the arenas.
    pub fn new(dag: Dag, sys: System) -> Self {
        ProblemInstance {
            dag: Cow::Owned(dag),
            sys: Cow::Owned(sys),
            fingerprint: OnceLock::new(),
            memo: Mutex::new(RankMemo::default()),
        }
    }
}

impl<'a> ProblemInstance<'a> {
    /// Build an instance over borrowed arenas. No copy, no hashing: this
    /// costs two empty lock initializations, which is what keeps the
    /// single-shot `schedule(dag, sys)` path as fast as before the IR
    /// existed.
    pub fn from_refs(dag: &'a Dag, sys: &'a System) -> Self {
        ProblemInstance {
            dag: Cow::Borrowed(dag),
            sys: Cow::Borrowed(sys),
            fingerprint: OnceLock::new(),
            memo: Mutex::new(RankMemo::default()),
        }
    }

    /// Build an instance from pre-assembled `Cow`s — the copy-on-write
    /// path of [`ProblemInstance::apply_deltas`](crate::delta), where
    /// untouched arenas stay borrowed from the parent and only the
    /// modified side is owned. Fingerprint and memo start empty: the
    /// fingerprint is recomputed lazily from the (patched) content, and the
    /// memo is seeded explicitly by [`ProblemInstance::seed_memo_from`].
    pub(crate) fn from_cows(dag: Cow<'a, Dag>, sys: Cow<'a, System>) -> Self {
        ProblemInstance {
            dag,
            sys,
            fingerprint: OnceLock::new(),
            memo: Mutex::new(RankMemo::default()),
        }
    }

    /// Convert into an owning (`'static`) instance, cloning any
    /// still-borrowed arena and carrying the fingerprint cache and the
    /// rank memo over untouched — what the serve instance cache needs to
    /// store a patched instance whose memos were seeded from its parent.
    pub fn into_owned(self) -> ProblemInstance<'static> {
        ProblemInstance {
            dag: Cow::Owned(self.dag.into_owned()),
            sys: Cow::Owned(self.sys.into_owned()),
            fingerprint: self.fingerprint,
            memo: self.memo,
        }
    }

    /// The task graph.
    #[inline]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The target platform.
    #[inline]
    pub fn sys(&self) -> &System {
        &self.sys
    }

    /// Stable content fingerprint of the (DAG, system) pair — the key the
    /// serve instance cache uses. Computed on first query and cached.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| Self::content_fingerprint(&self.dag, &self.sys))
    }

    /// The fingerprint [`ProblemInstance::fingerprint`] would report for
    /// `(dag, sys)`, without building an instance. Lets a cache decide
    /// hit-or-miss before building and storing anything.
    pub fn content_fingerprint(dag: &Dag, sys: &System) -> u64 {
        let mut fp = Fingerprint::new();
        dag.fold_fingerprint(&mut fp);
        sys.fold_fingerprint(&mut fp);
        fp.finish()
    }

    fn memo(&self) -> MutexGuard<'_, RankMemo> {
        // Rank computations cannot panic mid-insert in any way that leaves
        // the memo inconsistent (entries are pushed whole), so a poisoned
        // lock is safe to recover.
        self.memo.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Memoize `compute` under `select(memo)` keyed by `agg`.
    ///
    /// The value is computed while holding the lock so concurrent callers
    /// never duplicate work; `compute` must not touch the memo (all rank
    /// kernels only read `dag`/`sys`).
    fn memoized<T>(
        &self,
        select: impl FnOnce(&mut RankMemo) -> &mut Vec<(CostAggregation, Arc<T>)>,
        agg: CostAggregation,
        compute: impl FnOnce(&Dag, &System) -> T,
    ) -> Arc<T> {
        let mut memo = self.memo();
        let slot = select(&mut memo);
        if let Some(v) = lookup(slot, agg) {
            hetsched_trace::counters(|c| c.rank_memo_hits += 1);
            return v;
        }
        hetsched_trace::counters(|c| c.rank_memo_misses += 1);
        let v = Arc::new(compute(&self.dag, &self.sys));
        slot.push((agg, Arc::clone(&v)));
        v
    }

    /// Like [`ProblemInstance::memoized`] for vectors *derived from other
    /// memoized vectors*: the dependencies are resolved up front (each
    /// taking the lock on its own), then the derived value is inserted
    /// under a fresh lock. A racing thread may compute the same value; the
    /// first insert wins so every consumer shares one `Arc`.
    fn memoized_derived<T>(
        &self,
        select: impl Fn(&mut RankMemo) -> &mut Vec<(CostAggregation, Arc<T>)>,
        agg: CostAggregation,
        compute: impl FnOnce(&Self) -> T,
    ) -> Arc<T> {
        if let Some(v) = lookup(select(&mut self.memo()), agg) {
            hetsched_trace::counters(|c| c.rank_memo_hits += 1);
            return v;
        }
        hetsched_trace::counters(|c| c.rank_memo_misses += 1);
        let v = Arc::new(compute(self));
        let mut memo = self.memo();
        let slot = select(&mut memo);
        if let Some(existing) = lookup(slot, agg) {
            return existing;
        }
        slot.push((agg, Arc::clone(&v)));
        v
    }

    /// Upward rank (HEFT `rank_u`) under `agg`, memoized.
    pub fn upward_rank(&self, agg: CostAggregation) -> Arc<Vec<f64>> {
        self.memoized(
            |m| &mut m.upward,
            agg,
            |d, s| rank::upward_rank_raw(d, s, agg),
        )
    }

    /// Downward rank (`rank_d`) under `agg`, memoized.
    pub fn downward_rank(&self, agg: CostAggregation) -> Arc<Vec<f64>> {
        self.memoized(
            |m| &mut m.downward,
            agg,
            |d, s| rank::downward_rank_raw(d, s, agg),
        )
    }

    /// Static level (communication-free upward rank) under `agg`, memoized.
    pub fn static_level(&self, agg: CostAggregation) -> Arc<Vec<f64>> {
        self.memoized(
            |m| &mut m.static_level,
            agg,
            |d, s| rank::static_level_raw(d, s, agg),
        )
    }

    /// Absolute earliest start time (HCPT AEST) under `agg` — an alias for
    /// the downward rank, sharing its memo entry.
    pub fn aest(&self, agg: CostAggregation) -> Arc<Vec<f64>> {
        self.downward_rank(agg)
    }

    /// Absolute latest start time (HCPT/MCP ALST) under `agg`, memoized;
    /// derived from the memoized upward rank.
    pub fn alst(&self, agg: CostAggregation) -> Arc<Vec<f64>> {
        self.memoized_derived(
            |m| &mut m.alst,
            agg,
            |inst| {
                let up = inst.upward_rank(agg);
                let cp = up.iter().copied().fold(0.0f64, f64::max);
                up.iter().map(|&r| cp - r).collect()
            },
        )
    }

    /// PETS rank (rounded ACC + DTC + RPT recurrence) under `agg`,
    /// memoized.
    pub fn pets_rank(&self, agg: CostAggregation) -> Arc<Vec<f64>> {
        self.memoized(|m| &mut m.pets, agg, |d, s| rank::pets_rank_raw(d, s, agg))
    }

    /// Tasks on a critical path under `agg`, in topological order,
    /// memoized; derived from the memoized upward and downward ranks.
    pub fn critical_path_tasks(&self, agg: CostAggregation) -> Arc<Vec<TaskId>> {
        self.memoized_derived(
            |m| &mut m.critical_path,
            agg,
            |inst| {
                let up = inst.upward_rank(agg);
                let down = inst.downward_rank(agg);
                rank::critical_path_from_ranks(&inst.dag, &up, &down)
            },
        )
    }

    /// Seed this (freshly patched) instance's rank memo from `parent`,
    /// recomputing only the entries `plan` marks dirty.
    ///
    /// For each `(kernel, aggregation)` pair the parent has computed: if
    /// the plan says the kernel's inputs are untouched, the parent's `Arc`
    /// is shared outright; otherwise the parent's vector is cloned and the
    /// dirty tasks are re-evaluated *in kernel order* with the exact
    /// per-task fold the raw kernel uses ([`rank::upward_entry`] and
    /// friends). Clean tasks keep the parent's bits, which a full fresh
    /// recompute would reproduce anyway (their transitive inputs are
    /// unchanged and each fold is pure) — so every seeded vector is
    /// bit-identical to a from-scratch computation on the patched problem.
    ///
    /// Derived vectors (ALST, critical path) are only shared when nothing
    /// is dirty; otherwise they are left empty and recomputed on demand
    /// from the seeded base vectors by the same derivations, preserving
    /// bit-identity transitively.
    pub(crate) fn seed_memo_from(&self, parent: &ProblemInstance<'_>, plan: &SeedPlan) {
        let (dag, sys) = (self.dag(), self.sys());
        let parent_memo = parent.memo();
        let mut memo = self.memo();
        for &(agg, ref v) in parent_memo.upward.iter() {
            let seeded = recompute_masked(
                v,
                plan.upward.as_deref(),
                dag.topo_order().iter().rev().copied(),
                |t, out| rank::upward_entry(dag, sys, agg, t, out),
            );
            memo.upward.push((agg, seeded));
        }
        for &(agg, ref v) in parent_memo.downward.iter() {
            let seeded = recompute_masked(
                v,
                plan.downward.as_deref(),
                dag.topo_order().iter().copied(),
                |t, out| rank::downward_entry(dag, sys, agg, t, out),
            );
            memo.downward.push((agg, seeded));
        }
        for &(agg, ref v) in parent_memo.static_level.iter() {
            let seeded = recompute_masked(
                v,
                plan.static_level.as_deref(),
                dag.topo_order().iter().rev().copied(),
                |t, out| rank::static_level_entry(dag, sys, agg, t, out),
            );
            memo.static_level.push((agg, seeded));
        }
        for &(agg, ref v) in parent_memo.pets.iter() {
            let seeded = recompute_masked(
                v,
                plan.pets.as_deref(),
                dag.topo_order().iter().copied(),
                |t, out| rank::pets_entry(dag, sys, agg, t, out),
            );
            memo.pets.push((agg, seeded));
        }
        if plan.untouched() {
            for &(agg, ref v) in parent_memo.alst.iter() {
                memo.alst.push((agg, Arc::clone(v)));
            }
            for &(agg, ref v) in parent_memo.critical_path.iter() {
                memo.critical_path.push((agg, Arc::clone(v)));
            }
        }
    }
}

/// Per-kernel dirty masks for [`ProblemInstance::seed_memo_from`]: `None`
/// means the kernel's inputs are untouched by the delta (share the
/// parent's `Arc`), `Some(mask)` lists the tasks whose entries must be
/// re-evaluated on the patched problem.
#[derive(Debug, Default)]
pub(crate) struct SeedPlan {
    pub upward: Option<Vec<bool>>,
    pub downward: Option<Vec<bool>>,
    pub static_level: Option<Vec<bool>>,
    pub pets: Option<Vec<bool>>,
}

impl SeedPlan {
    /// Whether no kernel has any dirty task at all (a schedule-neutral
    /// delta such as a pure task-weight change).
    pub(crate) fn untouched(&self) -> bool {
        self.upward.is_none()
            && self.downward.is_none()
            && self.static_level.is_none()
            && self.pets.is_none()
    }
}

/// Clone `parent` and re-evaluate the `mask`ed tasks in `order` with
/// `entry` (`None` mask: share the parent `Arc` unchanged).
fn recompute_masked(
    parent: &Arc<Vec<f64>>,
    mask: Option<&[bool]>,
    order: impl Iterator<Item = TaskId>,
    entry: impl Fn(TaskId, &[f64]) -> f64,
) -> Arc<Vec<f64>> {
    let Some(mask) = mask else {
        return Arc::clone(parent);
    };
    let mut out = (**parent).clone();
    for t in order {
        if mask[t.index()] {
            let v = entry(t, &out);
            out[t.index()] = v;
        }
    }
    Arc::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::builder::dag_from_edges;

    fn setup() -> (Dag, System) {
        let dag = dag_from_edges(
            &[1.0, 2.0, 3.0, 4.0],
            &[(0, 1, 10.0), (0, 2, 20.0), (1, 3, 30.0), (2, 3, 40.0)],
        )
        .unwrap();
        let sys = System::homogeneous_unit(&dag, 3);
        (dag, sys)
    }

    #[test]
    fn memoized_ranks_are_bit_identical_to_raw_and_shared() {
        let (dag, sys) = setup();
        let inst = ProblemInstance::new(dag.clone(), sys.clone());
        let agg = CostAggregation::Mean;
        let a = inst.upward_rank(agg);
        let b = inst.upward_rank(agg);
        assert!(Arc::ptr_eq(&a, &b), "second query must share the memo");
        let fresh = rank::upward_rank_raw(&dag, &sys, agg);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&fresh));
        assert_eq!(
            bits(&inst.downward_rank(agg)),
            bits(&rank::downward_rank_raw(&dag, &sys, agg))
        );
        assert_eq!(
            bits(&inst.static_level(agg)),
            bits(&rank::static_level_raw(&dag, &sys, agg))
        );
        assert_eq!(
            bits(&inst.pets_rank(agg)),
            bits(&rank::pets_rank_raw(&dag, &sys, agg))
        );
    }

    #[test]
    fn distinct_aggregations_get_distinct_entries() {
        let (dag, sys) = setup();
        let inst = ProblemInstance::new(dag, sys);
        let mean = inst.upward_rank(CostAggregation::Mean);
        let best = inst.upward_rank(CostAggregation::Best);
        assert!(!Arc::ptr_eq(&mean, &best));
        let again = inst.upward_rank(CostAggregation::Mean);
        assert!(Arc::ptr_eq(&mean, &again));
    }

    #[test]
    fn derived_vectors_match_their_definitions() {
        let (dag, sys) = setup();
        let inst = ProblemInstance::new(dag.clone(), sys.clone());
        let agg = CostAggregation::Mean;
        let up = inst.upward_rank(agg);
        let cp = up.iter().copied().fold(0.0f64, f64::max);
        let alst = inst.alst(agg);
        for (a, &r) in alst.iter().zip(up.iter()) {
            assert_eq!(a.to_bits(), (cp - r).to_bits());
        }
        assert!(Arc::ptr_eq(&inst.aest(agg), &inst.downward_rank(agg)));
        // Diamond with heavier lower branch: critical path is 0 -> 2 -> 3.
        let cp_tasks = inst.critical_path_tasks(agg);
        assert_eq!(&*cp_tasks, &[TaskId(0), TaskId(2), TaskId(3)]);
        assert!(Arc::ptr_eq(&cp_tasks, &inst.critical_path_tasks(agg)));
    }

    #[test]
    fn fingerprint_tracks_content_not_identity() {
        let (dag, sys) = setup();
        let fp_a = ProblemInstance::from_refs(&dag, &sys).fingerprint();
        let fp_b = ProblemInstance::from_refs(&dag, &sys).fingerprint();
        assert_eq!(fp_a, fp_b);
        let other = System::homogeneous_unit(&dag, 4);
        let c = ProblemInstance::new(dag, other);
        assert_ne!(fp_a, c.fingerprint());
    }

    #[test]
    fn concurrent_queries_share_one_computation() {
        let (dag, sys) = setup();
        let inst = ProblemInstance::new(dag, sys);
        let arcs: Vec<Arc<Vec<f64>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| inst.upward_rank(CostAggregation::Mean)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for w in arcs.windows(2) {
            assert!(Arc::ptr_eq(&w[0], &w[1]));
        }
    }
}
