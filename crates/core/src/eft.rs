//! Earliest-finish-time machinery shared by every list scheduler:
//! data-ready times (duplication-aware), per-processor EFT, best-processor
//! selection, and candidate enumeration for lookahead policies.
//!
//! Public entry points take a [`ProblemInstance`]; the crate-internal
//! `*_raw` twins take the underlying `(dag, sys)` pair directly and hold
//! the actual fold bodies (the reference engine and trial-schedule loops
//! call them without an instance in hand). Both paths are the same code.

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{ProcId, System};

use crate::instance::ProblemInstance;
use crate::schedule::Schedule;

/// Arrival time on processor `p` of the data produced by task `u` for the
/// edge `(u, t)` carrying `data` units.
///
/// With duplication a consumer may read from *any* copy of `u`; the arrival
/// is therefore the minimum over copies `(q, finish)` of
/// `finish + comm(data, q, p)`.
///
/// # Panics
/// Panics if `u` has no scheduled copy yet (a scheduler bug: list
/// schedulers only place tasks whose predecessors are placed).
pub fn arrival_from(sys: &System, sched: &Schedule, u: TaskId, data: f64, p: ProcId) -> f64 {
    let copies = sched.copies(u);
    assert!(
        !copies.is_empty(),
        "predecessor {u} not scheduled before its consumer"
    );
    copies
        .iter()
        .map(|&(q, fin)| fin + sys.comm_time(data, q, p))
        .fold(f64::INFINITY, f64::min)
}

/// Data-ready time of task `t` on processor `p`: the latest arrival over
/// all predecessors (0 for entry tasks).
pub fn data_ready_time(inst: &ProblemInstance, sched: &Schedule, t: TaskId, p: ProcId) -> f64 {
    data_ready_time_raw(inst.dag(), inst.sys(), sched, t, p)
}

pub(crate) fn data_ready_time_raw(
    dag: &Dag,
    sys: &System,
    sched: &Schedule,
    t: TaskId,
    p: ProcId,
) -> f64 {
    dag.predecessors(t)
        .map(|(u, data)| arrival_from(sys, sched, u, data, p))
        .fold(0.0f64, f64::max)
}

/// The *critical parent* of `t` w.r.t. processor `p`: the predecessor whose
/// message arrives last (ties broken toward the smaller task id). `None`
/// for entry tasks. Duplication heuristics duplicate exactly this parent.
///
/// The id tie-break is explicit rather than relying on iteration order:
/// [`Dag::predecessors`] happens to yield ascending ids for builder-built
/// DAGs (the builder sorts edges), but a deserialized DAG keeps its stored
/// edge order verbatim, and the duplicated parent must not depend on it.
pub fn critical_parent(
    inst: &ProblemInstance,
    sched: &Schedule,
    t: TaskId,
    p: ProcId,
) -> Option<TaskId> {
    critical_parent_raw(inst.dag(), inst.sys(), sched, t, p)
}

pub(crate) fn critical_parent_raw(
    dag: &Dag,
    sys: &System,
    sched: &Schedule,
    t: TaskId,
    p: ProcId,
) -> Option<TaskId> {
    let mut best: Option<(TaskId, f64)> = None;
    for (u, data) in dag.predecessors(t) {
        let a = arrival_from(sys, sched, u, data, p);
        match best {
            Some((bu, ba)) if a < ba || (a == ba && bu <= u) => {}
            _ => best = Some((u, a)),
        }
    }
    best.map(|(u, _)| u)
}

/// Earliest start and finish of `t` on `p` given the current partial
/// schedule. `insertion` selects gap search vs append placement.
pub fn eft_on(
    inst: &ProblemInstance,
    sched: &Schedule,
    t: TaskId,
    p: ProcId,
    insertion: bool,
) -> (f64, f64) {
    eft_on_raw(inst.dag(), inst.sys(), sched, t, p, insertion)
}

pub(crate) fn eft_on_raw(
    dag: &Dag,
    sys: &System,
    sched: &Schedule,
    t: TaskId,
    p: ProcId,
    insertion: bool,
) -> (f64, f64) {
    let ready = data_ready_time_raw(dag, sys, sched, t, p);
    let dur = sys.exec_time(t, p);
    let start = sched.earliest_start(p, ready, dur, insertion);
    (start, start + dur)
}

/// The processor giving `t` the minimum EFT, with its start and finish.
/// Ties break toward the smaller processor id (deterministic).
pub fn best_eft(
    inst: &ProblemInstance,
    sched: &Schedule,
    t: TaskId,
    insertion: bool,
) -> (ProcId, f64, f64) {
    best_eft_raw(inst.dag(), inst.sys(), sched, t, insertion)
}

pub(crate) fn best_eft_raw(
    dag: &Dag,
    sys: &System,
    sched: &Schedule,
    t: TaskId,
    insertion: bool,
) -> (ProcId, f64, f64) {
    let mut best: Option<(ProcId, f64, f64)> = None;
    for p in sys.proc_ids() {
        let (s, f) = eft_on_raw(dag, sys, sched, t, p, insertion);
        match best {
            Some((_, _, bf)) if f >= bf => {}
            _ => best = Some((p, s, f)),
        }
    }
    best.expect("system has at least one processor")
}

/// All processors whose EFT for `t` is within `tolerance` (relative) of the
/// best EFT, sorted by EFT then processor id. Lookahead policies re-rank
/// this near-tie set with a second criterion.
///
/// `tolerance = 0.0` returns exactly the EFT-minimal set. When the best EFT
/// is `0.0` (zero-weight entry tasks at time zero) a relative band has zero
/// width, so any positive tolerance falls back to an absolute epsilon of
/// [`crate::schedule::TIME_EPS`]: every processor finishing "at" time zero
/// by the schedule's own time resolution is a candidate (see
/// `tolerance_cut`).
pub fn eft_candidates(
    inst: &ProblemInstance,
    sched: &Schedule,
    t: TaskId,
    insertion: bool,
    tolerance: f64,
) -> Vec<(ProcId, f64, f64)> {
    eft_candidates_raw(inst.dag(), inst.sys(), sched, t, insertion, tolerance)
}

pub(crate) fn eft_candidates_raw(
    dag: &Dag,
    sys: &System,
    sched: &Schedule,
    t: TaskId,
    insertion: bool,
    tolerance: f64,
) -> Vec<(ProcId, f64, f64)> {
    debug_assert!(tolerance >= 0.0);
    let mut all: Vec<(ProcId, f64, f64)> = sys
        .proc_ids()
        .map(|p| {
            let (s, f) = eft_on_raw(dag, sys, sched, t, p, insertion);
            (p, s, f)
        })
        .collect();
    all.sort_by(|a, b| a.2.total_cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
    let cut = tolerance_cut(all[0].2, tolerance);
    all.retain(|&(_, _, f)| f <= cut);
    all
}

/// The inclusion threshold of [`eft_candidates`]: the largest EFT still
/// considered a near-tie of `best` under a relative `tolerance`.
///
/// * infinite tolerance keeps everything (`best * (1 + inf)` would be NaN
///   when `best == 0`);
/// * `best == 0.0` with a positive tolerance widens to the absolute
///   [`crate::TIME_EPS`] band — a purely relative band would collapse to
///   width zero and exclude every non-exact tie, contradicting the
///   "near-tie set" contract;
/// * otherwise the relative band, plus a `1e-12` absolute slack so exact
///   ties survive rounding.
pub(crate) fn tolerance_cut(best: f64, tolerance: f64) -> f64 {
    if tolerance.is_infinite() {
        f64::INFINITY
    } else if best == 0.0 && tolerance > 0.0 {
        crate::schedule::TIME_EPS
    } else {
        best * (1.0 + tolerance) + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::Dag;
    use hetsched_platform::{EtcMatrix, Network, System};

    /// Two tasks in a chain, data volume 6, two processors.
    /// ETC: t0 -> [2, 4], t1 -> [3, 1]. Unit network.
    fn setup() -> (Dag, System) {
        let dag = dag_from_edges(&[1.0, 1.0], &[(0, 1, 6.0)]).unwrap();
        let etc = EtcMatrix::from_fn(2, 2, |t, p| match (t.index(), p.index()) {
            (0, 0) => 2.0,
            (0, 1) => 4.0,
            (1, 0) => 3.0,
            (1, 1) => 1.0,
            _ => unreachable!(),
        });
        (dag, System::new(etc, Network::unit(2)))
    }

    #[test]
    fn arrival_local_vs_remote() {
        let (dag, sys) = setup();
        let mut sched = Schedule::new(2, 2);
        sched.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        // local read: no comm
        assert_eq!(arrival_from(&sys, &sched, TaskId(0), 6.0, ProcId(0)), 2.0);
        // remote read: + 6 units over unit bandwidth
        assert_eq!(arrival_from(&sys, &sched, TaskId(0), 6.0, ProcId(1)), 8.0);
        let _ = dag;
    }

    #[test]
    fn arrival_prefers_closest_copy() {
        let (_, sys) = setup();
        let mut sched = Schedule::new(2, 2);
        sched.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        sched
            .insert_duplicate(TaskId(0), ProcId(1), 0.0, 4.0)
            .unwrap();
        // consumer on p1 reads the local (later-finishing!) copy because
        // the remote message would arrive at 2 + 6 = 8 > 4
        assert_eq!(arrival_from(&sys, &sched, TaskId(0), 6.0, ProcId(1)), 4.0);
        // consumer on p0 still reads locally at 2
        assert_eq!(arrival_from(&sys, &sched, TaskId(0), 6.0, ProcId(0)), 2.0);
    }

    #[test]
    fn data_ready_time_takes_max_over_parents() {
        // two parents feeding one child
        let dag = dag_from_edges(&[1.0, 1.0, 1.0], &[(0, 2, 2.0), (1, 2, 3.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let mut sched = Schedule::new(3, 2);
        sched.insert(TaskId(0), ProcId(0), 0.0, 1.0).unwrap();
        sched.insert(TaskId(1), ProcId(1), 0.0, 1.0).unwrap();
        // on p0: t0 local (1.0), t1 remote (1 + 3 = 4) -> DRT 4
        assert_eq!(
            data_ready_time_raw(&dag, &sys, &sched, TaskId(2), ProcId(0)),
            4.0
        );
        // on p1: t0 remote (1 + 2 = 3), t1 local (1) -> DRT 3
        assert_eq!(
            data_ready_time_raw(&dag, &sys, &sched, TaskId(2), ProcId(1)),
            3.0
        );
        assert_eq!(
            critical_parent_raw(&dag, &sys, &sched, TaskId(2), ProcId(0)),
            Some(TaskId(1))
        );
        assert_eq!(
            critical_parent_raw(&dag, &sys, &sched, TaskId(2), ProcId(1)),
            Some(TaskId(0))
        );
    }

    #[test]
    fn entry_task_drt_is_zero_and_no_critical_parent() {
        let (dag, sys) = setup();
        let sched = Schedule::new(2, 2);
        assert_eq!(
            data_ready_time_raw(&dag, &sys, &sched, TaskId(0), ProcId(1)),
            0.0
        );
        assert_eq!(
            critical_parent_raw(&dag, &sys, &sched, TaskId(0), ProcId(0)),
            None
        );
    }

    #[test]
    fn best_eft_weighs_comm_against_speed() {
        let (dag, sys) = setup();
        let mut sched = Schedule::new(2, 2);
        sched.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        // t1 on p0: start 2, finish 2 + 3 = 5
        // t1 on p1: start 8 (message), finish 9 — despite p1 being faster
        let (p, s, f) = best_eft_raw(&dag, &sys, &sched, TaskId(1), true);
        assert_eq!((p, s, f), (ProcId(0), 2.0, 5.0));
    }

    #[test]
    fn eft_uses_insertion_gap() {
        let (dag, sys) = setup();
        let mut sched = Schedule::new(2, 2);
        // artificially occupy p0 late, leaving a gap
        sched.insert(TaskId(1), ProcId(0), 10.0, 3.0).unwrap();
        let (s, f) = eft_on_raw(&dag, &sys, &sched, TaskId(0), ProcId(0), true);
        assert_eq!((s, f), (0.0, 2.0), "fits in the leading gap");
        let (s2, _) = eft_on_raw(&dag, &sys, &sched, TaskId(0), ProcId(0), false);
        assert_eq!(s2, 13.0, "append policy goes to the end");
    }

    #[test]
    fn candidates_ordering_and_tolerance() {
        let (dag, sys) = setup();
        let sched = Schedule::new(2, 2);
        // entry task t0: EFTs are 2 (p0) and 4 (p1)
        let tight = eft_candidates_raw(&dag, &sys, &sched, TaskId(0), true, 0.0);
        assert_eq!(tight.len(), 1);
        assert_eq!(tight[0].0, ProcId(0));
        let loose = eft_candidates_raw(&dag, &sys, &sched, TaskId(0), true, 1.0);
        assert_eq!(loose.len(), 2);
        assert!(loose[0].2 <= loose[1].2);
    }

    #[test]
    #[should_panic(expected = "not scheduled before its consumer")]
    fn arrival_panics_on_unscheduled_parent() {
        let (dag, sys) = setup();
        let sched = Schedule::new(2, 2);
        data_ready_time_raw(&dag, &sys, &sched, TaskId(1), ProcId(0));
    }

    #[test]
    fn zero_best_tolerance_keeps_time_eps_band() {
        // zero-weight entry task: the best EFT is exactly 0.0, so a
        // relative band has zero width. A second processor finishing
        // within TIME_EPS must still count as a near-tie.
        let dag = dag_from_edges(&[0.0, 1.0], &[(0, 1, 1.0)]).unwrap();
        let etc = EtcMatrix::from_fn(2, 2, |t, p| match (t.index(), p.index()) {
            (0, 0) => 0.0,
            (0, 1) => 0.5e-9, // inside the TIME_EPS = 1e-9 resolution
            (1, _) => 1.0,
            _ => unreachable!(),
        });
        let sys = System::new(etc, Network::unit(2));
        let sched = Schedule::new(2, 2);
        let loose = eft_candidates_raw(&dag, &sys, &sched, TaskId(0), true, 0.25);
        assert_eq!(
            loose.len(),
            2,
            "positive tolerance at best == 0 must widen to TIME_EPS, got {loose:?}"
        );
        // tolerance 0.0 still means the exact EFT-minimal set
        let tight = eft_candidates_raw(&dag, &sys, &sched, TaskId(0), true, 0.0);
        assert_eq!(tight.len(), 1);
        assert_eq!(tight[0].0, ProcId(0));
    }

    #[test]
    fn tolerance_cut_zero_best_cases() {
        assert_eq!(tolerance_cut(0.0, 0.5), crate::schedule::TIME_EPS);
        assert_eq!(tolerance_cut(0.0, 0.0), 1e-12, "zero tolerance stays exact");
        assert_eq!(tolerance_cut(0.0, f64::INFINITY), f64::INFINITY);
        assert_eq!(tolerance_cut(10.0, 0.1), 10.0 * 1.1 + 1e-12);
    }

    #[test]
    fn instance_wrappers_match_raw() {
        let (dag, sys) = setup();
        let inst = ProblemInstance::from_refs(&dag, &sys);
        let mut sched = Schedule::new(2, 2);
        sched.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        let t = TaskId(1);
        assert_eq!(
            data_ready_time(&inst, &sched, t, ProcId(1)),
            data_ready_time_raw(&dag, &sys, &sched, t, ProcId(1))
        );
        assert_eq!(
            critical_parent(&inst, &sched, t, ProcId(1)),
            critical_parent_raw(&dag, &sys, &sched, t, ProcId(1))
        );
        assert_eq!(
            eft_on(&inst, &sched, t, ProcId(0), true),
            eft_on_raw(&dag, &sys, &sched, t, ProcId(0), true)
        );
        assert_eq!(
            best_eft(&inst, &sched, t, true),
            best_eft_raw(&dag, &sys, &sched, t, true)
        );
        assert_eq!(
            eft_candidates(&inst, &sched, t, true, 0.5),
            eft_candidates_raw(&dag, &sys, &sched, t, true, 0.5)
        );
    }

    #[test]
    fn critical_parent_tie_break_survives_pred_order_permutation() {
        use serde::{Deserialize, Serialize};
        // t0 and t1 both feed t2 with equal data; scheduled symmetrically,
        // their messages reach a third processor at the same instant. The
        // critical parent must be the smaller id (t0) regardless of the
        // order `predecessors` yields the edges in.
        let dag = dag_from_edges(&[1.0, 1.0, 1.0], &[(0, 2, 4.0), (1, 2, 4.0)]).unwrap();
        // permute the stored predecessor order by round-tripping through
        // serde: builder DAGs keep pred_edges ascending, deserialized DAGs
        // keep whatever the document says.
        let mut v = dag.to_value();
        let pe = v
            .as_object_mut()
            .unwrap()
            .get_mut("pred_edges")
            .unwrap()
            .as_array_mut()
            .unwrap();
        pe.reverse();
        let permuted = Dag::from_value(&v).unwrap();
        let order: Vec<TaskId> = permuted.predecessors(TaskId(2)).map(|(u, _)| u).collect();
        assert_eq!(
            order,
            vec![TaskId(1), TaskId(0)],
            "round-trip must yield descending pred ids for this test to bite"
        );

        let sys = System::homogeneous_unit(&dag, 3);
        let mut sched = Schedule::new(3, 3);
        sched.insert(TaskId(0), ProcId(0), 0.0, 1.0).unwrap();
        sched.insert(TaskId(1), ProcId(1), 0.0, 1.0).unwrap();
        // both arrivals on p2 are exactly 1 + 4 = 5 -> exact tie
        assert_eq!(arrival_from(&sys, &sched, TaskId(0), 4.0, ProcId(2)), 5.0);
        assert_eq!(arrival_from(&sys, &sched, TaskId(1), 4.0, ProcId(2)), 5.0);
        assert_eq!(
            critical_parent_raw(&permuted, &sys, &sched, TaskId(2), ProcId(2)),
            Some(TaskId(0)),
            "tie must break toward the smaller task id, not iteration order"
        );
        // same answer on the builder-ordered DAG
        assert_eq!(
            critical_parent_raw(&dag, &sys, &sched, TaskId(2), ProcId(2)),
            Some(TaskId(0))
        );
    }
}
