//! Left-shift schedule compaction.
//!
//! Schedulers occasionally leave slack (non-insertion placement, pinned
//! critical-path processors, duplication trials). [`left_shift`] rebuilds
//! a schedule with every copy started as early as possible while
//! preserving each processor's task *order* and every assignment — the
//! schedule-space analogue of the simulator's ASAP replay. The result is
//! always valid and never longer than the input.

use hetsched_dag::Dag;
use hetsched_platform::System;

use crate::schedule::Schedule;

/// Rebuild `sched` with all copies left-shifted.
///
/// Per-processor copy order and task→processor assignments (including
/// duplicates) are preserved; start times are recomputed greedily in
/// global original-start order, reading each predecessor from whichever
/// copy now delivers first.
///
/// # Panics
/// Panics if `sched` is incomplete or not valid for `dag`/`sys` (the
/// greedy pass would otherwise read predecessors before they exist).
pub fn left_shift(dag: &Dag, sys: &System, sched: &Schedule) -> Schedule {
    assert!(sched.is_complete(), "cannot compact a partial schedule");
    // global processing order: original start, then finish (zero-duration
    // copies first among ties), then processor for determinism.
    let mut order: Vec<(f64, f64, u32, usize)> = Vec::new(); // (start, finish, proc, slot idx)
    for p in sys.proc_ids() {
        for (k, slot) in sched.slots(p).iter().enumerate() {
            order.push((slot.start, slot.finish, p.0, k));
        }
    }
    order.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| a.1.total_cmp(&b.1))
            .then_with(|| a.2.cmp(&b.2))
    });

    let mut out = Schedule::new(dag.num_tasks(), sys.num_procs());
    for &(_, _, p, k) in &order {
        let p = hetsched_platform::ProcId(p);
        let slot = sched.slots(p).get(k);
        // data-ready time against the partially rebuilt schedule; in a
        // valid input every predecessor copy was originally ordered before
        // this slot, so it has already been re-placed.
        let ready = crate::eft::data_ready_time_raw(dag, sys, &out, slot.task, p);
        let dur = slot.finish - slot.start;
        // order-preserving: append after the previous slot on p (no gap
        // search — that could reorder the processor's sequence)
        let start = ready.max(out.proc_finish(p));
        if slot.duplicate {
            out.insert_duplicate(slot.task, p, start, dur)
                .expect("left-shifted duplicate cannot conflict");
        } else {
            out.insert(slot.task, p, start, dur)
                .expect("left-shifted copy cannot conflict");
        }
    }
    debug_assert!(out.makespan() <= sched.makespan() + 1e-9);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::all_heterogeneous;
    use crate::validate::validate;
    use crate::Scheduler as _;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::TaskId;
    use hetsched_platform::{EtcParams, ProcId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn removes_gratuitous_slack() {
        let dag = dag_from_edges(&[2.0, 3.0], &[(0, 1, 0.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 1);
        let mut sched = Schedule::new(2, 1);
        sched.insert(TaskId(0), ProcId(0), 5.0, 2.0).unwrap();
        sched.insert(TaskId(1), ProcId(0), 20.0, 3.0).unwrap();
        let out = left_shift(&dag, &sys, &sched);
        assert_eq!(validate(&dag, &sys, &out), Ok(()));
        assert_eq!(out.makespan(), 5.0);
        assert_eq!(out.assignment(TaskId(0)), Some((ProcId(0), 0.0, 2.0)));
    }

    #[test]
    fn preserves_assignments_and_duplicates() {
        let dag = dag_from_edges(&[2.0, 1.0], &[(0, 1, 50.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let mut sched = Schedule::new(2, 2);
        sched.insert(TaskId(0), ProcId(0), 1.0, 2.0).unwrap();
        sched
            .insert_duplicate(TaskId(0), ProcId(1), 3.0, 2.0)
            .unwrap();
        sched.insert(TaskId(1), ProcId(1), 5.0, 1.0).unwrap();
        let out = left_shift(&dag, &sys, &sched);
        assert_eq!(validate(&dag, &sys, &out), Ok(()));
        assert_eq!(out.task_proc(TaskId(1)), Some(ProcId(1)));
        assert_eq!(out.num_duplicates(), 1);
        // everything shifts to the origin: dup runs 0..2, consumer 2..3
        assert_eq!(out.makespan(), 3.0);
    }

    #[test]
    fn compaction_is_idempotent_and_never_lengthens() {
        let mut rng = StdRng::seed_from_u64(11);
        let dag = hetsched_workloads::random_dag(
            &hetsched_workloads::RandomDagParams::new(40, 1.0, 2.0),
            &mut rng,
        );
        let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
        for alg in all_heterogeneous() {
            let sched = alg.schedule(&dag, &sys);
            let once = left_shift(&dag, &sys, &sched);
            assert_eq!(validate(&dag, &sys, &once), Ok(()), "{}", alg.name());
            assert!(
                once.makespan() <= sched.makespan() + 1e-9,
                "{}: {} > {}",
                alg.name(),
                once.makespan(),
                sched.makespan()
            );
            let twice = left_shift(&dag, &sys, &once);
            assert!(
                (twice.makespan() - once.makespan()).abs() < 1e-9,
                "{}: second shift changed makespan",
                alg.name()
            );
        }
    }

    #[test]
    fn matches_simulator_replay_makespan() {
        // ASAP replay and left-shift implement the same semantics through
        // different code paths — they must agree.
        let mut rng = StdRng::seed_from_u64(12);
        let dag = hetsched_workloads::random_dag(
            &hetsched_workloads::RandomDagParams::new(30, 1.0, 1.0),
            &mut rng,
        );
        let sys = System::heterogeneous_random(&dag, 3, &EtcParams::range_based(1.0), &mut rng);
        let sched = crate::algorithms::Heft::new().schedule(&dag, &sys);
        let shifted = left_shift(&dag, &sys, &sched);
        // (cannot call hetsched-sim from here — core must not depend on it;
        // the cross-check lives in the workspace integration tests)
        assert!(shifted.makespan() <= sched.makespan() + 1e-9);
    }
}
