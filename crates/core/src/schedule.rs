//! Schedule representation: per-processor timelines with gap (insertion)
//! search, primary assignments, and duplication support.
//!
//! Timelines are stored struct-of-arrays ([`Timeline`]): parallel
//! `starts`/`finishes`/`tasks`/`dups` vectors instead of a `Vec<Slot>`.
//! The gap search ([`Schedule::earliest_start`]) and the bulk replay of
//! schedule repair ([`Schedule::replay_prefix`]) spend their time
//! streaming start/finish times; keeping those as contiguous `f64` arrays
//! halves the bytes those scans touch (no interleaved task ids or
//! duplicate flags) and lets `partition_point` binary-search a plain
//! `&[f64]`. [`Slot`] remains the public *view* type — `Timeline::get`
//! and `Timeline::iter` materialize slots by value on demand — and the
//! serialized wire format is the old array-of-slot-objects, byte for
//! byte, via the manual serde impls below.

use serde::{Deserialize, Serialize};

use hetsched_dag::TaskId;
use hetsched_platform::ProcId;

/// Numerical slack used when comparing slot boundaries: two events closer
/// than this are considered simultaneous. All times in a schedule are
/// finite `f64` seconds.
pub const TIME_EPS: f64 = 1e-9;

/// One occupied interval on a processor timeline.
///
/// Since the struct-of-arrays refactor this is a *view*: timelines store
/// the four fields in parallel vectors and materialize `Slot`s by value
/// (it is 24 bytes and `Copy` — cheaper than chasing a reference).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slot {
    /// The task executing in this interval.
    pub task: TaskId,
    /// Start time.
    pub start: f64,
    /// Finish time (`start + execution time`).
    pub finish: f64,
    /// Whether this is a duplicate copy (the primary copy lives elsewhere).
    pub duplicate: bool,
}

/// One processor's occupied intervals, sorted by start time, stored
/// struct-of-arrays.
///
/// The four vectors always have equal length; index `i` across them is
/// slot `i`. Mutation goes through the crate-internal `push`/`insert`/
/// `remove`, which keep the arrays in lockstep; readers use the slice
/// accessors ([`Timeline::starts`], [`Timeline::finishes`]) on hot paths
/// and the [`Slot`]-view API ([`Timeline::get`], [`Timeline::iter`])
/// everywhere else.
#[derive(Debug, Default, PartialEq)]
pub struct Timeline {
    tasks: Vec<TaskId>,
    starts: Vec<f64>,
    finishes: Vec<f64>,
    dups: Vec<bool>,
}

/// Manual so that `clone_from` recycles the four vectors' allocations —
/// the derive would fall back to `*self = source.clone()`, which
/// re-allocates all four. Snapshot-heavy consumers (the branch-and-bound
/// search clones a `Schedule` per branch node) depend on this to keep the
/// struct-of-arrays split from multiplying their allocation count.
impl Clone for Timeline {
    fn clone(&self) -> Self {
        Timeline {
            tasks: self.tasks.clone(),
            starts: self.starts.clone(),
            finishes: self.finishes.clone(),
            dups: self.dups.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.tasks.clone_from(&source.tasks);
        self.starts.clone_from(&source.starts);
        self.finishes.clone_from(&source.finishes);
        self.dups.clone_from(&source.dups);
    }
}

impl Timeline {
    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the timeline has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Slot `i`, materialized by value.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Slot {
        Slot {
            task: self.tasks[i],
            start: self.starts[i],
            finish: self.finishes[i],
            duplicate: self.dups[i],
        }
    }

    /// The last slot, if any.
    #[inline]
    pub fn last(&self) -> Option<Slot> {
        if self.is_empty() {
            None
        } else {
            Some(self.get(self.len() - 1))
        }
    }

    /// Iterate slots (by value) in start order.
    #[inline]
    pub fn iter(&self) -> TimelineIter<'_> {
        TimelineIter { tl: self, i: 0 }
    }

    /// Start times as a contiguous slice, in slot order.
    #[inline]
    pub fn starts(&self) -> &[f64] {
        &self.starts
    }

    /// Finish times as a contiguous slice, in slot order.
    #[inline]
    pub fn finishes(&self) -> &[f64] {
        &self.finishes
    }

    /// Task ids as a contiguous slice, in slot order.
    #[inline]
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }

    /// Finish time of the last slot (0.0 when empty).
    #[inline]
    fn last_finish(&self) -> f64 {
        self.finishes.last().copied().unwrap_or(0.0)
    }

    /// Reserve capacity for exactly `additional` more slots in all four
    /// arrays.
    fn reserve_exact(&mut self, additional: usize) {
        self.tasks.reserve_exact(additional);
        self.starts.reserve_exact(additional);
        self.finishes.reserve_exact(additional);
        self.dups.reserve_exact(additional);
    }

    /// Append a slot (caller guarantees start-order).
    fn push(&mut self, s: Slot) {
        self.tasks.push(s.task);
        self.starts.push(s.start);
        self.finishes.push(s.finish);
        self.dups.push(s.duplicate);
    }

    /// Insert a slot at index `i`, shifting the rest right.
    fn insert(&mut self, i: usize, s: Slot) {
        self.tasks.insert(i, s.task);
        self.starts.insert(i, s.start);
        self.finishes.insert(i, s.finish);
        self.dups.insert(i, s.duplicate);
    }

    /// Remove and return the slot at index `i`, shifting the rest left.
    fn remove(&mut self, i: usize) -> Slot {
        Slot {
            task: self.tasks.remove(i),
            start: self.starts.remove(i),
            finish: self.finishes.remove(i),
            duplicate: self.dups.remove(i),
        }
    }
}

/// By-value slot iterator over a [`Timeline`].
#[derive(Debug, Clone)]
pub struct TimelineIter<'a> {
    tl: &'a Timeline,
    i: usize,
}

impl Iterator for TimelineIter<'_> {
    type Item = Slot;

    #[inline]
    fn next(&mut self) -> Option<Slot> {
        if self.i < self.tl.len() {
            let s = self.tl.get(self.i);
            self.i += 1;
            Some(s)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.tl.len() - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TimelineIter<'_> {}

impl<'a> IntoIterator for &'a Timeline {
    type Item = Slot;
    type IntoIter = TimelineIter<'a>;

    fn into_iter(self) -> TimelineIter<'a> {
        self.iter()
    }
}

/// Wire format: exactly the pre-SoA `Vec<Slot>` encoding — an array of
/// slot objects — so serialized schedules (serve replies, CLI dumps,
/// committed fixtures) are byte-identical across the layout change. Each
/// element delegates to [`Slot`]'s derived impl.
impl Serialize for Timeline {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(self.iter().map(|s| s.to_value()).collect())
    }
}

impl Deserialize for Timeline {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let slots: Vec<Slot> = Vec::from_value(v)?;
        let mut tl = Timeline::default();
        tl.reserve_exact(slots.len());
        for s in slots {
            tl.push(s);
        }
        Ok(tl)
    }
}

/// Errors from direct schedule mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The requested interval overlaps an existing slot on that processor.
    Overlap {
        /// Processor on which the overlap occurred.
        proc: ProcId,
        /// Task already occupying the conflicting interval.
        existing: TaskId,
    },
    /// A primary copy of this task was already placed.
    AlreadyScheduled(TaskId),
    /// A duplicate was inserted for a task with no primary copy yet, or a
    /// second copy of the task on the same processor.
    BadDuplicate(TaskId),
    /// Start/duration were negative, NaN, or infinite.
    InvalidTime(f64),
}

impl core::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScheduleError::Overlap { proc, existing } => {
                write!(f, "interval overlaps task {existing} on {proc}")
            }
            ScheduleError::AlreadyScheduled(t) => write!(f, "task {t} already scheduled"),
            ScheduleError::BadDuplicate(t) => write!(f, "invalid duplicate of task {t}"),
            ScheduleError::InvalidTime(v) => write!(f, "invalid time value {v}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A (possibly partial) static schedule.
///
/// Each processor holds a [`Timeline`] sorted by start time; the
/// structure additionally tracks, per task, its *primary* assignment and
/// the finish time of every copy (primary + duplicates) for duplication-
/// aware data-ready-time queries.
///
/// **Serde caveat:** the derived `Deserialize` restores fields verbatim
/// without re-checking the no-overlap invariant; run
/// [`crate::validate::validate`] on any schedule loaded from external
/// data (the CLI does exactly that).
#[derive(Debug, Serialize, Deserialize)]
pub struct Schedule {
    n_tasks: usize,
    timelines: Vec<Timeline>,
    /// Per task: primary (proc, start, finish), if placed.
    primary: Vec<Option<(ProcId, f64, f64)>>,
    /// Per task: every copy as (proc, finish), primary included.
    copies: Vec<Vec<(ProcId, f64)>>,
    /// Per-processor gap-search acceleration structure. Derived data only —
    /// kept off the wire (so the serialized format is unchanged) and rebuilt
    /// lazily: a deserialized schedule simply has an empty cache and every
    /// query falls back to the full scan.
    #[serde(default, skip_serializing_if = "skip_cache")]
    cache: Vec<TimelineCache>,
    /// Undo log of the active trial (see [`Schedule::begin_trial`]); `None`
    /// outside a trial, so mutation off the trial path stays log-free.
    /// Ephemeral bookkeeping — always kept off the wire, like `cache`.
    #[serde(default, skip_serializing_if = "skip_trial")]
    trial: Option<Vec<TrialOp>>,
    /// Per-processor mutation counter. Every timeline mutation (insert or
    /// trial rollback) bumps the processor's epoch, and a rebuilt
    /// [`TimelineCache`] records the epoch it was built at — the fast gap
    /// search only accepts a cache stamped with the *current* epoch, so a
    /// cache can never be mistaken for fresh just because the timeline
    /// happens to have the same length again. Derived data, off the wire
    /// like `cache`.
    #[serde(default, skip_serializing_if = "skip_epoch")]
    epoch: Vec<u64>,
}

/// Manual for the same reason as [`Timeline`]'s: `clone_from` must
/// recycle every nested allocation (timelines, per-task copy lists,
/// cache prefix arrays) instead of re-allocating them. `Vec::clone_from`
/// reuses its own buffer *and* `clone_from`s each element in place, so
/// the recursion bottoms out with zero allocations once a recycled
/// schedule has seen its capacity high-water mark.
impl Clone for Schedule {
    fn clone(&self) -> Self {
        Schedule {
            n_tasks: self.n_tasks,
            timelines: self.timelines.clone(),
            primary: self.primary.clone(),
            copies: self.copies.clone(),
            cache: self.cache.clone(),
            trial: self.trial.clone(),
            epoch: self.epoch.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.n_tasks = source.n_tasks;
        self.timelines.clone_from(&source.timelines);
        self.primary.clone_from(&source.primary);
        self.copies.clone_from(&source.copies);
        self.cache.clone_from(&source.cache);
        self.trial.clone_from(&source.trial);
        self.epoch.clone_from(&source.epoch);
    }
}

/// `skip_serializing_if` predicate for [`Schedule::trial`]: always skip.
fn skip_trial(_: &Option<Vec<TrialOp>>) -> bool {
    true
}

/// One reversible mutation recorded by the trial undo log.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum TrialOp {
    /// `insert_slot` placed `task` at index `pos` of `proc`'s timeline
    /// (and pushed a `copies` entry for it).
    Slot {
        proc: ProcId,
        pos: usize,
        task: TaskId,
    },
    /// `insert` set the primary assignment of `task`.
    Primary { task: TaskId },
}

/// `skip_serializing_if` predicate for [`Schedule::cache`]: always skip.
#[allow(clippy::ptr_arg)]
fn skip_cache(_: &Vec<TimelineCache>) -> bool {
    true
}

/// `skip_serializing_if` predicate for [`Schedule::epoch`]: always skip.
#[allow(clippy::ptr_arg)]
fn skip_epoch(_: &Vec<u64>) -> bool {
    true
}

/// Derived per-timeline data that lets [`Schedule::earliest_start`] answer
/// most insertion queries without scanning the whole slot list. Invariant
/// (whenever `prefix_max.len() == timeline.len()`):
///
/// * `prefix_max[i]` = running maximum of `finishes[..=i]` — exactly the
///   `prev_finish` value the naive scan holds after processing slot `i`
///   (finishes are *not* monotone: slots may overlap boundaries by up to
///   [`TIME_EPS`], so the last finish is not necessarily the largest).
/// * `max_gap_ub` ≥ `fl(starts[i] + TIME_EPS) - prefix_max[i-1]` for
///   every `i` (with `prefix_max[-1] = 0`): an upper bound on every idle
///   interval the scan could ever place work into.
/// * `scale` = maximum slot finish, used to pad `max_gap_ub` comparisons by
///   a margin that provably dominates all rounding error.
#[derive(Debug, Default, Serialize, Deserialize)]
struct TimelineCache {
    prefix_max: Vec<f64>,
    max_gap_ub: f64,
    scale: f64,
    /// Value of `Schedule::epoch[p]` when this cache was last rebuilt. A
    /// cache is valid only while the stamp matches the live epoch — a
    /// length match alone is not proof of freshness (a rolled-back trial
    /// can restore a same-length timeline with different slot contents).
    stamp: u64,
}

/// Manual so `clone_from` keeps `prefix_max`'s buffer (see [`Timeline`]).
impl Clone for TimelineCache {
    fn clone(&self) -> Self {
        TimelineCache {
            prefix_max: self.prefix_max.clone(),
            max_gap_ub: self.max_gap_ub,
            scale: self.scale,
            stamp: self.stamp,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.prefix_max.clone_from(&source.prefix_max);
        self.max_gap_ub = source.max_gap_ub;
        self.scale = source.scale;
        self.stamp = source.stamp;
    }
}

impl TimelineCache {
    /// Rebuild from a timeline (O(len)). The pass streams the `starts`
    /// and `finishes` arrays in lockstep — two contiguous `f64` reads per
    /// slot, nothing else.
    fn rebuild(&mut self, tl: &Timeline) {
        self.prefix_max.clear();
        self.prefix_max.reserve(tl.len());
        self.max_gap_ub = 0.0;
        self.scale = 0.0;
        let mut prev = 0.0f64;
        for (&start, &finish) in tl.starts.iter().zip(&tl.finishes) {
            let gap = (start + TIME_EPS) - prev;
            if gap > self.max_gap_ub {
                self.max_gap_ub = gap;
            }
            prev = prev.max(finish);
            self.prefix_max.push(prev);
            if finish > self.scale {
                self.scale = finish;
            }
        }
    }
}

impl Schedule {
    /// Empty schedule for `n_tasks` tasks on `n_procs` processors.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn new(n_tasks: usize, n_procs: usize) -> Self {
        assert!(n_tasks > 0, "schedule needs at least one task");
        assert!(n_procs > 0, "schedule needs at least one processor");
        Schedule {
            n_tasks,
            timelines: vec![Timeline::default(); n_procs],
            primary: vec![None; n_tasks],
            copies: vec![Vec::new(); n_tasks],
            cache: vec![TimelineCache::default(); n_procs],
            trial: None,
            epoch: vec![0; n_procs],
        }
    }

    /// Bump processor `p`'s mutation epoch and return the new value.
    /// Deserialized schedules start with an empty epoch vector; it is grown
    /// on demand so they stay mutable (their cache vector is empty anyway,
    /// so every query falls back to the reference scan).
    fn bump_epoch(&mut self, p: usize) -> u64 {
        if self.epoch.len() <= p {
            self.epoch.resize(p + 1, 0);
        }
        self.epoch[p] += 1;
        self.epoch[p]
    }

    /// Number of tasks this schedule is sized for.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Number of processors.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.timelines.len()
    }

    /// Slots on processor `p`, sorted by start time.
    #[inline]
    pub fn slots(&self, p: ProcId) -> &Timeline {
        &self.timelines[p.index()]
    }

    /// Primary assignment of `t`: `(processor, start, finish)`.
    #[inline]
    pub fn assignment(&self, t: TaskId) -> Option<(ProcId, f64, f64)> {
        self.primary[t.index()]
    }

    /// Finish time of the primary copy of `t`.
    #[inline]
    pub fn task_finish(&self, t: TaskId) -> Option<f64> {
        self.primary[t.index()].map(|(_, _, f)| f)
    }

    /// Processor of the primary copy of `t`.
    #[inline]
    pub fn task_proc(&self, t: TaskId) -> Option<ProcId> {
        self.primary[t.index()].map(|(p, _, _)| p)
    }

    /// All copies of `t` as `(processor, finish)`, primary first.
    #[inline]
    pub fn copies(&self, t: TaskId) -> &[(ProcId, f64)] {
        &self.copies[t.index()]
    }

    /// Finish time of the copy of `t` on processor `p`, if one exists.
    pub fn finish_on(&self, t: TaskId, p: ProcId) -> Option<f64> {
        self.copies[t.index()]
            .iter()
            .find(|&&(q, _)| q == p)
            .map(|&(_, f)| f)
    }

    /// Whether every task has a primary assignment.
    pub fn is_complete(&self) -> bool {
        self.primary.iter().all(Option::is_some)
    }

    /// Number of tasks with a primary assignment.
    pub fn num_scheduled(&self) -> usize {
        self.primary.iter().filter(|a| a.is_some()).count()
    }

    /// Number of duplicate slots across all processors.
    pub fn num_duplicates(&self) -> usize {
        self.timelines
            .iter()
            .map(|tl| tl.dups.iter().filter(|&&d| d).count())
            .sum()
    }

    /// Completion time of the whole schedule: the latest primary finish
    /// (0.0 for an empty schedule). Duplicates never extend the makespan
    /// definition — a trailing duplicate nobody consumes is wasted work,
    /// not application latency — but validators ensure schedulers only add
    /// duplicates that help.
    pub fn makespan(&self) -> f64 {
        self.primary
            .iter()
            .flatten()
            .map(|&(_, _, f)| f)
            .fold(0.0, f64::max)
    }

    /// Total busy time (sum of slot durations, duplicates included).
    pub fn busy_time(&self) -> f64 {
        self.timelines
            .iter()
            .flat_map(|tl| tl.starts.iter().zip(&tl.finishes))
            .map(|(&s, &f)| f - s)
            .sum()
    }

    /// Idle time: processors × makespan − busy time.
    pub fn idle_time(&self) -> f64 {
        (self.num_procs() as f64) * self.makespan() - self.busy_time()
    }

    /// Number of processors with at least one slot.
    pub fn procs_used(&self) -> usize {
        self.timelines.iter().filter(|tl| !tl.is_empty()).count()
    }

    /// Latest finish time of any slot on `p` (0.0 if idle).
    pub fn proc_finish(&self, p: ProcId) -> f64 {
        self.timelines[p.index()].last_finish()
    }

    /// Earliest time at or after `ready` when an idle interval of length
    /// `dur` exists on `p`.
    ///
    /// With `insertion`, gaps between existing slots are considered
    /// (insertion-based policy of HEFT); otherwise only the end of the
    /// timeline (non-insertion / append policy).
    ///
    /// ```
    /// use hetsched_core::Schedule;
    /// use hetsched_dag::TaskId;
    /// use hetsched_platform::ProcId;
    ///
    /// let mut s = Schedule::new(3, 1);
    /// s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
    /// s.insert(TaskId(1), ProcId(0), 5.0, 1.0).unwrap();
    /// // a 3-unit job fits the [2, 5) gap under the insertion policy...
    /// assert_eq!(s.earliest_start(ProcId(0), 0.0, 3.0, true), 2.0);
    /// // ...but appends after everything without it
    /// assert_eq!(s.earliest_start(ProcId(0), 0.0, 3.0, false), 6.0);
    /// ```
    pub fn earliest_start(&self, p: ProcId, ready: f64, dur: f64, insertion: bool) -> f64 {
        let tl = &self.timelines[p.index()];
        if !insertion {
            hetsched_trace::counters(|c| c.append_queries += 1);
            return ready.max(self.proc_finish(p));
        }
        let out = match self.cache.get(p.index()) {
            // The cache is absent after deserialization (it is never on the
            // wire) — fall back to the reference scan. When present it must
            // carry the stamp of the *current* mutation epoch (every
            // timeline mutation bumps the epoch and restamps the rebuilt
            // cache), so a stale cache whose timeline merely has the same
            // length again is rejected here, not just by the debug assert.
            // In reference-engine mode (conformance testing) the scan is
            // forced.
            Some(c)
                if c.stamp == self.epoch.get(p.index()).copied().unwrap_or(0)
                    && c.prefix_max.len() == tl.len()
                    && !crate::engine::reference_engine_active() =>
            {
                Self::earliest_start_cached(tl, c, ready, dur)
            }
            _ => {
                hetsched_trace::counters(|c| c.gap_full_scans += 1);
                return Self::earliest_start_scan(tl, ready, dur);
            }
        };
        debug_assert_eq!(
            out.to_bits(),
            Self::earliest_start_scan(tl, ready, dur).to_bits(),
            "cached gap search must be bit-identical to the reference scan"
        );
        out
    }

    /// Reference insertion-policy gap search: linear scan over the whole
    /// timeline. This is the semantic definition the cached variant must
    /// reproduce bit-for-bit; it is kept both as the deserialization
    /// fallback and as the oracle for the conformance/property tests.
    /// The scan touches only the two contiguous time arrays.
    pub(crate) fn earliest_start_scan(tl: &Timeline, ready: f64, dur: f64) -> f64 {
        let mut prev_finish = 0.0f64;
        for (&start, &finish) in tl.starts.iter().zip(&tl.finishes) {
            let candidate = ready.max(prev_finish);
            if candidate + dur <= start + TIME_EPS {
                return candidate;
            }
            prev_finish = prev_finish.max(finish);
        }
        ready.max(prev_finish)
    }

    /// Accelerated gap search. Exactly equivalent to
    /// [`Self::earliest_start_scan`] (same returned bits):
    ///
    /// 1. **Fast reject.** The scan returns early at slot `i` only if
    ///    `fl(candidate + dur) <= fl(start_i + TIME_EPS)` with
    ///    `candidate >= prefix_max[i-1]`, which (allowing for rounding of
    ///    the two additions and the cached subtraction, all bounded by
    ///    `3·scale·2⁻⁵³`) forces `dur <= max_gap_ub + (scale+1)·1e-12`.
    ///    When `dur` exceeds that padded bound no gap can accept it, and
    ///    the scan's fall-through answer is `ready.max(prefix_max.last())`.
    /// 2. **Prefix skip.** For any slot with `fl(start + TIME_EPS) <
    ///    fl(ready + dur)` the early-return test is false regardless of
    ///    `prev_finish` (since `candidate >= ready`), so the scan is
    ///    entered at the first slot where that (monotone) predicate flips,
    ///    seeding `prev_finish` from the prefix maximum — the exact value
    ///    the naive loop would hold there. The `partition_point` binary
    ///    search runs directly on the contiguous `starts` array.
    fn earliest_start_cached(tl: &Timeline, c: &TimelineCache, ready: f64, dur: f64) -> f64 {
        let Some(&last_max) = c.prefix_max.last() else {
            return ready; // empty timeline
        };
        if dur > c.max_gap_ub + (c.scale + 1.0) * 1e-12 {
            hetsched_trace::counters(|k| k.gap_fast_rejects += 1);
            return ready.max(last_max);
        }
        hetsched_trace::counters(|k| k.gap_cached_searches += 1);
        let rd = ready + dur;
        let lo = tl.starts.partition_point(|&s| s + TIME_EPS < rd);
        let mut prev_finish = if lo == 0 { 0.0 } else { c.prefix_max[lo - 1] };
        for (&start, &finish) in tl.starts[lo..].iter().zip(&tl.finishes[lo..]) {
            let candidate = ready.max(prev_finish);
            if candidate + dur <= start + TIME_EPS {
                return candidate;
            }
            prev_finish = prev_finish.max(finish);
        }
        ready.max(prev_finish)
    }

    /// Place the primary copy of `t` on `p` at `[start, start + dur)`.
    ///
    /// # Errors
    /// * [`ScheduleError::InvalidTime`] for non-finite or negative times.
    /// * [`ScheduleError::AlreadyScheduled`] if `t` already has a primary.
    /// * [`ScheduleError::Overlap`] if the interval is occupied.
    pub fn insert(
        &mut self,
        t: TaskId,
        p: ProcId,
        start: f64,
        dur: f64,
    ) -> Result<(), ScheduleError> {
        if self.primary[t.index()].is_some() {
            return Err(ScheduleError::AlreadyScheduled(t));
        }
        if !start.is_finite() || start < 0.0 {
            return Err(ScheduleError::InvalidTime(start));
        }
        if !dur.is_finite() || dur < 0.0 {
            return Err(ScheduleError::InvalidTime(dur));
        }
        self.insert_primary_at(t, p, start, start + dur)
    }

    /// Place the primary copy of `t` on `p` at `[start, finish)`, storing
    /// `finish` **verbatim** instead of recomputing it as `start + dur`.
    ///
    /// This is the replay primitive of schedule repair: re-inserting a slot
    /// from a previously computed schedule must reproduce its stored bits
    /// exactly, and `fl(start + fl(finish - start))` is not guaranteed to
    /// round back to `finish`. [`Schedule::insert`] computes `start + dur`
    /// once and funnels through the same code path, so the two entry points
    /// can never diverge.
    ///
    /// # Errors
    /// As for [`Schedule::insert`], with [`ScheduleError::InvalidTime`] for
    /// a non-finite `finish` or `finish < start`.
    pub fn insert_with_finish(
        &mut self,
        t: TaskId,
        p: ProcId,
        start: f64,
        finish: f64,
    ) -> Result<(), ScheduleError> {
        if self.primary[t.index()].is_some() {
            return Err(ScheduleError::AlreadyScheduled(t));
        }
        if !start.is_finite() || start < 0.0 {
            return Err(ScheduleError::InvalidTime(start));
        }
        if !finish.is_finite() || finish < start {
            return Err(ScheduleError::InvalidTime(finish));
        }
        self.insert_primary_at(t, p, start, finish)
    }

    /// Bulk-replay the primary placements of `tasks` (a rank-order prefix)
    /// from `parent` into this freshly created, empty schedule — the fast
    /// path of schedule repair.
    ///
    /// Equivalent to calling [`Schedule::insert_with_finish`] once per task
    /// in rank order, but the per-processor timelines are assembled in one
    /// pass over the parent's slot lists and each gap-search cache is
    /// rebuilt once at the end — O(slots) total instead of one O(len)
    /// cache rebuild per insertion, which is what makes replaying nearly
    /// the whole schedule cheaper than recomputing it. Each destination
    /// timeline reserves its exact kept-slot count before the copy, so the
    /// bulk replay performs one allocation per array, never a growth
    /// doubling mid-pass.
    ///
    /// The resulting timeline vectors are bit-identical to the insertion
    /// loop's: an insertion position is a `partition_point` over start
    /// times, so the relative order of two replayed slots is a function
    /// only of their start times and of which was inserted first — both
    /// shared with the parent's own construction — and removing the
    /// parent's non-replayed slots (`insert`/`remove` preserve the
    /// relative order of the remaining elements) cannot reorder the
    /// rest. Filtering the parent's timelines therefore reproduces exactly
    /// the vectors the per-insert replay would build.
    ///
    /// On `Err` the schedule is left partially filled; the caller discards
    /// it and falls back to a from-scratch run. Errors: a task listed
    /// twice or already placed, a task without a primary in `parent`, a
    /// duplicate copy of a replayed task, non-finite/negative times, or an
    /// unsorted/overlapping parent timeline.
    pub(crate) fn replay_prefix(&mut self, parent: &Schedule, tasks: &[TaskId]) -> Result<(), ()> {
        debug_assert!(self.trial.is_none(), "replay_prefix runs outside trials");
        debug_assert!(self.timelines.iter().all(Timeline::is_empty));
        let mut keep = vec![false; self.n_tasks];
        for &t in tasks {
            if t.index() >= self.n_tasks || keep[t.index()] || self.primary[t.index()].is_some() {
                return Err(());
            }
            let Some((p, start, finish)) = parent.assignment(t) else {
                return Err(());
            };
            if p.index() >= self.timelines.len()
                || !start.is_finite()
                || start < 0.0
                || !finish.is_finite()
                || finish < start
            {
                return Err(());
            }
            keep[t.index()] = true;
            self.primary[t.index()] = Some((p, start, finish));
            self.copies[t.index()].push((p, finish));
        }
        let mut placed = 0usize;
        for pi in 0..self.timelines.len() {
            if let Some(src) = parent.timelines.get(pi) {
                // Exact per-processor capacity up front: count the kept
                // slots once (a cheap pass over the task-id array), then
                // fill — the copy loop below can never reallocate.
                let kept = src
                    .tasks
                    .iter()
                    .filter(|t| t.index() < keep.len() && keep[t.index()])
                    .count();
                let tl = &mut self.timelines[pi];
                tl.reserve_exact(kept);
                for s in src.iter() {
                    if s.task.index() >= keep.len() || !keep[s.task.index()] {
                        continue;
                    }
                    if s.duplicate {
                        return Err(());
                    }
                    if let Some(prev) = tl.last() {
                        // The kept subset must stay sorted by start with at
                        // most boundary-coincidence overlap (the insertion
                        // path's conflict formula, see `insert_slot_at`).
                        if s.start < prev.start
                            || (prev.start < s.finish - TIME_EPS
                                && s.start < prev.finish - TIME_EPS)
                        {
                            return Err(());
                        }
                    }
                    tl.push(s);
                    placed += 1;
                }
            }
            let ep = self.bump_epoch(pi);
            if let Some(c) = self.cache.get_mut(pi) {
                c.rebuild(&self.timelines[pi]);
                c.stamp = ep;
                debug_assert_eq!(
                    c.stamp, self.epoch[pi],
                    "rebuilt gap cache must carry the live mutation epoch"
                );
            }
        }
        // Catches a parent whose timeline slots disagree with its primary
        // table (possible only for hand-built or deserialized schedules).
        if placed != tasks.len() {
            return Err(());
        }
        hetsched_trace::counters(|c| c.timeline_inserts += tasks.len() as u64);
        Ok(())
    }

    fn insert_primary_at(
        &mut self,
        t: TaskId,
        p: ProcId,
        start: f64,
        finish: f64,
    ) -> Result<(), ScheduleError> {
        self.insert_slot_at(t, p, start, finish, false)?;
        self.primary[t.index()] = Some((p, start, finish));
        if let Some(log) = &mut self.trial {
            log.push(TrialOp::Primary { task: t });
        }
        Ok(())
    }

    /// Place a *duplicate* copy of `t` on `p`.
    ///
    /// Duplicates may be inserted before or after the primary (schedulers
    /// typically duplicate parents that are already placed, but the DSH
    /// family also pre-duplicates). A task may have at most one copy per
    /// processor.
    ///
    /// # Errors
    /// * [`ScheduleError::BadDuplicate`] if `t` already has a copy on `p`.
    /// * [`ScheduleError::InvalidTime`] / [`ScheduleError::Overlap`] as for
    ///   [`Schedule::insert`].
    pub fn insert_duplicate(
        &mut self,
        t: TaskId,
        p: ProcId,
        start: f64,
        dur: f64,
    ) -> Result<(), ScheduleError> {
        if self.finish_on(t, p).is_some() {
            return Err(ScheduleError::BadDuplicate(t));
        }
        if !start.is_finite() || start < 0.0 {
            return Err(ScheduleError::InvalidTime(start));
        }
        if !dur.is_finite() || dur < 0.0 {
            return Err(ScheduleError::InvalidTime(dur));
        }
        self.insert_slot_at(t, p, start, start + dur, true)
    }

    fn insert_slot_at(
        &mut self,
        t: TaskId,
        p: ProcId,
        start: f64,
        finish: f64,
        duplicate: bool,
    ) -> Result<(), ScheduleError> {
        let tl = &mut self.timelines[p.index()];
        // Two intervals conflict iff their intersection has positive
        // measure; boundary coincidence (and zero-duration slots at
        // boundaries) is allowed. A zero-duration slot strictly inside a
        // busy interval still conflicts under this formula.
        let overlaps = |a_start: f64, a_finish: f64, b_start: f64, b_finish: f64| {
            a_start < b_finish - TIME_EPS && b_start < a_finish - TIME_EPS
        };
        // position of the first slot starting at or after `start` — a
        // binary search over the contiguous start-time array
        let pos = tl.starts.partition_point(|&s| s < start);
        if pos > 0 && overlaps(start, finish, tl.starts[pos - 1], tl.finishes[pos - 1]) {
            return Err(ScheduleError::Overlap {
                proc: p,
                existing: tl.tasks[pos - 1],
            });
        }
        for k in pos..tl.len() {
            if tl.starts[k] >= finish - TIME_EPS {
                break;
            }
            if overlaps(start, finish, tl.starts[k], tl.finishes[k]) {
                return Err(ScheduleError::Overlap {
                    proc: p,
                    existing: tl.tasks[k],
                });
            }
        }
        tl.insert(
            pos,
            Slot {
                task: t,
                start,
                finish,
                duplicate,
            },
        );
        // Keep the gap-search cache in lockstep. A mid-timeline insert
        // invalidates every prefix maximum (and gap) at or after `pos`, and
        // the `insert` above is already O(len), so a full O(len) rebuild
        // keeps the same asymptotics with straight-line code. The rebuilt
        // cache is stamped with the new mutation epoch; schedules without a
        // cache (deserialized) stay cacheless — queries scan.
        let ep = self.bump_epoch(p.index());
        if let Some(c) = self.cache.get_mut(p.index()) {
            c.rebuild(&self.timelines[p.index()]);
            c.stamp = ep;
        }
        self.copies[t.index()].push((p, finish));
        if let Some(log) = &mut self.trial {
            log.push(TrialOp::Slot {
                proc: p,
                pos,
                task: t,
            });
        }
        hetsched_trace::counters(|c| c.timeline_inserts += 1);
        Ok(())
    }

    /// Start recording an undo log so subsequent insertions can be undone
    /// with [`Schedule::rollback_trial`].
    ///
    /// This is the allocation-free alternative to cloning the whole
    /// schedule per speculative candidate: the duplication-trial loops of
    /// DUP-HEFT and ILS-D probe a placement (primary insert plus any
    /// parent duplicates), read the resulting finish time, and roll the
    /// probe back — touching only the slots the probe created.
    ///
    /// # Panics
    /// Panics if a trial is already active (trials do not nest).
    pub fn begin_trial(&mut self) {
        assert!(self.trial.is_none(), "schedule trials do not nest");
        self.trial = Some(Vec::new());
    }

    /// Undo every mutation since [`Schedule::begin_trial`], restoring the
    /// schedule bit-for-bit (timelines, assignments, copies, and the
    /// gap-search cache).
    ///
    /// # Panics
    /// Panics if no trial is active.
    pub fn rollback_trial(&mut self) {
        let log = self.trial.take().expect("no active trial to roll back");
        // Reverse order makes each recorded insertion index valid at the
        // moment it is undone, and makes `copies.pop()` remove exactly the
        // entry its op pushed.
        for op in log.into_iter().rev() {
            match op {
                TrialOp::Primary { task } => {
                    self.primary[task.index()] = None;
                }
                TrialOp::Slot { proc, pos, task } => {
                    let removed = self.timelines[proc.index()].remove(pos);
                    debug_assert_eq!(removed.task, task);
                    self.copies[task.index()].pop();
                    // A rollback is a timeline mutation like any other: bump
                    // the epoch and restamp the rebuilt cache, so a cache
                    // from before the trial can never be accepted against
                    // the restored (same-length, different-content)
                    // timeline. Deserialized (cacheless) schedules stay
                    // cacheless.
                    let ep = self.bump_epoch(proc.index());
                    if let Some(c) = self.cache.get_mut(proc.index()) {
                        c.rebuild(&self.timelines[proc.index()]);
                        c.stamp = ep;
                    }
                }
            }
        }
    }

    /// Keep every mutation since [`Schedule::begin_trial`] and drop the
    /// undo log.
    ///
    /// # Panics
    /// Panics if no trial is active.
    pub fn commit_trial(&mut self) {
        assert!(self.trial.take().is_some(), "no active trial to commit");
    }

    /// Render the schedule as a plain-text Gantt chart (one line per
    /// processor), for examples and debugging.
    pub fn render_gantt(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "makespan = {:.4}", self.makespan());
        for (pi, tl) in self.timelines.iter().enumerate() {
            let _ = write!(s, "p{pi}: ");
            for slot in tl.iter() {
                let mark = if slot.duplicate { "*" } else { "" };
                let _ = write!(
                    s,
                    "[{:.2}..{:.2} {}{}] ",
                    slot.start, slot.finish, slot.task, mark
                );
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_and_queries() {
        let mut s = Schedule::new(3, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 3.0, 1.0).unwrap();
        s.insert(TaskId(2), ProcId(1), 0.5, 4.0).unwrap();
        assert_eq!(s.makespan(), 4.5);
        assert_eq!(s.assignment(TaskId(1)), Some((ProcId(0), 3.0, 4.0)));
        assert_eq!(s.task_finish(TaskId(2)), Some(4.5));
        assert_eq!(s.task_proc(TaskId(0)), Some(ProcId(0)));
        assert!(s.is_complete());
        assert_eq!(s.num_scheduled(), 3);
        assert_eq!(s.procs_used(), 2);
        assert_eq!(s.busy_time(), 7.0);
        assert!((s.idle_time() - (2.0 * 4.5 - 7.0)).abs() < 1e-12);
    }

    #[test]
    fn overlap_detection() {
        let mut s = Schedule::new(3, 1);
        s.insert(TaskId(0), ProcId(0), 1.0, 2.0).unwrap();
        // overlapping from the left
        let e = s.insert(TaskId(1), ProcId(0), 0.0, 1.5).unwrap_err();
        assert!(matches!(e, ScheduleError::Overlap { .. }));
        // overlapping from the right
        let e = s.insert(TaskId(1), ProcId(0), 2.5, 1.0).unwrap_err();
        assert!(matches!(e, ScheduleError::Overlap { .. }));
        // fully inside
        let e = s.insert(TaskId(1), ProcId(0), 1.5, 0.5).unwrap_err();
        assert!(matches!(e, ScheduleError::Overlap { .. }));
        // touching boundaries is fine
        s.insert(TaskId(1), ProcId(0), 3.0, 1.0).unwrap();
        s.insert(TaskId(2), ProcId(0), 0.0, 1.0).unwrap();
    }

    #[test]
    fn double_schedule_rejected() {
        let mut s = Schedule::new(2, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 1.0).unwrap();
        assert_eq!(
            s.insert(TaskId(0), ProcId(1), 5.0, 1.0).unwrap_err(),
            ScheduleError::AlreadyScheduled(TaskId(0))
        );
    }

    #[test]
    fn invalid_times_rejected() {
        let mut s = Schedule::new(1, 1);
        assert!(matches!(
            s.insert(TaskId(0), ProcId(0), -1.0, 1.0).unwrap_err(),
            ScheduleError::InvalidTime(_)
        ));
        assert!(matches!(
            s.insert(TaskId(0), ProcId(0), 0.0, f64::NAN).unwrap_err(),
            ScheduleError::InvalidTime(_)
        ));
    }

    #[test]
    fn earliest_start_append_policy() {
        let mut s = Schedule::new(3, 1);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 5.0, 1.0).unwrap();
        // append ignores the [2, 5) gap
        assert_eq!(s.earliest_start(ProcId(0), 0.0, 1.0, false), 6.0);
        assert_eq!(s.earliest_start(ProcId(0), 8.0, 1.0, false), 8.0);
    }

    #[test]
    fn earliest_start_insertion_policy_finds_gap() {
        let mut s = Schedule::new(4, 1);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 5.0, 1.0).unwrap();
        // fits the [2, 5) gap
        assert_eq!(s.earliest_start(ProcId(0), 0.0, 3.0, true), 2.0);
        // too long for the gap -> end of timeline
        assert_eq!(s.earliest_start(ProcId(0), 0.0, 3.5, true), 6.0);
        // ready inside the gap
        assert_eq!(s.earliest_start(ProcId(0), 2.5, 2.0, true), 2.5);
        // ready after everything
        assert_eq!(s.earliest_start(ProcId(0), 10.0, 1.0, true), 10.0);
        // empty processor starts at ready
        assert_eq!(
            Schedule::new(1, 1).earliest_start(ProcId(0), 1.5, 1.0, true),
            1.5
        );
    }

    #[test]
    fn earliest_start_gap_exact_fit() {
        let mut s = Schedule::new(3, 1);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 4.0, 1.0).unwrap();
        // exactly 2.0-long gap
        assert_eq!(s.earliest_start(ProcId(0), 0.0, 2.0, true), 2.0);
        s.insert(TaskId(2), ProcId(0), 2.0, 2.0).unwrap();
    }

    #[test]
    fn duplicates_tracked_separately() {
        let mut s = Schedule::new(2, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert_duplicate(TaskId(0), ProcId(1), 1.0, 2.5).unwrap();
        s.insert(TaskId(1), ProcId(1), 3.5, 1.0).unwrap();
        assert_eq!(s.num_duplicates(), 1);
        assert_eq!(s.finish_on(TaskId(0), ProcId(0)), Some(2.0));
        assert_eq!(s.finish_on(TaskId(0), ProcId(1)), Some(3.5));
        assert_eq!(s.copies(TaskId(0)).len(), 2);
        // primary finish unchanged by the duplicate
        assert_eq!(s.task_finish(TaskId(0)), Some(2.0));
        // duplicate on the same proc rejected
        assert_eq!(
            s.insert_duplicate(TaskId(0), ProcId(1), 6.0, 1.0)
                .unwrap_err(),
            ScheduleError::BadDuplicate(TaskId(0))
        );
        // makespan counts primaries only
        assert_eq!(s.makespan(), 4.5);
    }

    #[test]
    fn zero_duration_slots_allowed() {
        // virtual entry/exit tasks have zero cost
        let mut s = Schedule::new(2, 1);
        s.insert(TaskId(0), ProcId(0), 1.0, 0.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 1.0, 2.0).unwrap();
        assert_eq!(s.makespan(), 3.0);
    }

    #[test]
    fn timeline_view_and_soa_slices_agree() {
        // The Slot-view API (get/iter/last) and the raw SoA slices expose
        // the same data in the same order.
        let mut s = Schedule::new(3, 1);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(2), ProcId(0), 5.0, 1.0).unwrap();
        s.insert_duplicate(TaskId(1), ProcId(0), 3.0, 1.0).unwrap();
        let tl = s.slots(ProcId(0));
        assert_eq!(tl.len(), 3);
        assert!(!tl.is_empty());
        assert_eq!(tl.starts(), &[0.0, 3.0, 5.0]);
        assert_eq!(tl.finishes(), &[2.0, 4.0, 6.0]);
        assert_eq!(tl.tasks(), &[TaskId(0), TaskId(1), TaskId(2)]);
        for (k, slot) in tl.iter().enumerate() {
            assert_eq!(slot, tl.get(k));
            assert_eq!(slot.start, tl.starts()[k]);
            assert_eq!(slot.finish, tl.finishes()[k]);
            assert_eq!(slot.task, tl.tasks()[k]);
        }
        assert_eq!(tl.iter().len(), 3);
        assert_eq!(tl.last(), Some(tl.get(2)));
        assert!(tl.get(1).duplicate);
        // IntoIterator for &Timeline (the `for slot in sched.slots(p)` form)
        let visited: Vec<Slot> = tl.into_iter().collect();
        assert_eq!(visited, tl.iter().collect::<Vec<_>>());
    }

    #[test]
    fn timeline_wire_format_is_the_slot_array() {
        // The SoA layout must serialize exactly as the old Vec<Slot> did:
        // an array of {task, start, finish, duplicate} objects.
        let mut s = Schedule::new(2, 1);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert_duplicate(TaskId(1), ProcId(0), 3.0, 1.5).unwrap();
        s.insert(TaskId(1), ProcId(0), 6.0, 1.0).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert!(
            json.contains(r#""timelines":[[{"task":0,"start":0.0,"finish":2.0,"duplicate":false}"#),
            "{json}"
        );
        // round trip restores every slot (and the ephemeral cache/epoch
        // stay off the wire)
        assert!(!json.contains("prefix_max"), "{json}");
        assert!(!json.contains("epoch"), "{json}");
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back.slots(ProcId(0)).len(), 3);
        for k in 0..3 {
            assert_eq!(back.slots(ProcId(0)).get(k), s.slots(ProcId(0)).get(k));
        }
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn trial_rollback_restores_the_schedule_bit_for_bit() {
        let mut s = Schedule::new(4, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 5.0, 1.0).unwrap();
        let before = serde_json::to_string(&s).unwrap();
        let start_before = s.earliest_start(ProcId(0), 0.0, 3.0, true);

        s.begin_trial();
        // mid-timeline insert (fills the [2,5) gap), a duplicate, and a
        // second primary on the other processor
        s.insert(TaskId(2), ProcId(0), 2.0, 3.0).unwrap();
        s.insert_duplicate(TaskId(0), ProcId(1), 0.0, 2.5).unwrap();
        s.insert(TaskId(3), ProcId(1), 2.5, 1.0).unwrap();
        assert_eq!(s.num_scheduled(), 4);
        s.rollback_trial();

        assert_eq!(serde_json::to_string(&s).unwrap(), before);
        assert_eq!(s.num_scheduled(), 2);
        assert_eq!(s.num_duplicates(), 0);
        assert!(s.copies(TaskId(2)).is_empty());
        // gap-search cache restored in lockstep too
        assert_eq!(
            s.earliest_start(ProcId(0), 0.0, 3.0, true).to_bits(),
            start_before.to_bits()
        );
        // the schedule is fully usable afterwards
        s.insert(TaskId(2), ProcId(0), 2.0, 3.0).unwrap();
    }

    #[test]
    fn trial_round_trip_to_equal_length_keeps_gap_search_fresh() {
        // Round-trip a trial back to a timeline of the *same length* as the
        // trial's peak, with different slot contents: the gap search must
        // answer from the live timeline, never from a cache built during
        // the trial.
        let mut s = Schedule::new(4, 1);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 6.0, 1.0).unwrap();

        s.begin_trial();
        // fills the [2, 6) gap — length 3 with the gap occupied
        s.insert(TaskId(2), ProcId(0), 2.0, 4.0).unwrap();
        assert_eq!(s.earliest_start(ProcId(0), 0.0, 3.0, true), 7.0);
        s.rollback_trial();

        // back to length 3, but now with the gap open and changed finishes
        s.insert(TaskId(3), ProcId(0), 9.0, 2.0).unwrap();
        let got = s.earliest_start(ProcId(0), 0.0, 3.0, true);
        let want = Schedule::earliest_start_scan(s.slots(ProcId(0)), 0.0, 3.0);
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(got, 2.0, "the [2, 6) gap must be rediscovered");
    }

    #[test]
    fn stale_cache_with_matching_length_is_rejected_by_epoch_stamp() {
        let mut s = Schedule::new(4, 1);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 6.0, 1.0).unwrap();
        // Fabricate the release-mode hazard directly: a cache whose
        // prefix-max has the right *length* but stale contents (it claims
        // the timeline is gap-free) and an outdated stamp. Length-only
        // validation would accept it and fast-reject the [2, 6) gap.
        s.cache[0] = TimelineCache {
            prefix_max: vec![7.0, 7.0],
            max_gap_ub: 0.0,
            scale: 7.0,
            stamp: s.epoch[0].wrapping_sub(1),
        };
        assert_eq!(s.earliest_start(ProcId(0), 0.0, 3.0, true), 2.0);
        // A fresh mutation restamps the cache; the fast path works again.
        s.insert(TaskId(2), ProcId(0), 9.0, 1.0).unwrap();
        assert_eq!(s.cache[0].stamp, s.epoch[0]);
        assert_eq!(s.earliest_start(ProcId(0), 0.0, 3.0, true), 2.0);
    }

    #[test]
    fn insert_with_finish_stores_the_finish_verbatim() {
        let mut s = Schedule::new(3, 1);
        // A (start, finish) pair where recomputing finish as
        // `start + (finish - start)` need not round back to the same bits;
        // the replay primitive must store the given finish untouched.
        let (start, finish) = (0.1, 0.30000000000000004);
        s.insert_with_finish(TaskId(0), ProcId(0), start, finish)
            .unwrap();
        let (p, got_start, got_finish) = s.assignment(TaskId(0)).unwrap();
        assert_eq!(p, ProcId(0));
        assert_eq!(got_start.to_bits(), start.to_bits());
        assert_eq!(got_finish.to_bits(), finish.to_bits());
        assert_eq!(s.slots(ProcId(0)).get(0).finish.to_bits(), finish.to_bits());

        // error paths mirror `insert`
        assert_eq!(
            s.insert_with_finish(TaskId(0), ProcId(0), 1.0, 2.0)
                .unwrap_err(),
            ScheduleError::AlreadyScheduled(TaskId(0))
        );
        assert!(matches!(
            s.insert_with_finish(TaskId(1), ProcId(0), 2.0, 1.0)
                .unwrap_err(),
            ScheduleError::InvalidTime(_)
        ));
        assert!(matches!(
            s.insert_with_finish(TaskId(1), ProcId(0), -1.0, 1.0)
                .unwrap_err(),
            ScheduleError::InvalidTime(_)
        ));
        // zero-length and normal inserts still compose
        s.insert_with_finish(TaskId(1), ProcId(0), finish, finish)
            .unwrap();
        s.insert(TaskId(2), ProcId(0), 1.0, 1.0).unwrap();
    }

    #[test]
    fn trial_commit_keeps_mutations() {
        let mut s = Schedule::new(2, 1);
        s.begin_trial();
        s.insert(TaskId(0), ProcId(0), 0.0, 1.0).unwrap();
        s.commit_trial();
        assert_eq!(s.task_finish(TaskId(0)), Some(1.0));
        // a later rollback must not see the committed ops
        s.begin_trial();
        s.insert(TaskId(1), ProcId(0), 1.0, 1.0).unwrap();
        s.rollback_trial();
        assert_eq!(s.task_finish(TaskId(0)), Some(1.0));
        assert_eq!(s.task_finish(TaskId(1)), None);
    }

    #[test]
    #[should_panic(expected = "trials do not nest")]
    fn trials_do_not_nest() {
        let mut s = Schedule::new(1, 1);
        s.begin_trial();
        s.begin_trial();
    }

    #[test]
    fn gantt_rendering_mentions_everything() {
        let mut s = Schedule::new(2, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 1.0).unwrap();
        s.insert(TaskId(1), ProcId(1), 1.0, 1.0).unwrap();
        s.insert_duplicate(TaskId(0), ProcId(1), 0.0, 1.0).unwrap();
        let g = s.render_gantt();
        assert!(g.contains("makespan = 2.0000"));
        assert!(g.contains("p0:"));
        assert!(g.contains("t0*"), "duplicate marked with *: {g}");
    }
}
