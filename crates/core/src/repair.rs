//! Incremental schedule repair for the EFT family.
//!
//! [`Heft::repair`] and [`Hoft::repair`] turn a parent schedule plus a
//! patched problem (see [`crate::delta::Patched`]) into the schedule a
//! from-scratch run would produce on the patched problem, replaying the
//! parent's leading placements instead of recomputing them.
//!
//! # The replay-prefix rule
//!
//! List scheduling is a fold over the rank order: the placement of the
//! task at position `i` depends only on (a) the schedule state built by
//! positions `0..i` and (b) that task's own placement inputs — its ETC
//! row, its incoming edges' data volumes, the network, and (for HOFT) its
//! OFT row. Let `k` be the first position where the patched rank order
//! diverges from the parent's *or* the task at that position is dirty
//! under the algorithm's own input set. By induction, every placement
//! before `k` is bit-identical to the parent's: same task at the same
//! position, clean inputs, and (inductively) identical prior state. So
//! the repair replays the parent's `0..k` placements verbatim — copying
//! each recorded slot as stored, never re-deriving a finish time from a
//! start/duration round trip — and re-runs the ordinary placement loop
//! from `k`. The result cannot differ from a fresh run in any bit.
//!
//! The replay is a single bulk pass (`Schedule::replay_prefix`): the
//! parent's per-processor slot lists are filtered down to the replayed
//! prefix — provably the same vectors a one-at-a-time
//! [`Schedule::insert_with_finish`](crate::Schedule::insert_with_finish)
//! loop would build — and each gap-search cache is rebuilt once, so
//! replaying `k` placements costs O(slots) instead of one O(len) cache
//! rebuild per insertion. If any replayed placement fails validation, the
//! partially built schedule is discarded and the repair degrades to a
//! plain from-scratch run — still bit-identical, just not incremental.
//!
//! The shape checks, the split-point computation, and the replay-resume
//! scaffolding are shared between the algorithms ([`replay_viable`],
//! [`split_point`], [`replay_then`] below); each algorithm contributes
//! only its priority computation, its dirty predicate, and its placement
//! loop.

use crate::algorithms::{Heft, Hoft};
use crate::delta::DirtyInfo;
use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::rank::sort_by_priority_desc;
use crate::schedule::Schedule;
use crate::Scheduler;
use hetsched_dag::TaskId;

/// How a repair run spent its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairStats {
    /// Leading rank-order placements replayed verbatim from the parent.
    pub replayed: usize,
    /// Tasks re-placed by the ordinary EFT loop.
    pub rescheduled: usize,
    /// Whether the repair fell back to a full from-scratch run (structural
    /// delta, shape mismatch, or an unreplayable parent schedule).
    pub fresh: bool,
}

/// A repair-capable scheduler from the [`repairable`] registry: one of
/// the EFT-family list schedulers whose from-scratch run is a replayable
/// fold over a priority order.
#[derive(Debug, Clone, Copy)]
pub enum RepairScheduler {
    /// HEFT (with or without gap insertion), repaired by
    /// [`Heft::repair`].
    Heft(Heft),
    /// HOFT, repaired by [`Hoft::repair`].
    Hoft(Hoft),
}

impl RepairScheduler {
    /// Repair-dispatch: schedule the patched problem `inst`, replaying the
    /// parent's unaffected leading placements. See [`Heft::repair`] for
    /// the contract; every variant honors it bit for bit.
    pub fn repair(
        &self,
        inst: &ProblemInstance<'_>,
        dirty: &DirtyInfo,
        parent_inst: &ProblemInstance<'_>,
        parent: &Schedule,
    ) -> (Schedule, RepairStats) {
        match self {
            RepairScheduler::Heft(h) => h.repair(inst, dirty, parent_inst, parent),
            RepairScheduler::Hoft(h) => h.repair(inst, dirty, parent_inst, parent),
        }
    }
}

/// The repair-capable scheduler registered under `name`, if any. Repair
/// replays placements through a plain list-scheduling fold, so only the
/// algorithms whose from-scratch run *is* that loop qualify.
pub fn repairable(name: &str) -> Option<RepairScheduler> {
    match name {
        "HEFT" => Some(RepairScheduler::Heft(Heft::new())),
        "HEFT-NI" => Some(RepairScheduler::Heft(Heft::no_insertion())),
        "HOFT" => Some(RepairScheduler::Hoft(Hoft)),
        _ => None,
    }
}

/// Shared shape preconditions of every replay-prefix repair: the parent
/// schedule must cover the same task/processor counts as the patched
/// instance, be complete, and carry no duplicates (replay copies slots
/// verbatim; a duplicate-bearing parent was not produced by a plain list
/// fold).
fn replay_viable(inst: &ProblemInstance<'_>, parent: &Schedule) -> bool {
    parent.num_tasks() == inst.dag().num_tasks()
        && parent.num_procs() == inst.sys().num_procs()
        && parent.num_duplicates() == 0
        && parent.is_complete()
}

/// First rank-order position that cannot be replayed: the orders diverge
/// or the task at that position has dirty placement inputs. Positions
/// before the split are bit-identical by the replay-prefix induction.
fn split_point(
    order_q: &[TaskId],
    order_p: &[TaskId],
    mut is_dirty: impl FnMut(TaskId) -> bool,
) -> usize {
    order_q
        .iter()
        .zip(order_p.iter())
        .position(|(&q, &p)| q != p || is_dirty(q))
        .unwrap_or(order_q.len())
}

/// Replay the parent's leading `k` placements into a fresh schedule and
/// hand it to `resume` for the remaining positions. `None` means a
/// replayed placement failed validation and the caller must fall back to
/// a from-scratch run.
fn replay_then(
    inst: &ProblemInstance<'_>,
    parent: &Schedule,
    order_q: &[TaskId],
    k: usize,
    resume: impl FnOnce(usize, &mut Schedule),
) -> Option<(Schedule, RepairStats)> {
    let n = inst.dag().num_tasks();
    let mut sched = Schedule::new(n, inst.sys().num_procs());
    if k > 0 {
        let _span = hetsched_trace::span("replay");
        if sched.replay_prefix(parent, &order_q[..k]).is_err() {
            return None;
        }
    }
    resume(k, &mut sched);
    Some((
        sched,
        RepairStats {
            replayed: k,
            rescheduled: n - k,
            fresh: false,
        },
    ))
}

impl Heft {
    /// Schedule the patched problem `inst` (with `dirty` as reported by
    /// [`ProblemInstance::apply_deltas`] — see [`crate::delta::Patched`]),
    /// replaying the
    /// parent's unaffected leading placements and re-running list
    /// scheduling only from the first rank-order position the deltas
    /// touched.
    ///
    /// `parent` must be the schedule this same configuration produced on
    /// `parent_inst` (the instance `inst` was patched from); the result is
    /// then bit-identical to `self.schedule_instance(inst)` — the
    /// non-negotiable contract, enforced by the cross-crate delta-sequence
    /// proptest. When the preconditions do not hold (shape changed, parent
    /// incomplete or carrying duplicates), the repair falls back to
    /// exactly that from-scratch call.
    pub fn repair(
        &self,
        inst: &ProblemInstance<'_>,
        dirty: &DirtyInfo,
        parent_inst: &ProblemInstance<'_>,
        parent: &Schedule,
    ) -> (Schedule, RepairStats) {
        let n = inst.dag().num_tasks();
        let fresh = || {
            (
                self.schedule_instance(inst),
                RepairStats {
                    replayed: 0,
                    rescheduled: n,
                    fresh: true,
                },
            )
        };

        let eft_dirty = match dirty {
            DirtyInfo::Structural => return fresh(),
            DirtyInfo::Tasks { eft_dirty } => eft_dirty,
        };
        if !replay_viable(inst, parent) {
            return fresh();
        }

        // The patched rank order — computed from the seeded memo, hence
        // exactly what a fresh run would use — against the parent's.
        let rank_q = {
            let _span = hetsched_trace::span("rank");
            inst.upward_rank(self.agg)
        };
        let order_q = sort_by_priority_desc(&rank_q);
        let order_p = sort_by_priority_desc(&parent_inst.upward_rank(self.agg));
        let k = split_point(&order_q, &order_p, |t| eft_dirty[t.index()]);

        match replay_then(inst, parent, &order_q, k, |from, sched| {
            self.run_eft_loop(inst, &rank_q, &order_q, from, sched);
        }) {
            Some(done) => done,
            None => fresh(),
        }
    }
}

impl Hoft {
    /// HOFT's replay-prefix repair: identical scaffolding to
    /// [`Heft::repair`], with two HOFT-specific ingredients. Priorities
    /// (and thus the orders compared for divergence) come from the OFT
    /// table, and a task counts as dirty when its EFT inputs changed *or*
    /// its OFT row moved — the lookahead scores candidate processors with
    /// that row, so a row change can flip a placement even when the plain
    /// EFT inputs are untouched. Rows are compared bitwise; any
    /// recomputation drift would break bit-identity, so no tolerance is
    /// applied.
    pub fn repair(
        &self,
        inst: &ProblemInstance<'_>,
        dirty: &DirtyInfo,
        parent_inst: &ProblemInstance<'_>,
        parent: &Schedule,
    ) -> (Schedule, RepairStats) {
        let n = inst.dag().num_tasks();
        let fresh = || {
            (
                self.schedule_instance(inst),
                RepairStats {
                    replayed: 0,
                    rescheduled: n,
                    fresh: true,
                },
            )
        };

        let eft_dirty = match dirty {
            DirtyInfo::Structural => return fresh(),
            DirtyInfo::Tasks { eft_dirty } => eft_dirty,
        };
        if !replay_viable(inst, parent) {
            return fresh();
        }

        let np = inst.sys().num_procs();
        let (oft_q, rank_q) = {
            let _span = hetsched_trace::span("rank");
            let oft = Hoft::oft_table(inst.dag(), inst.sys());
            let rank = Hoft::priorities(inst.dag(), np, &oft);
            (oft, rank)
        };
        let oft_p = Hoft::oft_table(parent_inst.dag(), parent_inst.sys());
        let rank_p = Hoft::priorities(parent_inst.dag(), np, &oft_p);
        let order_q = sort_by_priority_desc(&rank_q);
        let order_p = sort_by_priority_desc(&rank_p);

        let row_dirty = |t: TaskId| {
            let r = t.index() * np;
            oft_q[r..r + np]
                .iter()
                .zip(&oft_p[r..r + np])
                .any(|(a, b)| a.to_bits() != b.to_bits())
        };
        let k = split_point(&order_q, &order_p, |t| eft_dirty[t.index()] || row_dirty(t));

        match replay_then(inst, parent, &order_q, k, |from, sched| {
            let mut ctx = EftContext::new(inst.sys());
            self.place_from(inst, &oft_q, &rank_q, &order_q, from, sched, &mut ctx);
        }) {
            Some(done) => done,
            None => fresh(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::Delta;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::TaskId;
    use hetsched_platform::{EtcMatrix, Network, ProcId, System};

    fn instance() -> ProblemInstance<'static> {
        let dag = dag_from_edges(
            &[2.0, 3.0, 3.0, 2.0, 1.0],
            &[
                (0, 1, 4.0),
                (0, 2, 4.0),
                (1, 3, 4.0),
                (2, 3, 4.0),
                (3, 4, 2.0),
            ],
        )
        .unwrap();
        let etc = EtcMatrix::from_fn(5, 3, |t, p| 1.0 + ((t.index() * 3 + p.index()) % 7) as f64);
        let sys = System::new(etc, Network::uniform(3, 0.25, 2.0));
        ProblemInstance::new(dag, sys)
    }

    fn digest(s: &Schedule) -> Vec<(u32, u32, u64, u64)> {
        (0..s.num_procs())
            .flat_map(|p| {
                s.slots(ProcId::from_index(p)).iter().map(move |slot| {
                    (
                        p as u32,
                        slot.task.0,
                        slot.start.to_bits(),
                        slot.finish.to_bits(),
                    )
                })
            })
            .collect()
    }

    fn weight_deltas() -> [Vec<Delta>; 3] {
        [
            vec![Delta::EtcEntry {
                task: TaskId(3),
                proc: ProcId(1),
                time: 20.0,
            }],
            vec![Delta::EdgeData {
                src: TaskId(2),
                dst: TaskId(3),
                data: 9.0,
            }],
            vec![Delta::TaskWeight {
                task: TaskId(0),
                weight: 5.0,
            }],
        ]
    }

    #[test]
    fn repair_matches_fresh_bit_for_bit() {
        let parent_inst = instance();
        let heft = Heft::new();
        let parent = heft.schedule_instance(&parent_inst);
        for deltas in weight_deltas() {
            let patched = parent_inst.apply_deltas(&deltas).unwrap();
            let (repaired, stats) =
                heft.repair(&patched.instance, &patched.dirty, &parent_inst, &parent);
            let fresh = heft.schedule_instance(&patched.instance);
            assert_eq!(digest(&repaired), digest(&fresh), "deltas {deltas:?}");
            assert!(!stats.fresh, "weight-level deltas must not fall back");
            assert_eq!(stats.replayed + stats.rescheduled, 5);
        }
    }

    #[test]
    fn hoft_repair_matches_fresh_bit_for_bit() {
        let parent_inst = instance();
        let hoft = Hoft;
        let parent = hoft.schedule_instance(&parent_inst);
        for deltas in weight_deltas() {
            let patched = parent_inst.apply_deltas(&deltas).unwrap();
            let (repaired, stats) =
                hoft.repair(&patched.instance, &patched.dirty, &parent_inst, &parent);
            let fresh = hoft.schedule_instance(&patched.instance);
            assert_eq!(digest(&repaired), digest(&fresh), "deltas {deltas:?}");
            assert!(!stats.fresh, "weight-level deltas must not fall back");
            assert_eq!(stats.replayed + stats.rescheduled, 5);
        }
        // A structural delta still falls back to an identical fresh run.
        let patched = parent_inst
            .apply_deltas(&[Delta::RemoveProc { proc: ProcId(2) }])
            .unwrap();
        let (repaired, stats) =
            hoft.repair(&patched.instance, &patched.dirty, &parent_inst, &parent);
        assert!(stats.fresh);
        assert_eq!(
            digest(&repaired),
            digest(&hoft.schedule_instance(&patched.instance))
        );
    }

    #[test]
    fn hoft_dirty_oft_row_is_not_replayed_past() {
        // An ETC delta on the *exit* task leaves every other task's EFT
        // inputs clean but moves the OFT rows of all its ancestors — the
        // repair must treat those as dirty rather than replay them, and
        // still land bit-identical to fresh.
        let parent_inst = instance();
        let hoft = Hoft;
        let parent = hoft.schedule_instance(&parent_inst);
        // Proc 2 is the exit task's fastest processor, so every OFT min
        // routes through it; slowing it moves every ancestor's row.
        let patched = parent_inst
            .apply_deltas(&[Delta::EtcEntry {
                task: TaskId(4),
                proc: ProcId(2),
                time: 40.0,
            }])
            .unwrap();
        let (repaired, stats) =
            hoft.repair(&patched.instance, &patched.dirty, &parent_inst, &parent);
        let fresh = hoft.schedule_instance(&patched.instance);
        assert_eq!(digest(&repaired), digest(&fresh));
        assert!(!stats.fresh);
        // every ancestor's OFT row changed, so nothing can be replayed
        assert_eq!(stats.replayed, 0, "stats: {stats:?}");
    }

    #[test]
    fn clean_delta_replays_everything() {
        let parent_inst = instance();
        let heft = Heft::new();
        let parent = heft.schedule_instance(&parent_inst);
        let patched = parent_inst
            .apply_deltas(&[Delta::TaskWeight {
                task: TaskId(4),
                weight: 1.5,
            }])
            .unwrap();
        let (repaired, stats) =
            heft.repair(&patched.instance, &patched.dirty, &parent_inst, &parent);
        assert_eq!(stats.replayed, 5);
        assert_eq!(stats.rescheduled, 0);
        assert_eq!(digest(&repaired), digest(&parent));
    }

    #[test]
    fn structural_delta_falls_back_to_fresh() {
        let parent_inst = instance();
        let heft = Heft::new();
        let parent = heft.schedule_instance(&parent_inst);
        let patched = parent_inst
            .apply_deltas(&[Delta::RemoveProc { proc: ProcId(2) }])
            .unwrap();
        let (repaired, stats) =
            heft.repair(&patched.instance, &patched.dirty, &parent_inst, &parent);
        assert!(stats.fresh);
        assert_eq!(
            digest(&repaired),
            digest(&heft.schedule_instance(&patched.instance))
        );
    }

    #[test]
    fn incomplete_parent_falls_back_to_fresh() {
        let parent_inst = instance();
        let heft = Heft::new();
        let empty = Schedule::new(5, 3);
        let patched = parent_inst
            .apply_deltas(&[Delta::EtcEntry {
                task: TaskId(0),
                proc: ProcId(0),
                time: 3.0,
            }])
            .unwrap();
        let (repaired, stats) =
            heft.repair(&patched.instance, &patched.dirty, &parent_inst, &empty);
        assert!(stats.fresh);
        assert_eq!(
            digest(&repaired),
            digest(&heft.schedule_instance(&patched.instance))
        );
    }

    #[test]
    fn repairable_registry_covers_the_eft_family_only() {
        assert!(
            matches!(repairable("HEFT"), Some(RepairScheduler::Heft(h)) if h.insertion),
            "HEFT repairs with insertion"
        );
        assert!(
            matches!(repairable("HEFT-NI"), Some(RepairScheduler::Heft(h)) if !h.insertion),
            "HEFT-NI repairs append-only"
        );
        assert!(matches!(repairable("HOFT"), Some(RepairScheduler::Hoft(_))));
        assert!(repairable("CPOP").is_none());
        assert!(repairable("PETS").is_none());
    }
}
