//! Incremental schedule repair for the EFT family.
//!
//! [`Heft::repair`] turns a parent schedule plus a patched problem
//! (see [`crate::delta::Patched`]) into the schedule a from-scratch run would
//! produce on the patched problem, replaying the parent's leading
//! placements instead of recomputing them.
//!
//! # The replay-prefix rule
//!
//! List scheduling is a fold over the rank order: the placement of the
//! task at position `i` depends only on (a) the schedule state built by
//! positions `0..i` and (b) that task's own EFT inputs — its ETC row, its
//! incoming edges' data volumes, and the network. Let `k` be the first
//! position where the patched rank order diverges from the parent's *or*
//! the task at that position is EFT-dirty. By induction, every placement
//! before `k` is bit-identical to the parent's: same task at the same
//! position, clean inputs, and (inductively) identical prior state. So
//! the repair replays the parent's `0..k` placements verbatim — copying
//! each recorded slot as stored, never re-deriving a finish time from a
//! start/duration round trip — and re-runs the ordinary EFT loop from
//! `k`. The result cannot differ from a fresh run in any bit.
//!
//! The replay is a single bulk pass (`Schedule::replay_prefix`): the
//! parent's per-processor slot lists are filtered down to the replayed
//! prefix — provably the same vectors a one-at-a-time
//! [`Schedule::insert_with_finish`](crate::Schedule::insert_with_finish)
//! loop would build — and each gap-search cache is rebuilt once, so
//! replaying `k` placements costs O(slots) instead of one O(len) cache
//! rebuild per insertion. If any replayed placement fails validation, the
//! partially built schedule is discarded and the repair degrades to a
//! plain from-scratch run — still bit-identical, just not incremental.

use crate::algorithms::Heft;
use crate::delta::DirtyInfo;
use crate::instance::ProblemInstance;
use crate::rank::sort_by_priority_desc;
use crate::schedule::Schedule;
use crate::Scheduler;

/// How a repair run spent its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairStats {
    /// Leading rank-order placements replayed verbatim from the parent.
    pub replayed: usize,
    /// Tasks re-placed by the ordinary EFT loop.
    pub rescheduled: usize,
    /// Whether the repair fell back to a full from-scratch run (structural
    /// delta, shape mismatch, or an unreplayable parent schedule).
    pub fresh: bool,
}

/// The repair-capable EFT-family scheduler registered under `name`, if
/// any. Repair replays placements through plain EFT list scheduling, so
/// only the algorithms whose from-scratch run *is* that loop qualify.
pub fn repairable(name: &str) -> Option<Heft> {
    match name {
        "HEFT" => Some(Heft::new()),
        "HEFT-NI" => Some(Heft::no_insertion()),
        _ => None,
    }
}

impl Heft {
    /// Schedule the patched problem `inst` (with `dirty` as reported by
    /// [`ProblemInstance::apply_deltas`] — see [`crate::delta::Patched`]),
    /// replaying the
    /// parent's unaffected leading placements and re-running list
    /// scheduling only from the first rank-order position the deltas
    /// touched.
    ///
    /// `parent` must be the schedule this same configuration produced on
    /// `parent_inst` (the instance `inst` was patched from); the result is
    /// then bit-identical to `self.schedule_instance(inst)` — the
    /// non-negotiable contract, enforced by the cross-crate delta-sequence
    /// proptest. When the preconditions do not hold (shape changed, parent
    /// incomplete or carrying duplicates), the repair falls back to
    /// exactly that from-scratch call.
    pub fn repair(
        &self,
        inst: &ProblemInstance<'_>,
        dirty: &DirtyInfo,
        parent_inst: &ProblemInstance<'_>,
        parent: &Schedule,
    ) -> (Schedule, RepairStats) {
        let n = inst.dag().num_tasks();
        let fresh = |heft: &Heft| {
            (
                heft.schedule_instance(inst),
                RepairStats {
                    replayed: 0,
                    rescheduled: n,
                    fresh: true,
                },
            )
        };

        let eft_dirty = match dirty {
            DirtyInfo::Structural => return fresh(self),
            DirtyInfo::Tasks { eft_dirty } => eft_dirty,
        };
        if parent.num_tasks() != n
            || parent.num_procs() != inst.sys().num_procs()
            || parent.num_duplicates() != 0
            || !parent.is_complete()
        {
            return fresh(self);
        }

        // The patched rank order — computed from the seeded memo, hence
        // exactly what a fresh run would use — against the parent's.
        let rank_q = {
            let _span = hetsched_trace::span("rank");
            inst.upward_rank(self.agg)
        };
        let order_q = sort_by_priority_desc(&rank_q);
        let order_p = sort_by_priority_desc(&parent_inst.upward_rank(self.agg));
        let k = order_q
            .iter()
            .zip(order_p.iter())
            .position(|(&q, &p)| q != p || eft_dirty[q.index()])
            .unwrap_or(n);

        let mut sched = Schedule::new(n, inst.sys().num_procs());
        if k > 0 {
            let _span = hetsched_trace::span("replay");
            if sched.replay_prefix(parent, &order_q[..k]).is_err() {
                return fresh(self);
            }
        }
        self.run_eft_loop(inst, &rank_q, &order_q, k, &mut sched);
        (
            sched,
            RepairStats {
                replayed: k,
                rescheduled: n - k,
                fresh: false,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::Delta;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::TaskId;
    use hetsched_platform::{EtcMatrix, Network, ProcId, System};

    fn instance() -> ProblemInstance<'static> {
        let dag = dag_from_edges(
            &[2.0, 3.0, 3.0, 2.0, 1.0],
            &[
                (0, 1, 4.0),
                (0, 2, 4.0),
                (1, 3, 4.0),
                (2, 3, 4.0),
                (3, 4, 2.0),
            ],
        )
        .unwrap();
        let etc = EtcMatrix::from_fn(5, 3, |t, p| 1.0 + ((t.index() * 3 + p.index()) % 7) as f64);
        let sys = System::new(etc, Network::uniform(3, 0.25, 2.0));
        ProblemInstance::new(dag, sys)
    }

    fn digest(s: &Schedule) -> Vec<(u32, u32, u64, u64)> {
        (0..s.num_procs())
            .flat_map(|p| {
                s.slots(ProcId::from_index(p)).iter().map(move |slot| {
                    (
                        p as u32,
                        slot.task.0,
                        slot.start.to_bits(),
                        slot.finish.to_bits(),
                    )
                })
            })
            .collect()
    }

    #[test]
    fn repair_matches_fresh_bit_for_bit() {
        let parent_inst = instance();
        let heft = Heft::new();
        let parent = heft.schedule_instance(&parent_inst);
        for deltas in [
            vec![Delta::EtcEntry {
                task: TaskId(3),
                proc: ProcId(1),
                time: 20.0,
            }],
            vec![Delta::EdgeData {
                src: TaskId(2),
                dst: TaskId(3),
                data: 9.0,
            }],
            vec![Delta::TaskWeight {
                task: TaskId(0),
                weight: 5.0,
            }],
        ] {
            let patched = parent_inst.apply_deltas(&deltas).unwrap();
            let (repaired, stats) =
                heft.repair(&patched.instance, &patched.dirty, &parent_inst, &parent);
            let fresh = heft.schedule_instance(&patched.instance);
            assert_eq!(digest(&repaired), digest(&fresh), "deltas {deltas:?}");
            assert!(!stats.fresh, "weight-level deltas must not fall back");
            assert_eq!(stats.replayed + stats.rescheduled, 5);
        }
    }

    #[test]
    fn clean_delta_replays_everything() {
        let parent_inst = instance();
        let heft = Heft::new();
        let parent = heft.schedule_instance(&parent_inst);
        let patched = parent_inst
            .apply_deltas(&[Delta::TaskWeight {
                task: TaskId(4),
                weight: 1.5,
            }])
            .unwrap();
        let (repaired, stats) =
            heft.repair(&patched.instance, &patched.dirty, &parent_inst, &parent);
        assert_eq!(stats.replayed, 5);
        assert_eq!(stats.rescheduled, 0);
        assert_eq!(digest(&repaired), digest(&parent));
    }

    #[test]
    fn structural_delta_falls_back_to_fresh() {
        let parent_inst = instance();
        let heft = Heft::new();
        let parent = heft.schedule_instance(&parent_inst);
        let patched = parent_inst
            .apply_deltas(&[Delta::RemoveProc { proc: ProcId(2) }])
            .unwrap();
        let (repaired, stats) =
            heft.repair(&patched.instance, &patched.dirty, &parent_inst, &parent);
        assert!(stats.fresh);
        assert_eq!(
            digest(&repaired),
            digest(&heft.schedule_instance(&patched.instance))
        );
    }

    #[test]
    fn incomplete_parent_falls_back_to_fresh() {
        let parent_inst = instance();
        let heft = Heft::new();
        let empty = Schedule::new(5, 3);
        let patched = parent_inst
            .apply_deltas(&[Delta::EtcEntry {
                task: TaskId(0),
                proc: ProcId(0),
                time: 3.0,
            }])
            .unwrap();
        let (repaired, stats) =
            heft.repair(&patched.instance, &patched.dirty, &parent_inst, &empty);
        assert!(stats.fresh);
        assert_eq!(
            digest(&repaired),
            digest(&heft.schedule_instance(&patched.instance))
        );
    }

    #[test]
    fn repairable_registry_covers_the_eft_family_only() {
        assert_eq!(repairable("HEFT").map(|h| h.insertion), Some(true));
        assert_eq!(repairable("HEFT-NI").map(|h| h.insertion), Some(false));
        assert!(repairable("CPOP").is_none());
        assert!(repairable("PETS").is_none());
    }
}
