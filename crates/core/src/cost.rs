//! Cost aggregation policies: how a heuristic collapses a task's
//! per-processor execution-time row into one number for ranking.
//!
//! HEFT uses the arithmetic mean; later work showed that on inconsistent
//! heterogeneous systems the choice of aggregator measurably changes
//! schedule quality. The proposed ILS schedulers default to
//! [`CostAggregation::MeanStd`], which penalizes tasks whose execution time
//! varies a lot across processors — those are the tasks for which a bad
//! placement is most expensive, so they deserve earlier scheduling.

use serde::{Deserialize, Serialize};

use hetsched_dag::TaskId;
use hetsched_platform::System;

/// Policy for collapsing a task's ETC row into a scalar cost for ranking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum CostAggregation {
    /// Arithmetic mean over processors (HEFT's choice).
    #[default]
    Mean,
    /// Median over processors (robust to one outlier machine).
    Median,
    /// Fastest processor (optimistic).
    Best,
    /// Slowest processor (pessimistic).
    Worst,
    /// `mean + gamma * stddev` — spread-aware (the ILS default with
    /// `gamma = 1`).
    MeanStd(
        /// Weight `gamma >= 0` on the standard deviation.
        f64,
    ),
}

impl CostAggregation {
    /// Aggregate execution cost of task `t` on `sys` under this policy.
    pub fn exec(&self, sys: &System, t: TaskId) -> f64 {
        let etc = sys.etc();
        match *self {
            CostAggregation::Mean => etc.mean_exec(t),
            CostAggregation::Median => etc.median_exec(t),
            CostAggregation::Best => etc.min_exec(t).0,
            CostAggregation::Worst => etc.max_exec(t),
            CostAggregation::MeanStd(gamma) => {
                debug_assert!(gamma >= 0.0, "gamma must be non-negative");
                etc.mean_exec(t) + gamma * etc.std_exec(t)
            }
        }
    }

    /// Human-readable policy name for ablation reports.
    pub fn label(&self) -> String {
        match *self {
            CostAggregation::Mean => "mean".into(),
            CostAggregation::Median => "median".into(),
            CostAggregation::Best => "best".into(),
            CostAggregation::Worst => "worst".into(),
            CostAggregation::MeanStd(g) => format!("mean+{g}sd"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::{EtcMatrix, Network, ProcId};

    fn system() -> System {
        let dag = dag_from_edges(&[1.0, 1.0], &[(0, 1, 1.0)]).unwrap();
        // task 0 row: [2, 4, 6]; task 1 row: [5, 5, 5]
        let etc = EtcMatrix::from_fn(dag.num_tasks(), 3, |t, p| {
            if t.index() == 0 {
                2.0 * (p.index() + 1) as f64
            } else {
                5.0
            }
        });
        System::new(etc, Network::unit(3))
    }

    #[test]
    fn all_policies_on_varying_row() {
        let sys = system();
        let t = TaskId(0);
        assert_eq!(CostAggregation::Mean.exec(&sys, t), 4.0);
        assert_eq!(CostAggregation::Median.exec(&sys, t), 4.0);
        assert_eq!(CostAggregation::Best.exec(&sys, t), 2.0);
        assert_eq!(CostAggregation::Worst.exec(&sys, t), 6.0);
        // std of [2,4,6] = sqrt(8/3)
        let expected = 4.0 + (8.0f64 / 3.0).sqrt();
        assert!((CostAggregation::MeanStd(1.0).exec(&sys, t) - expected).abs() < 1e-12);
        // gamma = 0 reduces to the mean
        assert_eq!(CostAggregation::MeanStd(0.0).exec(&sys, t), 4.0);
    }

    #[test]
    fn flat_row_makes_policies_agree() {
        let sys = system();
        let t = TaskId(1);
        for pol in [
            CostAggregation::Mean,
            CostAggregation::Median,
            CostAggregation::Best,
            CostAggregation::Worst,
            CostAggregation::MeanStd(2.0),
        ] {
            assert_eq!(pol.exec(&sys, t), 5.0, "{}", pol.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            CostAggregation::Mean,
            CostAggregation::Median,
            CostAggregation::Best,
            CostAggregation::Worst,
            CostAggregation::MeanStd(1.0),
        ]
        .iter()
        .map(|p| p.label())
        .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
        let _ = ProcId(0);
    }
}
