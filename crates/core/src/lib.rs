//! # hetsched-core
//!
//! The list-scheduling core of `hetsched`: schedule representation with
//! insertion-based gap search, rank functions with pluggable cost
//! aggregation, the earliest-finish-time machinery (duplication-aware), a
//! set of classic baseline schedulers, and the improved **ILS** scheduler
//! family this repository proposes.
//!
//! ## Scheduling model
//!
//! A [`Schedule`] assigns every task of a [`hetsched_dag::Dag`] to a
//! processor of a [`hetsched_platform::System`] with a start time, such
//! that
//!
//! * a processor executes at most one task at a time, and
//! * a task starts only after all messages from its predecessors arrive
//!   (co-located predecessors communicate for free).
//!
//! Task *duplication* is supported: a task may have extra copies on other
//! processors so its consumers can read a local result instead of waiting
//! for a message. [`validate::validate`] checks all of this independently
//! of any scheduler.
//!
//! ## Algorithms
//!
//! | Scheduler | Kind | Reference |
//! |-----------|------|-----------|
//! | [`algorithms::Heft`] | list, mean-rank, insertion EFT | Topcuoglu et al. 2002 |
//! | [`algorithms::Cpop`] | critical-path-on-a-processor | Topcuoglu et al. 2002 |
//! | [`algorithms::Dls`]  | dynamic-level pair selection | Sih & Lee 1993 |
//! | [`algorithms::Mcp`]  | ALAP list (homogeneous classic) | Wu & Gajski 1990 |
//! | [`algorithms::Hcpt`] | critical-parent trees | Hagras & Janeček 2003 |
//! | [`algorithms::MinMin`] | batch-mode min-min | Ibarra & Kim 1977 lineage |
//! | [`algorithms::DupHeft`] | HEFT + DSH/BTDH-style duplication | Kruatrachue & Lewis; Chung & Ranka |
//! | [`algorithms::IlsH`], [`algorithms::IlsD`], [`algorithms::IlsM`] | **proposed** improved list scheduling | this repository (reconstruction, see DESIGN.md) |
//!
//! Every scheduler implements the [`Scheduler`] trait, so experiment
//! harnesses treat them uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod arena;
pub mod compact;
pub mod cost;
pub mod delta;
pub mod eft;
pub mod engine;
pub mod instance;
pub mod par;
pub mod portfolio;
pub mod rank;
pub mod repair;
pub mod schedule;
pub mod validate;

pub use cost::CostAggregation;
pub use delta::{Delta, DeltaError, DirtyInfo, Patched};
pub use engine::{with_reference_engine, EftContext};
pub use instance::ProblemInstance;
pub use portfolio::{run_portfolio, PortfolioEntry, PortfolioResult};
pub use repair::{repairable, RepairScheduler, RepairStats};
pub use schedule::{Schedule, Slot};
pub use validate::{validate, ValidationError};

use hetsched_dag::Dag;
use hetsched_platform::{ProcId, System};

/// A static scheduling algorithm: maps a task graph and a target system to
/// a complete [`Schedule`].
///
/// Algorithms implement [`Scheduler::schedule_instance`] against the
/// shared [`ProblemInstance`] IR; the [`Scheduler::schedule`] convenience
/// method keeps the original `(dag, sys)` call shape by building a
/// transient instance. Both paths produce bit-identical schedules — the
/// instance only memoizes values the algorithms would otherwise compute
/// themselves, in the same fold order.
pub trait Scheduler {
    /// Short stable name used in reports and benchmarks (e.g. `"HEFT"`).
    fn name(&self) -> &'static str;

    /// Produce a complete schedule of the instance's DAG on its system.
    ///
    /// Implementations must return a schedule that passes
    /// [`validate::validate`]; this is enforced for every algorithm in the
    /// test suite.
    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule;

    /// Produce a complete schedule of `dag` on `sys` via a transient
    /// [`ProblemInstance`].
    fn schedule(&self, dag: &Dag, sys: &System) -> Schedule {
        self.schedule_instance(&ProblemInstance::from_refs(dag, sys))
    }

    /// Schedule a batch of instances, returning one schedule per instance
    /// in input order.
    ///
    /// Semantically identical to mapping [`Scheduler::schedule_instance`]
    /// over the batch — every returned schedule is bit-identical to the
    /// sequential call, at every batch size (enforced by the cross-crate
    /// property tests). The default implementation *is* that loop;
    /// EFT-family schedulers override it to reuse one scratch context
    /// (arrival frontier and arena buffers) across the whole batch, which
    /// is where batched serve traffic of many small DAGs wins: per-instance
    /// setup amortizes away while the scheduling math stays untouched.
    fn schedule_many(&self, insts: &[ProblemInstance]) -> Vec<Schedule> {
        insts.iter().map(|i| self.schedule_instance(i)).collect()
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &S {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        (**self).schedule_instance(inst)
    }
    fn schedule(&self, dag: &Dag, sys: &System) -> Schedule {
        (**self).schedule(dag, sys)
    }
    fn schedule_many(&self, insts: &[ProblemInstance]) -> Vec<Schedule> {
        (**self).schedule_many(insts)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        (**self).schedule_instance(inst)
    }
    fn schedule(&self, dag: &Dag, sys: &System) -> Schedule {
        (**self).schedule(dag, sys)
    }
    fn schedule_many(&self, insts: &[ProblemInstance]) -> Vec<Schedule> {
        (**self).schedule_many(insts)
    }
}

/// Schedule `dag` on `sys` with `alg` under a [`hetsched_trace`] capture,
/// returning the schedule together with everything recorded.
///
/// On top of the events the instrumented engine emits while the algorithm
/// runs (task selections, EFT decisions — speculative evaluations by
/// lookahead/duplication/search schedulers included), this appends the
/// **placement decision log**: one [`hetsched_trace::Event::Placed`]
/// record per slot of the *final* schedule, in start-time order. Deriving
/// placements from the returned schedule rather than from `insert` calls
/// keeps the log exact for every algorithm — trial schedules that search
/// schedulers build and discard never pollute it — so the number of
/// primary placement events always equals the number of scheduled tasks.
///
/// Tracing never perturbs scheduling: instrumentation only reads state,
/// and the schedule returned here is bit-identical to
/// `alg.schedule(dag, sys)` without a capture (enforced by property tests
/// across the whole algorithm registry).
pub fn traced_schedule<S: Scheduler + ?Sized>(
    alg: &S,
    dag: &Dag,
    sys: &System,
) -> (Schedule, hetsched_trace::Trace) {
    let (sched, mut trace) = hetsched_trace::capture(|| alg.schedule(dag, sys));
    append_placements(&sched, &mut trace);
    (sched, trace)
}

/// Like [`traced_schedule`], but scheduling an existing
/// [`ProblemInstance`] — the serve daemon's traced path, where the
/// instance comes from the shared cache.
pub fn traced_schedule_instance<S: Scheduler + ?Sized>(
    alg: &S,
    inst: &ProblemInstance,
) -> (Schedule, hetsched_trace::Trace) {
    let (sched, mut trace) = hetsched_trace::capture(|| alg.schedule_instance(inst));
    append_placements(&sched, &mut trace);
    (sched, trace)
}

/// Synthesize the post-run placement log (see [`traced_schedule`]).
fn append_placements(sched: &Schedule, trace: &mut hetsched_trace::Trace) {
    let mut slots: Vec<(f64, u32, Slot)> = Vec::new();
    for pi in 0..sched.num_procs() {
        for s in sched.slots(ProcId(pi as u32)) {
            slots.push((s.start, pi as u32, s));
        }
    }
    slots.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| a.2.task.cmp(&b.2.task))
    });
    trace
        .events
        .extend(slots.into_iter().enumerate().map(|(step, (_, proc, s))| {
            hetsched_trace::Event::Placed {
                step: step as u64,
                task: s.task.index() as u32,
                proc,
                start: s.start,
                finish: s.finish,
                duplicate: s.duplicate,
            }
        }));
}

#[cfg(test)]
mod proptests;
