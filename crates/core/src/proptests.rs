//! Property-based tests over the scheduling core: random DAGs × random
//! systems × every scheduler must always validate, and structural
//! invariants of the timeline machinery must hold.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hetsched_dag::builder::DagBuilder;
use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{EtcParams, ProcId, System};

use crate::algorithms::all_heterogeneous;
use crate::schedule::Schedule;
use crate::validate::validate;

/// Flatten a schedule into a bit-exact digest of every slot: any engine
/// optimization that changes a single start/finish bit, an assignment, or
/// a duplicate shows up as a digest mismatch.
fn slot_digest(s: &Schedule) -> Vec<(usize, usize, u64, u64, bool)> {
    let mut out = Vec::new();
    for p in 0..s.num_procs() {
        for slot in s.slots(ProcId(p as u32)) {
            out.push((
                p,
                slot.task.index(),
                slot.start.to_bits(),
                slot.finish.to_bits(),
                slot.duplicate,
            ));
        }
    }
    out
}

/// Random forward-edged DAG with seeded reproducibility.
fn random_dag(n: usize, edge_prob: f64, seed: u64) -> Dag {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DagBuilder::new();
    for _ in 0..n {
        b.add_task(rng.gen_range(0.5..10.0));
    }
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            if rng.gen::<f64>() < edge_prob {
                b.add_edge(TaskId(i), TaskId(j), rng.gen_range(0.0..30.0))
                    .unwrap();
            }
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_schedulers_valid_on_random_instances(
        n in 1usize..35,
        edge_prob in 0.0f64..0.3,
        n_procs in 1usize..8,
        beta in 0.0f64..1.9,
        seed in 0u64..10_000,
    ) {
        let dag = random_dag(n, edge_prob, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let sys = System::heterogeneous_random(&dag, n_procs, &EtcParams::range_based(beta), &mut rng);
        for alg in all_heterogeneous() {
            let s = alg.schedule(&dag, &sys);
            prop_assert_eq!(
                validate(&dag, &sys, &s),
                Ok(()),
                "{} failed on n={} procs={} beta={} seed={}",
                alg.name(), n, n_procs, beta, seed
            );
            // makespan must be finite and positive for non-trivial work
            let m = s.makespan();
            prop_assert!(m.is_finite() && m >= 0.0);
        }
    }

    #[test]
    fn makespan_never_below_min_serial_over_procs_div_procs(
        n in 2usize..25,
        n_procs in 1usize..6,
        seed in 0u64..10_000,
    ) {
        // work lower bound: total fastest work / processors
        let dag = random_dag(n, 0.15, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        let sys = System::heterogeneous_random(&dag, n_procs, &EtcParams::range_based(1.0), &mut rng);
        let min_work: f64 = dag.task_ids().map(|t| sys.etc().min_exec(t).0).sum();
        let bound = min_work / n_procs as f64;
        for alg in all_heterogeneous() {
            let m = alg.schedule(&dag, &sys).makespan();
            prop_assert!(
                m + 1e-9 >= bound,
                "{}: makespan {} below work bound {}", alg.name(), m, bound
            );
        }
    }

    #[test]
    fn earliest_start_returns_conflict_free_interval(
        starts in proptest::collection::vec(0.0f64..100.0, 0..12),
        ready in 0.0f64..120.0,
        dur in 0.0f64..10.0,
        insertion in proptest::bool::ANY,
    ) {
        // Build a random single-processor schedule of unit slots.
        let mut s = Schedule::new(64, 1);
        let mut placed = 0u32;
        for (i, &st) in starts.iter().enumerate() {
            // try to place a 2-unit slot; skip on overlap
            if s.insert(TaskId(i as u32), ProcId(0), st, 2.0).is_ok() {
                placed += 1;
            }
        }
        let est = s.earliest_start(ProcId(0), ready, dur, insertion);
        prop_assert!(est >= ready - 1e-12);
        // the returned interval must be insertable
        let t = TaskId(placed + 20);
        prop_assert!(s.insert(t, ProcId(0), est, dur).is_ok(),
            "interval [{}, {}) not free", est, est + dur);
    }

    #[test]
    fn left_shift_preserves_validity_and_never_lengthens(
        n in 2usize..30,
        ccr in 0.0f64..6.0,
        seed in 0u64..10_000,
    ) {
        use crate::compact::left_shift;
        let dag = random_dag(n, 0.2, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5f);
        let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
        let _ = ccr;
        for alg in all_heterogeneous() {
            let sched = alg.schedule(&dag, &sys);
            let shifted = left_shift(&dag, &sys, &sched);
            prop_assert_eq!(validate(&dag, &sys, &shifted), Ok(()), "{}", alg.name());
            prop_assert!(shifted.makespan() <= sched.makespan() + 1e-9, "{}", alg.name());
            prop_assert_eq!(shifted.num_duplicates(), sched.num_duplicates());
            // assignments (processors) preserved
            for t in dag.task_ids() {
                prop_assert_eq!(
                    shifted.task_proc(t), sched.task_proc(t),
                    "{} moved {}", alg.name(), t
                );
            }
        }
    }

    #[test]
    fn cached_gap_search_is_bit_identical_to_scan(
        grid in proptest::collection::vec((0u16..200, 1u8..30), 0..24),
        queries in proptest::collection::vec((0u16..220, 0u8..40, 0u8..4), 1..24),
    ) {
        // Adversarial timelines: starts/durations snapped to a coarse grid
        // with sub-TIME_EPS jitter, so slot boundaries collide exactly at
        // the schedule's epsilon resolution — the regime where the cached
        // search could plausibly diverge from the scan by one rounding bit.
        let mut s = Schedule::new(64, 1);
        for (i, &(start, dur)) in grid.iter().enumerate() {
            let st = start as f64 * 0.5 + (start % 3) as f64 * 0.4e-9;
            let d = dur as f64 * 0.5;
            // overlapping placements are simply skipped
            let _ = s.insert(TaskId(i as u32), ProcId(0), st, d);
        }
        for &(r, d, j) in &queries {
            let ready = r as f64 * 0.5 + j as f64 * 0.3e-9;
            let dur = d as f64 * 0.5 + j as f64 * 0.25e-9;
            let fast = s.earliest_start(ProcId(0), ready, dur, true);
            let scan = Schedule::earliest_start_scan(s.slots(ProcId(0)), ready, dur);
            prop_assert_eq!(fast.to_bits(), scan.to_bits(),
                "cached {} vs scan {} at ready={} dur={}", fast, scan, ready, dur);
            let reference = crate::engine::with_reference_engine(
                || s.earliest_start(ProcId(0), ready, dur, true));
            prop_assert_eq!(fast.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn fast_engine_matches_reference_engine_bit_for_bit(
        n in 2usize..35,
        edge_prob in 0.0f64..0.35,
        n_procs in 1usize..8,
        beta in 0.0f64..1.9,
        seed in 0u64..10_000,
    ) {
        // Every scheduler, run once through the optimized engine and once
        // with the naive per-(task, processor) reference path, must emit
        // byte-identical schedules: same slots, same starts to the last
        // bit, same duplicates.
        let dag = random_dag(n, edge_prob, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5);
        let sys = System::heterogeneous_random(&dag, n_procs, &EtcParams::range_based(beta), &mut rng);
        for alg in all_heterogeneous() {
            let fast = alg.schedule(&dag, &sys);
            let reference = crate::engine::with_reference_engine(|| alg.schedule(&dag, &sys));
            prop_assert_eq!(
                slot_digest(&fast), slot_digest(&reference),
                "{} diverged on n={} procs={} beta={} seed={}",
                alg.name(), n, n_procs, beta, seed
            );
        }
    }

    #[test]
    fn insertion_start_never_later_than_append_per_decision(
        n in 2usize..25,
        seed in 0u64..10_000,
    ) {
        // The per-decision theorem behind HEFT's insertion policy: for the
        // same partial schedule, gap search can never yield a later start
        // than appending. (Globally, full insertion-HEFT vs append-HEFT is
        // NOT ordered — greedy decisions cascade — so only the
        // per-decision property is asserted.)
        use crate::algorithms::Heft;
        use crate::eft::eft_on_raw;
        use crate::Scheduler as _;
        let dag = random_dag(n, 0.2, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 77);
        let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
        let sched = Heft::new().schedule(&dag, &sys);
        // replay each placement question against the final schedule
        for t in dag.task_ids() {
            for p in sys.proc_ids() {
                // skip processors where t itself sits (its own slot would
                // distort the comparison)
                if sched.finish_on(t, p).is_some() {
                    continue;
                }
                let (s_ins, _) = eft_on_raw(&dag, &sys, &sched, t, p, true);
                let (s_app, _) = eft_on_raw(&dag, &sys, &sched, t, p, false);
                prop_assert!(s_ins <= s_app + 1e-9,
                    "insertion start {} > append start {} for {} on {}", s_ins, s_app, t, p);
            }
        }
    }

    #[test]
    fn left_shift_is_idempotent_bitwise_across_workload_generators(
        family in 0usize..4,
        size in 2usize..5,
        ccr in 0.2f64..5.0,
        n_procs in 1usize..6,
        seed in 0u64..10_000,
    ) {
        // `left_shift ∘ left_shift = left_shift`, to the last bit: a
        // second pass finds every copy already at its earliest feasible
        // start, so it must reproduce the exact same slots — across every
        // workload generator family, not just the local random DAGs.
        use crate::compact::left_shift;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0_fface);
        let dag = match family {
            0 => hetsched_workloads::random_dag(
                &hetsched_workloads::RandomDagParams::new(size * 8, 1.0, ccr),
                &mut rng,
            ),
            1 => hetsched_workloads::gauss::gaussian_elimination(size + 3, ccr, &mut rng),
            2 => hetsched_workloads::fft::fft_butterfly(1 << size, ccr, &mut rng),
            _ => hetsched_workloads::laplace::laplace_wavefront(size + 1, ccr, &mut rng),
        };
        let sys = System::heterogeneous_random(
            &dag, n_procs, &EtcParams::range_based(1.0), &mut rng);
        for alg in all_heterogeneous() {
            let sched = alg.schedule(&dag, &sys);
            let once = left_shift(&dag, &sys, &sched);
            prop_assert_eq!(validate(&dag, &sys, &once), Ok(()), "{}", alg.name());
            prop_assert!(
                once.makespan() <= sched.makespan() + 1e-9,
                "{}: left_shift lengthened {} -> {}",
                alg.name(), sched.makespan(), once.makespan()
            );
            let twice = left_shift(&dag, &sys, &once);
            prop_assert_eq!(
                slot_digest(&twice), slot_digest(&once),
                "{}: left_shift not bitwise idempotent (family={}, seed={})",
                alg.name(), family, seed
            );
        }
    }
}
