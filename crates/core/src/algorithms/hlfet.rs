//! HLFET — Highest Level First with Estimated Times (Adam, Chandy &
//! Dickson, 1974). The oldest list scheduler in the comparison set:
//! ready tasks are processed by decreasing static level, each placed on
//! the processor that lets it *start* earliest (no insertion, no
//! communication awareness in the priority). A floor every later
//! heuristic should beat on communication-heavy graphs.

use hetsched_dag::TaskId;

use crate::cost::CostAggregation;
use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// HLFET scheduler (static-level priority, earliest-start placement).
#[derive(Debug, Clone, Copy)]
pub struct Hlfet {
    /// Aggregation for static levels on heterogeneous matrices.
    pub agg: CostAggregation,
}

impl Hlfet {
    /// HLFET with mean-cost static levels.
    pub fn new() -> Self {
        Hlfet {
            agg: CostAggregation::Mean,
        }
    }
}

impl Default for Hlfet {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Hlfet {
    fn name(&self) -> &'static str {
        "HLFET"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let sl = inst.static_level(self.agg);
        let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
        let mut remaining_preds: Vec<usize> = dag.task_ids().map(|t| dag.in_degree(t)).collect();
        let mut ready: Vec<TaskId> = dag.entry_tasks().collect();
        let mut ctx = EftContext::new(sys);

        while !ready.is_empty() {
            // highest static level among ready tasks (ties: smaller id)
            let (ri, &t) = ready
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| {
                    sl[a.index()]
                        .total_cmp(&sl[b.index()])
                        .then_with(|| b.cmp(&a))
                })
                .expect("ready set non-empty");
            let t = {
                ready.swap_remove(ri);
                t
            };
            // earliest-start processor (append policy)
            let drts = ctx.data_ready_all(inst, &sched, t);
            let (p, start) = sys
                .proc_ids()
                .map(|p| {
                    let drt = drts[p.index()];
                    (p, drt.max(sched.proc_finish(p)))
                })
                .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
                .expect("at least one processor");
            let dur = sys.exec_time(t, p);
            sched
                .insert(t, p, start, dur)
                .expect("append placement is conflict-free");
            for (s, _) in dag.successors(t) {
                let r = &mut remaining_preds[s.index()];
                *r -= 1;
                if *r == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert!(sched.is_complete());
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::System;

    #[test]
    fn prioritizes_long_chains() {
        // t0 heads a chain of total weight 6, t1 is a lone unit task; on
        // one processor the chain head runs first.
        let dag = dag_from_edges(&[1.0, 1.0, 5.0], &[(0, 2, 0.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 1);
        let s = Hlfet::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        let (_, s0, _) = s.assignment(hetsched_dag::TaskId(0)).unwrap();
        let (_, s1, _) = s.assignment(hetsched_dag::TaskId(1)).unwrap();
        assert!(s0 < s1);
    }

    #[test]
    fn valid_on_diamond_heterogeneous() {
        use hetsched_platform::{EtcMatrix, Network};
        let dag = dag_from_edges(
            &[1.0, 2.0, 3.0, 1.0],
            &[(0, 1, 2.0), (0, 2, 2.0), (1, 3, 2.0), (2, 3, 2.0)],
        )
        .unwrap();
        let etc = EtcMatrix::from_fn(4, 3, |t, p| {
            [1.0, 2.0, 3.0, 1.0][t.index()] * (1.0 + 0.5 * p.index() as f64)
        });
        let sys = System::new(etc, Network::unit(3));
        let s = Hlfet::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert!(s.is_complete());
    }

    #[test]
    fn single_processor_is_level_order_serial() {
        let dag = dag_from_edges(&[2.0, 3.0, 4.0], &[]).unwrap();
        let sys = System::homogeneous_unit(&dag, 1);
        let s = Hlfet::new().schedule(&dag, &sys);
        assert_eq!(s.makespan(), 9.0);
        // level == own weight for independent tasks: 4, 3, 2 order
        let start = |i: u32| s.assignment(hetsched_dag::TaskId(i)).unwrap().1;
        assert!(start(2) < start(1) && start(1) < start(0));
    }
}
