//! CA-HEFT — contention-aware list scheduling (extension).
//!
//! tab6 shows that plans optimized for the contention-free model inflate
//! badly when links serialize. CA-HEFT closes the loop: it keeps HEFT's
//! upward-rank order but charges communications against a **single-port
//! model** while selecting processors — each processor owns one send and
//! one receive port, and the scheduler tracks their availability, so an
//! EFT estimate includes the queueing delay of earlier-committed
//! messages.
//!
//! The produced schedule is also valid under the contention-free model
//! (arrivals can only be later than the free-model ones), so the standard
//! validator applies; its value shows when replayed under
//! `hetsched_sim::CommModel::SinglePort`.

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{ProcId, System};

use crate::cost::CostAggregation;
use crate::instance::ProblemInstance;
use crate::rank::sort_by_priority_desc;
use crate::schedule::Schedule;
use crate::Scheduler;

/// Contention-aware HEFT (single-port communication model).
#[derive(Debug, Clone, Copy)]
pub struct CaHeft {
    /// Rank aggregation (mean, as HEFT).
    pub agg: CostAggregation,
}

impl CaHeft {
    /// Default CA-HEFT.
    pub fn new() -> Self {
        CaHeft {
            agg: CostAggregation::Mean,
        }
    }
}

impl Default for CaHeft {
    fn default() -> Self {
        Self::new()
    }
}

/// Port state: next free time of each processor's send and receive port.
#[derive(Debug, Clone)]
struct Ports {
    send_free: Vec<f64>,
    recv_free: Vec<f64>,
}

impl Ports {
    fn new(n: usize) -> Self {
        Ports {
            send_free: vec![0.0; n],
            recv_free: vec![0.0; n],
        }
    }

    /// Greedily dispatch the messages feeding task `t` on processor `p`
    /// (predecessors sorted by readiness, FIFO over the shared ports),
    /// updating port state. Trial evaluations operate on a clone of the
    /// port table. Returns the data-ready time.
    fn data_ready(
        &mut self,
        dag: &Dag,
        sys: &System,
        sched: &Schedule,
        t: TaskId,
        p: ProcId,
    ) -> f64 {
        let mut msgs: Vec<(ProcId, f64, f64)> = dag
            .predecessors(t)
            .map(|(u, data)| {
                let (q, _, fin) = sched
                    .assignment(u)
                    .expect("predecessor scheduled before consumer");
                (q, fin, data)
            })
            .collect();
        msgs.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));

        let send_free = &mut self.send_free;
        let recv_free = &mut self.recv_free;

        let mut ready = 0.0f64;
        for (q, fin, data) in msgs {
            if q == p {
                ready = ready.max(fin);
                continue;
            }
            let dur = sys.comm_time(data, q, p);
            let start = fin.max(send_free[q.index()]).max(recv_free[p.index()]);
            let arrive = start + dur;
            send_free[q.index()] = arrive;
            recv_free[p.index()] = arrive;
            ready = ready.max(arrive);
        }
        ready
    }
}

impl Scheduler for CaHeft {
    fn name(&self) -> &'static str {
        "CA-HEFT"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let rank = inst.upward_rank(self.agg);
        let order = sort_by_priority_desc(&rank);
        let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
        let mut ports = Ports::new(sys.num_procs());
        for t in order {
            // trial EFT per processor under current port state; append
            // placement (gap insertion would invalidate the port timeline)
            let (p, dur) = sys
                .proc_ids()
                .map(|p| {
                    let mut trial = ports.clone();
                    let ready = trial.data_ready(dag, sys, &sched, t, p);
                    let dur = sys.exec_time(t, p);
                    let start = ready.max(sched.proc_finish(p));
                    (p, start + dur, dur)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
                .map(|(p, _, dur)| (p, dur))
                .expect("at least one processor");
            // commit the chosen processor's messages for real
            let ready = ports.data_ready(dag, sys, &sched, t, p);
            let start = ready.max(sched.proc_finish(p));
            sched
                .insert(t, p, start, dur)
                .expect("append placement is conflict-free");
        }
        debug_assert!(sched.is_complete());
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::Dag;

    /// Broadcast: entry on some proc feeds two consumers; single-port
    /// serializes the two messages.
    fn broadcast() -> (Dag, System) {
        let dag = dag_from_edges(&[2.0, 1.0, 1.0], &[(0, 1, 4.0), (0, 2, 4.0)]).unwrap();
        (dag.clone(), System::homogeneous_unit(&dag, 3))
    }

    #[test]
    fn produces_valid_schedules() {
        let (dag, sys) = broadcast();
        let s = CaHeft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert!(s.is_complete());
    }

    #[test]
    fn accounts_for_port_serialization() {
        // On the broadcast, plain HEFT would keep both children local
        // (cheapest under free comm: 2+1+1 = 4). CA-HEFT sees the same —
        // this graph does not force remote sends. Force them with 1-wide
        // processors: make the entry's processor too slow for the children.
        use hetsched_platform::{EtcMatrix, Network};
        let dag = dag_from_edges(&[1.0, 4.0, 4.0], &[(0, 1, 3.0), (0, 2, 3.0)]).unwrap();
        let etc = EtcMatrix::from_fn(3, 3, |t, p| match (t.index(), p.index()) {
            (0, 0) => 1.0,
            (0, _) => 50.0, // entry only sensible on p0
            (_, 0) => 50.0, // children must leave p0
            _ => 4.0,
        });
        let sys = System::new(etc, Network::unit(3));
        let s = CaHeft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        // entry finishes at 1; first message occupies p0's send port until
        // 4, the second until 7. CA-HEFT's plan must reflect the 7.
        let starts: Vec<f64> = [1u32, 2]
            .iter()
            .map(|&i| s.assignment(TaskId(i)).unwrap().1)
            .collect();
        let latest = starts.iter().copied().fold(0.0f64, f64::max);
        assert!(
            latest >= 7.0 - 1e-9,
            "plan ignores port contention: {starts:?}"
        );
    }

    use hetsched_dag::TaskId;

    // NOTE: the sim-replay comparisons for CA-HEFT (single-port replay
    // beats HEFT's; free-model replay never exceeds the plan) live in the
    // workspace integration tests — hetsched-sim cannot be a dev-dependency
    // here without building a second copy of this crate.
}
