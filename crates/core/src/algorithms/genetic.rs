//! GA — a genetic-algorithm metaheuristic scheduler (extension baseline).
//!
//! Scheduling GAs were the standard "how much is left on the table" probe
//! of the HEFT era: slower by orders of magnitude, but able to escape
//! list-scheduling's greedy horizon. This implementation uses the classic
//! priority-vector encoding:
//!
//! * a chromosome is a **priority gene** per task plus a **processor
//!   assignment** per task;
//! * decoding runs a ready-list simulation — among ready tasks, the
//!   highest gene priority goes next, placed on its assigned processor at
//!   the earliest (insertion) start — so every chromosome decodes to a
//!   *valid* schedule by construction;
//! * uniform crossover and gaussian/reset mutation on both parts,
//!   tournament selection, elitism, and a HEFT-seeded initial population
//!   (so the GA never returns anything worse than HEFT).
//!
//! The search is deterministic for a fixed `seed`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{ProcId, System};

use crate::algorithms::Heft;
use crate::cost::CostAggregation;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// Genetic-algorithm scheduler.
#[derive(Debug, Clone, Copy)]
pub struct Genetic {
    /// Population size (≥ 2).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// RNG seed (the whole search is deterministic given this).
    pub seed: u64,
}

impl Genetic {
    /// Default configuration: population 24, 40 generations.
    pub fn new() -> Self {
        Genetic {
            population: 24,
            generations: 40,
            mutation_rate: 0.08,
            seed: 0x6a_5eed,
        }
    }
}

impl Default for Genetic {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Clone)]
struct Chromosome {
    /// Priority gene per task (higher = earlier among ready tasks).
    priority: Vec<f64>,
    /// Assigned processor per task.
    assign: Vec<u32>,
}

/// Decode a chromosome into a schedule: ready-list order by gene priority,
/// insertion-based earliest start on the assigned processor.
fn decode(dag: &Dag, sys: &System, ch: &Chromosome) -> Schedule {
    let n = dag.num_tasks();
    let mut sched = Schedule::new(n, sys.num_procs());
    let mut remaining: Vec<usize> = dag.task_ids().map(|t| dag.in_degree(t)).collect();
    let mut ready: Vec<TaskId> = dag.entry_tasks().collect();
    while !ready.is_empty() {
        let (ri, &t) = ready
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                ch.priority[a.index()]
                    .total_cmp(&ch.priority[b.index()])
                    .then_with(|| b.cmp(&a))
            })
            .expect("ready set non-empty");
        let t = {
            ready.swap_remove(ri);
            t
        };
        let p = ProcId(ch.assign[t.index()]);
        let ready_time = crate::eft::data_ready_time_raw(dag, sys, &sched, t, p);
        let dur = sys.exec_time(t, p);
        let start = sched.earliest_start(p, ready_time, dur, true);
        sched
            .insert(t, p, start, dur)
            .expect("decoded placement is conflict-free");
        for (s, _) in dag.successors(t) {
            let r = &mut remaining[s.index()];
            *r -= 1;
            if *r == 0 {
                ready.push(s);
            }
        }
    }
    sched
}

impl Scheduler for Genetic {
    fn name(&self) -> &'static str {
        "GA"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        assert!(self.population >= 2, "population must be at least 2");
        let n = dag.num_tasks();
        let np = sys.num_procs() as u32;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let jobs = crate::par::effective_jobs().min(self.population);

        // seed individual: HEFT's upward ranks as priorities, HEFT's
        // assignment as genes — decodes to (essentially) HEFT's schedule
        let heft_sched = Heft::new().schedule_instance(inst);
        let heft_chrom = Chromosome {
            priority: inst.upward_rank(CostAggregation::Mean).as_ref().clone(),
            assign: dag
                .task_ids()
                .map(|t| heft_sched.task_proc(t).expect("complete").0)
                .collect(),
        };

        // Fitness evaluation (decode + makespan) consumes no RNG, so
        // generating every chromosome of a batch first and evaluating the
        // batch afterwards — in parallel, results in submission order —
        // consumes the exact RNG stream of the evaluate-as-you-generate
        // sequential loop. Chromosomes and fitnesses live in parallel
        // vectors; generations are ordered by an index argsort instead of
        // re-sorting the population payloads (stable-sort permutation
        // reproduced via the original-index tie-break).
        let mut chroms: Vec<Chromosome> = Vec::with_capacity(self.population);
        chroms.push(heft_chrom);
        while chroms.len() < self.population {
            chroms.push(Chromosome {
                priority: (0..n).map(|_| rng.gen::<f64>()).collect(),
                assign: (0..n).map(|_| rng.gen_range(0..np)).collect(),
            });
        }
        let eval = |batch: &[Chromosome]| -> Vec<f64> {
            crate::par::par_map_collect(jobs, batch, |ch| decode(dag, sys, ch).makespan())
        };
        let mut fit: Vec<f64> = eval(&chroms);
        let argsort = |fit: &[f64]| -> Vec<usize> {
            let mut order: Vec<usize> = (0..fit.len()).collect();
            order.sort_unstable_by(|&i, &j| fit[i].total_cmp(&fit[j]).then_with(|| i.cmp(&j)));
            order
        };

        // tournament over the fitness-sorted view: positions index `order`
        let tournament = |order: &[usize], fit: &[f64], rng: &mut StdRng| -> usize {
            let a = rng.gen_range(0..order.len());
            let b = rng.gen_range(0..order.len());
            if fit[order[a]] <= fit[order[b]] {
                order[a]
            } else {
                order[b]
            }
        };

        for _ in 0..self.generations {
            let order = argsort(&fit);
            let elite = chroms[order[0]].clone();
            let elite_fit = fit[order[0]];
            let mut next = vec![elite];
            while next.len() < self.population {
                let pa = &chroms[tournament(&order, &fit, &mut rng)];
                let pb = &chroms[tournament(&order, &fit, &mut rng)];
                // uniform crossover on both parts
                let mut child = Chromosome {
                    priority: (0..n)
                        .map(|i| {
                            if rng.gen::<bool>() {
                                pa.priority[i]
                            } else {
                                pb.priority[i]
                            }
                        })
                        .collect(),
                    assign: (0..n)
                        .map(|i| {
                            if rng.gen::<bool>() {
                                pa.assign[i]
                            } else {
                                pb.assign[i]
                            }
                        })
                        .collect(),
                };
                // mutation: gaussian jitter on priorities, reset on procs
                for i in 0..n {
                    if rng.gen::<f64>() < self.mutation_rate {
                        child.priority[i] += hetsched_platform::dist::standard_normal(&mut rng)
                            * (child.priority[i].abs().max(1.0) * 0.1);
                    }
                    if rng.gen::<f64>() < self.mutation_rate {
                        child.assign[i] = rng.gen_range(0..np);
                    }
                }
                next.push(child);
            }
            // elite fitness is carried, children are batch-evaluated
            let child_fit = eval(&next[1..]);
            fit.clear();
            fit.push(elite_fit);
            fit.extend(child_fit);
            chroms = next;
        }
        let order = argsort(&fit);
        decode(dag, sys, &chroms[order[0]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::EtcParams;

    fn quick_ga() -> Genetic {
        Genetic {
            population: 10,
            generations: 10,
            mutation_rate: 0.1,
            seed: 7,
        }
    }

    #[test]
    fn decodes_valid_schedules() {
        let dag = dag_from_edges(
            &[2.0, 3.0, 1.0, 4.0],
            &[(0, 1, 5.0), (0, 2, 5.0), (1, 3, 5.0), (2, 3, 5.0)],
        )
        .unwrap();
        let sys = System::homogeneous_unit(&dag, 3);
        let s = quick_ga().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert!(s.is_complete());
    }

    #[test]
    fn never_worse_than_heft_thanks_to_seeding_and_elitism() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let dag = hetsched_workloads::random_dag(
                &hetsched_workloads::RandomDagParams::new(25, 1.0, 2.0),
                &mut rng,
            );
            let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
            let heft = Heft::new().schedule(&dag, &sys).makespan();
            let ga = quick_ga().schedule(&dag, &sys);
            assert_eq!(validate(&dag, &sys, &ga), Ok(()), "seed {seed}");
            assert!(
                ga.makespan() <= heft + 1e-6,
                "seed {seed}: GA {} vs HEFT {heft}",
                ga.makespan()
            );
        }
    }

    #[test]
    fn is_deterministic_for_a_fixed_seed() {
        let mut rng = StdRng::seed_from_u64(3);
        let dag = hetsched_workloads::random_dag(
            &hetsched_workloads::RandomDagParams::new(20, 1.0, 1.0),
            &mut rng,
        );
        let sys = System::heterogeneous_random(&dag, 3, &EtcParams::range_based(1.0), &mut rng);
        let a = quick_ga().schedule(&dag, &sys);
        let b = quick_ga().schedule(&dag, &sys);
        assert_eq!(a.makespan(), b.makespan());
        for t in dag.task_ids() {
            assert_eq!(a.assignment(t), b.assignment(t));
        }
    }

    #[test]
    fn decoding_heft_seed_reproduces_a_heft_quality_schedule() {
        let mut rng = StdRng::seed_from_u64(4);
        let dag = hetsched_workloads::random_dag(
            &hetsched_workloads::RandomDagParams::new(30, 1.0, 1.0),
            &mut rng,
        );
        let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
        let heft_sched = Heft::new().schedule(&dag, &sys);
        let chrom = Chromosome {
            priority: crate::rank::upward_rank_raw(&dag, &sys, CostAggregation::Mean),
            assign: dag
                .task_ids()
                .map(|t| heft_sched.task_proc(t).unwrap().0)
                .collect(),
        };
        let decoded = decode(&dag, &sys, &chrom);
        assert_eq!(validate(&dag, &sys, &decoded), Ok(()));
        // same order + same assignment + insertion placement = makespan
        // no worse than HEFT's
        assert!(decoded.makespan() <= heft_sched.makespan() + 1e-9);
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
