//! GA — a genetic-algorithm metaheuristic scheduler (extension baseline).
//!
//! Scheduling GAs were the standard "how much is left on the table" probe
//! of the HEFT era: slower by orders of magnitude, but able to escape
//! list-scheduling's greedy horizon. This implementation uses the classic
//! priority-vector encoding:
//!
//! * a chromosome is a **priority gene** per task plus a **processor
//!   assignment** per task;
//! * decoding runs a ready-list simulation — among ready tasks, the
//!   highest gene priority goes next, placed on its assigned processor at
//!   the earliest (insertion) start — so every chromosome decodes to a
//!   *valid* schedule by construction;
//! * uniform crossover and gaussian/reset mutation on both parts,
//!   tournament selection, elitism, and a HEFT-seeded initial population
//!   (so the GA never returns anything worse than HEFT).
//!
//! The search is deterministic for a fixed `seed`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{ProcId, System};

use crate::algorithms::Heft;
use crate::cost::CostAggregation;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// Genetic-algorithm scheduler.
#[derive(Debug, Clone, Copy)]
pub struct Genetic {
    /// Population size (≥ 2).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// RNG seed (the whole search is deterministic given this).
    pub seed: u64,
}

impl Genetic {
    /// Default configuration: population 24, 40 generations.
    pub fn new() -> Self {
        Genetic {
            population: 24,
            generations: 40,
            mutation_rate: 0.08,
            seed: 0x6a_5eed,
        }
    }
}

impl Default for Genetic {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Clone)]
struct Chromosome {
    /// Priority gene per task (higher = earlier among ready tasks).
    priority: Vec<f64>,
    /// Assigned processor per task.
    assign: Vec<u32>,
}

/// Decode a chromosome into a schedule: ready-list order by gene priority,
/// insertion-based earliest start on the assigned processor.
fn decode(dag: &Dag, sys: &System, ch: &Chromosome) -> Schedule {
    let n = dag.num_tasks();
    let mut sched = Schedule::new(n, sys.num_procs());
    let mut remaining: Vec<usize> = dag.task_ids().map(|t| dag.in_degree(t)).collect();
    let mut ready: Vec<TaskId> = dag.entry_tasks().collect();
    while !ready.is_empty() {
        let (ri, &t) = ready
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                ch.priority[a.index()]
                    .total_cmp(&ch.priority[b.index()])
                    .then_with(|| b.cmp(&a))
            })
            .expect("ready set non-empty");
        let t = {
            ready.swap_remove(ri);
            t
        };
        let p = ProcId(ch.assign[t.index()]);
        let ready_time = crate::eft::data_ready_time_raw(dag, sys, &sched, t, p);
        let dur = sys.exec_time(t, p);
        let start = sched.earliest_start(p, ready_time, dur, true);
        sched
            .insert(t, p, start, dur)
            .expect("decoded placement is conflict-free");
        for (s, _) in dag.successors(t) {
            let r = &mut remaining[s.index()];
            *r -= 1;
            if *r == 0 {
                ready.push(s);
            }
        }
    }
    sched
}

impl Scheduler for Genetic {
    fn name(&self) -> &'static str {
        "GA"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        assert!(self.population >= 2, "population must be at least 2");
        let n = dag.num_tasks();
        let np = sys.num_procs() as u32;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // seed individual: HEFT's upward ranks as priorities, HEFT's
        // assignment as genes — decodes to (essentially) HEFT's schedule
        let heft_sched = Heft::new().schedule_instance(inst);
        let heft_chrom = Chromosome {
            priority: inst.upward_rank(CostAggregation::Mean).as_ref().clone(),
            assign: dag
                .task_ids()
                .map(|t| heft_sched.task_proc(t).expect("complete").0)
                .collect(),
        };

        let mut population: Vec<(f64, Chromosome)> = Vec::with_capacity(self.population);
        let fitness = |ch: &Chromosome| decode(dag, sys, ch).makespan();
        population.push((fitness(&heft_chrom), heft_chrom.clone()));
        while population.len() < self.population {
            let ch = Chromosome {
                priority: (0..n).map(|_| rng.gen::<f64>()).collect(),
                assign: (0..n).map(|_| rng.gen_range(0..np)).collect(),
            };
            population.push((fitness(&ch), ch));
        }

        let tournament = |pop: &[(f64, Chromosome)], rng: &mut StdRng| -> Chromosome {
            let a = rng.gen_range(0..pop.len());
            let b = rng.gen_range(0..pop.len());
            if pop[a].0 <= pop[b].0 {
                pop[a].1.clone()
            } else {
                pop[b].1.clone()
            }
        };

        for _ in 0..self.generations {
            population.sort_by(|x, y| x.0.total_cmp(&y.0));
            let elite = population[0].clone();
            let mut next = vec![elite];
            while next.len() < self.population {
                let pa = tournament(&population, &mut rng);
                let pb = tournament(&population, &mut rng);
                // uniform crossover on both parts
                let mut child = Chromosome {
                    priority: (0..n)
                        .map(|i| {
                            if rng.gen::<bool>() {
                                pa.priority[i]
                            } else {
                                pb.priority[i]
                            }
                        })
                        .collect(),
                    assign: (0..n)
                        .map(|i| {
                            if rng.gen::<bool>() {
                                pa.assign[i]
                            } else {
                                pb.assign[i]
                            }
                        })
                        .collect(),
                };
                // mutation: gaussian jitter on priorities, reset on procs
                for i in 0..n {
                    if rng.gen::<f64>() < self.mutation_rate {
                        child.priority[i] += hetsched_platform::dist::standard_normal(&mut rng)
                            * (child.priority[i].abs().max(1.0) * 0.1);
                    }
                    if rng.gen::<f64>() < self.mutation_rate {
                        child.assign[i] = rng.gen_range(0..np);
                    }
                }
                next.push((fitness(&child), child));
            }
            population = next;
        }
        population.sort_by(|x, y| x.0.total_cmp(&y.0));
        decode(dag, sys, &population[0].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::EtcParams;

    fn quick_ga() -> Genetic {
        Genetic {
            population: 10,
            generations: 10,
            mutation_rate: 0.1,
            seed: 7,
        }
    }

    #[test]
    fn decodes_valid_schedules() {
        let dag = dag_from_edges(
            &[2.0, 3.0, 1.0, 4.0],
            &[(0, 1, 5.0), (0, 2, 5.0), (1, 3, 5.0), (2, 3, 5.0)],
        )
        .unwrap();
        let sys = System::homogeneous_unit(&dag, 3);
        let s = quick_ga().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert!(s.is_complete());
    }

    #[test]
    fn never_worse_than_heft_thanks_to_seeding_and_elitism() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let dag = hetsched_workloads::random_dag(
                &hetsched_workloads::RandomDagParams::new(25, 1.0, 2.0),
                &mut rng,
            );
            let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
            let heft = Heft::new().schedule(&dag, &sys).makespan();
            let ga = quick_ga().schedule(&dag, &sys);
            assert_eq!(validate(&dag, &sys, &ga), Ok(()), "seed {seed}");
            assert!(
                ga.makespan() <= heft + 1e-6,
                "seed {seed}: GA {} vs HEFT {heft}",
                ga.makespan()
            );
        }
    }

    #[test]
    fn is_deterministic_for_a_fixed_seed() {
        let mut rng = StdRng::seed_from_u64(3);
        let dag = hetsched_workloads::random_dag(
            &hetsched_workloads::RandomDagParams::new(20, 1.0, 1.0),
            &mut rng,
        );
        let sys = System::heterogeneous_random(&dag, 3, &EtcParams::range_based(1.0), &mut rng);
        let a = quick_ga().schedule(&dag, &sys);
        let b = quick_ga().schedule(&dag, &sys);
        assert_eq!(a.makespan(), b.makespan());
        for t in dag.task_ids() {
            assert_eq!(a.assignment(t), b.assignment(t));
        }
    }

    #[test]
    fn decoding_heft_seed_reproduces_a_heft_quality_schedule() {
        let mut rng = StdRng::seed_from_u64(4);
        let dag = hetsched_workloads::random_dag(
            &hetsched_workloads::RandomDagParams::new(30, 1.0, 1.0),
            &mut rng,
        );
        let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
        let heft_sched = Heft::new().schedule(&dag, &sys);
        let chrom = Chromosome {
            priority: crate::rank::upward_rank_raw(&dag, &sys, CostAggregation::Mean),
            assign: dag
                .task_ids()
                .map(|t| heft_sched.task_proc(t).unwrap().0)
                .collect(),
        };
        let decoded = decode(&dag, &sys, &chrom);
        assert_eq!(validate(&dag, &sys, &decoded), Ok(()));
        // same order + same assignment + insertion placement = makespan
        // no worse than HEFT's
        assert!(decoded.makespan() <= heft_sched.makespan() + 1e-9);
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
