//! The proposed **ILS** (Improved List Scheduling) family — this
//! repository's reconstruction of the paper's contribution (see DESIGN.md
//! §3 for the provenance note).
//!
//! The family improves HEFT-style list scheduling with three knobs, each
//! individually ablatable:
//!
//! 1. **Spread-aware ranks** ([`CostAggregation::MeanStd`]): tasks whose
//!    execution time varies a lot across processors are ranked higher, so
//!    they are placed while good processors are still free.
//! 2. **One-step lookahead**: among processors whose EFT is within a
//!    tolerance of the best, pick the one that minimizes the estimated
//!    finish of the task's *critical child* instead of blindly taking the
//!    minimal EFT. This resolves the near-ties where HEFT's myopia loses.
//! 3. **Selective duplication** (ILS-D only): evaluate each candidate
//!    processor with DSH-style parent duplication and commit the best.
//!
//! * [`IlsH`] — knobs 1 + 2, for heterogeneous systems.
//! * [`IlsD`] — knobs 1 + 2 + 3.
//! * [`IlsM`] — knob 2 on ALAP (MCP-style) priorities, the homogeneous
//!   variant; on a flat ETC matrix knob 1 is vacuous, so the improvement
//!   over MCP comes from lookahead and insertion.

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{ProcId, System};

use crate::algorithms::duplication::{apply_spec, Commit, TrialSpec};
use crate::algorithms::mcp::alap_order;
use crate::cost::CostAggregation;
use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::rank::sort_by_priority_desc;
use crate::schedule::{Schedule, TIME_EPS};
use crate::Scheduler;

/// The successor of `t` with the highest `rank + mean communication` —
/// the child most likely to be on the critical path — plus the edge data.
fn critical_child(dag: &Dag, sys: &System, rank: &[f64], t: TaskId) -> Option<(TaskId, f64)> {
    let mut best: Option<(TaskId, f64, f64)> = None;
    for (s, data) in dag.successors(t) {
        let key = rank[s.index()] + sys.mean_comm(data);
        match best {
            Some((bs, _, bk)) if key < bk || (key == bk && s >= bs) => {}
            _ => best = Some((s, data, key)),
        }
    }
    best.map(|(s, data, _)| (s, data))
}

/// Optimistic estimate of the critical child's finish if `t` finishes at
/// `finish_t` on `p`: minimize over target processors `q` the child's
/// start (message from `t` or `q`'s current availability, whichever is
/// later) plus its execution time on `q`. Other parents of the child are
/// ignored — they are identical across candidates, so the estimate ranks
/// candidates correctly whenever `t`'s message is the binding constraint.
fn lookahead_score(
    sys: &System,
    sched: &Schedule,
    child: TaskId,
    data: f64,
    p: ProcId,
    finish_t: f64,
) -> f64 {
    // Flat-slice formulation of: min over q of
    // `max(finish_t + comm(data, p, q), proc_finish(q)) + exec(child, q)`
    // — term-for-term the same arithmetic as `comm_time`/`exec_time`, just
    // over the contiguous link and ETC rows.
    let (startup, inv_bw) = sys.network().link_rows(p);
    let execs = sys.etc().row(child);
    let mut best = f64::INFINITY;
    for (i, (&su, &ib)) in startup.iter().zip(inv_bw).enumerate() {
        let ready = finish_t + (su + data * ib);
        let start = ready.max(sched.proc_finish(ProcId(i as u32)));
        best = best.min(start + execs[i]);
    }
    best
}

/// One speculative ILS-D placement to score: the spec plus the critical
/// child whose estimated finish breaks near-ties.
#[derive(Debug, Clone, Copy)]
struct EvalItem {
    c: Commit,
    child: Option<(TaskId, f64)>,
}

/// Probe `item` on `s` under the trial log and return
/// `(lookahead score, finish)` — the score is computed *with the probe
/// applied* (it reads processor availabilities the placement changes),
/// then everything is rolled back, leaving `s` bit-identical.
fn eval_trial(dag: &Dag, sys: &System, s: &mut Schedule, item: &EvalItem) -> (f64, f64) {
    let p = match item.c.spec {
        TrialSpec::Plain { p, .. } | TrialSpec::Dup { p } => p,
    };
    s.begin_trial();
    let finish = apply_spec(dag, sys, s, &item.c);
    let score = match item.child {
        Some((c, data)) => lookahead_score(sys, s, c, data, p, finish),
        None => finish,
    };
    s.rollback_trial();
    (score, finish)
}

/// The replay-pool round type ILS-D fans its duplication trials out on.
type DupRounds = crate::par::Rounds<Commit, EvalItem, (f64, f64)>;

/// Shared ILS processor selection: take the EFT-candidate set within
/// `tolerance`, re-rank near-ties by the lookahead score, and place `t`
/// (with optional duplication). Returns nothing; mutates `sched`. `ctx`
/// and `cands` are scratch buffers owned by the caller's scheduling loop.
///
/// With `duplication`, candidate probes either run in-place under the
/// schedule trial log (`pool = None`) or fan out over a deterministic
/// replay pool whose replicas are kept in lockstep by re-broadcasting the
/// previous commit (`pending`). Both paths reduce with the identical fold
/// in submission order, so the placement is the same bit-for-bit.
#[allow(clippy::too_many_arguments)]
fn select_and_place(
    inst: &ProblemInstance,
    sched: &mut Schedule,
    ctx: &mut EftContext,
    cands: &mut Vec<(ProcId, f64, f64)>,
    rank: &[f64],
    t: TaskId,
    tolerance: f64,
    lookahead: bool,
    duplication: bool,
    pool: Option<&mut DupRounds>,
    pending: &mut Option<Commit>,
) {
    let (dag, sys) = (inst.dag(), inst.sys());
    ctx.eft_candidates_into(inst, sched, t, true, tolerance, cands);
    let child = if lookahead {
        critical_child(dag, sys, rank, t)
    } else {
        None
    };

    if !duplication {
        let pick = match child {
            Some((c, data)) if cands.len() > 1 => cands
                .iter()
                .copied()
                .min_by(|&(pa, _, fa), &(pb, _, fb)| {
                    let sa = lookahead_score(sys, sched, c, data, pa, fa);
                    let sb = lookahead_score(sys, sched, c, data, pb, fb);
                    sa.total_cmp(&sb)
                        .then_with(|| fa.total_cmp(&fb))
                        .then_with(|| pa.cmp(&pb))
                })
                .expect("candidate set non-empty"),
            _ => cands[0],
        };
        let (p, start, finish) = pick;
        sched
            .insert(t, p, start, finish - start)
            .expect("EFT placement is conflict-free");
        return;
    }

    // Duplication path: duplication can turn a communication-bound
    // processor into the best choice, so the tolerance-filtered set is too
    // narrow — evaluate the top processors by plain EFT instead (at least
    // the whole near-tie set, at most 3 extra).
    let near_ties = cands.len();
    let plain_best = cands[0]; // EFT-minimal placement without duplication
    ctx.eft_candidates_into(inst, sched, t, true, f64::INFINITY, cands);
    cands.truncate(near_ties.max(3));
    // the plain (no-duplication) placement competes too: greedy duplication
    // can occupy gaps later tasks would have used, so it must *win* the
    // local comparison to be committed — it probes first, as it always has
    let mut specs: Vec<Commit> = Vec::with_capacity(cands.len() + 1);
    {
        let (p, start, finish) = plain_best;
        specs.push(Commit {
            t,
            spec: TrialSpec::Plain { p, start, finish },
        });
    }
    specs.extend(cands.iter().map(|&(p, _, _)| Commit {
        t,
        spec: TrialSpec::Dup { p },
    }));
    let results: Vec<(f64, f64)> = match pool {
        Some(rounds) => rounds.round(
            pending.as_ref(),
            specs.iter().map(|&c| EvalItem { c, child }).collect(),
        ),
        None => specs
            .iter()
            .map(|&c| eval_trial(dag, sys, sched, &EvalItem { c, child }))
            .collect(),
    };
    // ordered fold over the probe results: the original `consider`
    // comparison, verbatim, in submission order
    let mut best: Option<(f64, f64, usize)> = None;
    for (i, &(score, finish)) in results.iter().enumerate() {
        let better = match &best {
            None => true,
            Some((bs, bf, _)) => {
                score + TIME_EPS < *bs
                    || ((score - *bs).abs() <= TIME_EPS && finish + TIME_EPS < *bf)
            }
        };
        if better {
            best = Some((score, finish, i));
        }
    }
    let (_, best_finish, idx) = best.expect("candidate set non-empty");
    let commit = specs[idx];
    let finish = apply_spec(dag, sys, sched, &commit);
    debug_assert_eq!(
        finish.to_bits(),
        best_finish.to_bits(),
        "re-applying the winning trial must reproduce its finish"
    );
    *pending = Some(commit);
}

/// ILS-H: spread-aware ranks + lookahead EFT selection (heterogeneous).
#[derive(Debug, Clone, Copy)]
pub struct IlsH {
    /// Rank aggregation; default `MeanStd(1.0)`.
    pub agg: CostAggregation,
    /// Relative EFT tolerance defining the near-tie candidate set.
    pub tolerance: f64,
    /// Enable the critical-child lookahead (knob 2).
    pub lookahead: bool,
}

impl IlsH {
    /// Default ILS-H configuration (`mean+1sd` ranks, 10% tolerance).
    pub fn new() -> Self {
        IlsH {
            agg: CostAggregation::MeanStd(1.0),
            tolerance: 0.1,
            lookahead: true,
        }
    }
}

impl Default for IlsH {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for IlsH {
    fn name(&self) -> &'static str {
        "ILS-H"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let rank = {
            let _span = hetsched_trace::span("rank");
            inst.upward_rank(self.agg)
        };
        let order = sort_by_priority_desc(&rank);
        let mut sched = Schedule::new(inst.dag().num_tasks(), inst.sys().num_procs());
        let mut ctx = EftContext::new(inst.sys());
        let mut cands = Vec::with_capacity(inst.sys().num_procs());
        let _span = hetsched_trace::span("place_loop");
        for (step, t) in order.into_iter().enumerate() {
            hetsched_trace::emit(|| hetsched_trace::Event::TaskSelected {
                step: step as u64,
                task: t.index() as u32,
                priority: rank[t.index()],
            });
            select_and_place(
                inst,
                &mut sched,
                &mut ctx,
                &mut cands,
                &rank,
                t,
                self.tolerance,
                self.lookahead,
                false,
                None,
                &mut None,
            );
        }
        sched
    }
}

/// ILS-D: ILS-H plus selective parent duplication (knob 3).
#[derive(Debug, Clone, Copy)]
pub struct IlsD {
    /// Rank aggregation; default `MeanStd(1.0)`.
    pub agg: CostAggregation,
    /// Relative EFT tolerance defining the near-tie candidate set.
    pub tolerance: f64,
    /// Enable the critical-child lookahead.
    pub lookahead: bool,
}

impl IlsD {
    /// Default ILS-D configuration.
    pub fn new() -> Self {
        IlsD {
            agg: CostAggregation::MeanStd(1.0),
            tolerance: 0.1,
            lookahead: true,
        }
    }
}

impl Default for IlsD {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for IlsD {
    fn name(&self) -> &'static str {
        "ILS-D"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let rank = {
            let _span = hetsched_trace::span("rank");
            inst.upward_rank(self.agg)
        };
        let order = sort_by_priority_desc(&rank);
        // each round probes one plain placement plus up to
        // `max(near_ties, 3)` duplication candidates — more workers than
        // processors + 1 can never all be busy
        let jobs = crate::par::effective_jobs().min(sys.num_procs() + 1);

        let run = |pool: Option<&mut DupRounds>| -> Schedule {
            let mut pool = pool;
            let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
            let mut ctx = EftContext::new(sys);
            let mut cands = Vec::with_capacity(sys.num_procs());
            let mut pending: Option<Commit> = None;
            let _span = hetsched_trace::span("place_loop");
            for (step, &t) in order.iter().enumerate() {
                hetsched_trace::emit(|| hetsched_trace::Event::TaskSelected {
                    step: step as u64,
                    task: t.index() as u32,
                    priority: rank[t.index()],
                });
                select_and_place(
                    inst,
                    &mut sched,
                    &mut ctx,
                    &mut cands,
                    &rank,
                    t,
                    self.tolerance,
                    self.lookahead,
                    true,
                    pool.as_deref_mut(),
                    &mut pending,
                );
            }
            sched
        };

        if jobs <= 1 {
            run(None)
        } else {
            crate::par::scoped_replay_pool(
                jobs,
                || Schedule::new(dag.num_tasks(), sys.num_procs()),
                |s: &mut Schedule, c: &Commit| {
                    apply_spec(dag, sys, s, c);
                },
                |s: &mut Schedule, item: &EvalItem| eval_trial(dag, sys, s, item),
                |rounds| run(Some(rounds)),
            )
        }
    }
}

/// ILS-M: the homogeneous variant — MCP's ALAP priorities with ILS's
/// insertion + lookahead placement.
#[derive(Debug, Clone, Copy)]
pub struct IlsM {
    /// Relative EFT tolerance for the candidate set.
    pub tolerance: f64,
}

impl IlsM {
    /// Default ILS-M configuration (10% tolerance).
    pub fn new() -> Self {
        IlsM { tolerance: 0.1 }
    }
}

impl Default for IlsM {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for IlsM {
    fn name(&self) -> &'static str {
        "ILS-M"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let agg = CostAggregation::Mean;
        let (alap, rank) = {
            let _span = hetsched_trace::span("rank");
            // lookahead uses upward rank to find critical children
            (inst.alst(agg), inst.upward_rank(agg))
        };
        let order = alap_order(inst.dag(), &alap);
        let mut sched = Schedule::new(inst.dag().num_tasks(), inst.sys().num_procs());
        let mut ctx = EftContext::new(inst.sys());
        let mut cands = Vec::with_capacity(inst.sys().num_procs());
        let _span = hetsched_trace::span("place_loop");
        for (step, t) in order.into_iter().enumerate() {
            hetsched_trace::emit(|| hetsched_trace::Event::TaskSelected {
                step: step as u64,
                task: t.index() as u32,
                priority: alap[t.index()],
            });
            select_and_place(
                inst,
                &mut sched,
                &mut ctx,
                &mut cands,
                &rank,
                t,
                self.tolerance,
                true,
                false,
                None,
                &mut None,
            );
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Heft;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::Dag;
    use hetsched_platform::{EtcMatrix, Network};

    fn diamond_het() -> (Dag, System) {
        let dag = dag_from_edges(
            &[2.0, 3.0, 3.0, 2.0],
            &[(0, 1, 5.0), (0, 2, 5.0), (1, 3, 5.0), (2, 3, 5.0)],
        )
        .unwrap();
        let etc = EtcMatrix::from_fn(4, 3, |t, p| {
            // processor 2 is slow for everything; 0 and 1 alternate
            let base = [2.0, 3.0, 3.0, 2.0][t.index()];
            match p.index() {
                0 => base,
                1 => base * 1.2,
                _ => base * 2.0,
            }
        });
        (dag, System::new(etc, Network::unit(3)))
    }

    #[test]
    fn ils_h_produces_valid_schedules() {
        let (dag, sys) = diamond_het();
        let s = IlsH::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert!(s.is_complete());
    }

    #[test]
    fn ils_d_produces_valid_schedules_and_may_duplicate() {
        // high-CCR fork where duplication is the right move
        let dag = dag_from_edges(&[1.0, 2.0, 2.0], &[(0, 1, 50.0), (0, 2, 50.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let s = IlsD::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert!(s.makespan() <= 3.0 + 1e-9, "makespan {}", s.makespan());
        assert!(s.num_duplicates() >= 1);
    }

    #[test]
    fn ils_m_valid_on_homogeneous() {
        let dag = dag_from_edges(
            &[1.0, 4.0, 1.0, 1.0, 2.0],
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (1, 4, 1.0),
                (2, 3, 2.0),
                (3, 4, 1.0),
            ],
        )
        .unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let s = IlsM::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }

    #[test]
    fn lookahead_breaks_near_ties_toward_the_child() {
        // t0 can go on p0 or p1 with identical EFT; its only child's data
        // is huge, and p1 is much faster for the child — lookahead must
        // route t0 to the processor that serves the child best (the child
        // then runs locally on p1).
        let dag = dag_from_edges(&[4.0, 8.0], &[(0, 1, 100.0)]).unwrap();
        let etc = EtcMatrix::from_fn(2, 2, |t, p| match (t.index(), p.index()) {
            (0, _) => 4.0,  // t0 identical everywhere
            (1, 0) => 80.0, // t1 terrible on p0
            (1, 1) => 8.0,  // t1 great on p1
            _ => unreachable!(),
        });
        let sys = System::new(etc, Network::unit(2));
        let s = IlsH::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert_eq!(
            s.task_proc(hetsched_dag::TaskId(0)),
            Some(hetsched_platform::ProcId(1))
        );
        assert_eq!(
            s.task_proc(hetsched_dag::TaskId(1)),
            Some(hetsched_platform::ProcId(1))
        );
        // HEFT (pure EFT, tie -> p0) pays the 100-unit message or the slow child
        let heft = Heft::new().schedule(&dag, &sys).makespan();
        assert!(
            s.makespan() <= heft + 1e-9,
            "ils {} heft {heft}",
            s.makespan()
        );
        assert_eq!(s.makespan(), 12.0);
    }

    #[test]
    fn zero_tolerance_disables_lookahead_effect_when_unique_best() {
        let (dag, sys) = diamond_het();
        let strict = IlsH {
            tolerance: 0.0,
            ..IlsH::new()
        };
        let s = strict.schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }

    #[test]
    fn critical_child_picks_heaviest_successor() {
        let dag = dag_from_edges(&[1.0, 5.0, 1.0], &[(0, 1, 2.0), (0, 2, 2.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let rank = crate::rank::upward_rank_raw(&dag, &sys, CostAggregation::Mean);
        let cc = critical_child(&dag, &sys, &rank, hetsched_dag::TaskId(0));
        assert_eq!(cc.map(|(c, _)| c), Some(hetsched_dag::TaskId(1)));
        // exit task has no critical child
        assert_eq!(
            critical_child(&dag, &sys, &rank, hetsched_dag::TaskId(1)),
            None
        );
    }
}
