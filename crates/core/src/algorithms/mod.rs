//! Scheduling algorithms: classic baselines and the proposed ILS family.
//!
//! Every algorithm implements [`crate::Scheduler`]; the registry functions
//! at the bottom hand experiment harnesses a ready-made comparison set.

mod contention_aware;
mod cpop;
mod dls;
mod duplication;
mod etf;
mod genetic;
mod hcpt;
mod heft;
mod hlfet;
mod hoft;
mod ils;
mod maxmin;
mod mcp;
mod minmin;
pub mod optimal;
mod peft;
mod pets;

pub use contention_aware::CaHeft;
pub use cpop::Cpop;
pub use dls::Dls;
pub use duplication::DupHeft;
pub use etf::Etf;
pub use genetic::Genetic;
pub use hcpt::Hcpt;
pub use heft::Heft;
pub use hlfet::Hlfet;
pub use hoft::Hoft;
pub use ils::{IlsD, IlsH, IlsM};
pub use maxmin::MaxMin;
pub use mcp::Mcp;
pub use minmin::MinMin;
pub use optimal::BranchAndBound;
pub use peft::Peft;
pub use pets::Pets;

use crate::Scheduler;

/// The baseline comparison set for heterogeneous experiments, in the order
/// reports print them.
pub fn heterogeneous_baselines() -> Vec<Box<dyn Scheduler + Send + Sync>> {
    vec![
        Box::new(Heft::default()),
        Box::new(Heft::no_insertion()),
        Box::new(Cpop::default()),
        Box::new(Dls::default()),
        Box::new(Hcpt::default()),
        Box::new(Pets::default()),
        Box::new(Peft),
        Box::new(Hoft),
        Box::new(MinMin),
        Box::new(MaxMin),
        Box::new(DupHeft::default()),
    ]
}

/// The proposed schedulers of this repository.
pub fn proposed() -> Vec<Box<dyn Scheduler + Send + Sync>> {
    vec![Box::new(IlsH::default()), Box::new(IlsD::default())]
}

/// Proposed + baselines: the full heterogeneous comparison set.
pub fn all_heterogeneous() -> Vec<Box<dyn Scheduler + Send + Sync>> {
    let mut v = proposed();
    v.extend(heterogeneous_baselines());
    v
}

/// The homogeneous comparison set (flat ETC matrices): the homogeneous
/// classics plus the schedulers that degrade gracefully to that case.
pub fn homogeneous_set() -> Vec<Box<dyn Scheduler + Send + Sync>> {
    vec![
        Box::new(IlsM::default()),
        Box::new(Mcp::default()),
        Box::new(Etf::default()),
        Box::new(Hlfet::default()),
        Box::new(Heft::default()),
        Box::new(IlsH::default()),
    ]
}

/// Look up a scheduler by its registry name (`"HEFT"`, `"ILS-D"`, ...).
///
/// Covers every scheduler in [`all_heterogeneous`] and [`homogeneous_set`]
/// plus `"BNB"` (exact branch-and-bound with the default budget). Returns
/// `None` for unknown names.
pub fn by_name(name: &str) -> Option<Box<dyn Scheduler + Send + Sync>> {
    for alg in all_heterogeneous().into_iter().chain(homogeneous_set()) {
        if alg.name() == name {
            return Some(alg);
        }
    }
    match name {
        "BNB" => Some(Box::new(BranchAndBound::new())),
        "CA-HEFT" => Some(Box::new(CaHeft::new())),
        "GA" => Some(Box::new(Genetic::new())),
        _ => None,
    }
}

/// Every registry name [`by_name`] accepts, in presentation order.
pub fn known_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all_heterogeneous()
        .iter()
        .chain(homogeneous_set().iter())
        .map(|a| a.name())
        .collect();
    names.push("BNB");
    names.push("CA-HEFT");
    names.push("GA");
    // the two registries overlap; drop non-adjacent repeats while keeping
    // presentation order
    let mut seen = Vec::new();
    names.retain(|n| {
        if seen.contains(n) {
            false
        } else {
            seen.push(*n);
            true
        }
    });
    names
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn by_name_finds_every_known_name() {
        for name in known_names() {
            let alg = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(alg.name(), name);
        }
        assert!(by_name("NOPE").is_none());
    }

    #[test]
    fn known_names_has_no_duplicates() {
        let names = known_names();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        assert!(names.contains(&"HEFT"));
        assert!(names.contains(&"ILS-M"));
        assert!(names.contains(&"BNB"));
    }
}

#[cfg(test)]
mod conformance;
