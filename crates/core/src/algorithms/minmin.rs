//! Min-Min adapted to DAGs (the Ibarra & Kim batch heuristic lineage).
//!
//! Repeatedly: among currently *ready* tasks, compute each task's minimum
//! EFT over all processors, then schedule the task whose minimum EFT is
//! smallest. Greedy and myopic — it has no notion of the critical path —
//! which is exactly why it is a useful floor in comparisons: list
//! schedulers that lose to Min-Min are mis-prioritizing.

use hetsched_dag::TaskId;

use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// Min-Min scheduler (ready-set batch mode, insertion-based EFT).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinMin;

impl MinMin {
    /// New Min-Min scheduler.
    pub fn new() -> Self {
        MinMin
    }
}

impl Scheduler for MinMin {
    fn name(&self) -> &'static str {
        "MinMin"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
        let mut remaining_preds: Vec<usize> = dag.task_ids().map(|t| dag.in_degree(t)).collect();
        let mut ready: Vec<TaskId> = dag.entry_tasks().collect();
        let mut ctx = EftContext::new(sys);

        while !ready.is_empty() {
            let mut best: Option<(usize, hetsched_platform::ProcId, f64, f64)> = None;
            for (ri, &t) in ready.iter().enumerate() {
                let (p, s, f) = ctx.best_eft(inst, &sched, t, true);
                let better = match best {
                    None => true,
                    Some((bri, _, _, bf)) => f < bf || (f == bf && t < ready[bri]),
                };
                if better {
                    best = Some((ri, p, s, f));
                }
            }
            let (ri, p, start, finish) = best.expect("ready set non-empty");
            let t = ready.swap_remove(ri);
            sched
                .insert(t, p, start, finish - start)
                .expect("EFT placement is conflict-free");
            for (s, _) in dag.successors(t) {
                let r = &mut remaining_preds[s.index()];
                *r -= 1;
                if *r == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert!(sched.is_complete());
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::{EtcMatrix, Network, ProcId, System};

    #[test]
    fn schedules_shortest_ready_task_first() {
        // two independent tasks, one short one long, one processor:
        // Min-Min runs the short one first.
        let dag = dag_from_edges(&[9.0, 1.0], &[]).unwrap();
        let sys = System::homogeneous_unit(&dag, 1);
        let s = MinMin::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        let (_, start_long, _) = s.assignment(TaskId(0)).unwrap();
        let (_, start_short, _) = s.assignment(TaskId(1)).unwrap();
        assert!(start_short < start_long);
    }

    use hetsched_dag::TaskId;

    #[test]
    fn exploits_heterogeneity() {
        let dag = dag_from_edges(&[6.0, 6.0], &[]).unwrap();
        let etc = EtcMatrix::from_fn(2, 2, |t, p| if t.index() == p.index() { 1.0 } else { 6.0 });
        let sys = System::new(etc, Network::unit(2));
        let s = MinMin::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert_eq!(s.task_proc(TaskId(0)), Some(ProcId(0)));
        assert_eq!(s.task_proc(TaskId(1)), Some(ProcId(1)));
    }

    #[test]
    fn valid_on_deep_chain() {
        let n = 20u32;
        let weights = vec![1.0; n as usize];
        let edges: Vec<(u32, u32, f64)> = (1..n).map(|i| (i - 1, i, 2.0)).collect();
        let dag = dag_from_edges(&weights, &edges).unwrap();
        let sys = System::homogeneous_unit(&dag, 4);
        let s = MinMin::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert_eq!(s.makespan(), 20.0, "chain stays on one processor");
    }
}
