//! HOFT — Heterogeneous Optimistic Finish Time (McSweeney, Walton,
//! Zounon; generalized here from the fork-join simulators to arbitrary
//! processor counts).
//!
//! HOFT precomputes, for every `(task, processor)` pair, the *optimistic
//! finish time*: the earliest the whole downstream graph could finish if
//! `task` ran on that processor and every descendant were then placed
//! ideally, ignoring resource contention. The table drives both phases of
//! the list scheduler:
//!
//! * **ranking** — a task's priority is the max/min ratio of its OFT row
//!   (how much its placement matters on this system) plus the maximal
//!   successor priority, giving a topological order that surfaces
//!   placement-sensitive tasks early;
//! * **selection** — instead of committing to the minimum-EFT processor,
//!   HOFT also considers the *fastest* processor for the task and keeps
//!   whichever has the better `EFT + optimistic remaining work` score: a
//!   one-step lookahead that accepts a locally worse finish when the
//!   downstream table says it pays off.
//!
//! Placement mechanics (data-ready frontier, insertion-based gap search)
//! are shared with the rest of the EFT family through [`EftContext`], so
//! HOFT participates in the reference-engine bit-identity contract like
//! every other scheduler.

use hetsched_dag::Dag;
use hetsched_platform::{ProcId, System};

use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::rank::sort_by_priority_desc;
use crate::schedule::Schedule;
use crate::Scheduler;

/// HOFT: optimistic-finish-time table driving ratio ranking and
/// two-candidate lookahead processor selection.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hoft;

impl Hoft {
    /// The OFT table, flattened row-major (`oft[t * np + p]`):
    ///
    /// ```text
    /// OFT(t, p) = w(t, p) + max over children c of
    ///                 min over q of ( comm(t→c data, p, q) + OFT(c, q) )
    /// ```
    ///
    /// computed backwards over the topological order. Exit tasks have no
    /// tail, so their row is the ETC row.
    pub(crate) fn oft_table(dag: &Dag, sys: &System) -> Vec<f64> {
        let np = sys.num_procs();
        let net = sys.network();
        let mut oft = vec![0.0f64; dag.num_tasks() * np];
        for &t in dag.topo_order().iter().rev() {
            let w = sys.etc().row(t);
            for p in 0..np {
                let pid = ProcId(p as u32);
                let tail = dag
                    .successors(t)
                    .map(|(c, data)| {
                        (0..np)
                            .map(|q| {
                                oft[c.index() * np + q] + net.comm_time(data, pid, ProcId(q as u32))
                            })
                            .fold(f64::INFINITY, f64::min)
                    })
                    .fold(0.0f64, f64::max);
                oft[t.index() * np + p] = w[p] + tail;
            }
        }
        oft
    }

    /// Priorities from the OFT table: `rank(t) = ratio(t) + max successor
    /// rank`, where `ratio(t)` is `max_p OFT(t,p) / min_p OFT(t,p)` (1.0
    /// when the minimum is zero — a zero-cost tail has nothing to gain
    /// from placement). `ratio >= 1`, so every task outranks all of its
    /// successors and the non-increasing order is topological.
    pub(crate) fn priorities(dag: &Dag, np: usize, oft: &[f64]) -> Vec<f64> {
        let mut rank = vec![0.0f64; dag.num_tasks()];
        for &t in dag.topo_order().iter().rev() {
            let row = &oft[t.index() * np..][..np];
            let (mut mx, mut mn) = (f64::NEG_INFINITY, f64::INFINITY);
            for &v in row {
                mx = mx.max(v);
                mn = mn.min(v);
            }
            let ratio = if mn > 0.0 { mx / mn } else { 1.0 };
            let tail = dag
                .successors(t)
                .map(|(s, _)| rank[s.index()])
                .fold(0.0f64, f64::max);
            rank[t.index()] = ratio + tail;
        }
        rank
    }

    /// The full HOFT run against a caller-owned context (the batched
    /// `schedule_many` path threads one context through every instance).
    fn schedule_with_ctx(&self, inst: &ProblemInstance, ctx: &mut EftContext) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let np = sys.num_procs();
        let (oft, rank) = {
            let _span = hetsched_trace::span("rank");
            let oft = Self::oft_table(dag, sys);
            let rank = Self::priorities(dag, np, &oft);
            (oft, rank)
        };
        let order = sort_by_priority_desc(&rank);
        let mut sched = Schedule::new(dag.num_tasks(), np);
        self.place_from(inst, &oft, &rank, &order, 0, &mut sched, ctx);
        sched
    }

    /// The two-candidate lookahead placement loop from rank-order position
    /// `from` onward, shared between the from-scratch run (which starts at
    /// 0 on an empty schedule) and [`Hoft::repair`] (which replays the
    /// parent's leading placements and resumes from the first touched
    /// position). Both callers execute identical placement code over
    /// identical schedule state — the repair bit-identity argument needs
    /// exactly that.
    #[allow(clippy::too_many_arguments)] // two-call-site plumbing of run state
    pub(crate) fn place_from(
        &self,
        inst: &ProblemInstance,
        oft: &[f64],
        rank: &[f64],
        order: &[hetsched_dag::TaskId],
        from: usize,
        sched: &mut Schedule,
        ctx: &mut EftContext,
    ) {
        let sys = inst.sys();
        let np = sys.num_procs();
        let _span = hetsched_trace::span("eft_loop");
        let tracing = hetsched_trace::enabled();
        // per-task EFT row, arena-recycled like the context's frontier
        let mut starts = crate::arena::take_f64(np);
        let mut fins = crate::arena::take_f64(np);
        for (step, &t) in order.iter().enumerate().skip(from) {
            hetsched_trace::emit(|| hetsched_trace::Event::TaskSelected {
                step: step as u64,
                task: t.index() as u32,
                priority: rank[t.index()],
            });
            let durs = sys.etc().row(t);
            let ready = ctx.data_ready_all(inst, sched, t);
            let mut p_eft = 0usize;
            let mut p_fast = 0usize;
            for (p, (&r, &dur)) in ready.iter().zip(durs).enumerate() {
                let start = sched.earliest_start(ProcId(p as u32), r, dur, true);
                starts[p] = start;
                fins[p] = start + dur;
                // both argmins keep the first (smallest-id) minimum,
                // mirroring the engine's best_eft tie-break
                if fins[p] < fins[p_eft] {
                    p_eft = p;
                }
                if dur < durs[p_fast] {
                    p_fast = p;
                }
            }
            // Lookahead: the minimum-EFT processor competes with the
            // fastest one on `EFT + optimistic tail` (the OFT entry minus
            // the execution cost it already counts). The fastest processor
            // wins only a strict comparison, so when the lookahead is
            // indifferent HOFT behaves exactly like EFT selection.
            let chosen = if p_fast != p_eft {
                let score = |p: usize| fins[p] + (oft[t.index() * np + p] - durs[p]);
                if score(p_fast) < score(p_eft) {
                    p_fast
                } else {
                    p_eft
                }
            } else {
                p_eft
            };
            let (p, start, finish) = (ProcId(chosen as u32), starts[chosen], fins[chosen]);
            if tracing {
                let candidates = ready
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| hetsched_trace::Candidate {
                        proc: i as u32,
                        ready: r,
                        start: starts[i],
                        finish: fins[i],
                    })
                    .collect();
                hetsched_trace::emit(|| hetsched_trace::Event::EftDecision {
                    task: t.index() as u32,
                    proc: p.index() as u32,
                    start,
                    finish,
                    gap_used: start < sched.proc_finish(p),
                    candidates,
                });
            }
            sched
                .insert(t, p, start, finish - start)
                .expect("HOFT placement is conflict-free by construction");
        }
        crate::arena::recycle_f64(starts);
        crate::arena::recycle_f64(fins);
    }
}

impl Scheduler for Hoft {
    fn name(&self) -> &'static str {
        "HOFT"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let mut ctx = EftContext::new(inst.sys());
        self.schedule_with_ctx(inst, &mut ctx)
    }

    fn schedule_many(&self, insts: &[ProblemInstance]) -> Vec<Schedule> {
        let mut ctx: Option<EftContext> = None;
        insts
            .iter()
            .map(|inst| {
                let c = ctx.get_or_insert_with(|| EftContext::new(inst.sys()));
                c.reset_for(inst.sys());
                self.schedule_with_ctx(inst, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::TaskId;
    use hetsched_platform::{EtcMatrix, EtcParams, Network};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oft_table_on_a_chain_matches_hand_computation() {
        // chain 0 -> 1 with data 4.0, homogeneous unit network (comm = 4
        // between distinct procs, 0 locally), w(0) = 2, w(1) = 3
        let dag = dag_from_edges(&[2.0, 3.0], &[(0, 1, 4.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let oft = Hoft::oft_table(&dag, &sys);
        // exit rows are the ETC rows
        assert_eq!(&oft[2..], &[3.0, 3.0]);
        // OFT(0, p) = 2 + min(local 0 + 3, remote 4 + 3) = 5 on both procs
        assert_eq!(&oft[..2], &[5.0, 5.0]);
    }

    #[test]
    fn priorities_are_topological_and_ratio_based() {
        let dag = dag_from_edges(
            &[2.0, 3.0, 1.0, 2.0],
            &[(0, 1, 4.0), (0, 2, 1.0), (1, 3, 2.0), (2, 3, 3.0)],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let sys = System::heterogeneous_random(&dag, 3, &EtcParams::range_based(1.0), &mut rng);
        let oft = Hoft::oft_table(&dag, &sys);
        let rank = Hoft::priorities(&dag, 3, &oft);
        let order = sort_by_priority_desc(&rank);
        assert!(hetsched_dag::topo::is_topological(&dag, &order));
        // every task strictly outranks its successors
        for t in dag.task_ids() {
            for (s, _) in dag.successors(t) {
                assert!(rank[t.index()] > rank[s.index()]);
            }
        }
    }

    #[test]
    fn schedules_randoms_validly() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [10, 40] {
            let dag = hetsched_workloads::random_dag(
                &hetsched_workloads::RandomDagParams::new(n, 1.0, 1.5),
                &mut rng,
            );
            let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
            let s = Hoft.schedule(&dag, &sys);
            assert_eq!(validate(&dag, &sys, &s), Ok(()), "n={n}");
            assert!(s.is_complete());
        }
    }

    #[test]
    fn lookahead_keeps_chain_on_the_fast_processor() {
        // 0 -> 1, p1 is far faster for both; EFT alone would already pick
        // it, and the lookahead must agree (never degrade the obvious case)
        let dag = dag_from_edges(&[10.0, 10.0], &[(0, 1, 0.0)]).unwrap();
        let etc = EtcMatrix::from_fn(2, 2, |_, p| if p.index() == 1 { 1.0 } else { 10.0 });
        let sys = System::new(etc, Network::unit(2));
        let s = Hoft.schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert_eq!(s.task_proc(TaskId(0)), Some(ProcId(1)));
        assert_eq!(s.task_proc(TaskId(1)), Some(ProcId(1)));
        assert_eq!(s.makespan(), 2.0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Hoft.name(), "HOFT");
    }
}
