//! PETS — Performance Effective Task Scheduling (Ilavarasan &
//! Thambidurai, 2007; contemporaneous with the reproduced paper).
//!
//! A level-sorted list scheduler: tasks are grouped by ASAP level, and
//! within each level ordered by decreasing *rank*
//!
//! ```text
//! rank(t) = round( ACC(t) + DTC(t) + RPT(t) )
//! ACC = average computation cost over processors
//! DTC = total outgoing data (transfer cost to all children)
//! RPT = highest rank among t's predecessors
//! ```
//!
//! Placement is insertion-based EFT, as in HEFT. PETS's selling point was
//! HEFT-comparable schedules at lower prioritization cost.

use hetsched_dag::TaskId;

use crate::cost::CostAggregation;
use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// PETS scheduler.
#[derive(Debug, Clone, Copy)]
pub struct Pets {
    /// Aggregation used for the ACC term (mean in the original).
    pub agg: CostAggregation,
}

impl Pets {
    /// PETS with mean computation costs (the published formulation).
    pub fn new() -> Self {
        Pets {
            agg: CostAggregation::Mean,
        }
    }
}

impl Default for Pets {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Pets {
    fn name(&self) -> &'static str {
        "PETS"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let rank = inst.pets_rank(self.agg);
        let levels = hetsched_dag::topo::asap_levels(dag);

        // order: by level ascending, then rank descending, then id
        let mut order: Vec<TaskId> = dag.task_ids().collect();
        order.sort_by(|&a, &b| {
            levels[a.index()]
                .cmp(&levels[b.index()])
                .then_with(|| rank[b.index()].total_cmp(&rank[a.index()]))
                .then_with(|| a.cmp(&b))
        });

        let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
        let mut ctx = EftContext::new(sys);
        for t in order {
            let (p, start, finish) = ctx.best_eft(inst, &sched, t, true);
            sched
                .insert(t, p, start, finish - start)
                .expect("EFT placement is conflict-free");
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::Dag;
    use hetsched_platform::System;

    fn setup() -> (Dag, System) {
        let dag = dag_from_edges(
            &[2.0, 3.0, 1.0, 4.0],
            &[(0, 1, 6.0), (0, 2, 2.0), (1, 3, 4.0), (2, 3, 4.0)],
        )
        .unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        (dag, sys)
    }

    #[test]
    fn rank_accumulates_acc_dtc_rpt() {
        let (dag, sys) = setup();
        let r = crate::rank::pets_rank_raw(&dag, &sys, CostAggregation::Mean);
        // t0: acc 2 + dtc (6 + 2) = 10, rpt 0 -> 10
        assert_eq!(r[0], 10.0);
        // t1: acc 3 + dtc 4 + rpt 10 -> 17
        assert_eq!(r[1], 17.0);
        // t2: acc 1 + dtc 4 + rpt 10 -> 15
        assert_eq!(r[2], 15.0);
        // t3: acc 4 + dtc 0 + rpt 17 -> 21
        assert_eq!(r[3], 21.0);
    }

    #[test]
    fn level_order_is_topological_and_schedule_valid() {
        let (dag, sys) = setup();
        let s = Pets::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert!(s.is_complete());
    }

    #[test]
    fn within_level_higher_rank_first() {
        let (dag, sys) = setup();
        // both t1 and t2 are level 1; t1 has higher rank -> scheduled first
        let s = Pets::new().schedule(&dag, &sys);
        let (_, s1, _) = s.assignment(hetsched_dag::TaskId(1)).unwrap();
        let (_, s2, _) = s.assignment(hetsched_dag::TaskId(2)).unwrap();
        // both start after t0; t1 gets the better (same-proc) slot
        assert!(s1 <= s2 + 1e-9, "t1 {s1} vs t2 {s2}");
    }
}
