//! Task-duplication scheduling, in the DSH / BTDH lineage (Kruatrachue &
//! Lewis 1988; Chung & Ranka 1992 — the BTDH heuristic is earlier work by
//! one of the paper's authors).
//!
//! The idea: when a task's start on its best processor is dominated by one
//! parent's message, re-execute (*duplicate*) that parent locally in an
//! idle slot so the consumer reads a local result. Duplication burns
//! processor idle time to remove communication from the critical path, so
//! it helps most at high CCR and low processor counts.

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{ProcId, System};

use crate::cost::CostAggregation;
use crate::eft::{arrival_from, critical_parent_raw, data_ready_time_raw, eft_on_raw};
use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::rank::sort_by_priority_desc;
use crate::schedule::{Schedule, TIME_EPS};
use crate::Scheduler;

/// Greedily duplicate critical parents of `t` onto `p` while each
/// duplication strictly improves the arrival of that parent's data, then
/// place `t` at its (possibly improved) EFT on `p`.
///
/// The loop duplicates *immediate* parents only (the DSH depth-1 policy,
/// which captures most of the benefit at a fraction of the cost of the
/// recursive variants); each parent can gain at most one copy per
/// processor, so the loop terminates after at most `in_degree(t)` rounds.
///
/// Returns the finish time of `t` on `p`.
pub(crate) fn place_with_duplication(
    dag: &Dag,
    sys: &System,
    sched: &mut Schedule,
    t: TaskId,
    p: ProcId,
) -> f64 {
    loop {
        let (_, finish_now) = eft_on_raw(dag, sys, sched, t, p, true);
        let Some(u) = critical_parent_raw(dag, sys, sched, t, p) else {
            break;
        };
        if sched.finish_on(u, p).is_some() {
            break; // already local
        }
        // Where could a copy of u go on p, honoring u's own parents?
        let drt_u = data_ready_time_raw(dag, sys, sched, u, p);
        let dur_u = sys.exec_time(u, p);
        let start_u = sched.earliest_start(p, drt_u, dur_u, true);
        let finish_u = start_u + dur_u;
        let edge_data = dag
            .edge_data(u, t)
            .expect("critical parent is a predecessor");
        let current_arrival = arrival_from(sys, sched, u, edge_data, p);
        if finish_u + TIME_EPS >= current_arrival {
            break; // local re-execution would not beat the message
        }
        sched
            .insert_duplicate(u, p, start_u, dur_u)
            .expect("gap search returned a free interval");
        // Only keep going if the consumer actually improved; otherwise a
        // different parent now dominates with no better options.
        let (_, finish_after) = eft_on_raw(dag, sys, sched, t, p, true);
        if finish_after + TIME_EPS >= finish_now {
            break;
        }
    }
    let (start, finish) = eft_on_raw(dag, sys, sched, t, p, true);
    sched
        .insert(t, p, start, finish - start)
        .expect("EFT placement is conflict-free");
    finish
}

/// A speculative placement to evaluate (or commit) for one task.
///
/// The duplication schedulers probe several of these per task; probing
/// runs under the schedule trial log ([`Schedule::begin_trial`]) instead
/// of cloning the schedule, and the same spec replayed on an identical
/// schedule commits the identical placement — which is what keeps the
/// replay-pool replicas of the parallel path in lockstep.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TrialSpec {
    /// Plain insertion at a precomputed interval (no duplication).
    Plain {
        /// Target processor.
        p: ProcId,
        /// Precomputed start time.
        start: f64,
        /// Precomputed finish time.
        finish: f64,
    },
    /// Duplication-assisted placement ([`place_with_duplication`]) on `p`.
    Dup {
        /// Target processor.
        p: ProcId,
    },
}

/// A task placement decision: apply [`TrialSpec`] `spec` for task `t`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Commit {
    /// The task being placed.
    pub t: TaskId,
    /// How to place it.
    pub spec: TrialSpec,
}

/// Apply `c` to `s` for real, returning the finish time of the task's
/// primary copy. Deterministic: identical schedules produce identical
/// placements (bit-for-bit).
pub(crate) fn apply_spec(dag: &Dag, sys: &System, s: &mut Schedule, c: &Commit) -> f64 {
    match c.spec {
        TrialSpec::Plain { p, start, finish } => {
            s.insert(c.t, p, start, finish - start)
                .expect("planned placement is conflict-free");
            finish
        }
        TrialSpec::Dup { p } => place_with_duplication(dag, sys, s, c.t, p),
    }
}

/// Probe `c` on `s` without keeping it: apply under the trial log, read
/// the finish, roll back. `s` is restored bit-for-bit.
pub(crate) fn trial_finish(dag: &Dag, sys: &System, s: &mut Schedule, c: &Commit) -> f64 {
    s.begin_trial();
    let finish = apply_spec(dag, sys, s, c);
    s.rollback_trial();
    finish
}

/// HEFT ordering with duplication-enhanced processor selection.
///
/// For each task the scheduler evaluates the `candidates` best processors
/// by plain EFT; for each it *simulates* duplication-assisted placement
/// under the schedule's trial log (snapshot/undo — no clone) and commits
/// the best outcome. With `candidates = 1` this is DSH-style greedy
/// duplication on HEFT's chosen processor.
///
/// With [`crate::par::effective_jobs`] > 1 the per-task candidate trials
/// fan out over a deterministic replay pool; the winner is chosen by the
/// same fold in submission order, so the schedule is bit-identical at any
/// thread count.
#[derive(Debug, Clone, Copy)]
pub struct DupHeft {
    /// How many top-EFT processors to evaluate with duplication.
    pub candidates: usize,
    /// Rank aggregation (mean, as in HEFT).
    pub agg: CostAggregation,
}

impl DupHeft {
    /// Default configuration: 3 candidate processors, mean ranks.
    pub fn new() -> Self {
        DupHeft {
            candidates: 3,
            agg: CostAggregation::Mean,
        }
    }
}

impl Default for DupHeft {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for DupHeft {
    fn name(&self) -> &'static str {
        "DUP-HEFT"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let k = self.candidates.max(1);
        let jobs = crate::par::effective_jobs().min(k);
        let order = sort_by_priority_desc(&inst.upward_rank(self.agg));

        // The winner fold, verbatim from the sequential history: keep the
        // incumbent unless the new finish beats it by more than TIME_EPS.
        let fold = |finishes: &[f64], cand: &[(ProcId, f64, f64)]| -> (f64, ProcId) {
            let mut best: Option<(f64, ProcId)> = None;
            for (i, &finish) in finishes.iter().enumerate() {
                match &best {
                    Some((bf, _)) if finish + TIME_EPS >= *bf => {}
                    _ => best = Some((finish, cand[i].0)),
                }
            }
            best.expect("at least one candidate")
        };

        let drive = |rounds: Option<&mut crate::par::Rounds<Commit, Commit, f64>>| -> Schedule {
            let mut rounds = rounds;
            let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
            let mut ctx = EftContext::new(sys);
            let mut cand: Vec<(ProcId, f64, f64)> = Vec::with_capacity(sys.num_procs());
            let mut pending: Option<Commit> = None;
            for t in order {
                // rank candidate processors by plain EFT (infinite
                // tolerance -> all processors, sorted by finish then id)
                ctx.eft_candidates_into(inst, &sched, t, true, f64::INFINITY, &mut cand);
                cand.truncate(k);
                let finishes: Vec<f64> = match rounds.as_deref_mut() {
                    Some(pool) => pool.round(
                        pending.as_ref(),
                        cand.iter()
                            .map(|&(p, _, _)| Commit {
                                t,
                                spec: TrialSpec::Dup { p },
                            })
                            .collect(),
                    ),
                    None => cand
                        .iter()
                        .map(|&(p, _, _)| {
                            let c = Commit {
                                t,
                                spec: TrialSpec::Dup { p },
                            };
                            trial_finish(dag, sys, &mut sched, &c)
                        })
                        .collect(),
                };
                let (best_finish, p) = fold(&finishes, &cand);
                let commit = Commit {
                    t,
                    spec: TrialSpec::Dup { p },
                };
                let finish = apply_spec(dag, sys, &mut sched, &commit);
                debug_assert_eq!(
                    finish.to_bits(),
                    best_finish.to_bits(),
                    "re-applying the winning trial must reproduce its finish"
                );
                pending = Some(commit);
            }
            debug_assert!(sched.is_complete());
            sched
        };

        if jobs <= 1 {
            drive(None)
        } else {
            crate::par::scoped_replay_pool(
                jobs,
                || Schedule::new(dag.num_tasks(), sys.num_procs()),
                |s: &mut Schedule, c: &Commit| {
                    apply_spec(dag, sys, s, c);
                },
                |s: &mut Schedule, c: &Commit| trial_finish(dag, sys, s, c),
                |rounds| drive(Some(rounds)),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Heft;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::System;

    /// High-CCR fork: one entry feeding two heavy-communication children.
    /// Without duplication one child must wait for a big message; with
    /// duplication the entry re-executes locally.
    fn high_ccr_fork() -> (Dag, System) {
        let dag = dag_from_edges(&[1.0, 2.0, 2.0], &[(0, 1, 50.0), (0, 2, 50.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        (dag, sys)
    }

    use hetsched_dag::Dag;

    #[test]
    fn duplication_beats_heft_on_high_ccr_fork() {
        let (dag, sys) = high_ccr_fork();
        let heft = Heft::new().schedule(&dag, &sys).makespan();
        let dup = DupHeft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &dup), Ok(()));
        // HEFT serializes everything on one processor: 1 + 2 + 2 = 5.
        // Duplication runs the entry on both: makespan 3.
        assert!(
            dup.makespan() < heft + 1e-9,
            "dup {} heft {heft}",
            dup.makespan()
        );
        assert_eq!(dup.makespan(), 3.0);
        assert_eq!(dup.num_duplicates(), 1);
    }

    #[test]
    fn no_duplicates_when_communication_is_free() {
        let dag = dag_from_edges(&[1.0, 1.0, 1.0], &[(0, 1, 0.0), (0, 2, 0.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let s = DupHeft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert_eq!(s.num_duplicates(), 0);
    }

    #[test]
    fn place_with_duplication_respects_grandparents() {
        // chain 0 -> 1 -> 2 with heavy edges; duplicating t1 onto another
        // processor must account for t0's message to that processor.
        let dag = dag_from_edges(&[1.0, 1.0, 1.0], &[(0, 1, 10.0), (1, 2, 10.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let s = DupHeft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        // all on one processor is optimal (makespan 3); dup cannot help
        assert_eq!(s.makespan(), 3.0);
    }

    #[test]
    fn single_candidate_configuration_works() {
        let (dag, sys) = high_ccr_fork();
        let s = DupHeft {
            candidates: 1,
            agg: CostAggregation::Mean,
        }
        .schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }
}
