//! Task-duplication scheduling, in the DSH / BTDH lineage (Kruatrachue &
//! Lewis 1988; Chung & Ranka 1992 — the BTDH heuristic is earlier work by
//! one of the paper's authors).
//!
//! The idea: when a task's start on its best processor is dominated by one
//! parent's message, re-execute (*duplicate*) that parent locally in an
//! idle slot so the consumer reads a local result. Duplication burns
//! processor idle time to remove communication from the critical path, so
//! it helps most at high CCR and low processor counts.

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{ProcId, System};

use crate::cost::CostAggregation;
use crate::eft::{
    arrival_from, critical_parent_raw, data_ready_time_raw, eft_on_raw,
};
use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::rank::sort_by_priority_desc;
use crate::schedule::{Schedule, TIME_EPS};
use crate::Scheduler;

/// Greedily duplicate critical parents of `t` onto `p` while each
/// duplication strictly improves the arrival of that parent's data, then
/// place `t` at its (possibly improved) EFT on `p`.
///
/// The loop duplicates *immediate* parents only (the DSH depth-1 policy,
/// which captures most of the benefit at a fraction of the cost of the
/// recursive variants); each parent can gain at most one copy per
/// processor, so the loop terminates after at most `in_degree(t)` rounds.
///
/// Returns the finish time of `t` on `p`.
pub(crate) fn place_with_duplication(
    dag: &Dag,
    sys: &System,
    sched: &mut Schedule,
    t: TaskId,
    p: ProcId,
) -> f64 {
    loop {
        let (_, finish_now) = eft_on_raw(dag, sys, sched, t, p, true);
        let Some(u) = critical_parent_raw(dag, sys, sched, t, p) else {
            break;
        };
        if sched.finish_on(u, p).is_some() {
            break; // already local
        }
        // Where could a copy of u go on p, honoring u's own parents?
        let drt_u = data_ready_time_raw(dag, sys, sched, u, p);
        let dur_u = sys.exec_time(u, p);
        let start_u = sched.earliest_start(p, drt_u, dur_u, true);
        let finish_u = start_u + dur_u;
        let edge_data = dag
            .edge_data(u, t)
            .expect("critical parent is a predecessor");
        let current_arrival = arrival_from(sys, sched, u, edge_data, p);
        if finish_u + TIME_EPS >= current_arrival {
            break; // local re-execution would not beat the message
        }
        sched
            .insert_duplicate(u, p, start_u, dur_u)
            .expect("gap search returned a free interval");
        // Only keep going if the consumer actually improved; otherwise a
        // different parent now dominates with no better options.
        let (_, finish_after) = eft_on_raw(dag, sys, sched, t, p, true);
        if finish_after + TIME_EPS >= finish_now {
            break;
        }
    }
    let (start, finish) = eft_on_raw(dag, sys, sched, t, p, true);
    sched
        .insert(t, p, start, finish - start)
        .expect("EFT placement is conflict-free");
    finish
}

/// HEFT ordering with duplication-enhanced processor selection.
///
/// For each task the scheduler evaluates the `candidates` best processors
/// by plain EFT; for each it *simulates* duplication-assisted placement on
/// a copy of the schedule and commits the best outcome. With
/// `candidates = 1` this is DSH-style greedy duplication on HEFT's chosen
/// processor.
#[derive(Debug, Clone, Copy)]
pub struct DupHeft {
    /// How many top-EFT processors to evaluate with duplication.
    pub candidates: usize,
    /// Rank aggregation (mean, as in HEFT).
    pub agg: CostAggregation,
}

impl DupHeft {
    /// Default configuration: 3 candidate processors, mean ranks.
    pub fn new() -> Self {
        DupHeft {
            candidates: 3,
            agg: CostAggregation::Mean,
        }
    }
}

impl Default for DupHeft {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for DupHeft {
    fn name(&self) -> &'static str {
        "DUP-HEFT"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let rank = inst.upward_rank(self.agg);
        let order = sort_by_priority_desc(&rank);
        let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
        let mut ctx = EftContext::new(sys);
        let mut cand: Vec<(ProcId, f64, f64)> = Vec::with_capacity(sys.num_procs());
        for t in order {
            // rank candidate processors by plain EFT (infinite tolerance ->
            // all processors, sorted by finish then id)
            ctx.eft_candidates_into(inst, &sched, t, true, f64::INFINITY, &mut cand);
            cand.truncate(self.candidates.max(1));

            let mut best: Option<(f64, Schedule)> = None;
            for &(p, _, _) in cand.iter() {
                let mut trial = sched.clone();
                let finish = place_with_duplication(dag, sys, &mut trial, t, p);
                match &best {
                    Some((bf, _)) if finish + TIME_EPS >= *bf => {}
                    _ => best = Some((finish, trial)),
                }
            }
            sched = best.expect("at least one candidate").1;
        }
        debug_assert!(sched.is_complete());
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Heft;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::System;

    /// High-CCR fork: one entry feeding two heavy-communication children.
    /// Without duplication one child must wait for a big message; with
    /// duplication the entry re-executes locally.
    fn high_ccr_fork() -> (Dag, System) {
        let dag = dag_from_edges(&[1.0, 2.0, 2.0], &[(0, 1, 50.0), (0, 2, 50.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        (dag, sys)
    }

    use hetsched_dag::Dag;

    #[test]
    fn duplication_beats_heft_on_high_ccr_fork() {
        let (dag, sys) = high_ccr_fork();
        let heft = Heft::new().schedule(&dag, &sys).makespan();
        let dup = DupHeft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &dup), Ok(()));
        // HEFT serializes everything on one processor: 1 + 2 + 2 = 5.
        // Duplication runs the entry on both: makespan 3.
        assert!(
            dup.makespan() < heft + 1e-9,
            "dup {} heft {heft}",
            dup.makespan()
        );
        assert_eq!(dup.makespan(), 3.0);
        assert_eq!(dup.num_duplicates(), 1);
    }

    #[test]
    fn no_duplicates_when_communication_is_free() {
        let dag = dag_from_edges(&[1.0, 1.0, 1.0], &[(0, 1, 0.0), (0, 2, 0.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let s = DupHeft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert_eq!(s.num_duplicates(), 0);
    }

    #[test]
    fn place_with_duplication_respects_grandparents() {
        // chain 0 -> 1 -> 2 with heavy edges; duplicating t1 onto another
        // processor must account for t0's message to that processor.
        let dag = dag_from_edges(&[1.0, 1.0, 1.0], &[(0, 1, 10.0), (1, 2, 10.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let s = DupHeft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        // all on one processor is optimal (makespan 3); dup cannot help
        assert_eq!(s.makespan(), 3.0);
    }

    #[test]
    fn single_candidate_configuration_works() {
        let (dag, sys) = high_ccr_fork();
        let s = DupHeft {
            candidates: 1,
            agg: CostAggregation::Mean,
        }
        .schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }
}
