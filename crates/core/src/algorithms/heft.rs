//! HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri, Wu; IEEE
//! TPDS 2002). The reference list scheduler of the field and the primary
//! baseline of every experiment in this repository.

use crate::cost::CostAggregation;
use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::rank::sort_by_priority_desc;
use crate::schedule::Schedule;
use crate::Scheduler;

/// HEFT: tasks ordered by non-increasing upward rank (mean execution and
/// mean communication costs), each placed on the processor minimizing its
/// earliest finish time with insertion-based gap search.
#[derive(Debug, Clone, Copy)]
pub struct Heft {
    name: &'static str,
    /// Gap-insertion policy (true = classic HEFT; false = append-only).
    pub insertion: bool,
    /// Cost aggregation used for ranking (HEFT's original is `Mean`).
    pub agg: CostAggregation,
}

impl Heft {
    /// Classic HEFT: mean-cost ranks, insertion-based EFT.
    pub fn new() -> Self {
        Heft {
            name: "HEFT",
            insertion: true,
            agg: CostAggregation::Mean,
        }
    }

    /// HEFT without the insertion policy (append-only placement); the
    /// ablation showing what gap search contributes.
    pub fn no_insertion() -> Self {
        Heft {
            name: "HEFT-NI",
            insertion: false,
            agg: CostAggregation::Mean,
        }
    }

    /// HEFT with a non-default rank aggregation (for ablation studies).
    pub fn with_aggregation(agg: CostAggregation) -> Self {
        Heft {
            name: "HEFT-AGG",
            insertion: true,
            agg,
        }
    }

    /// The EFT placement loop from rank-order position `from` onward,
    /// shared between [`Scheduler::schedule_instance`] (which runs it from
    /// position 0 on an empty schedule) and [`Heft::repair`] (which replays
    /// the parent's leading placements and runs it from the first touched
    /// position). Both callers therefore execute the identical placement
    /// code over identical schedule state — the repair bit-identity
    /// argument needs exactly that.
    pub(crate) fn run_eft_loop(
        &self,
        inst: &ProblemInstance,
        rank: &[f64],
        order: &[hetsched_dag::TaskId],
        from: usize,
        sched: &mut Schedule,
    ) {
        let mut ctx = EftContext::new(inst.sys());
        self.run_eft_loop_ctx(inst, rank, order, from, sched, &mut ctx);
    }

    /// [`Heft::run_eft_loop`] with a caller-owned [`EftContext`] — the
    /// batched path of [`Scheduler::schedule_many`] threads one context
    /// (and thereby one arena checkout) through every instance of the
    /// batch. A context freshly `reset_for` the instance's system behaves
    /// exactly like a new one, so both entry points place identically.
    pub(crate) fn run_eft_loop_ctx(
        &self,
        inst: &ProblemInstance,
        rank: &[f64],
        order: &[hetsched_dag::TaskId],
        from: usize,
        sched: &mut Schedule,
        ctx: &mut EftContext,
    ) {
        let _span = hetsched_trace::span("eft_loop");
        for (step, &t) in order.iter().enumerate().skip(from) {
            hetsched_trace::emit(|| hetsched_trace::Event::TaskSelected {
                step: step as u64,
                task: t.index() as u32,
                priority: rank[t.index()],
            });
            let (p, start, finish) = ctx.best_eft(inst, sched, t, self.insertion);
            sched
                .insert(t, p, start, finish - start)
                .expect("EFT placement is conflict-free by construction");
        }
    }
}

impl Default for Heft {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Heft {
    fn name(&self) -> &'static str {
        self.name
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let rank = {
            let _span = hetsched_trace::span("rank");
            inst.upward_rank(self.agg)
        };
        let order = sort_by_priority_desc(&rank);
        let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
        self.run_eft_loop(inst, &rank, &order, 0, &mut sched);
        sched
    }

    /// Batched scheduling reusing one [`EftContext`] (one arena checkout,
    /// one arrival-frontier buffer) across every instance. Each instance
    /// still gets its own rank/order/schedule, and `reset_for` makes the
    /// shared context indistinguishable from a fresh one, so each output
    /// is bit-identical to the sequential `schedule_instance` call.
    fn schedule_many(&self, insts: &[ProblemInstance]) -> Vec<Schedule> {
        let mut ctx: Option<EftContext> = None;
        let mut out = Vec::with_capacity(insts.len());
        for inst in insts {
            let (dag, sys) = (inst.dag(), inst.sys());
            let rank = {
                let _span = hetsched_trace::span("rank");
                inst.upward_rank(self.agg)
            };
            let order = sort_by_priority_desc(&rank);
            let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
            let ctx = ctx.get_or_insert_with(|| EftContext::new(sys));
            ctx.reset_for(sys);
            self.run_eft_loop_ctx(inst, &rank, &order, 0, &mut sched, ctx);
            out.push(sched);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::TaskId;
    use hetsched_platform::{EtcMatrix, Network, ProcId};

    /// The worked example every HEFT description uses a variant of: a fork
    /// out of one entry into two branches joining at an exit.
    fn fork_join() -> (Dag, System) {
        let dag = dag_from_edges(
            &[2.0, 3.0, 3.0, 2.0],
            &[(0, 1, 4.0), (0, 2, 4.0), (1, 3, 4.0), (2, 3, 4.0)],
        )
        .unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        (dag, sys)
    }
    use hetsched_dag::Dag;
    use hetsched_platform::System;

    #[test]
    fn schedules_fork_join_validly() {
        let (dag, sys) = fork_join();
        let s = Heft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert!(s.is_complete());
        // one branch local, one remote: entry 2, branch 3, join 2
        // all-local schedule: 2 + 3 + 3 + 2 = 10; HEFT must not be worse
        assert!(s.makespan() <= 10.0 + 1e-9, "makespan {}", s.makespan());
    }

    #[test]
    fn heterogeneous_exploits_fast_processor() {
        // single chain where p1 is 10x faster; no comm
        let dag = dag_from_edges(&[10.0, 10.0], &[(0, 1, 0.0)]).unwrap();
        let etc = EtcMatrix::from_fn(2, 2, |_, p| if p.index() == 1 { 1.0 } else { 10.0 });
        let sys = System::new(etc, Network::unit(2));
        let s = Heft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert_eq!(s.task_proc(TaskId(0)), Some(ProcId(1)));
        assert_eq!(s.task_proc(TaskId(1)), Some(ProcId(1)));
        assert_eq!(s.makespan(), 2.0);
    }

    #[test]
    fn insertion_never_hurts_on_example() {
        let (dag, sys) = fork_join();
        let ins = Heft::new().schedule(&dag, &sys).makespan();
        let app = Heft::no_insertion().schedule(&dag, &sys).makespan();
        assert!(ins <= app + 1e-9, "insertion {ins} vs append {app}");
    }

    #[test]
    fn single_processor_is_serial_in_rank_order() {
        let (dag, sys1) = fork_join();
        let sys = System::homogeneous_unit(&dag, 1);
        let s = Heft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        // serial: sum of weights
        assert_eq!(s.makespan(), dag.total_weight());
        let _ = sys1;
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Heft::new().name(), "HEFT");
        assert_eq!(Heft::no_insertion().name(), "HEFT-NI");
        assert_eq!(
            Heft::with_aggregation(CostAggregation::Median).name(),
            "HEFT-AGG"
        );
    }
}
