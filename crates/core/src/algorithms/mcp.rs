//! MCP — Modified Critical Path (Wu & Gajski, 1990), the classic
//! homogeneous list scheduler.
//!
//! Tasks are prioritized by ALAP time (ascending — most critical first;
//! the original breaks ties by the ALAP lists of successors, here by
//! topological position, which preserves MCP's behaviour on the graphs of
//! our experiments and guarantees a topological processing order even with
//! zero-weight virtual tasks), and placed by earliest start with insertion.
//!
//! On a heterogeneous system MCP still runs — ALAP times use aggregated
//! (mean) costs — which lets homogeneous and heterogeneous experiments
//! share one comparison set.

use hetsched_dag::{Dag, TaskId};

use crate::cost::CostAggregation;
use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// MCP scheduler (ALAP priorities, insertion-based earliest start).
#[derive(Debug, Clone, Copy)]
pub struct Mcp {
    /// Aggregation for ALAP computation on heterogeneous systems.
    pub agg: CostAggregation,
}

impl Mcp {
    /// Classic MCP (mean costs — exact on homogeneous systems).
    pub fn new() -> Self {
        Mcp {
            agg: CostAggregation::Mean,
        }
    }
}

impl Default for Mcp {
    fn default() -> Self {
        Self::new()
    }
}

/// Order tasks by ascending ALAP, breaking ties by topological position so
/// the order is always a valid processing order.
pub(crate) fn alap_order(dag: &Dag, alap: &[f64]) -> Vec<TaskId> {
    let mut pos = vec![0usize; dag.num_tasks()];
    for (i, &t) in dag.topo_order().iter().enumerate() {
        pos[t.index()] = i;
    }
    let mut order: Vec<TaskId> = dag.task_ids().collect();
    order.sort_by(|&a, &b| {
        alap[a.index()]
            .total_cmp(&alap[b.index()])
            .then_with(|| pos[a.index()].cmp(&pos[b.index()]))
    });
    order
}

impl Scheduler for Mcp {
    fn name(&self) -> &'static str {
        "MCP"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let alap = inst.alst(self.agg);
        let order = alap_order(dag, &alap);
        let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
        let mut ctx = EftContext::new(sys);
        for t in order {
            // MCP selects the processor allowing the earliest *start*;
            // on homogeneous systems earliest start == earliest finish.
            let (p, start, finish) = ctx.best_eft(inst, &sched, t, true);
            sched
                .insert(t, p, start, finish - start)
                .expect("placement is conflict-free");
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::System;

    #[test]
    fn alap_order_is_topological() {
        let dag = dag_from_edges(
            &[1.0, 1.0, 1.0, 1.0],
            &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
        )
        .unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let alap = ProblemInstance::from_refs(&dag, &sys).alst(CostAggregation::Mean);
        let order = alap_order(&dag, &alap);
        assert!(hetsched_dag::topo::is_topological(&dag, &order));
    }

    #[test]
    fn alap_order_topological_with_zero_weights() {
        // zero-weight virtual tasks create ALAP ties; the topological
        // tie-break must keep parents first.
        let dag = dag_from_edges(&[0.0, 0.0, 0.0], &[(0, 1, 0.0), (1, 2, 0.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let alap = ProblemInstance::from_refs(&dag, &sys).alst(CostAggregation::Mean);
        let order = alap_order(&dag, &alap);
        assert!(hetsched_dag::topo::is_topological(&dag, &order));
        let s = Mcp::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }

    #[test]
    fn parallelizes_independent_tasks_on_homogeneous() {
        let dag = dag_from_edges(&[3.0, 3.0, 3.0, 3.0], &[]).unwrap();
        let sys = System::homogeneous_unit(&dag, 4);
        let s = Mcp::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert_eq!(s.makespan(), 3.0);
        assert_eq!(s.procs_used(), 4);
    }

    #[test]
    fn valid_on_join_structure() {
        let dag = dag_from_edges(&[2.0, 2.0, 4.0], &[(0, 2, 1.0), (1, 2, 6.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let s = Mcp::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }
}
