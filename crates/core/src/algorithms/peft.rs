//! PEFT — Predict Earliest Finish Time (Arabnejad & Barbosa, IEEE TPDS
//! 2014). Included as the *extension* baseline: it post-dates the
//! reproduced paper but is the canonical follow-up improvement over HEFT,
//! so it brackets the proposed ILS schedulers from the other side.
//!
//! PEFT's insight is the **optimistic cost table**:
//!
//! ```text
//! OCT(t, p) = max over children c of
//!               min over q of ( OCT(c, q) + w(c, q) + [p ≠ q] · c̄(t, c) )
//! ```
//!
//! — the cost of the cheapest way to finish the rest of the graph if `t`
//! runs on `p`, assuming every later decision is made optimally and
//! communication is charged at the mean. Tasks are prioritized by the
//! per-row mean of OCT, and the processor is chosen to minimize
//! `EFT(t, p) + OCT(t, p)` instead of plain EFT — a lookahead that costs
//! only a table.

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{ProcId, System};

use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::rank::sort_by_priority_desc;
use crate::schedule::Schedule;
use crate::Scheduler;

/// PEFT scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Peft;

impl Peft {
    /// New PEFT scheduler.
    pub fn new() -> Self {
        Peft
    }
}

/// Compute the optimistic cost table, task-major (`oct[t * P + p]`).
pub(crate) fn oct_table(dag: &Dag, sys: &System) -> Vec<f64> {
    let np = sys.num_procs();
    let mut oct = vec![0.0f64; dag.num_tasks() * np];
    for &t in dag.topo_order().iter().rev() {
        for p in sys.proc_ids() {
            let mut worst_child = 0.0f64;
            for (c, data) in dag.successors(t) {
                let mean_comm = sys.mean_comm(data);
                let mut best = f64::INFINITY;
                for q in sys.proc_ids() {
                    let comm = if p == q { 0.0 } else { mean_comm };
                    let v = oct[c.index() * np + q.index()] + sys.exec_time(c, q) + comm;
                    if v < best {
                        best = v;
                    }
                }
                if best > worst_child {
                    worst_child = best;
                }
            }
            oct[t.index() * np + p.index()] = worst_child;
        }
    }
    oct
}

impl Scheduler for Peft {
    fn name(&self) -> &'static str {
        "PEFT"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let np = sys.num_procs();
        let oct = oct_table(dag, sys);
        // priority: mean OCT over processors (rank_oct)
        let rank: Vec<f64> = dag
            .task_ids()
            .map(|t| {
                oct[t.index() * np..(t.index() + 1) * np]
                    .iter()
                    .sum::<f64>()
                    / np as f64
            })
            .collect();
        // rank_oct descending is NOT guaranteed topological (unlike
        // rank_u), so keep a ready-queue discipline.
        let order = sort_by_priority_desc(&rank);
        let mut remaining_preds: Vec<usize> = dag.task_ids().map(|t| dag.in_degree(t)).collect();
        let mut sched = Schedule::new(dag.num_tasks(), np);

        let mut pending: Vec<TaskId> = order;
        let mut ctx = EftContext::new(sys);
        while !pending.is_empty() {
            // take the highest-priority READY task
            let pos = pending
                .iter()
                .position(|&t| remaining_preds[t.index()] == 0)
                .expect("a DAG always has a ready task");
            let t = pending.remove(pos);
            // choose processor minimizing EFT + OCT
            let ready = ctx.data_ready_all(inst, &sched, t);
            let durs = sys.etc().row(t);
            let mut best: Option<(ProcId, f64, f64, f64)> = None; // (p, start, finish, key)
            for (i, p) in sys.proc_ids().enumerate() {
                let s = sched.earliest_start(p, ready[i], durs[i], true);
                let f = s + durs[i];
                let key = f + oct[t.index() * np + p.index()];
                let better = match best {
                    None => true,
                    Some((bp, _, _, bk)) => key < bk || (key == bk && p < bp),
                };
                if better {
                    best = Some((p, s, f, key));
                }
            }
            let (p, start, finish, _) = best.expect("at least one processor");
            sched
                .insert(t, p, start, finish - start)
                .expect("EFT placement is conflict-free");
            for (s, _) in dag.successors(t) {
                remaining_preds[s.index()] -= 1;
            }
        }
        debug_assert!(sched.is_complete());
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::Dag;
    use hetsched_platform::{EtcMatrix, Network};

    fn chain_het() -> (Dag, System) {
        let dag = dag_from_edges(&[2.0, 4.0], &[(0, 1, 6.0)]).unwrap();
        // p1 is fast for t1 but not t0
        let etc = EtcMatrix::from_fn(2, 2, |t, p| match (t.index(), p.index()) {
            (0, 0) => 2.0,
            (0, 1) => 3.0,
            (1, 0) => 8.0,
            (1, 1) => 2.0,
            _ => unreachable!(),
        });
        (dag, System::new(etc, Network::unit(2)))
    }

    #[test]
    fn oct_of_exit_tasks_is_zero() {
        let (dag, sys) = chain_het();
        let oct = oct_table(&dag, &sys);
        assert_eq!(oct[2], 0.0);
        assert_eq!(oct[2 + 1], 0.0);
    }

    #[test]
    fn oct_counts_remote_comm_only() {
        let (dag, sys) = chain_het();
        let oct = oct_table(&dag, &sys);
        // OCT(t0, p0) = min(w(t1,p0), w(t1,p1) + c̄) = min(8, 2 + 6) = 8
        assert_eq!(oct[0], 8.0);
        // OCT(t0, p1) = min(w(t1,p0) + 6, w(t1,p1)) = 2
        assert_eq!(oct[1], 2.0);
    }

    #[test]
    fn peft_routes_toward_the_good_downstream_processor() {
        let (dag, sys) = chain_het();
        use crate::Scheduler as _;
        let s = Peft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        // EFT alone would put t0 on p0 (finish 2 < 3); OCT steers it to
        // p1 so the heavy child runs locally on its fast processor.
        assert_eq!(s.task_proc(TaskId(0)), Some(ProcId(1)));
        assert_eq!(s.task_proc(TaskId(1)), Some(ProcId(1)));
        assert_eq!(s.makespan(), 5.0);
        // cross-check HEFT pays more here
        let heft = crate::algorithms::Heft::new().schedule(&dag, &sys);
        assert!(heft.makespan() >= 5.0);
    }

    use hetsched_dag::TaskId;

    #[test]
    fn valid_on_multi_exit_graph() {
        let dag = dag_from_edges(&[1.0, 2.0, 3.0], &[(0, 1, 4.0), (0, 2, 4.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 3);
        use crate::Scheduler as _;
        let s = Peft::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }
}
