//! Conformance battery: every registered scheduler must produce a valid,
//! complete schedule on a zoo of structurally tricky graphs and systems,
//! and must beat trivial bounds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hetsched_dag::builder::{dag_from_edges, DagBuilder};
use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{EtcParams, System};

use crate::algorithms::{all_heterogeneous, homogeneous_set};
use crate::validate::validate;

#[allow(clippy::vec_init_then_push)] // one entry per line reads better than vec![] here
fn zoo() -> Vec<(&'static str, Dag)> {
    let mut z: Vec<(&'static str, Dag)> = Vec::new();
    z.push(("single", dag_from_edges(&[3.0], &[]).unwrap()));
    z.push((
        "chain",
        dag_from_edges(&[1.0, 2.0, 3.0], &[(0, 1, 4.0), (1, 2, 4.0)]).unwrap(),
    ));
    z.push((
        "fork-join",
        dag_from_edges(
            &[1.0, 2.0, 2.0, 2.0, 1.0],
            &[
                (0, 1, 3.0),
                (0, 2, 3.0),
                (0, 3, 3.0),
                (1, 4, 3.0),
                (2, 4, 3.0),
                (3, 4, 3.0),
            ],
        )
        .unwrap(),
    ));
    z.push((
        "independent",
        dag_from_edges(&[5.0, 4.0, 3.0, 2.0, 1.0], &[]).unwrap(),
    ));
    z.push((
        "multi-entry-exit",
        dag_from_edges(
            &[1.0, 1.0, 2.0, 2.0],
            &[(0, 2, 5.0), (1, 2, 5.0), (1, 3, 5.0)],
        )
        .unwrap(),
    ));
    z.push((
        "zero-weights",
        dag_from_edges(&[0.0, 2.0, 0.0], &[(0, 1, 0.0), (1, 2, 0.0)]).unwrap(),
    ));
    // random layered graph, 40 tasks
    let mut rng = StdRng::seed_from_u64(99);
    let mut b = DagBuilder::new();
    for _ in 0..40 {
        b.add_task(rng.gen_range(1.0..10.0));
    }
    for i in 0..40u32 {
        for j in (i + 1)..40u32 {
            if rng.gen::<f64>() < 0.08 {
                b.add_edge(TaskId(i), TaskId(j), rng.gen_range(0.0..20.0))
                    .unwrap();
            }
        }
    }
    z.push(("random40", b.build().unwrap()));
    let mut rng2 = StdRng::seed_from_u64(123);
    z.push((
        "in-tree",
        hetsched_workloads::trees::in_tree(4, 2, 5.0, 5.0, &mut rng2),
    ));
    z.push((
        "series-parallel",
        hetsched_workloads::series_parallel::series_parallel(25, 0.5, 5.0, 2.0, &mut rng2),
    ));
    z
}

fn systems(dag: &Dag, seed: u64) -> Vec<(&'static str, System)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        ("hom-unit-1", System::homogeneous_unit(dag, 1)),
        ("hom-unit-4", System::homogeneous_unit(dag, 4)),
        ("hom-latency", System::homogeneous(dag, 3, 0.5, 2.0)),
        (
            "het-range",
            System::heterogeneous_random(dag, 4, &EtcParams::range_based(1.0), &mut rng),
        ),
        (
            "het-cvb",
            System::heterogeneous_random(dag, 4, &EtcParams::cvb(0.5), &mut rng),
        ),
        (
            "het-fullrandom",
            System::fully_random(
                dag,
                5,
                &EtcParams::range_based(0.5),
                (0.1, 1.0),
                (0.5, 4.0),
                &mut rng,
            ),
        ),
    ]
}

#[test]
fn every_scheduler_is_valid_on_the_zoo() {
    for (gname, dag) in zoo() {
        for (sname, sys) in systems(&dag, 7) {
            for alg in all_heterogeneous().iter().chain(homogeneous_set().iter()) {
                let s = alg.schedule(&dag, &sys);
                assert_eq!(
                    validate(&dag, &sys, &s),
                    Ok(()),
                    "{} on {gname}/{sname}",
                    alg.name()
                );
                assert!(s.is_complete(), "{} on {gname}/{sname}", alg.name());
            }
        }
    }
}

#[test]
fn makespan_at_least_critical_path_lower_bound() {
    // lower bound: along any path, each task needs at least its fastest
    // execution time; so makespan >= max over tasks of (sum of min exec on
    // the heaviest min-exec path). Check the simple per-task bound:
    // makespan >= max_t min_p w(t,p).
    for (gname, dag) in zoo() {
        for (sname, sys) in systems(&dag, 21) {
            let bound = dag
                .task_ids()
                .map(|t| sys.etc().min_exec(t).0)
                .fold(0.0f64, f64::max);
            for alg in all_heterogeneous() {
                let m = alg.schedule(&dag, &sys).makespan();
                assert!(
                    m >= bound - 1e-9,
                    "{} on {gname}/{sname}: {m} < {bound}",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn homogeneous_makespan_never_exceeds_serial_time() {
    // On a homogeneous system every list scheduler here is at least as good
    // as running everything serially on one processor (the all-on-one-proc
    // schedule is always in their search space, and the greedy EFT of the
    // highest-priority task can only improve it... strictly this is not a
    // theorem for every heuristic, so we assert a small slack factor and
    // treat larger regressions as bugs).
    for (gname, dag) in zoo() {
        let serial: f64 = dag.total_weight();
        let sys = System::homogeneous_unit(&dag, 4);
        for alg in all_heterogeneous().iter().chain(homogeneous_set().iter()) {
            let m = alg.schedule(&dag, &sys).makespan();
            assert!(
                m <= serial * 1.5 + 1e-9,
                "{} on {gname}: makespan {m} vs serial {serial}",
                alg.name()
            );
        }
    }
}

#[test]
fn schedulers_are_deterministic() {
    let (_, dag) = zoo().pop().unwrap(); // random40
    let sys = {
        let mut rng = StdRng::seed_from_u64(5);
        System::heterogeneous_random(&dag, 6, &EtcParams::range_based(1.0), &mut rng)
    };
    for alg in all_heterogeneous() {
        let a = alg.schedule(&dag, &sys);
        let b = alg.schedule(&dag, &sys);
        assert_eq!(a.makespan(), b.makespan(), "{}", alg.name());
        for t in dag.task_ids() {
            assert_eq!(a.assignment(t), b.assignment(t), "{} {t}", alg.name());
        }
    }
}

#[test]
fn registry_names_unique_and_nonempty() {
    let mut names: Vec<&str> = all_heterogeneous()
        .iter()
        .chain(homogeneous_set().iter())
        .map(|a| a.name())
        .collect();
    assert!(!names.is_empty());
    names.sort();
    let mut dedup = names.clone();
    dedup.dedup();
    // HEFT and ILS-H appear in both registries; dedup within the union
    assert!(dedup.iter().all(|n| !n.is_empty()));
}
