//! ETF — Earliest Time First (Hwang, Chow, Anger, Lee; SIAM J. Comput.
//! 1989). At each step, among all (ready task, processor) pairs, start
//! the pair with the earliest possible *start* time; ties broken by
//! higher static level. The classic bounded-makespan homogeneous list
//! scheduler; runs unchanged on heterogeneous ETC matrices.

use hetsched_dag::TaskId;

use crate::cost::CostAggregation;
use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// ETF scheduler (earliest-start pair selection, append placement).
#[derive(Debug, Clone, Copy)]
pub struct Etf {
    /// Aggregation for the tie-breaking static level.
    pub agg: CostAggregation,
}

impl Etf {
    /// ETF with mean-cost static levels.
    pub fn new() -> Self {
        Etf {
            agg: CostAggregation::Mean,
        }
    }
}

impl Default for Etf {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Etf {
    fn name(&self) -> &'static str {
        "ETF"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let sl = inst.static_level(self.agg);
        let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
        let mut remaining_preds: Vec<usize> = dag.task_ids().map(|t| dag.in_degree(t)).collect();
        let mut ready: Vec<TaskId> = dag.entry_tasks().collect();
        let mut ctx = EftContext::new(sys);

        while !ready.is_empty() {
            let mut best: Option<(usize, hetsched_platform::ProcId, f64)> = None;
            for (ri, &t) in ready.iter().enumerate() {
                let drts = ctx.data_ready_all(inst, &sched, t);
                for p in sys.proc_ids() {
                    let drt = drts[p.index()];
                    let start = drt.max(sched.proc_finish(p));
                    let better = match best {
                        None => true,
                        Some((bri, bp, bstart)) => {
                            start < bstart
                                || (start == bstart
                                    && (sl[t.index()], std::cmp::Reverse((t, p)))
                                        > (
                                            sl[ready[bri].index()],
                                            std::cmp::Reverse((ready[bri], bp)),
                                        ))
                        }
                    };
                    if better {
                        best = Some((ri, p, start));
                    }
                }
            }
            let (ri, p, start) = best.expect("ready set non-empty");
            let t = ready.swap_remove(ri);
            let dur = sys.exec_time(t, p);
            sched
                .insert(t, p, start, dur)
                .expect("append placement is conflict-free");
            for (s, _) in dag.successors(t) {
                let r = &mut remaining_preds[s.index()];
                *r -= 1;
                if *r == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert!(sched.is_complete());
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::System;

    #[test]
    fn fills_idle_processors_immediately() {
        // four independent unit tasks on two processors: ETF starts two at
        // time 0 and two at time 1.
        let dag = dag_from_edges(&[1.0; 4], &[]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let s = Etf::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert_eq!(s.makespan(), 2.0);
        let starts_at_zero = dag
            .task_ids()
            .filter(|&t| s.assignment(t).unwrap().1 == 0.0)
            .count();
        assert_eq!(starts_at_zero, 2);
    }

    #[test]
    fn tie_break_prefers_higher_level() {
        // two ready tasks, both can start at 0; t0 heads a long chain
        // (higher static level) so it must be placed first.
        let dag = dag_from_edges(&[1.0, 1.0, 5.0], &[(0, 2, 0.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 1);
        let s = Etf::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        let (_, s0, _) = s.assignment(hetsched_dag::TaskId(0)).unwrap();
        let (_, s1, _) = s.assignment(hetsched_dag::TaskId(1)).unwrap();
        assert!(s0 < s1, "chain head first: t0 {s0} vs t1 {s1}");
    }

    #[test]
    fn valid_on_communication_heavy_graph() {
        let dag = dag_from_edges(&[2.0, 2.0, 2.0], &[(0, 1, 20.0), (0, 2, 20.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 3);
        let s = Etf::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }
}
