//! CPOP — Critical Path on a Processor (Topcuoglu, Hariri, Wu; IEEE TPDS
//! 2002). Pins the whole (aggregated-cost) critical path to the single
//! processor that executes it fastest; everything else is EFT-placed.

use std::collections::BinaryHeap;

use hetsched_dag::TaskId;
use hetsched_platform::ProcId;

use crate::cost::CostAggregation;
use crate::eft::eft_on;
use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// CPOP scheduler.
///
/// Priority of a task is `rank_u + rank_d`; ready tasks are processed
/// highest-priority-first. Critical-path tasks go to the dedicated
/// critical-path processor (the one minimizing the path's total execution
/// time); other tasks are placed by insertion-based EFT.
#[derive(Debug, Clone, Copy)]
pub struct Cpop {
    /// Rank aggregation policy (the original uses `Mean`).
    pub agg: CostAggregation,
}

impl Cpop {
    /// Classic CPOP with mean-cost ranks.
    pub fn new() -> Self {
        Cpop {
            agg: CostAggregation::Mean,
        }
    }
}

impl Default for Cpop {
    fn default() -> Self {
        Self::new()
    }
}

/// Max-heap entry ordered by priority then smaller task id.
#[derive(PartialEq)]
struct Entry {
    priority: f64,
    task: TaskId,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.task.cmp(&self.task))
    }
}

impl Scheduler for Cpop {
    fn name(&self) -> &'static str {
        "CPOP"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let up = inst.upward_rank(self.agg);
        let down = inst.downward_rank(self.agg);
        let priority: Vec<f64> = up.iter().zip(down.iter()).map(|(&u, &d)| u + d).collect();

        // Critical-path processor: minimizes summed execution of CP tasks.
        let cp_tasks = inst.critical_path_tasks(self.agg);
        let mut on_cp = vec![false; dag.num_tasks()];
        for &t in cp_tasks.iter() {
            on_cp[t.index()] = true;
        }
        let cp_proc = sys
            .proc_ids()
            .min_by(|&a, &b| {
                let ca: f64 = cp_tasks.iter().map(|&t| sys.exec_time(t, a)).sum();
                let cb: f64 = cp_tasks.iter().map(|&t| sys.exec_time(t, b)).sum();
                ca.total_cmp(&cb)
            })
            .unwrap_or(ProcId(0));

        let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
        let mut remaining_preds: Vec<usize> = dag.task_ids().map(|t| dag.in_degree(t)).collect();
        let mut heap: BinaryHeap<Entry> = dag
            .entry_tasks()
            .map(|t| Entry {
                priority: priority[t.index()],
                task: t,
            })
            .collect();

        let mut ctx = EftContext::new(sys);
        while let Some(Entry { task: t, .. }) = heap.pop() {
            let (p, start, finish) = if on_cp[t.index()] {
                let (s, f) = eft_on(inst, &sched, t, cp_proc, true);
                (cp_proc, s, f)
            } else {
                ctx.best_eft(inst, &sched, t, true)
            };
            sched
                .insert(t, p, start, finish - start)
                .expect("EFT placement is conflict-free");
            for (s, _) in dag.successors(t) {
                let r = &mut remaining_preds[s.index()];
                *r -= 1;
                if *r == 0 {
                    heap.push(Entry {
                        priority: priority[s.index()],
                        task: s,
                    });
                }
            }
        }
        debug_assert!(sched.is_complete());
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::{EtcMatrix, Network, System};

    #[test]
    fn critical_path_lands_on_one_processor() {
        // heavy chain 0 -> 1 -> 2 with a light side task 3 hanging off 0
        let dag = dag_from_edges(
            &[5.0, 5.0, 5.0, 1.0],
            &[(0, 1, 10.0), (1, 2, 10.0), (0, 3, 1.0)],
        )
        .unwrap();
        // processor 1 is fastest for everything -> CP processor
        let etc = EtcMatrix::from_fn(4, 3, |t, p| {
            let w = [5.0, 5.0, 5.0, 1.0][t.index()];
            if p.index() == 1 {
                w * 0.5
            } else {
                w
            }
        });
        let sys = System::new(etc, Network::unit(3));
        let s = Cpop::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        let p0 = s.task_proc(TaskId(0)).unwrap();
        assert_eq!(s.task_proc(TaskId(1)), Some(p0));
        assert_eq!(s.task_proc(TaskId(2)), Some(p0));
        assert_eq!(p0, ProcId(1), "CP goes to the fastest processor");
    }

    #[test]
    fn valid_on_multi_entry_graph() {
        let dag = dag_from_edges(&[2.0, 3.0, 4.0], &[(0, 2, 5.0), (1, 2, 5.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let s = Cpop::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert!(s.is_complete());
    }

    #[test]
    fn heap_order_prefers_higher_priority() {
        let mut h = std::collections::BinaryHeap::new();
        h.push(Entry {
            priority: 1.0,
            task: TaskId(5),
        });
        h.push(Entry {
            priority: 3.0,
            task: TaskId(9),
        });
        h.push(Entry {
            priority: 3.0,
            task: TaskId(2),
        });
        assert_eq!(h.pop().unwrap().task, TaskId(2), "ties -> smaller id");
        assert_eq!(h.pop().unwrap().task, TaskId(9));
        assert_eq!(h.pop().unwrap().task, TaskId(5));
    }

    use hetsched_dag::TaskId;

    #[test]
    fn single_task() {
        let dag = dag_from_edges(&[3.0], &[]).unwrap();
        let sys = System::homogeneous_unit(&dag, 4);
        let s = Cpop::new().schedule(&dag, &sys);
        assert_eq!(s.makespan(), 3.0);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }
}
