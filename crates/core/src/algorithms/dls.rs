//! DLS — Dynamic Level Scheduling (Sih & Lee, IEEE TPDS 1993), in its
//! heterogeneous formulation.
//!
//! At each step DLS evaluates every (ready task, processor) pair and picks
//! the pair maximizing the *dynamic level*
//!
//! ```text
//! DL(t, p) = SL(t) − max(DRT(t, p), avail(p)) + Δ(t, p)
//! Δ(t, p)  = ŵ(t) − w(t, p)
//! ```
//!
//! where `SL` is the static level (aggregated execution costs, no
//! communication), `DRT` the data-ready time, `avail(p)` the processor's
//! last finish, and `Δ` rewards placing a task on a processor that runs it
//! faster than average. Classic DLS appends (no insertion).

use hetsched_dag::TaskId;

use crate::cost::CostAggregation;
use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// DLS scheduler (pair-selection greedy, append placement).
#[derive(Debug, Clone, Copy)]
pub struct Dls {
    /// Aggregation for the static level and `Δ` (the original uses the
    /// median; mean is the common reformulation — both are available).
    pub agg: CostAggregation,
}

impl Dls {
    /// DLS with median aggregated costs (the original formulation).
    pub fn new() -> Self {
        Dls {
            agg: CostAggregation::Median,
        }
    }
}

impl Default for Dls {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Dls {
    fn name(&self) -> &'static str {
        "DLS"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let sl = inst.static_level(self.agg);
        let n = dag.num_tasks();
        let mut sched = Schedule::new(n, sys.num_procs());
        let mut remaining_preds: Vec<usize> = dag.task_ids().map(|t| dag.in_degree(t)).collect();
        let mut ready: Vec<TaskId> = dag.entry_tasks().collect();
        let mut ctx = EftContext::new(sys);

        while !ready.is_empty() {
            // pick the (task, proc) pair with maximum dynamic level
            let mut best: Option<(usize, hetsched_platform::ProcId, f64, f64)> = None;
            for (ri, &t) in ready.iter().enumerate() {
                let what = self.agg.exec(sys, t);
                let drts = ctx.data_ready_all(inst, &sched, t);
                for p in sys.proc_ids() {
                    let drt = drts[p.index()];
                    let start = drt.max(sched.proc_finish(p));
                    let delta = what - sys.exec_time(t, p);
                    let dl = sl[t.index()] - start + delta;
                    let better = match best {
                        None => true,
                        Some((bri, bp, _, bdl)) => {
                            dl > bdl || (dl == bdl && (ready[bri], bp) > (t, p))
                        }
                    };
                    if better {
                        best = Some((ri, p, start, dl));
                    }
                }
            }
            let (ri, p, start, _) = best.expect("ready set non-empty");
            let t = ready.swap_remove(ri);
            let dur = sys.exec_time(t, p);
            sched
                .insert(t, p, start, dur)
                .expect("append placement is conflict-free");
            for (s, _) in dag.successors(t) {
                let r = &mut remaining_preds[s.index()];
                *r -= 1;
                if *r == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert!(sched.is_complete());
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::{EtcMatrix, Network, ProcId, System};

    #[test]
    fn delta_prefers_affine_processor() {
        // two independent tasks; p0 is fast for t0, p1 fast for t1
        let dag = dag_from_edges(&[4.0, 4.0], &[]).unwrap();
        let etc = EtcMatrix::from_fn(2, 2, |t, p| if t.index() == p.index() { 1.0 } else { 8.0 });
        let sys = System::new(etc, Network::unit(2));
        let s = Dls::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert_eq!(s.task_proc(TaskId(0)), Some(ProcId(0)));
        assert_eq!(s.task_proc(TaskId(1)), Some(ProcId(1)));
        assert_eq!(s.makespan(), 1.0);
    }

    use hetsched_dag::TaskId;

    #[test]
    fn respects_precedence_across_processors() {
        let dag = dag_from_edges(&[1.0, 1.0, 1.0], &[(0, 1, 5.0), (0, 2, 5.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 3);
        let s = Dls::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }

    #[test]
    fn chain_on_homogeneous_stays_local() {
        let dag = dag_from_edges(&[2.0, 2.0, 2.0], &[(0, 1, 9.0), (1, 2, 9.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 4);
        let s = Dls::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        // moving any task remote costs 9 > serial slack, so all local
        let p = s.task_proc(TaskId(0)).unwrap();
        assert_eq!(s.task_proc(TaskId(1)), Some(p));
        assert_eq!(s.task_proc(TaskId(2)), Some(p));
        assert_eq!(s.makespan(), 6.0);
    }
}
