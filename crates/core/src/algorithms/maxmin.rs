//! Max-Min — the batch-mode dual of Min-Min: among ready tasks, schedule
//! the one whose best EFT is *largest* (start the big work early so it
//! does not dangle at the end). Like Min-Min it ignores the critical
//! path; the pair makes a useful bracket around batch heuristics.

use hetsched_dag::TaskId;

use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// Max-Min scheduler (ready-set batch mode, insertion-based EFT).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxMin;

impl MaxMin {
    /// New Max-Min scheduler.
    pub fn new() -> Self {
        MaxMin
    }
}

impl Scheduler for MaxMin {
    fn name(&self) -> &'static str {
        "MaxMin"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
        let mut remaining_preds: Vec<usize> = dag.task_ids().map(|t| dag.in_degree(t)).collect();
        let mut ready: Vec<TaskId> = dag.entry_tasks().collect();
        let mut ctx = EftContext::new(sys);

        while !ready.is_empty() {
            // pick the ready task with the LARGEST minimum EFT
            let mut best: Option<(usize, hetsched_platform::ProcId, f64, f64)> = None;
            for (ri, &t) in ready.iter().enumerate() {
                let (p, s, f) = ctx.best_eft(inst, &sched, t, true);
                let better = match best {
                    None => true,
                    Some((bri, _, _, bf)) => f > bf || (f == bf && t < ready[bri]),
                };
                if better {
                    best = Some((ri, p, s, f));
                }
            }
            let (ri, p, start, finish) = best.expect("ready set non-empty");
            let t = ready.swap_remove(ri);
            sched
                .insert(t, p, start, finish - start)
                .expect("EFT placement is conflict-free");
            for (s, _) in dag.successors(t) {
                let r = &mut remaining_preds[s.index()];
                *r -= 1;
                if *r == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert!(sched.is_complete());
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::MinMin;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::System;

    #[test]
    fn schedules_longest_ready_task_first() {
        // dual of the MinMin test: the long task goes first
        let dag = dag_from_edges(&[9.0, 1.0], &[]).unwrap();
        let sys = System::homogeneous_unit(&dag, 1);
        let s = MaxMin::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        let (_, start_long, _) = s.assignment(TaskId(0)).unwrap();
        let (_, start_short, _) = s.assignment(TaskId(1)).unwrap();
        assert!(start_long < start_short);
    }

    use hetsched_dag::TaskId;

    #[test]
    fn differs_from_minmin_on_skewed_batch() {
        // 2 procs, tasks {8, 7, 1, 1}: MaxMin pairs 8+1 and 7+1 (makespan
        // 9); MinMin runs the small ones first and ends with 8 dangling
        // (makespan 9 too on 2 procs, but the assignment order differs) —
        // check both are valid and at least one assignment differs.
        let dag = dag_from_edges(&[8.0, 7.0, 1.0, 1.0], &[]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let a = MaxMin::new().schedule(&dag, &sys);
        let b = MinMin::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &a), Ok(()));
        assert_eq!(validate(&dag, &sys, &b), Ok(()));
        assert!(a.makespan() <= 9.0 + 1e-9);
        let differs = dag.task_ids().any(|t| a.assignment(t) != b.assignment(t));
        assert!(
            differs,
            "MaxMin and MinMin should order this batch differently"
        );
    }

    #[test]
    fn valid_with_dependencies() {
        let dag = dag_from_edges(
            &[3.0, 5.0, 2.0, 4.0],
            &[(0, 2, 2.0), (1, 3, 2.0), (0, 3, 1.0)],
        )
        .unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let s = MaxMin::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }
}
