//! HCPT — Heterogeneous Critical Parent Trees (Hagras & Janeček, 2003).
//!
//! A two-phase algorithm: the *listing* phase walks critical parent trees
//! to produce a task order (critical tasks anchor the order; each critical
//! task pulls in its not-yet-listed parents, most urgent first), and the
//! *placement* phase is insertion-based EFT, as in HEFT.
//!
//! Critical tasks are those with zero float under aggregated (mean) costs:
//! `ALST(t) == AEST(t)`.

use hetsched_dag::{Dag, TaskId};

use crate::cost::CostAggregation;
use crate::engine::EftContext;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// HCPT scheduler.
#[derive(Debug, Clone, Copy)]
pub struct Hcpt {
    /// Aggregation for AEST/ALST computation.
    pub agg: CostAggregation,
}

impl Hcpt {
    /// HCPT with mean aggregated costs (the original formulation).
    pub fn new() -> Self {
        Hcpt {
            agg: CostAggregation::Mean,
        }
    }
}

impl Default for Hcpt {
    fn default() -> Self {
        Self::new()
    }
}

/// Build HCPT's listing order: process critical tasks in ascending ALST;
/// before a critical task is appended, recursively append its unlisted
/// parents (by ascending ALST). The result is a topological order covering
/// every task.
fn listing_order(dag: &Dag, aest_v: &[f64], alst_v: &[f64]) -> Vec<TaskId> {
    let n = dag.num_tasks();
    let eps = 1e-9 * alst_v.iter().copied().fold(1.0f64, f64::max);
    // critical tasks by ascending ALST (entry of the CP first), stack holds
    // them reversed so the most urgent is on top.
    let mut criticals: Vec<TaskId> = dag
        .task_ids()
        .filter(|t| (alst_v[t.index()] - aest_v[t.index()]).abs() <= eps)
        .collect();
    criticals.sort_by(|&a, &b| {
        alst_v[a.index()]
            .total_cmp(&alst_v[b.index()])
            .then_with(|| a.cmp(&b))
    });
    let mut stack: Vec<TaskId> = criticals.into_iter().rev().collect();

    let mut listed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while let Some(&top) = stack.last() {
        // find the unlisted parent with the smallest ALST
        let parent = dag
            .predecessors(top)
            .filter(|&(u, _)| !listed[u.index()])
            .min_by(|&(a, _), &(b, _)| {
                alst_v[a.index()]
                    .total_cmp(&alst_v[b.index()])
                    .then_with(|| a.cmp(&b))
            })
            .map(|(u, _)| u);
        match parent {
            Some(u) => stack.push(u),
            None => {
                stack.pop();
                if !listed[top.index()] {
                    listed[top.index()] = true;
                    order.push(top);
                }
            }
        }
    }
    // Cover tasks not reachable from any critical task's parent tree
    // (possible in graphs with several components): append them in
    // ascending-ALST topological order.
    if order.len() < n {
        let mut rest: Vec<TaskId> = dag.task_ids().filter(|t| !listed[t.index()]).collect();
        let mut pos = vec![0usize; n];
        for (i, &t) in dag.topo_order().iter().enumerate() {
            pos[t.index()] = i;
        }
        rest.sort_by(|&a, &b| {
            alst_v[a.index()]
                .total_cmp(&alst_v[b.index()])
                .then_with(|| pos[a.index()].cmp(&pos[b.index()]))
        });
        // rest is ALAP-sorted, which may interleave with dependencies on
        // listed tasks only — parents inside `rest` always have smaller
        // ALST, except for exact ties, which the topological position
        // breaks... but non-adjacent ties could still order wrong, so do a
        // final stable topological fix-up.
        for t in rest {
            order.push(t);
        }
        order = topological_fixup(dag, order);
    }
    order
}

/// Stable topological repair: keep the given order wherever legal, delay
/// tasks whose parents have not appeared yet.
fn topological_fixup(dag: &Dag, order: Vec<TaskId>) -> Vec<TaskId> {
    let n = dag.num_tasks();
    let mut remaining: Vec<usize> = dag.task_ids().map(|t| dag.in_degree(t)).collect();
    let mut emitted = vec![false; n];
    let mut out = Vec::with_capacity(n);
    let mut pending: Vec<TaskId> = Vec::new();
    let emit =
        |t: TaskId, out: &mut Vec<TaskId>, remaining: &mut Vec<usize>, emitted: &mut Vec<bool>| {
            emitted[t.index()] = true;
            out.push(t);
            for (s, _) in dag.successors(t) {
                remaining[s.index()] -= 1;
            }
        };
    for t in order {
        if remaining[t.index()] == 0 && !emitted[t.index()] {
            emit(t, &mut out, &mut remaining, &mut emitted);
            // flush pending tasks that became ready, in pending order
            loop {
                let i = pending
                    .iter()
                    .position(|&u| remaining[u.index()] == 0 && !emitted[u.index()]);
                match i {
                    Some(i) => {
                        let u = pending.remove(i);
                        emit(u, &mut out, &mut remaining, &mut emitted);
                    }
                    None => break,
                }
            }
        } else if !emitted[t.index()] {
            pending.push(t);
        }
    }
    debug_assert!(pending.is_empty(), "fixup must drain all tasks");
    out
}

impl Scheduler for Hcpt {
    fn name(&self) -> &'static str {
        "HCPT"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        let (dag, sys) = (inst.dag(), inst.sys());
        let a = inst.aest(self.agg);
        let l = inst.alst(self.agg);
        let order = listing_order(dag, &a, &l);
        let mut sched = Schedule::new(dag.num_tasks(), sys.num_procs());
        let mut ctx = EftContext::new(sys);
        for t in order {
            let (p, start, finish) = ctx.best_eft(inst, &sched, t, true);
            sched
                .insert(t, p, start, finish - start)
                .expect("EFT placement is conflict-free");
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::topo::is_topological;
    use hetsched_platform::System;

    fn setup() -> (Dag, System) {
        let dag = dag_from_edges(
            &[1.0, 2.0, 3.0, 4.0, 1.0],
            &[
                (0, 1, 10.0),
                (0, 2, 20.0),
                (1, 3, 30.0),
                (2, 3, 40.0),
                (0, 4, 1.0),
            ],
        )
        .unwrap();
        let sys = System::homogeneous_unit(&dag, 3);
        (dag, sys)
    }

    #[test]
    fn listing_order_is_topological_and_complete() {
        let (dag, sys) = setup();
        let inst = ProblemInstance::from_refs(&dag, &sys);
        let a = inst.aest(CostAggregation::Mean);
        let l = inst.alst(CostAggregation::Mean);
        let order = listing_order(&dag, &a, &l);
        assert!(is_topological(&dag, &order));
    }

    #[test]
    fn critical_path_tasks_listed_before_slack_tasks_of_same_depth() {
        let (dag, sys) = setup();
        let inst = ProblemInstance::from_refs(&dag, &sys);
        let a = inst.aest(CostAggregation::Mean);
        let l = inst.alst(CostAggregation::Mean);
        let order = listing_order(&dag, &a, &l);
        // t2 (critical branch) must come before t1 (slack branch)
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(TaskId(2)) < pos(TaskId(1)));
        // side task t4 comes last-ish (it is least critical)
        assert!(pos(TaskId(4)) > pos(TaskId(2)));
    }

    use hetsched_dag::{Dag, TaskId};

    #[test]
    fn schedule_is_valid() {
        let (dag, sys) = setup();
        let s = Hcpt::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
        assert!(s.is_complete());
    }

    #[test]
    fn handles_disconnected_components() {
        let dag = dag_from_edges(&[1.0, 1.0, 5.0, 5.0], &[(0, 1, 1.0), (2, 3, 9.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let s = Hcpt::new().schedule(&dag, &sys);
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }

    #[test]
    fn topological_fixup_repairs_bad_order() {
        let dag = dag_from_edges(&[1.0; 3], &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let bad = vec![TaskId(2), TaskId(1), TaskId(0)];
        let fixed = topological_fixup(&dag, bad);
        assert!(is_topological(&dag, &fixed));
    }
}
