//! Exact branch-and-bound scheduling for small instances — the optimality
//! baseline heuristics are measured against.
//!
//! The search branches over (ready task, processor) decisions in
//! list-schedule order, keeps the best complete schedule found, and prunes
//! with two admissible lower bounds:
//!
//! * **work bound** — busy time already committed plus the remaining
//!   fastest-execution work, divided by the processor count;
//! * **path bound** — for every unscheduled task, its earliest possible
//!   start (scheduled parents' finishes, communication-free) plus its
//!   minimum-execution bottom level.
//!
//! The incumbent is seeded with HEFT's schedule, so the search is
//! *anytime*: with an exhausted node budget it still returns a schedule at
//! least as good as HEFT, just without the optimality certificate.
//!
//! Scope notes: the search covers **non-duplication** schedules (the
//! classic problem definition); duplication-based heuristics may therefore
//! legitimately beat the "optimal" on communication-bound instances. It
//! also restricts starts to the canonical left-shifted form (every task
//! starts at its earliest feasible time given the decision order) with
//! insertion, which preserves at least one optimal schedule.

use std::sync::atomic::{AtomicU64, Ordering};

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::System;

use crate::algorithms::Heft;
use crate::eft::eft_on_raw;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// Nodes the sequential warm-up phase expands before the search switches
/// to round-based subtree exploration. Small instances finish entirely in
/// this phase (identical to the classic DFS); the constant is independent
/// of the thread count, so the phase structure — and therefore the result
/// — is the same at any `jobs`.
const SEQ_PREFIX_NODES: usize = 192;

/// Subtree roots explored per round in the parallel phase. A fixed width
/// (not `jobs`-derived!) keeps round boundaries, and with them every
/// incumbent-bound update, identical at any thread count.
const ROUND_WIDTH: usize = 16;

/// Retired nodes kept for allocation recycling (see [`push_children`]).
/// Bounds pool memory, not correctness — beyond this, retired nodes are
/// simply dropped.
const NODE_POOL_CAP: usize = 512;

/// One open node of the search: a partial schedule plus the ready-set
/// bookkeeping to expand it.
struct Node {
    sched: Schedule,
    scheduled: Vec<bool>,
    remaining_preds: Vec<usize>,
    done: usize,
    remaining_work: f64,
}

/// Manual so `clone_from` recycles the schedule's and bitmaps'
/// allocations — the search clones one `Node` per branch, and with the
/// struct-of-arrays `Schedule` a derived clone costs ~4 allocations per
/// processor plus one per task. Recycling through the node pool makes a
/// child expansion allocation-free in steady state.
impl Clone for Node {
    fn clone(&self) -> Self {
        Node {
            sched: self.sched.clone(),
            scheduled: self.scheduled.clone(),
            remaining_preds: self.remaining_preds.clone(),
            done: self.done,
            remaining_work: self.remaining_work,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.sched.clone_from(&source.sched);
        self.scheduled.clone_from(&source.scheduled);
        self.remaining_preds.clone_from(&source.remaining_preds);
        self.done = source.done;
        self.remaining_work = source.remaining_work;
    }
}

/// Retire a dead node into the pool (or drop it once the pool is full).
#[inline]
fn retire(pool: &mut Vec<Node>, node: Node) {
    if pool.len() < NODE_POOL_CAP {
        pool.push(node);
    }
}

/// Shared read-only search context.
struct Ctx<'a> {
    dag: &'a Dag,
    sys: &'a System,
    bl_min: Vec<f64>,
    min_exec: Vec<f64>,
    n: usize,
}

fn lower_bound(ctx: &Ctx<'_>, sched: &Schedule, scheduled: &[bool], remaining_work: f64) -> f64 {
    let mut lb = sched.makespan();
    // work bound: committed busy time + remaining fastest work
    let wb = (sched.busy_time() + remaining_work) / ctx.sys.num_procs() as f64;
    if wb > lb {
        lb = wb;
    }
    // path bound
    for t in ctx.dag.task_ids() {
        if scheduled[t.index()] {
            continue;
        }
        let mut est = 0.0f64;
        for (u, _) in ctx.dag.predecessors(t) {
            if let Some(f) = sched.task_finish(u) {
                if f > est {
                    est = f;
                }
            }
        }
        let pb = est + ctx.bl_min[t.index()];
        if pb > lb {
            lb = pb;
        }
    }
    lb
}

/// Expand `node` onto `stack` in LIFO order: children are generated
/// most-promising-first (deepest min-exec bottom level, then EFT) and
/// pushed reversed so the most promising branch pops first.
///
/// Children draw their storage from `pool` (retired nodes) via
/// `clone_from` where possible, falling back to a fresh clone only when
/// the pool runs dry. This changes nothing about the search — same
/// children, same order, same node counts — it only recycles
/// allocations.
fn push_children(ctx: &Ctx<'_>, node: &Node, stack: &mut Vec<Node>, pool: &mut Vec<Node>) {
    let (dag, sys) = (ctx.dag, ctx.sys);
    let mut ready: Vec<TaskId> = dag
        .task_ids()
        .filter(|t| !node.scheduled[t.index()] && node.remaining_preds[t.index()] == 0)
        .collect();
    ready.sort_by(|&a, &b| {
        ctx.bl_min[b.index()]
            .total_cmp(&ctx.bl_min[a.index()])
            .then_with(|| a.cmp(&b))
    });
    let mut children: Vec<Node> = Vec::new();
    for &t in &ready {
        let mut procs: Vec<(hetsched_platform::ProcId, f64, f64)> = sys
            .proc_ids()
            .map(|p| {
                let (s, f) = eft_on_raw(dag, sys, &node.sched, t, p, true);
                (p, s, f)
            })
            .collect();
        procs.sort_by(|a, b| a.2.total_cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        for (p, start, finish) in procs {
            let mut child = match pool.pop() {
                Some(mut recycled) => {
                    recycled.clone_from(node);
                    recycled
                }
                None => node.clone(),
            };
            child
                .sched
                .insert(t, p, start, finish - start)
                .expect("EFT placement is conflict-free");
            child.scheduled[t.index()] = true;
            for (s, _) in dag.successors(t) {
                child.remaining_preds[s.index()] -= 1;
            }
            child.done = node.done + 1;
            child.remaining_work = node.remaining_work - ctx.min_exec[t.index()];
            children.push(child);
        }
    }
    while let Some(c) = children.pop() {
        stack.push(c);
    }
}

/// Outcome of exhausting (or capping) one subtree.
struct SubResult {
    /// Best complete schedule found in the subtree, if it beat the entry
    /// bound.
    best: Option<(f64, Schedule)>,
    /// Nodes expanded.
    nodes: usize,
    /// Whether the node cap cut the subtree short (completeness lost).
    capped: bool,
}

/// Exhaust the subtree under `root` by sequential DFS, pruning against
/// `entry_bound` tightened only by the subtree's *own* discoveries.
/// Deterministic: the result depends only on (`root`, `entry_bound`,
/// `cap`), never on what concurrent subtrees find — cross-subtree bound
/// sharing happens exclusively at round boundaries (see DESIGN.md §9 for
/// why mid-round sharing would break bit-identity).
fn explore_subtree(ctx: &Ctx<'_>, root: Node, entry_bound: f64, cap: usize) -> SubResult {
    let mut local_bound = entry_bound;
    let mut best: Option<(f64, Schedule)> = None;
    let mut nodes = 0usize;
    let mut capped = false;
    let mut stack = vec![root];
    let mut pool: Vec<Node> = Vec::new();
    while let Some(node) = stack.pop() {
        nodes += 1;
        if nodes > cap {
            capped = true;
            break;
        }
        if node.done == ctx.n {
            let m = node.sched.makespan();
            if m < local_bound - 1e-12 {
                local_bound = m;
                best = Some((m, node.sched));
            } else {
                retire(&mut pool, node);
            }
            continue;
        }
        if lower_bound(ctx, &node.sched, &node.scheduled, node.remaining_work)
            >= local_bound - 1e-12
        {
            retire(&mut pool, node);
            continue;
        }
        push_children(ctx, &node, &mut stack, &mut pool);
        retire(&mut pool, node);
    }
    SubResult {
        best,
        nodes,
        capped,
    }
}

/// Result of an exact search.
#[derive(Debug, Clone)]
pub struct BnbResult {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Whether the search space was exhausted (makespan proven optimal
    /// among non-duplication schedules).
    pub proven_optimal: bool,
    /// Search nodes expanded.
    pub nodes: usize,
}

/// Branch-and-bound scheduler with a node budget.
#[derive(Debug, Clone, Copy)]
pub struct BranchAndBound {
    /// Maximum number of search nodes to expand before giving up on the
    /// optimality proof (the best-found schedule is still returned).
    pub node_budget: usize,
}

impl BranchAndBound {
    /// Search with the default budget (10⁶ nodes — exhaustive for the
    /// ≤ 12-task instances the gap experiments use).
    pub fn new() -> Self {
        BranchAndBound {
            node_budget: 1_000_000,
        }
    }

    /// Run the full search, returning the proof status alongside the
    /// schedule.
    ///
    /// The search runs in two phases, both with thread-count-independent
    /// structure (the result is bit-identical at any
    /// [`crate::par::effective_jobs`]):
    ///
    /// 1. a **sequential warm-up** — the classic DFS for the first
    ///    `SEQ_PREFIX_NODES` expansions, which finishes small instances
    ///    outright and otherwise builds a frontier of open subtrees;
    /// 2. **rounds** of `ROUND_WIDTH` frontier subtrees, each exhausted
    ///    independently against a shared atomic incumbent bound that is
    ///    read at subtree entry and advanced only at round boundaries,
    ///    after folding the round's results in submission order.
    pub fn solve(&self, dag: &Dag, sys: &System) -> BnbResult {
        let n = dag.num_tasks();
        let jobs = crate::par::effective_jobs().min(ROUND_WIDTH);
        // seed incumbent with HEFT
        let incumbent = Heft::new().schedule(dag, sys);
        let mut best_makespan = incumbent.makespan();
        let mut best = incumbent;

        // min-exec bottom levels (compute-only): admissible tail estimate
        let mut bl_min = vec![0.0f64; n];
        for &t in dag.topo_order().iter().rev() {
            let tail = dag
                .successors(t)
                .map(|(s, _)| bl_min[s.index()])
                .fold(0.0f64, f64::max);
            bl_min[t.index()] = sys.etc().min_exec(t).0 + tail;
        }
        let min_exec: Vec<f64> = dag.task_ids().map(|t| sys.etc().min_exec(t).0).collect();
        let total_min_work: f64 = min_exec.iter().sum();

        // `Schedule` is append-only (no removal), so the search snapshots
        // the schedule at each branch instead of undoing moves; an explicit
        // LIFO stack keeps memory proportional to the open frontier.

        let mut nodes = 0usize;
        let mut exhausted = false;
        let root = Node {
            sched: Schedule::new(n, sys.num_procs()),
            scheduled: vec![false; n],
            remaining_preds: dag.task_ids().map(|t| dag.in_degree(t)).collect(),
            done: 0,
            remaining_work: total_min_work,
        };
        let ctx = Ctx {
            dag,
            sys,
            bl_min,
            min_exec,
            n,
        };

        // Phase 1: sequential warm-up (possibly the entire search).
        let mut stack = vec![root];
        let mut pool: Vec<Node> = Vec::new();
        while let Some(node) = stack.pop() {
            nodes += 1;
            if nodes > self.node_budget {
                exhausted = true;
                break;
            }
            if node.done == n {
                let m = node.sched.makespan();
                if m < best_makespan - 1e-12 {
                    best_makespan = m;
                    best = node.sched;
                } else {
                    retire(&mut pool, node);
                }
                continue;
            }
            if lower_bound(&ctx, &node.sched, &node.scheduled, node.remaining_work)
                >= best_makespan - 1e-12
            {
                retire(&mut pool, node);
                continue;
            }
            push_children(&ctx, &node, &mut stack, &mut pool);
            retire(&mut pool, node);
            if nodes >= SEQ_PREFIX_NODES {
                break; // hand the open frontier to the round phase
            }
        }

        // Phase 2: subtree rounds over the remaining frontier. The round
        // structure (widths, caps, bound-update points) depends only on
        // the frontier — never on `jobs` — so every thread count explores
        // the identical tree and folds the identical results.
        let bound = AtomicU64::new(best_makespan.to_bits());
        while !stack.is_empty() && !exhausted {
            let take = stack.len().min(ROUND_WIDTH);
            let mut roots = stack.split_off(stack.len() - take);
            // pop order: the top of the stack explores (and folds) first
            roots.reverse();
            let remaining = self.node_budget.saturating_sub(nodes);
            if remaining == 0 {
                exhausted = true;
                break;
            }
            // per-subtree cap: a fair share of the remaining budget; a
            // capped subtree forfeits the optimality proof below
            let cap = remaining / take + 1;
            let results = crate::par::par_map_collect(jobs, &roots, |r| {
                let entry = f64::from_bits(bound.load(Ordering::SeqCst));
                explore_subtree(&ctx, r.clone(), entry, cap)
            });
            for r in results {
                nodes += r.nodes;
                if r.capped {
                    exhausted = true;
                }
                if let Some((m, s)) = r.best {
                    if m < best_makespan - 1e-12 {
                        best_makespan = m;
                        best = s;
                    }
                }
            }
            if nodes > self.node_budget {
                exhausted = true;
            }
            bound.store(best_makespan.to_bits(), Ordering::SeqCst);
        }

        BnbResult {
            schedule: best,
            proven_optimal: !exhausted,
            nodes,
        }
    }
}

impl Default for BranchAndBound {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for BranchAndBound {
    fn name(&self) -> &'static str {
        "BNB"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        self.solve(inst.dag(), inst.sys()).schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::all_heterogeneous;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::{EtcMatrix, EtcParams, Network};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_the_obvious_optimum() {
        // two independent equal tasks, two processors: optimal = 4
        let dag = dag_from_edges(&[4.0, 4.0], &[]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let r = BranchAndBound::new().solve(&dag, &sys);
        assert!(r.proven_optimal);
        assert_eq!(r.schedule.makespan(), 4.0);
        assert_eq!(validate(&dag, &sys, &r.schedule), Ok(()));
    }

    #[test]
    fn beats_heft_where_heft_is_greedy() {
        // The PEFT motivating example: EFT-greedy parks the parent on the
        // wrong processor; the exact search does not.
        let dag = dag_from_edges(&[2.0, 4.0], &[(0, 1, 6.0)]).unwrap();
        let etc = EtcMatrix::from_fn(2, 2, |t, p| match (t.index(), p.index()) {
            (0, 0) => 2.0,
            (0, 1) => 3.0,
            (1, 0) => 8.0,
            (1, 1) => 2.0,
            _ => unreachable!(),
        });
        let sys = System::new(etc, Network::unit(2));
        let heft = Heft::new().schedule(&dag, &sys).makespan();
        let r = BranchAndBound::new().solve(&dag, &sys);
        assert!(r.proven_optimal);
        assert_eq!(r.schedule.makespan(), 5.0);
        assert!(heft > 5.0, "HEFT {heft} is suboptimal here");
    }

    #[test]
    fn never_worse_than_any_non_duplication_heuristic() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let dag = hetsched_workloads::random_dag(
                &hetsched_workloads::RandomDagParams::new(8, 1.0, 1.0),
                &mut rng,
            );
            let sys = System::heterogeneous_random(&dag, 3, &EtcParams::range_based(1.0), &mut rng);
            let r = BranchAndBound::new().solve(&dag, &sys);
            assert!(r.proven_optimal, "seed {seed}: budget too small");
            assert_eq!(validate(&dag, &sys, &r.schedule), Ok(()));
            let opt = r.schedule.makespan();
            for alg in all_heterogeneous() {
                if alg.name().contains("DUP") || alg.name() == "ILS-D" {
                    continue; // duplication may legally beat the non-dup optimum
                }
                let m = alg.schedule(&dag, &sys).makespan();
                assert!(
                    m >= opt - 1e-9,
                    "seed {seed}: {} found {m} < optimal {opt}",
                    alg.name()
                );
            }
            // and the optimum respects the admissible lower bound
            let lb = {
                // inline work/path bound for the empty schedule
                let wb: f64 = dag.task_ids().map(|t| sys.etc().min_exec(t).0).sum::<f64>()
                    / sys.num_procs() as f64;
                wb
            };
            assert!(opt >= lb - 1e-9);
        }
    }

    #[test]
    fn budget_exhaustion_still_returns_heft_quality() {
        let mut rng = StdRng::seed_from_u64(3);
        let dag = hetsched_workloads::random_dag(
            &hetsched_workloads::RandomDagParams::new(20, 1.0, 1.0),
            &mut rng,
        );
        let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
        let tiny = BranchAndBound { node_budget: 50 };
        let r = tiny.solve(&dag, &sys);
        assert!(!r.proven_optimal);
        let heft = Heft::new().schedule(&dag, &sys).makespan();
        assert!(r.schedule.makespan() <= heft + 1e-9);
        assert_eq!(validate(&dag, &sys, &r.schedule), Ok(()));
    }

    #[test]
    fn chain_on_two_processors_is_serial_optimal() {
        let dag = dag_from_edges(&[3.0, 2.0, 1.0], &[(0, 1, 10.0), (1, 2, 10.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let r = BranchAndBound::new().solve(&dag, &sys);
        assert!(r.proven_optimal);
        assert_eq!(r.schedule.makespan(), 6.0);
    }
}
