//! Exact branch-and-bound scheduling for small instances — the optimality
//! baseline heuristics are measured against.
//!
//! The search branches over (ready task, processor) decisions in
//! list-schedule order, keeps the best complete schedule found, and prunes
//! with two admissible lower bounds:
//!
//! * **work bound** — busy time already committed plus the remaining
//!   fastest-execution work, divided by the processor count;
//! * **path bound** — for every unscheduled task, its earliest possible
//!   start (scheduled parents' finishes, communication-free) plus its
//!   minimum-execution bottom level.
//!
//! The incumbent is seeded with HEFT's schedule, so the search is
//! *anytime*: with an exhausted node budget it still returns a schedule at
//! least as good as HEFT, just without the optimality certificate.
//!
//! Scope notes: the search covers **non-duplication** schedules (the
//! classic problem definition); duplication-based heuristics may therefore
//! legitimately beat the "optimal" on communication-bound instances. It
//! also restricts starts to the canonical left-shifted form (every task
//! starts at its earliest feasible time given the decision order) with
//! insertion, which preserves at least one optimal schedule.

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::System;

use crate::algorithms::Heft;
use crate::eft::eft_on_raw;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::Scheduler;

/// Result of an exact search.
#[derive(Debug, Clone)]
pub struct BnbResult {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Whether the search space was exhausted (makespan proven optimal
    /// among non-duplication schedules).
    pub proven_optimal: bool,
    /// Search nodes expanded.
    pub nodes: usize,
}

/// Branch-and-bound scheduler with a node budget.
#[derive(Debug, Clone, Copy)]
pub struct BranchAndBound {
    /// Maximum number of search nodes to expand before giving up on the
    /// optimality proof (the best-found schedule is still returned).
    pub node_budget: usize,
}

impl BranchAndBound {
    /// Search with the default budget (10⁶ nodes — exhaustive for the
    /// ≤ 12-task instances the gap experiments use).
    pub fn new() -> Self {
        BranchAndBound {
            node_budget: 1_000_000,
        }
    }

    /// Run the full search, returning the proof status alongside the
    /// schedule.
    pub fn solve(&self, dag: &Dag, sys: &System) -> BnbResult {
        let n = dag.num_tasks();
        // seed incumbent with HEFT
        let incumbent = Heft::new().schedule(dag, sys);
        let mut best_makespan = incumbent.makespan();
        let mut best = incumbent;

        // min-exec bottom levels (compute-only): admissible tail estimate
        let mut bl_min = vec![0.0f64; n];
        for &t in dag.topo_order().iter().rev() {
            let tail = dag
                .successors(t)
                .map(|(s, _)| bl_min[s.index()])
                .fold(0.0f64, f64::max);
            bl_min[t.index()] = sys.etc().min_exec(t).0 + tail;
        }
        let min_exec: Vec<f64> = dag.task_ids().map(|t| sys.etc().min_exec(t).0).collect();
        let total_min_work: f64 = min_exec.iter().sum();

        struct Ctx<'a> {
            dag: &'a Dag,
            sys: &'a System,
            bl_min: Vec<f64>,
            min_exec: Vec<f64>,
        }

        fn lower_bound(
            ctx: &Ctx<'_>,
            sched: &Schedule,
            scheduled: &[bool],
            remaining_work: f64,
        ) -> f64 {
            let mut lb = sched.makespan();
            // work bound: committed busy time + remaining fastest work
            let wb = (sched.busy_time() + remaining_work) / ctx.sys.num_procs() as f64;
            if wb > lb {
                lb = wb;
            }
            // path bound
            for t in ctx.dag.task_ids() {
                if scheduled[t.index()] {
                    continue;
                }
                let mut est = 0.0f64;
                for (u, _) in ctx.dag.predecessors(t) {
                    if let Some(f) = sched.task_finish(u) {
                        if f > est {
                            est = f;
                        }
                    }
                }
                let pb = est + ctx.bl_min[t.index()];
                if pb > lb {
                    lb = pb;
                }
            }
            lb
        }

        // `Schedule` is append-only (no removal), so the search snapshots
        // the schedule at each branch instead of undoing moves; an explicit
        // LIFO stack keeps memory proportional to the open frontier.

        let mut nodes = 0usize;
        let mut exhausted = false;
        // explicit stack of (schedule, scheduled, remaining_preds, done, remaining_work)
        struct Node {
            sched: Schedule,
            scheduled: Vec<bool>,
            remaining_preds: Vec<usize>,
            done: usize,
            remaining_work: f64,
        }
        let root = Node {
            sched: Schedule::new(n, sys.num_procs()),
            scheduled: vec![false; n],
            remaining_preds: dag.task_ids().map(|t| dag.in_degree(t)).collect(),
            done: 0,
            remaining_work: total_min_work,
        };
        let ctx = Ctx {
            dag,
            sys,
            bl_min,
            min_exec,
        };
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            nodes += 1;
            if nodes > self.node_budget {
                exhausted = true;
                break;
            }
            if node.done == n {
                let m = node.sched.makespan();
                if m < best_makespan - 1e-12 {
                    best_makespan = m;
                    best = node.sched;
                }
                continue;
            }
            if lower_bound(&ctx, &node.sched, &node.scheduled, node.remaining_work)
                >= best_makespan - 1e-12
            {
                continue;
            }
            let mut ready: Vec<TaskId> = dag
                .task_ids()
                .filter(|t| !node.scheduled[t.index()] && node.remaining_preds[t.index()] == 0)
                .collect();
            ready.sort_by(|&a, &b| {
                ctx.bl_min[b.index()]
                    .total_cmp(&ctx.bl_min[a.index()])
                    .then_with(|| a.cmp(&b))
            });
            // LIFO stack: push in reverse so the most promising branch pops
            // first
            let mut children: Vec<Node> = Vec::new();
            for &t in &ready {
                let mut procs: Vec<(hetsched_platform::ProcId, f64, f64)> = sys
                    .proc_ids()
                    .map(|p| {
                        let (s, f) = eft_on_raw(dag, sys, &node.sched, t, p, true);
                        (p, s, f)
                    })
                    .collect();
                procs.sort_by(|a, b| a.2.total_cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
                for (p, start, finish) in procs {
                    let mut sched = node.sched.clone();
                    sched
                        .insert(t, p, start, finish - start)
                        .expect("EFT placement is conflict-free");
                    let mut scheduled = node.scheduled.clone();
                    scheduled[t.index()] = true;
                    let mut remaining_preds = node.remaining_preds.clone();
                    for (s, _) in dag.successors(t) {
                        remaining_preds[s.index()] -= 1;
                    }
                    children.push(Node {
                        sched,
                        scheduled,
                        remaining_preds,
                        done: node.done + 1,
                        remaining_work: node.remaining_work - ctx.min_exec[t.index()],
                    });
                }
            }
            while let Some(c) = children.pop() {
                stack.push(c);
            }
        }

        BnbResult {
            schedule: best,
            proven_optimal: !exhausted,
            nodes,
        }
    }
}

impl Default for BranchAndBound {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for BranchAndBound {
    fn name(&self) -> &'static str {
        "BNB"
    }

    fn schedule_instance(&self, inst: &ProblemInstance) -> Schedule {
        self.solve(inst.dag(), inst.sys()).schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::all_heterogeneous;
    use crate::validate::validate;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::{EtcMatrix, EtcParams, Network};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_the_obvious_optimum() {
        // two independent equal tasks, two processors: optimal = 4
        let dag = dag_from_edges(&[4.0, 4.0], &[]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let r = BranchAndBound::new().solve(&dag, &sys);
        assert!(r.proven_optimal);
        assert_eq!(r.schedule.makespan(), 4.0);
        assert_eq!(validate(&dag, &sys, &r.schedule), Ok(()));
    }

    #[test]
    fn beats_heft_where_heft_is_greedy() {
        // The PEFT motivating example: EFT-greedy parks the parent on the
        // wrong processor; the exact search does not.
        let dag = dag_from_edges(&[2.0, 4.0], &[(0, 1, 6.0)]).unwrap();
        let etc = EtcMatrix::from_fn(2, 2, |t, p| match (t.index(), p.index()) {
            (0, 0) => 2.0,
            (0, 1) => 3.0,
            (1, 0) => 8.0,
            (1, 1) => 2.0,
            _ => unreachable!(),
        });
        let sys = System::new(etc, Network::unit(2));
        let heft = Heft::new().schedule(&dag, &sys).makespan();
        let r = BranchAndBound::new().solve(&dag, &sys);
        assert!(r.proven_optimal);
        assert_eq!(r.schedule.makespan(), 5.0);
        assert!(heft > 5.0, "HEFT {heft} is suboptimal here");
    }

    #[test]
    fn never_worse_than_any_non_duplication_heuristic() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let dag = hetsched_workloads::random_dag(
                &hetsched_workloads::RandomDagParams::new(8, 1.0, 1.0),
                &mut rng,
            );
            let sys = System::heterogeneous_random(&dag, 3, &EtcParams::range_based(1.0), &mut rng);
            let r = BranchAndBound::new().solve(&dag, &sys);
            assert!(r.proven_optimal, "seed {seed}: budget too small");
            assert_eq!(validate(&dag, &sys, &r.schedule), Ok(()));
            let opt = r.schedule.makespan();
            for alg in all_heterogeneous() {
                if alg.name().contains("DUP") || alg.name() == "ILS-D" {
                    continue; // duplication may legally beat the non-dup optimum
                }
                let m = alg.schedule(&dag, &sys).makespan();
                assert!(
                    m >= opt - 1e-9,
                    "seed {seed}: {} found {m} < optimal {opt}",
                    alg.name()
                );
            }
            // and the optimum respects the admissible lower bound
            let lb = {
                // inline work/path bound for the empty schedule
                let wb: f64 = dag.task_ids().map(|t| sys.etc().min_exec(t).0).sum::<f64>()
                    / sys.num_procs() as f64;
                wb
            };
            assert!(opt >= lb - 1e-9);
        }
    }

    #[test]
    fn budget_exhaustion_still_returns_heft_quality() {
        let mut rng = StdRng::seed_from_u64(3);
        let dag = hetsched_workloads::random_dag(
            &hetsched_workloads::RandomDagParams::new(20, 1.0, 1.0),
            &mut rng,
        );
        let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
        let tiny = BranchAndBound { node_budget: 50 };
        let r = tiny.solve(&dag, &sys);
        assert!(!r.proven_optimal);
        let heft = Heft::new().schedule(&dag, &sys).makespan();
        assert!(r.schedule.makespan() <= heft + 1e-9);
        assert_eq!(validate(&dag, &sys, &r.schedule), Ok(()));
    }

    #[test]
    fn chain_on_two_processors_is_serial_optimal() {
        let dag = dag_from_edges(&[3.0, 2.0, 1.0], &[(0, 1, 10.0), (1, 2, 10.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let r = BranchAndBound::new().solve(&dag, &sys);
        assert!(r.proven_optimal);
        assert_eq!(r.schedule.makespan(), 6.0);
    }
}
