//! Optimised EFT evaluation engine.
//!
//! The free functions in [`crate::eft`] are the *reference semantics*: small,
//! obviously-correct, and allocation-happy — `data_ready_time(t, p)` re-walks
//! every predecessor's copy list for each of the P processors, and
//! `eft_candidates` allocates a fresh `Vec` per query. [`EftContext`] is the
//! production engine the list schedulers thread through their scheduling
//! loops instead:
//!
//! * the **data-ready frontier** of a task is computed once across all P
//!   processors (each predecessor's copies are walked a single time, fanned
//!   out over the contiguous link-cost rows of
//!   [`hetsched_platform::Network::link_rows`]), turning the inner loop into
//!   flat slice arithmetic;
//! * all scratch storage lives in the context and is reused from task to
//!   task, so steady-state scheduling performs no per-query allocation;
//! * every fold mirrors the reference implementation's operation order
//!   exactly (max over predecessors in predecessor order, min over copies in
//!   copy order), which — together with the cached gap search in
//!   [`Schedule::earliest_start`] — makes the engine **bit-identical** to
//!   the reference: same schedules, same `f64` bits.
//!
//! That last property is enforced, not assumed: [`with_reference_engine`]
//! flips the whole crate (contexts *and* the gap search) onto the naive
//! paths, and the conformance suites run every algorithm both ways and
//! compare schedules byte for byte.

use std::cell::Cell;

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{ProcId, System};

use crate::eft;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;

thread_local! {
    static REFERENCE_ENGINE: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is forcing the naive reference engine.
#[inline]
pub fn reference_engine_active() -> bool {
    REFERENCE_ENGINE.with(Cell::get)
}

/// Run `f` with the optimised engine disabled on this thread: every
/// [`EftContext`] built inside dispatches to the naive [`crate::eft`] free
/// functions, and [`Schedule::earliest_start`] uses the full-timeline
/// reference scan. Restores the previous state on exit (including unwind).
///
/// This exists for conformance testing — scheduling the same instance inside
/// and outside `with_reference_engine` must produce byte-identical
/// schedules — and is exported so integration tests outside the crate can
/// assert it too.
pub fn with_reference_engine<R>(f: impl FnOnce() -> R) -> R {
    struct Guard(bool);
    impl Drop for Guard {
        fn drop(&mut self) {
            REFERENCE_ENGINE.with(|c| c.set(self.0));
        }
    }
    let _guard = Guard(REFERENCE_ENGINE.with(|c| c.replace(true)));
    f()
}

/// Reusable scratch state for EFT queries over one system.
///
/// Construct once per scheduling run (`EftContext::new(sys)`) and pass to
/// each query; buffers are recycled across tasks. A context is tied to the
/// processor count of the system it was built for; batch schedulers reuse
/// one context across instances via [`Self::reset_for`].
///
/// The arrival-frontier buffer is checked out of the thread-local
/// [`crate::arena::ScratchArena`] and recycled on drop, so on a resident
/// worker thread every context after the first is allocation-free. This
/// covers all the engine's execution modes at once: serve workers and
/// `par::scoped_replay_pool` replicas construct their contexts on the
/// threads that run them, and repair funnels through the same scheduling
/// loop.
#[derive(Debug)]
pub struct EftContext {
    /// Dispatch to the naive reference implementations (captured from
    /// [`reference_engine_active`] at construction time).
    reference: bool,
    /// Per-processor data-ready frontier of the task last passed to
    /// [`Self::data_ready_all`]. Arena-checked-out; recycled by `Drop`.
    ready: Vec<f64>,
}

impl Drop for EftContext {
    fn drop(&mut self) {
        crate::arena::recycle_f64(std::mem::take(&mut self.ready));
    }
}

impl EftContext {
    /// Fresh context for systems with `sys.num_procs()` processors.
    pub fn new(sys: &System) -> Self {
        EftContext {
            reference: reference_engine_active(),
            ready: crate::arena::take_f64(sys.num_procs()),
        }
    }

    /// Re-arm this context for another system, reusing its buffers —
    /// equivalent to dropping it and constructing `EftContext::new(sys)`,
    /// without the arena round trip. The batched `schedule_many` loops
    /// call this between instances.
    pub fn reset_for(&mut self, sys: &System) {
        self.reference = reference_engine_active();
        self.ready.clear();
        self.ready.resize(sys.num_procs(), 0.0);
    }

    /// Data-ready time of `t` on *every* processor: `out[p]` equals
    /// `eft::data_ready_time(dag, sys, sched, t, p)` bit for bit.
    ///
    /// Each predecessor's copy list is traversed once and fanned out across
    /// the processor axis (the reference traverses it once *per processor*).
    ///
    /// # Panics
    /// Panics if any predecessor of `t` has no scheduled copy.
    pub fn data_ready_all(
        &mut self,
        inst: &ProblemInstance,
        sched: &Schedule,
        t: TaskId,
    ) -> &[f64] {
        self.data_ready_all_on(inst.dag(), inst.sys(), sched, t)
    }

    /// [`Self::data_ready_all`] on pre-resolved references — the per-query
    /// hot path used by [`Self::best_eft`], which resolves the instance's
    /// `Cow`s exactly once per call.
    fn data_ready_all_on(
        &mut self,
        dag: &Dag,
        sys: &System,
        sched: &Schedule,
        t: TaskId,
    ) -> &[f64] {
        debug_assert_eq!(self.ready.len(), sys.num_procs());
        hetsched_trace::counters(|c| c.drt_frontier_builds += 1);
        if self.reference {
            for (i, r) in self.ready.iter_mut().enumerate() {
                *r = eft::data_ready_time_raw(dag, sys, sched, t, ProcId(i as u32));
            }
            return &self.ready;
        }
        self.ready.fill(0.0);
        let net = sys.network();
        let (mut single, mut multi) = (0u64, 0u64);
        for (u, data) in dag.predecessors(t) {
            let copies = sched.copies(u);
            assert!(
                !copies.is_empty(),
                "predecessor {u} not scheduled before its consumer"
            );
            if let [(q, fin)] = copies {
                // Single copy (the overwhelmingly common case — duplication
                // off): one transfer fanned out over the contiguous link
                // rows of the source processor.
                single += 1;
                let (startup, inv_bw) = net.link_rows(*q);
                for ((r, &su), &ib) in self.ready.iter_mut().zip(startup).zip(inv_bw) {
                    let arrival = fin + (su + data * ib);
                    *r = r.max(arrival);
                }
            } else {
                // Several copies: min over copies in copy order, exactly as
                // `eft::arrival_from` folds.
                multi += 1;
                for (i, r) in self.ready.iter_mut().enumerate() {
                    let p = ProcId(i as u32);
                    let arrival = copies
                        .iter()
                        .map(|&(q, fin)| fin + net.comm_time(data, q, p))
                        .fold(f64::INFINITY, f64::min);
                    *r = r.max(arrival);
                }
            }
        }
        hetsched_trace::counters(|c| {
            c.drt_single_copy_preds += single;
            c.drt_multi_copy_preds += multi;
        });
        &self.ready
    }

    /// The processor giving `t` the minimum EFT, with its start and finish —
    /// bit-identical to [`eft::best_eft`]. Ties break toward the smaller
    /// processor id.
    pub fn best_eft(
        &mut self,
        inst: &ProblemInstance,
        sched: &Schedule,
        t: TaskId,
        insertion: bool,
    ) -> (ProcId, f64, f64) {
        let tracing = hetsched_trace::enabled();
        if tracing {
            hetsched_trace::counters(|c| c.eft_best_queries += 1);
        }
        let (dag, sys) = (inst.dag(), inst.sys());
        if self.reference {
            return eft::best_eft_raw(dag, sys, sched, t, insertion);
        }
        self.data_ready_all_on(dag, sys, sched, t);
        let durs = sys.etc().row(t);
        let mut best: Option<(ProcId, f64, f64)> = None;
        let mut cands: Vec<hetsched_trace::Candidate> = Vec::new();
        for (i, (&ready, &dur)) in self.ready.iter().zip(durs).enumerate() {
            let p = ProcId(i as u32);
            let start = sched.earliest_start(p, ready, dur, insertion);
            let f = start + dur;
            if tracing {
                cands.push(hetsched_trace::Candidate {
                    proc: i as u32,
                    ready,
                    start,
                    finish: f,
                });
            }
            match best {
                Some((_, _, bf)) if f >= bf => {}
                _ => best = Some((p, start, f)),
            }
        }
        let best = best.expect("system has at least one processor");
        if tracing {
            let (p, start, finish) = best;
            // The chosen start precedes the timeline end exactly when the
            // insertion policy filled a gap rather than appending.
            let gap_used = start < sched.proc_finish(p);
            hetsched_trace::emit(|| hetsched_trace::Event::EftDecision {
                task: t.index() as u32,
                proc: p.index() as u32,
                start,
                finish,
                gap_used,
                candidates: cands,
            });
        }
        best
    }

    /// Near-tie candidate set of `t`, written into the caller-owned `out`
    /// buffer (cleared first) — element-identical to
    /// [`eft::eft_candidates`], without its per-query allocation. Callers
    /// keep one `Vec` alive across their whole scheduling loop.
    #[allow(clippy::too_many_arguments)]
    pub fn eft_candidates_into(
        &mut self,
        inst: &ProblemInstance,
        sched: &Schedule,
        t: TaskId,
        insertion: bool,
        tolerance: f64,
        out: &mut Vec<(ProcId, f64, f64)>,
    ) {
        debug_assert!(tolerance >= 0.0);
        hetsched_trace::counters(|c| c.eft_candidate_queries += 1);
        out.clear();
        let (dag, sys) = (inst.dag(), inst.sys());
        if self.reference {
            out.extend(eft::eft_candidates_raw(
                dag, sys, sched, t, insertion, tolerance,
            ));
            return;
        }
        self.data_ready_all_on(dag, sys, sched, t);
        let durs = sys.etc().row(t);
        for (i, (&ready, &dur)) in self.ready.iter().zip(durs).enumerate() {
            let p = ProcId(i as u32);
            let start = sched.earliest_start(p, ready, dur, insertion);
            out.push((p, start, start + dur));
        }
        out.sort_by(|a, b| a.2.total_cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let cut = eft::tolerance_cut(out[0].2, tolerance);
        out.retain(|&(_, _, f)| f <= cut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::{EtcMatrix, Network};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Diamond with a duplicated parent and a heterogeneous network: the
    /// context must reproduce every reference query bit for bit.
    #[test]
    fn context_matches_reference_queries() {
        let dag = dag_from_edges(
            &[2.0, 3.0, 1.0, 4.0],
            &[(0, 1, 6.0), (0, 2, 2.0), (1, 3, 4.0), (2, 3, 5.0)],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let etc = EtcMatrix::from_fn(4, 3, |_, _| rng.gen_range(0.5..4.0));
        let mut rng = StdRng::seed_from_u64(4);
        let net = Network::heterogeneous_random(3, (0.0, 0.5), (0.5, 2.0), &mut rng);
        let sys = System::new(etc, net);

        let mut sched = Schedule::new(4, 3);
        sched.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        sched
            .insert_duplicate(TaskId(0), ProcId(2), 0.5, 2.5)
            .unwrap();
        sched.insert(TaskId(1), ProcId(1), 3.0, 1.0).unwrap();
        sched.insert(TaskId(2), ProcId(0), 2.0, 1.5).unwrap();

        let inst = ProblemInstance::from_refs(&dag, &sys);
        let mut ctx = EftContext::new(inst.sys());
        let ready = ctx.data_ready_all(&inst, &sched, TaskId(3)).to_vec();
        for (i, r) in ready.iter().enumerate() {
            let p = ProcId(i as u32);
            let want = eft::data_ready_time_raw(&dag, &sys, &sched, TaskId(3), p);
            assert_eq!(r.to_bits(), want.to_bits(), "DRT mismatch on {p}");
        }
        let fast = ctx.best_eft(&inst, &sched, TaskId(3), true);
        let naive = eft::best_eft_raw(&dag, &sys, &sched, TaskId(3), true);
        assert_eq!(fast, naive);

        for tol in [0.0, 0.05, 0.5, f64::INFINITY] {
            let mut buf = Vec::new();
            ctx.eft_candidates_into(&inst, &sched, TaskId(3), true, tol, &mut buf);
            let want = eft::eft_candidates_raw(&dag, &sys, &sched, TaskId(3), true, tol);
            assert_eq!(buf, want, "candidate mismatch at tolerance {tol}");
        }
    }

    #[test]
    fn reference_mode_is_scoped_and_restored() {
        assert!(!reference_engine_active());
        with_reference_engine(|| {
            assert!(reference_engine_active());
            let dag = dag_from_edges(&[1.0, 1.0], &[(0, 1, 2.0)]).unwrap();
            let sys = System::homogeneous_unit(&dag, 2);
            let ctx = EftContext::new(&sys);
            assert!(ctx.reference);
        });
        assert!(!reference_engine_active());
    }
}
