//! Per-thread scratch arena for per-schedule transient buffers.
//!
//! Every `schedule_instance` call needs the same transient state — most
//! prominently the [`crate::EftContext`] arrival frontier, one `f64` per
//! processor — and under the serve daemon those calls arrive thousands of
//! times per second on resident worker threads. The arena turns those
//! allocations into checkouts from a thread-local pool: a buffer is taken
//! at context construction, recycled when the context drops, and handed
//! back (re-zeroed, so contents are bit-identical to a fresh
//! `vec![0.0; len]`) to the next call on the same thread. Steady state is
//! zero allocation: after the first schedule on a thread, subsequent ones
//! reuse its buffers.
//!
//! The crate is `#![forbid(unsafe_code)]`, so this is a *typed* arena —
//! pools of `Vec<f64>` with ownership moved in and out — rather than a raw
//! bump allocator over a byte buffer; the allocation-count outcome is the
//! same and every checkout stays borrow-checked.
//!
//! Threading model: the pool is `thread_local!`, which covers every
//! execution mode for free — the serve workers each own their thread (and
//! thus their pool), and `par::scoped_replay_pool` runs its per-worker
//! `init()` replicas on the worker threads themselves, so each replica's
//! context checks out of that worker's pool with no sharing or locking.
//!
//! The `arena-poison` cargo feature NaN-fills every buffer at recycle
//! time, so a use-after-recycle (a stale clone of a frontier slice, say)
//! surfaces as NaNs propagating through the schedule — the miri-lite CI
//! job runs the core test suite with this feature on and debug asserts
//! enabled. Checkouts re-zero regardless, so poisoning never changes a
//! schedule byte.

use std::cell::RefCell;

/// A pool of reusable scratch buffers. One lives per thread (see
/// [`take_f64`] / [`recycle_f64`]); the type is public so tests and
/// benchmarks can inspect checkout statistics.
#[derive(Debug, Default)]
pub struct ScratchArena {
    f64_pool: Vec<Vec<f64>>,
    stats: ArenaStats,
}

/// Checkout counters of one thread's [`ScratchArena`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total buffer checkouts.
    pub takes: u64,
    /// Checkouts that had to allocate because the pool was empty (or
    /// unavailable). `takes - fresh` buffers were served allocation-free.
    pub fresh: u64,
    /// Buffers returned to the pool.
    pub recycled: u64,
}

impl ScratchArena {
    const fn new() -> Self {
        ScratchArena {
            f64_pool: Vec::new(),
            stats: ArenaStats {
                takes: 0,
                fresh: 0,
                recycled: 0,
            },
        }
    }

    /// Check out a buffer of `len` zeros — contents bit-identical to a
    /// fresh `vec![0.0; len]`, whatever the recycled capacity held.
    pub fn take_f64(&mut self, len: usize) -> Vec<f64> {
        self.stats.takes += 1;
        match self.f64_pool.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len, 0.0);
                v
            }
            None => {
                self.stats.fresh += 1;
                vec![0.0; len]
            }
        }
    }

    /// Return a buffer to the pool for the next [`Self::take_f64`].
    pub fn put_f64(&mut self, mut v: Vec<f64>) {
        self.stats.recycled += 1;
        // Poisoning makes any alias that outlived the recycle visibly
        // wrong (NaN contaminates every downstream fold) instead of
        // silently reading stale times.
        #[cfg(feature = "arena-poison")]
        v.iter_mut().for_each(|x| *x = f64::NAN);
        #[cfg(not(feature = "arena-poison"))]
        v.clear();
        self.f64_pool.push(v);
    }

    /// This arena's checkout counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

thread_local! {
    static ARENA: RefCell<ScratchArena> = const { RefCell::new(ScratchArena::new()) };
}

/// Check out a `len`-zeros buffer from the current thread's arena.
///
/// Falls back to a plain allocation if the arena is unavailable
/// (re-entrant call from a destructor, or thread teardown) — callers never
/// observe the difference.
pub fn take_f64(len: usize) -> Vec<f64> {
    ARENA
        .try_with(|a| match a.try_borrow_mut() {
            Ok(mut arena) => arena.take_f64(len),
            Err(_) => vec![0.0; len],
        })
        .unwrap_or_else(|_| vec![0.0; len])
}

/// Recycle a buffer into the current thread's arena (dropped on the floor
/// if the arena is unavailable).
pub fn recycle_f64(v: Vec<f64>) {
    let _ = ARENA.try_with(|a| {
        if let Ok(mut arena) = a.try_borrow_mut() {
            arena.put_f64(v);
        }
    });
}

/// Checkout counters of the current thread's arena (zeros if unavailable).
pub fn thread_stats() -> ArenaStats {
    ARENA
        .try_with(|a| a.try_borrow().map(|ar| ar.stats()).unwrap_or_default())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_zeroed_and_recycling_avoids_allocation() {
        let mut arena = ScratchArena::new();
        let a = arena.take_f64(4);
        assert_eq!(a, vec![0.0; 4]);
        assert_eq!(arena.stats().fresh, 1);
        arena.put_f64(a);
        // Second checkout reuses the pooled buffer — contents still zeros
        // (even under `arena-poison`, which NaN-fills only while pooled)
        // and no fresh allocation.
        let b = arena.take_f64(6);
        assert_eq!(b, vec![0.0; 6]);
        let s = arena.stats();
        assert_eq!((s.takes, s.fresh, s.recycled), (2, 1, 1));
    }

    #[test]
    fn thread_local_take_recycle_round_trip() {
        let before = thread_stats();
        let v = take_f64(8);
        assert_eq!(v, vec![0.0; 8]);
        recycle_f64(v);
        let after = thread_stats();
        assert_eq!(after.takes, before.takes + 1);
        assert_eq!(after.recycled, before.recycled + 1);
        // steady state: a second round trip allocates nothing new
        let v = take_f64(8);
        recycle_f64(v);
        assert_eq!(thread_stats().fresh, after.fresh);
    }
}
