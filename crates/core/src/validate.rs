//! Scheduler-independent schedule validation.
//!
//! [`validate`] re-checks, from first principles, everything a correct
//! static schedule must satisfy. Every algorithm in this workspace is
//! tested against it, and the discrete-event simulator in `hetsched-sim`
//! provides a second, semantics-based cross-check.

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{ProcId, System};

use crate::schedule::{Schedule, TIME_EPS};

/// Violations detected by [`validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// Schedule sized for a different task count than the DAG.
    SizeMismatch {
        /// Tasks in the DAG.
        dag_tasks: usize,
        /// Tasks the schedule is sized for.
        sched_tasks: usize,
    },
    /// A task has no primary assignment.
    Unscheduled(TaskId),
    /// Two slots overlap on one processor.
    Overlap {
        /// Processor where the overlap occurs.
        proc: ProcId,
        /// Earlier slot's task.
        first: TaskId,
        /// Later (overlapping) slot's task.
        second: TaskId,
    },
    /// A slot's duration disagrees with the ETC matrix.
    WrongDuration {
        /// The task whose slot is wrong.
        task: TaskId,
        /// Processor of the slot.
        proc: ProcId,
        /// Expected duration per the ETC matrix.
        expected: f64,
        /// Actual slot duration.
        actual: f64,
    },
    /// A copy of a task starts before some predecessor's data can arrive.
    PrecedenceViolation {
        /// The consumer task (the copy that starts too early).
        task: TaskId,
        /// Processor of the offending copy.
        proc: ProcId,
        /// The predecessor whose data arrives late.
        pred: TaskId,
        /// Earliest possible arrival of the predecessor's data.
        arrival: f64,
        /// Actual start of the consumer copy.
        start: f64,
    },
}

impl core::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ValidationError::SizeMismatch { dag_tasks, sched_tasks } => write!(
                f,
                "schedule sized for {sched_tasks} tasks but DAG has {dag_tasks}"
            ),
            ValidationError::Unscheduled(t) => write!(f, "task {t} has no primary assignment"),
            ValidationError::Overlap { proc, first, second } => {
                write!(f, "tasks {first} and {second} overlap on {proc}")
            }
            ValidationError::WrongDuration { task, proc, expected, actual } => write!(
                f,
                "task {task} on {proc}: duration {actual} != ETC {expected}"
            ),
            ValidationError::PrecedenceViolation { task, proc, pred, arrival, start } => write!(
                f,
                "task {task} on {proc} starts at {start} before data from {pred} arrives at {arrival}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check `sched` against `dag` and `sys`:
///
/// 1. every task has exactly one primary assignment;
/// 2. no two slots overlap on any processor;
/// 3. every slot's duration matches the ETC matrix entry (primary *and*
///    duplicate copies);
/// 4. every copy of every task starts no earlier than the latest possible
///    arrival of each predecessor's data, where a predecessor's data may be
///    read from any of its copies (duplication-aware precedence).
///
/// Returns the first violation found, scanning deterministically.
pub fn validate(dag: &Dag, sys: &System, sched: &Schedule) -> Result<(), ValidationError> {
    if dag.num_tasks() != sched.num_tasks() {
        return Err(ValidationError::SizeMismatch {
            dag_tasks: dag.num_tasks(),
            sched_tasks: sched.num_tasks(),
        });
    }

    // 1. completeness
    for t in dag.task_ids() {
        if sched.assignment(t).is_none() {
            return Err(ValidationError::Unscheduled(t));
        }
    }

    for p in sys.proc_ids() {
        let slots = sched.slots(p);
        // 2. non-overlap (slots are sorted by start; conflict requires a
        //    positive-measure intersection so zero-duration virtual tasks
        //    may share a boundary instant)
        for k in 1..slots.len() {
            let (a, b) = (slots.get(k - 1), slots.get(k));
            if a.finish > b.start + TIME_EPS && b.finish > a.start + TIME_EPS {
                return Err(ValidationError::Overlap {
                    proc: p,
                    first: a.task,
                    second: b.task,
                });
            }
        }
        // 3. durations
        for s in slots {
            let expected = sys.exec_time(s.task, p);
            let actual = s.finish - s.start;
            if (actual - expected).abs() > TIME_EPS * expected.max(1.0) {
                return Err(ValidationError::WrongDuration {
                    task: s.task,
                    proc: p,
                    expected,
                    actual,
                });
            }
        }
        // 4. precedence for every copy on this processor
        for s in slots {
            for (u, data) in dag.predecessors(s.task) {
                let arrival = sched
                    .copies(u)
                    .iter()
                    .map(|&(q, fin)| fin + sys.comm_time(data, q, p))
                    .fold(f64::INFINITY, f64::min);
                if s.start + TIME_EPS < arrival {
                    return Err(ValidationError::PrecedenceViolation {
                        task: s.task,
                        proc: p,
                        pred: u,
                        arrival,
                        start: s.start,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::Dag;
    use hetsched_platform::System;

    fn chain() -> (Dag, System) {
        let dag = dag_from_edges(&[2.0, 3.0], &[(0, 1, 4.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        (dag, sys)
    }

    #[test]
    fn valid_local_schedule_passes() {
        let (dag, sys) = chain();
        let mut s = Schedule::new(2, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 2.0, 3.0).unwrap();
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }

    #[test]
    fn valid_remote_schedule_requires_comm_delay() {
        let (dag, sys) = chain();
        let mut s = Schedule::new(2, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        // message arrives at 2 + 4 = 6
        s.insert(TaskId(1), ProcId(1), 6.0, 3.0).unwrap();
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }

    #[test]
    fn detects_unscheduled() {
        let (dag, sys) = chain();
        let mut s = Schedule::new(2, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        assert_eq!(
            validate(&dag, &sys, &s),
            Err(ValidationError::Unscheduled(TaskId(1)))
        );
    }

    #[test]
    fn detects_precedence_violation_remote() {
        let (dag, sys) = chain();
        let mut s = Schedule::new(2, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        // starts at 4 < 6 (message not yet arrived)
        s.insert(TaskId(1), ProcId(1), 4.0, 3.0).unwrap();
        assert!(matches!(
            validate(&dag, &sys, &s),
            Err(ValidationError::PrecedenceViolation {
                task: TaskId(1),
                pred: TaskId(0),
                ..
            })
        ));
    }

    #[test]
    fn detects_wrong_duration() {
        let (dag, sys) = chain();
        let mut s = Schedule::new(2, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 2.0, 5.0).unwrap(); // ETC says 3.0
        assert!(matches!(
            validate(&dag, &sys, &s),
            Err(ValidationError::WrongDuration {
                task: TaskId(1),
                ..
            })
        ));
    }

    #[test]
    fn detects_size_mismatch() {
        let (dag, sys) = chain();
        let s = Schedule::new(5, 2);
        assert!(matches!(
            validate(&dag, &sys, &s),
            Err(ValidationError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_satisfies_consumer_but_must_itself_be_legal() {
        // diamond: 0 -> 1, 0 -> 2 (2 reads 0 via a duplicate)
        let dag = dag_from_edges(&[2.0, 1.0, 1.0], &[(0, 1, 10.0), (0, 2, 10.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let mut s = Schedule::new(3, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 2.0, 1.0).unwrap();
        // duplicate of t0 on p1 lets t2 start at 2 instead of 12
        s.insert_duplicate(TaskId(0), ProcId(1), 0.0, 2.0).unwrap();
        s.insert(TaskId(2), ProcId(1), 2.0, 1.0).unwrap();
        assert_eq!(validate(&dag, &sys, &s), Ok(()));
    }

    #[test]
    fn duplicate_of_task_with_parents_checked_too() {
        // chain 0 -> 1 -> 2; a duplicate of t1 that starts before t0's data
        // reaches it must be flagged.
        let dag = dag_from_edges(&[1.0, 1.0, 1.0], &[(0, 1, 5.0), (1, 2, 5.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let mut s = Schedule::new(3, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 1.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 1.0, 1.0).unwrap();
        // illegal duplicate: t0's data reaches p1 at 1 + 5 = 6, but copy starts at 0
        s.insert_duplicate(TaskId(1), ProcId(1), 0.0, 1.0).unwrap();
        s.insert(TaskId(2), ProcId(1), 1.0, 1.0).unwrap();
        assert!(matches!(
            validate(&dag, &sys, &s),
            Err(ValidationError::PrecedenceViolation {
                task: TaskId(1),
                proc: ProcId(1),
                ..
            })
        ));
    }
}
