//! Deterministic intra-algorithm parallelism for candidate search.
//!
//! The search-based schedulers (GA, ILS-D, DUP-HEFT, BNB) evaluate many
//! *independent* candidates per decision round: chromosomes of a
//! generation, duplication trials per candidate processor, branch-and-bound
//! subtrees. This module fans those evaluations out over scoped worker
//! threads while keeping every schedule **bit-identical to the
//! single-thread run at any thread count** — the same contract the
//! optimized EFT engine ([`crate::engine`]) and the shared
//! [`crate::instance::ProblemInstance`] already honour.
//!
//! Determinism is by construction, not by luck:
//!
//! * results are collected into **submission-order** slots, so reductions
//!   run the caller's *exact* sequential fold (same tie-break expressions,
//!   same operand order) regardless of completion order;
//! * workers re-establish the calling thread's reference-engine flag
//!   ([`crate::engine::reference_engine_active`]), so conformance runs stay
//!   conformant across threads;
//! * work is distributed over a chunked queue (vendored `crossbeam`
//!   channels), which affects only *who* computes a slot, never its value.
//!
//! ## Thread-count resolution
//!
//! [`effective_jobs`] resolves, in order: the thread-local override
//! ([`with_jobs`]) → the process-wide default ([`set_global_jobs`], wired
//! to `--jobs` in the CLIs) → the `HETSCHED_JOBS` environment variable →
//! [`std::thread::available_parallelism`]. `jobs = 1` always means "no
//! threads": callers run their plain sequential loops.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crossbeam::channel;

use crate::engine::{reference_engine_active, with_reference_engine};

/// Process-wide default thread count; 0 means "unset".
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Thread-local override; 0 means "no override".
    static LOCAL_JOBS: Cell<usize> = const { Cell::new(0) };
}

/// The machine's available parallelism (≥ 1).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Set (or clear, with `None`) the process-wide default thread count.
///
/// This is what `--jobs` on `hetsched-cli` / `hetsched-exp` wires up.
/// Values are clamped to at least 1.
pub fn set_global_jobs(jobs: Option<usize>) {
    GLOBAL_JOBS.store(jobs.map_or(0, |j| j.max(1)), Ordering::SeqCst);
}

/// `HETSCHED_JOBS` environment fallback, parsed once. Unparsable or zero
/// values are ignored.
fn env_jobs() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("HETSCHED_JOBS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&j| j >= 1)
    })
}

/// Run `f` with `jobs` as this thread's [`effective_jobs`] answer,
/// restoring the previous override on exit (including unwind).
///
/// This is how the serve daemon applies a per-request `jobs` option and
/// how the determinism tests pin thread counts.
pub fn with_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
    struct Guard(usize);
    impl Drop for Guard {
        fn drop(&mut self) {
            LOCAL_JOBS.with(|c| c.set(self.0));
        }
    }
    let _guard = Guard(LOCAL_JOBS.with(|c| c.replace(jobs.max(1))));
    f()
}

/// The thread-local override installed by [`with_jobs`], if any.
pub fn jobs_override() -> Option<usize> {
    let j = LOCAL_JOBS.with(Cell::get);
    (j > 0).then_some(j)
}

/// Resolve the thread count for intra-algorithm search parallelism:
/// thread-local override → process-wide default → `HETSCHED_JOBS` →
/// available parallelism. Always ≥ 1.
pub fn effective_jobs() -> usize {
    if let Some(j) = jobs_override() {
        return j;
    }
    let global = GLOBAL_JOBS.load(Ordering::SeqCst);
    if global > 0 {
        return global;
    }
    if let Some(j) = env_jobs() {
        return j;
    }
    available_jobs()
}

/// Work sets smaller than this run sequentially even when `jobs > 1`:
/// spawning scoped threads and routing a channel costs tens of
/// microseconds, which dwarfs a handful of candidate evaluations. The
/// value is deliberately small — fan-outs in the search schedulers are
/// usually generation- or processor-count-sized, well above it.
pub const SEQUENTIAL_WORK_THRESHOLD: usize = 8;

/// Map `f` over `items` on up to `jobs` scoped threads, returning results
/// in **submission order**.
///
/// Work is handed out as index chunks over an mpmc channel (~4 chunks per
/// worker: few messages, balanced tail). With `jobs <= 1` or fewer than
/// [`SEQUENTIAL_WORK_THRESHOLD`] items this is a plain sequential `map` —
/// no threads, no channels. The fast path is result-identical by
/// construction: the parallel path collects into submission-order slots,
/// which is exactly the sequential map. Worker threads inherit the
/// caller's reference-engine flag. A worker panic propagates when the
/// scope joins.
pub fn par_map_collect<T, R>(jobs: usize, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 || n < SEQUENTIAL_WORK_THRESHOLD {
        return items.iter().map(&f).collect();
    }
    let reference = reference_engine_active();
    let chunk = n.div_ceil(jobs * 4).max(1);
    let (tx, rx) = channel::unbounded::<std::ops::Range<usize>>();
    let mut lo = 0;
    while lo < n {
        let hi = (lo + chunk).min(n);
        tx.send(lo..hi)
            .expect("unbounded channel accepts all chunks");
        lo = hi;
    }
    drop(tx);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let rx = rx.clone();
            let (f, results) = (&f, &results);
            scope.spawn(move || {
                let body = || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    while let Ok(range) = rx.recv() {
                        for i in range {
                            local.push((i, f(&items[i])));
                        }
                        let mut slots = results.lock().expect("results mutex poisoned");
                        for (i, r) in local.drain(..) {
                            slots[i] = Some(r);
                        }
                    }
                };
                if reference {
                    with_reference_engine(body)
                } else {
                    body()
                }
            });
        }
    });
    results
        .into_inner()
        .expect("results mutex poisoned")
        .into_iter()
        .map(|r| r.expect("every index was evaluated"))
        .collect()
}

/// [`par_map_collect`] followed by the caller's sequential reduction:
/// fold results in submission order, replacing the incumbent exactly when
/// `better(new, current)` — the caller passes its sequential tie-break
/// expression verbatim, so the winner is bit-identical to the
/// single-thread fold at any thread count.
pub fn par_map_min<T, R>(
    jobs: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
    better: impl Fn(&R, &R) -> bool,
) -> Option<R>
where
    T: Sync,
    R: Send,
{
    let mut best: Option<R> = None;
    for r in par_map_collect(jobs, items, f) {
        let replace = match &best {
            None => true,
            Some(b) => better(&r, b),
        };
        if replace {
            best = Some(r);
        }
    }
    best
}

/// Per-worker message of a [`scoped_replay_pool`].
enum WorkerMsg<B, T> {
    /// One evaluation round: apply `broadcast` to the replica first, then
    /// evaluate the (index-tagged) items.
    Round {
        broadcast: Option<B>,
        items: Vec<(usize, T)>,
    },
    /// Shut the worker down.
    Done,
}

/// Round handle passed to a [`scoped_replay_pool`] driver.
pub struct Rounds<B, T, R> {
    txs: Vec<channel::Sender<WorkerMsg<B, T>>>,
    results: channel::Receiver<(usize, R)>,
}

impl<B: Send + Clone, T: Send, R: Send> Rounds<B, T, R> {
    /// Run one round: every worker first applies `broadcast` to its
    /// replica (commit replay), then the items are distributed round-robin
    /// and evaluated; results come back in submission order.
    pub fn round(&mut self, broadcast: Option<&B>, items: Vec<T>) -> Vec<R> {
        let n = items.len();
        let jobs = self.txs.len();
        let mut per: Vec<Vec<(usize, T)>> = (0..jobs).map(|_| Vec::new()).collect();
        for (i, it) in items.into_iter().enumerate() {
            per[i % jobs].push((i, it));
        }
        for (w, tx) in self.txs.iter().enumerate() {
            tx.send(WorkerMsg::Round {
                broadcast: broadcast.cloned(),
                items: std::mem::take(&mut per[w]),
            })
            .expect("pool worker hung up");
        }
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, r) = self
                .results
                .recv_timeout(Duration::from_secs(300))
                .expect("pool worker failed to answer");
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every index was answered"))
            .collect()
    }
}

/// Persistent scoped worker pool with **replicated state** — the engine
/// behind the parallel trial loops of ILS-D and DUP-HEFT.
///
/// Those schedulers interleave *mutation* (committing the chosen placement
/// of task *k*) with *fan-out* (trial-evaluating the candidates of task
/// *k + 1* against the committed state). Cloning the schedule per round
/// would drown the win, so instead each worker owns a replica built by
/// `init` and kept in lockstep by replaying every committed decision (the
/// `broadcast` of the next round) through `apply` — the same deterministic
/// operation the driver applies to its own authoritative copy, so replicas
/// are bit-identical to it by induction.
///
/// `eval` must leave the replica exactly as it found it (the schedule
/// trial API — [`crate::Schedule::begin_trial`] /
/// [`crate::Schedule::rollback_trial`] — exists for this), because the
/// same replica serves every later round.
///
/// Requires `jobs >= 2`; with one job callers should run their plain
/// sequential loop instead (no replicas at all). Workers inherit the
/// caller's reference-engine flag.
pub fn scoped_replay_pool<S, B, T, R, Out>(
    jobs: usize,
    init: impl Fn() -> S + Sync,
    apply: impl Fn(&mut S, &B) + Sync,
    eval: impl Fn(&mut S, &T) -> R + Sync,
    driver: impl FnOnce(&mut Rounds<B, T, R>) -> Out,
) -> Out
where
    B: Send + Clone,
    T: Send,
    R: Send,
{
    assert!(jobs >= 2, "a replay pool needs at least two workers");
    let reference = reference_engine_active();
    std::thread::scope(|scope| {
        let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
        let mut txs = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let (tx, rx) = channel::unbounded::<WorkerMsg<B, T>>();
            txs.push(tx);
            let res_tx = res_tx.clone();
            let (init, apply, eval) = (&init, &apply, &eval);
            scope.spawn(move || {
                let body = || {
                    let mut state = init();
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            WorkerMsg::Round { broadcast, items } => {
                                if let Some(b) = &broadcast {
                                    apply(&mut state, b);
                                }
                                for (i, it) in items {
                                    let r = eval(&mut state, &it);
                                    if res_tx.send((i, r)).is_err() {
                                        return;
                                    }
                                }
                            }
                            WorkerMsg::Done => return,
                        }
                    }
                };
                if reference {
                    with_reference_engine(body)
                } else {
                    body()
                }
            });
        }
        drop(res_tx);
        let mut rounds = Rounds {
            txs,
            results: res_rx,
        };
        let out = driver(&mut rounds);
        for tx in &rounds.txs {
            let _ = tx.send(WorkerMsg::Done);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..257).collect();
        for jobs in [1, 2, 3, 8] {
            let out = par_map_collect(jobs, &items, |&x| x * 3 + 1);
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_collect(8, &empty, |_| unreachable!() as u32).is_empty());
        assert_eq!(par_map_collect(8, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_min_matches_sequential_fold_with_ties() {
        // values with exact ties: the fold must keep the FIRST minimum,
        // like a sequential `better = new < current` scan.
        let items = [5u64, 3, 9, 3, 1, 1, 4];
        for jobs in [1, 2, 4] {
            let got = par_map_min(jobs, &items, |&x| x, |new, cur| new < cur);
            assert_eq!(got, Some(1));
            // tag by index to observe WHICH element won
            let idx: Vec<(usize, u64)> = items.iter().copied().enumerate().collect();
            let got = par_map_min(jobs, &idx, |&p| p, |new, cur| new.1 < cur.1);
            assert_eq!(got, Some((4, 1)), "first of the tied minima must win");
        }
    }

    #[test]
    fn small_work_sets_stay_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let items: Vec<u32> = (0..SEQUENTIAL_WORK_THRESHOLD as u32 - 1).collect();
        let tids = par_map_collect(8, &items, |_| std::thread::current().id());
        assert!(tids.iter().all(|&t| t == caller));
        // at the threshold the pool engages (with jobs > 1)
        let items: Vec<u32> = (0..SEQUENTIAL_WORK_THRESHOLD as u32).collect();
        let tids = par_map_collect(8, &items, |_| std::thread::current().id());
        assert!(tids.iter().all(|&t| t != caller));
        // and the values still match the sequential map bit-for-bit
        let seq: Vec<u32> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(par_map_collect(8, &items, |&x| x * 3 + 1), seq);
    }

    #[test]
    fn workers_inherit_the_reference_engine_flag() {
        let items: Vec<u32> = (0..64).collect();
        let flags =
            with_reference_engine(|| par_map_collect(4, &items, |_| reference_engine_active()));
        assert!(flags.iter().all(|&f| f));
        let flags = par_map_collect(4, &items, |_| reference_engine_active());
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn with_jobs_overrides_and_restores() {
        set_global_jobs(None);
        let outer = effective_jobs();
        with_jobs(3, || {
            assert_eq!(effective_jobs(), 3);
            with_jobs(5, || assert_eq!(effective_jobs(), 5));
            assert_eq!(effective_jobs(), 3);
        });
        assert_eq!(effective_jobs(), outer);
        assert_eq!(jobs_override(), None);
    }

    #[test]
    fn global_jobs_round_trip() {
        set_global_jobs(Some(7));
        // a thread-local override still wins
        with_jobs(2, || assert_eq!(effective_jobs(), 2));
        assert_eq!(effective_jobs(), 7);
        set_global_jobs(None);
    }

    #[test]
    fn replay_pool_keeps_replicas_in_lockstep() {
        // state = running sum; commits add, evals probe (state + item).
        // Replicas must equal the driver's own fold at every round.
        let out = scoped_replay_pool(
            3,
            || 0i64,
            |s: &mut i64, b: &i64| *s += b,
            |s: &mut i64, t: &i64| *s + t,
            |rounds| {
                let mut acc = 0i64;
                let mut seen = Vec::new();
                let mut commit: Option<i64> = None;
                for round in 0..10i64 {
                    if let Some(c) = commit {
                        acc += c;
                    }
                    let items: Vec<i64> = (0..5).map(|i| i * 100 + round).collect();
                    let results = rounds.round(commit.as_ref(), items.clone());
                    for (it, r) in items.iter().zip(&results) {
                        assert_eq!(*r, acc + it);
                    }
                    seen.extend(results);
                    commit = Some(round * 7);
                }
                seen
            },
        );
        assert_eq!(out.len(), 50);
    }
}
