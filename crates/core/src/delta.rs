//! Incremental problem patching: apply a sequence of [`Delta`]s to a
//! [`ProblemInstance`] copy-on-write, invalidating only the rank-memo
//! entries reachable from the dirty region.
//!
//! The output of [`ProblemInstance::apply_deltas`] is a [`Patched`]
//! instance plus a [`DirtyInfo`] describing which tasks' EFT inputs the
//! deltas touched — the contract the `repair` path (see [`crate::repair`])
//! uses to decide how much of the parent schedule it may replay verbatim.
//!
//! # Copy-on-write
//!
//! An untouched side of the problem stays `Cow::Borrowed` from the parent:
//! an ETC-only delta borrows the parent's `Dag` outright, a weight-only
//! delta borrows the parent's `System`. Touched sides are rebuilt through
//! the same validating constructors a fresh build would use
//! ([`DagBuilder`] / [`EtcMatrix::from_fn`]), so a patched instance is
//! indistinguishable — fingerprint, topological order, rank vectors, and
//! schedules — from one built from scratch with the patched content.
//!
//! # Dirty-region memo seeding
//!
//! For weight-level deltas (task weight, ETC cell, edge data volume) the
//! patched instance's rank memo is *seeded* from the parent: each memoized
//! rank vector is carried over and only the entries transitively reachable
//! from the touched tasks are re-evaluated, using the exact per-task folds
//! of the raw kernels. Structural deltas (task add/remove, processor
//! removal) remap ids, so nothing is carried over and every consumer
//! recomputes from scratch — still bit-identical, just not incremental.

use std::borrow::Cow;

use hetsched_dag::{Dag, DagBuilder, DagError, TaskId};
use hetsched_platform::{EtcMatrix, ProcId, System};
use serde::{Deserialize, Serialize};

use crate::instance::{ProblemInstance, SeedPlan};

/// One edit to a (DAG, system) pair.
///
/// Weight-level variants (`TaskWeight`, `EtcEntry`, `EdgeData`) preserve
/// problem shape and keep task/processor ids stable; structural variants
/// (`AddTask`, `RemoveTask`, `RemoveProc`) renumber ids densely, exactly as
/// a fresh build of the edited problem would.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum Delta {
    /// Set task `task`'s abstract computation weight to `weight`.
    ///
    /// Weights only feed DAG statistics (CCR, fingerprints); every rank
    /// kernel and the EFT engine read aggregated ETC costs instead, so this
    /// delta changes the content fingerprint but not the schedule.
    TaskWeight {
        /// Task whose weight changes.
        task: TaskId,
        /// New computation weight (finite, non-negative).
        weight: f64,
    },
    /// Set the estimated execution time of `task` on `proc` to `time`.
    EtcEntry {
        /// Task whose ETC row changes.
        task: TaskId,
        /// Processor whose estimate changes.
        proc: ProcId,
        /// New execution-time estimate (finite, non-negative).
        time: f64,
    },
    /// Set the data volume of the existing edge `src -> dst` to `data`.
    EdgeData {
        /// Producing task of the edge.
        src: TaskId,
        /// Consuming task of the edge.
        dst: TaskId,
        /// New data volume (finite, non-negative).
        data: f64,
    },
    /// Append a new task (it receives the next dense id) with the given
    /// weight, per-processor ETC row, and dependency edges.
    AddTask {
        /// Computation weight of the new task.
        weight: f64,
        /// Execution-time estimate per processor; length must equal the
        /// current processor count.
        exec: Vec<f64>,
        /// Incoming edges `(pred, data)` from existing tasks.
        preds: Vec<(TaskId, f64)>,
        /// Outgoing edges `(succ, data)` to existing tasks.
        succs: Vec<(TaskId, f64)>,
    },
    /// Remove `task` and every edge incident to it; tasks with larger ids
    /// shift down by one (dense renumbering).
    RemoveTask {
        /// Task to remove.
        task: TaskId,
    },
    /// Remove `proc` (its ETC column and network links); processors with
    /// larger ids shift down by one.
    RemoveProc {
        /// Processor to remove.
        proc: ProcId,
    },
}

/// Why a delta sequence could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// A delta referenced a task id outside the current task range.
    UnknownTask(TaskId),
    /// A delta referenced a processor id outside the current range.
    UnknownProc(ProcId),
    /// [`Delta::EdgeData`] referenced an edge that does not exist.
    UnknownEdge(TaskId, TaskId),
    /// A weight/time/volume was non-finite or negative.
    InvalidValue {
        /// Which quantity was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// [`Delta::AddTask`]'s `exec` row length does not match the current
    /// processor count.
    ExecLenMismatch {
        /// Current processor count.
        expected: usize,
        /// Length of the provided row.
        got: usize,
    },
    /// [`Delta::RemoveProc`] would remove the last processor.
    LastProc,
    /// [`Delta::RemoveTask`] would remove the last task.
    LastTask,
    /// Rebuilding the patched DAG failed (duplicate edge or cycle
    /// introduced by [`Delta::AddTask`]).
    Dag(DagError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownTask(t) => write!(f, "unknown task {t}"),
            DeltaError::UnknownProc(p) => write!(f, "unknown processor {p}"),
            DeltaError::UnknownEdge(u, v) => write!(f, "no edge {u} -> {v}"),
            DeltaError::InvalidValue { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            DeltaError::ExecLenMismatch { expected, got } => {
                write!(
                    f,
                    "exec row has {got} entries, system has {expected} processors"
                )
            }
            DeltaError::LastProc => write!(f, "cannot remove the last processor"),
            DeltaError::LastTask => write!(f, "cannot remove the last task"),
            DeltaError::Dag(e) => write!(f, "patched DAG is invalid: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<DagError> for DeltaError {
    fn from(e: DagError) -> Self {
        DeltaError::Dag(e)
    }
}

/// What a delta sequence touched, from the scheduler's point of view.
#[derive(Debug, Clone, PartialEq)]
pub enum DirtyInfo {
    /// A structural delta renumbered task or processor ids: no placement of
    /// the parent schedule can be replayed, repair must fall back to a
    /// from-scratch run.
    Structural,
    /// Only weights changed; ids are stable. `eft_dirty[t]` is true iff
    /// task `t`'s direct EFT inputs were touched — its own ETC row or the
    /// data volume of one of its incoming edges. Tasks left false compute
    /// the exact same placement as in the parent, *provided* every task
    /// placed before them was placed identically (the replay-prefix rule).
    Tasks {
        /// Per-task direct-input dirty flags, indexed by `TaskId::index`.
        eft_dirty: Vec<bool>,
    },
}

impl DirtyInfo {
    /// Whether nothing that can influence any schedule was touched (e.g. a
    /// pure task-weight delta).
    pub fn is_clean(&self) -> bool {
        match self {
            DirtyInfo::Structural => false,
            DirtyInfo::Tasks { eft_dirty } => eft_dirty.iter().all(|&d| !d),
        }
    }
}

/// A patched problem: the copy-on-write instance plus the dirty summary
/// the repair path consumes.
#[derive(Debug)]
pub struct Patched<'a> {
    /// The patched instance. Untouched arenas are borrowed from the
    /// parent; the rank memo is seeded from the parent's where sound.
    pub instance: ProblemInstance<'a>,
    /// Which tasks the deltas touched.
    pub dirty: DirtyInfo,
}

/// Mutable working copy of the problem while a delta sequence applies.
struct Work {
    weights: Vec<f64>,
    edges: Vec<(TaskId, TaskId, f64)>,
    n_procs: usize,
    /// Row-major `n_tasks x n_procs` execution-time estimates.
    etc: Vec<f64>,
    /// Replacement network; `None` while the parent's links are untouched.
    net: Option<hetsched_platform::Network>,
    dag_touched: bool,
    sys_touched: bool,
    structural: bool,
    /// Tasks whose ETC row changed (maintained only while `!structural`).
    exec_dirty: Vec<bool>,
    /// Edges whose data volume changed (only while `!structural`).
    comm_edges: Vec<(TaskId, TaskId)>,
}

fn check_value(what: &'static str, value: f64) -> Result<f64, DeltaError> {
    if !value.is_finite() || value < 0.0 {
        return Err(DeltaError::InvalidValue { what, value });
    }
    Ok(value)
}

impl Work {
    fn n_tasks(&self) -> usize {
        self.weights.len()
    }

    fn check_task(&self, t: TaskId) -> Result<TaskId, DeltaError> {
        if t.index() >= self.n_tasks() {
            return Err(DeltaError::UnknownTask(t));
        }
        Ok(t)
    }

    fn check_proc(&self, p: ProcId) -> Result<ProcId, DeltaError> {
        if p.index() >= self.n_procs {
            return Err(DeltaError::UnknownProc(p));
        }
        Ok(p)
    }

    fn apply(
        &mut self,
        delta: &Delta,
        parent_net: &hetsched_platform::Network,
    ) -> Result<(), DeltaError> {
        match *delta {
            Delta::TaskWeight { task, weight } => {
                self.check_task(task)?;
                let w = check_value("task weight", weight)?;
                self.weights[task.index()] = w;
                self.dag_touched = true;
            }
            Delta::EtcEntry { task, proc, time } => {
                self.check_task(task)?;
                self.check_proc(proc)?;
                let v = check_value("execution time", time)?;
                self.etc[task.index() * self.n_procs + proc.index()] = v;
                self.sys_touched = true;
                if !self.structural {
                    self.exec_dirty[task.index()] = true;
                }
            }
            Delta::EdgeData { src, dst, data } => {
                self.check_task(src)?;
                self.check_task(dst)?;
                let d = check_value("edge data volume", data)?;
                let e = self
                    .edges
                    .iter_mut()
                    .find(|e| e.0 == src && e.1 == dst)
                    .ok_or(DeltaError::UnknownEdge(src, dst))?;
                e.2 = d;
                self.dag_touched = true;
                if !self.structural {
                    self.comm_edges.push((src, dst));
                }
            }
            Delta::AddTask {
                weight,
                ref exec,
                ref preds,
                ref succs,
            } => {
                let w = check_value("task weight", weight)?;
                if exec.len() != self.n_procs {
                    return Err(DeltaError::ExecLenMismatch {
                        expected: self.n_procs,
                        got: exec.len(),
                    });
                }
                for &e in exec {
                    check_value("execution time", e)?;
                }
                let new = TaskId::from_index(self.n_tasks());
                for &(p, d) in preds {
                    self.check_task(p)?;
                    check_value("edge data volume", d)?;
                }
                for &(s, d) in succs {
                    self.check_task(s)?;
                    check_value("edge data volume", d)?;
                }
                self.weights.push(w);
                self.etc.extend_from_slice(exec);
                self.edges.extend(preds.iter().map(|&(p, d)| (p, new, d)));
                self.edges.extend(succs.iter().map(|&(s, d)| (new, s, d)));
                self.dag_touched = true;
                self.sys_touched = true;
                self.structural = true;
            }
            Delta::RemoveTask { task } => {
                self.check_task(task)?;
                if self.n_tasks() == 1 {
                    return Err(DeltaError::LastTask);
                }
                let r = task.index();
                self.weights.remove(r);
                self.etc.drain(r * self.n_procs..(r + 1) * self.n_procs);
                let shift = |t: TaskId| {
                    if t.index() > r {
                        TaskId::from_index(t.index() - 1)
                    } else {
                        t
                    }
                };
                self.edges.retain(|&(u, v, _)| u != task && v != task);
                for e in &mut self.edges {
                    e.0 = shift(e.0);
                    e.1 = shift(e.1);
                }
                self.dag_touched = true;
                self.sys_touched = true;
                self.structural = true;
            }
            Delta::RemoveProc { proc } => {
                self.check_proc(proc)?;
                if self.n_procs == 1 {
                    return Err(DeltaError::LastProc);
                }
                let r = proc.index();
                let old_np = self.n_procs;
                let mut etc = Vec::with_capacity(self.n_tasks() * (old_np - 1));
                for t in 0..self.n_tasks() {
                    let row = &self.etc[t * old_np..(t + 1) * old_np];
                    etc.extend(
                        row.iter()
                            .enumerate()
                            .filter(|&(p, _)| p != r)
                            .map(|(_, &v)| v),
                    );
                }
                self.etc = etc;
                self.n_procs = old_np - 1;
                let current = self.net.as_ref().unwrap_or(parent_net);
                self.net = Some(current.without_proc(proc));
                self.sys_touched = true;
                self.structural = true;
            }
        }
        Ok(())
    }
}

/// Mark every task from which a marked task is reachable (a task is dirty
/// if any *successor* is dirty) — the input cone of the backward rank
/// kernels, computed in one reverse-topological pass.
fn close_ancestors(dag: &Dag, mut mask: Vec<bool>) -> Vec<bool> {
    for &t in dag.topo_order().iter().rev() {
        if !mask[t.index()] && dag.successors(t).any(|(s, _)| mask[s.index()]) {
            mask[t.index()] = true;
        }
    }
    mask
}

/// Mark every task reachable from a marked task (dirty if any
/// *predecessor* is dirty) — the input cone of the forward kernels.
fn close_descendants(dag: &Dag, mut mask: Vec<bool>) -> Vec<bool> {
    for &t in dag.topo_order() {
        if !mask[t.index()] && dag.predecessors(t).any(|(u, _)| mask[u.index()]) {
            mask[t.index()] = true;
        }
    }
    mask
}

impl<'a> ProblemInstance<'a> {
    /// Apply `deltas` in order, producing a patched instance that borrows
    /// every untouched arena from `self` and whose rank memo is seeded from
    /// `self`'s wherever the deltas left a kernel's inputs clean.
    ///
    /// The patched instance is bit-for-bit equivalent to one built from
    /// scratch with the edited content: same fingerprint, same topological
    /// order (the rebuilt DAG goes through the same canonicalizing
    /// [`DagBuilder`]), same rank vectors, and therefore the same schedule
    /// from every deterministic algorithm.
    ///
    /// # Errors
    /// Fails atomically — `self` is never modified — if any delta
    /// references an unknown task/processor/edge, carries a non-finite or
    /// negative value, or would leave the problem degenerate (no tasks, no
    /// processors) or cyclic.
    pub fn apply_deltas(&self, deltas: &[Delta]) -> Result<Patched<'_>, DeltaError> {
        let dag = self.dag();
        let sys = self.sys();
        let n = dag.num_tasks();
        let np = sys.num_procs();

        let mut work = Work {
            weights: (0..n)
                .map(|i| dag.task_weight(TaskId::from_index(i)))
                .collect(),
            edges: dag.edges().iter().map(|e| (e.src, e.dst, e.data)).collect(),
            n_procs: np,
            etc: (0..n)
                .flat_map(|i| sys.etc().row(TaskId::from_index(i)).iter().copied())
                .collect(),
            net: None,
            dag_touched: false,
            sys_touched: false,
            structural: false,
            exec_dirty: vec![false; n],
            comm_edges: Vec::new(),
        };
        for delta in deltas {
            work.apply(delta, sys.network())?;
        }

        let patched_dag: Cow<'_, Dag> = if work.dag_touched {
            let mut b = DagBuilder::with_capacity(work.weights.len(), work.edges.len());
            for &w in &work.weights {
                b.add_task(w);
            }
            for &(u, v, d) in &work.edges {
                b.add_edge(u, v, d)?;
            }
            Cow::Owned(b.build()?)
        } else {
            Cow::Borrowed(dag)
        };
        let patched_sys: Cow<'_, System> = if work.sys_touched {
            let np = work.n_procs;
            let etc = EtcMatrix::from_fn(work.weights.len(), np, |t, p| {
                work.etc[t.index() * np + p.index()]
            });
            let net = work.net.take().unwrap_or_else(|| sys.network().clone());
            Cow::Owned(System::new(etc, net))
        } else {
            Cow::Borrowed(sys)
        };

        let instance = ProblemInstance::from_cows(patched_dag, patched_sys);
        let dirty = if work.structural {
            DirtyInfo::Structural
        } else {
            let has_exec = work.exec_dirty.iter().any(|&d| d);
            let has_comm = !work.comm_edges.is_empty();
            let seeded =
                |srcs: bool, close: fn(&Dag, Vec<bool>) -> Vec<bool>| -> Option<Vec<bool>> {
                    (has_exec || has_comm).then(|| {
                        let mut m = work.exec_dirty.clone();
                        for &(u, v) in &work.comm_edges {
                            m[if srcs { u.index() } else { v.index() }] = true;
                        }
                        close(instance.dag(), m)
                    })
                };
            let plan = SeedPlan {
                // rank_u(t) reads t's ETC row and t's outgoing edge data.
                upward: seeded(true, close_ancestors),
                // rank_d(t) reads its predecessors' ETC rows and incoming
                // edge data.
                downward: seeded(false, close_descendants),
                // SL(t) reads only t's ETC row.
                static_level: has_exec
                    .then(|| close_ancestors(instance.dag(), work.exec_dirty.clone())),
                // PETS rank(t) reads t's ETC row, t's outgoing edge data
                // (DTC), and its predecessors' ranks (RPT).
                pets: seeded(true, close_descendants),
            };
            instance.seed_memo_from(self, &plan);
            let mut eft_dirty = work.exec_dirty;
            for &(_, v) in &work.comm_edges {
                eft_dirty[v.index()] = true;
            }
            DirtyInfo::Tasks { eft_dirty }
        };
        Ok(Patched { instance, dirty })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostAggregation;
    use crate::rank;
    use hetsched_dag::builder::dag_from_edges;
    use std::sync::Arc;

    fn setup() -> ProblemInstance<'static> {
        let dag = dag_from_edges(
            &[1.0, 2.0, 3.0, 4.0],
            &[(0, 1, 10.0), (0, 2, 20.0), (1, 3, 30.0), (2, 3, 40.0)],
        )
        .unwrap();
        let mut k = 0.0;
        let etc = EtcMatrix::from_fn(4, 3, |_, _| {
            k += 1.0;
            k
        });
        let net = hetsched_platform::Network::uniform(3, 0.5, 2.0);
        ProblemInstance::new(dag, System::new(etc, net))
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn each_minimal_delta_changes_the_fingerprint() {
        let parent = setup();
        let fp = parent.fingerprint();
        let minimal = [
            Delta::TaskWeight {
                task: TaskId(1),
                weight: 2.5,
            },
            Delta::EtcEntry {
                task: TaskId(1),
                proc: ProcId(2),
                time: 99.0,
            },
            Delta::EdgeData {
                src: TaskId(0),
                dst: TaskId(2),
                data: 20.5,
            },
        ];
        let mut seen = vec![fp];
        for d in minimal {
            let p = parent.apply_deltas(std::slice::from_ref(&d)).unwrap();
            let pfp = p.instance.fingerprint();
            assert!(
                !seen.contains(&pfp),
                "{d:?} must produce a fingerprint distinct from the parent and the other deltas"
            );
            seen.push(pfp);
        }
    }

    #[test]
    fn untouched_sides_stay_borrowed() {
        let parent = setup();
        let p = parent
            .apply_deltas(&[Delta::EtcEntry {
                task: TaskId(0),
                proc: ProcId(0),
                time: 5.0,
            }])
            .unwrap();
        assert!(
            std::ptr::eq(p.instance.dag(), parent.dag()),
            "ETC-only delta must borrow the parent DAG"
        );
        let q = parent
            .apply_deltas(&[Delta::TaskWeight {
                task: TaskId(0),
                weight: 9.0,
            }])
            .unwrap();
        assert!(
            std::ptr::eq(q.instance.sys(), parent.sys()),
            "weight-only delta must borrow the parent system"
        );
    }

    #[test]
    fn seeded_ranks_match_a_fresh_computation_bitwise() {
        let parent = setup();
        for agg in [CostAggregation::Mean, CostAggregation::Best] {
            // Populate the parent memo so seeding has something to reuse.
            parent.upward_rank(agg);
            parent.downward_rank(agg);
            parent.static_level(agg);
            parent.pets_rank(agg);
        }
        let deltas = [
            Delta::EtcEntry {
                task: TaskId(2),
                proc: ProcId(1),
                time: 42.0,
            },
            Delta::EdgeData {
                src: TaskId(1),
                dst: TaskId(3),
                data: 31.0,
            },
        ];
        let p = parent.apply_deltas(&deltas).unwrap();
        let (d, s) = (p.instance.dag(), p.instance.sys());
        for agg in [CostAggregation::Mean, CostAggregation::Best] {
            assert_eq!(
                bits(&p.instance.upward_rank(agg)),
                bits(&rank::upward_rank_raw(d, s, agg))
            );
            assert_eq!(
                bits(&p.instance.downward_rank(agg)),
                bits(&rank::downward_rank_raw(d, s, agg))
            );
            assert_eq!(
                bits(&p.instance.static_level(agg)),
                bits(&rank::static_level_raw(d, s, agg))
            );
            assert_eq!(
                bits(&p.instance.pets_rank(agg)),
                bits(&rank::pets_rank_raw(d, s, agg))
            );
        }
        match p.dirty {
            DirtyInfo::Tasks { eft_dirty } => {
                // ETC delta marks t2; edge delta marks its destination t3.
                assert_eq!(eft_dirty, vec![false, false, true, true]);
            }
            DirtyInfo::Structural => panic!("weight-level deltas are not structural"),
        }
    }

    #[test]
    fn weight_only_delta_is_clean_and_shares_the_whole_memo() {
        let parent = setup();
        let up = parent.upward_rank(CostAggregation::Mean);
        let p = parent
            .apply_deltas(&[Delta::TaskWeight {
                task: TaskId(3),
                weight: 4.5,
            }])
            .unwrap();
        assert!(p.dirty.is_clean());
        assert!(
            Arc::ptr_eq(&p.instance.upward_rank(CostAggregation::Mean), &up),
            "clean delta must share the parent's rank Arc"
        );
        assert_ne!(parent.fingerprint(), p.instance.fingerprint());
    }

    #[test]
    fn structural_deltas_rebuild_and_renumber() {
        let parent = setup();
        let p = parent
            .apply_deltas(&[Delta::RemoveTask { task: TaskId(1) }])
            .unwrap();
        assert_eq!(p.dirty, DirtyInfo::Structural);
        let d = p.instance.dag();
        assert_eq!(d.num_tasks(), 3);
        // Old t2/t3 became t1/t2; the surviving diamond arm is intact.
        assert_eq!(d.edge_data(TaskId(0), TaskId(1)), Some(20.0));
        assert_eq!(d.edge_data(TaskId(1), TaskId(2)), Some(40.0));
        assert_eq!(d.num_edges(), 2);
        assert_eq!(p.instance.sys().etc().num_tasks(), 3);

        let q = parent
            .apply_deltas(&[Delta::AddTask {
                weight: 1.0,
                exec: vec![1.0, 2.0, 3.0],
                preds: vec![(TaskId(3), 7.0)],
                succs: vec![],
            }])
            .unwrap();
        assert_eq!(q.dirty, DirtyInfo::Structural);
        assert_eq!(q.instance.dag().num_tasks(), 5);
        assert_eq!(q.instance.dag().edge_data(TaskId(3), TaskId(4)), Some(7.0));

        let r = parent
            .apply_deltas(&[Delta::RemoveProc { proc: ProcId(1) }])
            .unwrap();
        assert_eq!(r.dirty, DirtyInfo::Structural);
        let etc = r.instance.sys().etc();
        assert_eq!(etc.num_procs(), 2);
        // Row of t0 was [1, 2, 3]; dropping p1 leaves [1, 3].
        assert_eq!(etc.row(TaskId(0)), &[1.0, 3.0]);
        assert_eq!(r.instance.sys().network().num_procs(), 2);
    }

    #[test]
    fn sequences_apply_in_order_and_validate_against_current_state() {
        let parent = setup();
        // Add a task, then patch the ETC entry of the task just added.
        let p = parent
            .apply_deltas(&[
                Delta::AddTask {
                    weight: 1.0,
                    exec: vec![1.0, 1.0, 1.0],
                    preds: vec![],
                    succs: vec![],
                },
                Delta::EtcEntry {
                    task: TaskId(4),
                    proc: ProcId(0),
                    time: 8.0,
                },
            ])
            .unwrap();
        assert_eq!(p.instance.sys().exec_time(TaskId(4), ProcId(0)), 8.0);
        // The same ETC delta alone is invalid: t4 does not exist yet.
        assert_eq!(
            parent
                .apply_deltas(&[Delta::EtcEntry {
                    task: TaskId(4),
                    proc: ProcId(0),
                    time: 8.0,
                }])
                .unwrap_err(),
            DeltaError::UnknownTask(TaskId(4))
        );
    }

    #[test]
    fn invalid_deltas_are_rejected() {
        let parent = setup();
        assert_eq!(
            parent
                .apply_deltas(&[Delta::EdgeData {
                    src: TaskId(1),
                    dst: TaskId(2),
                    data: 1.0,
                }])
                .unwrap_err(),
            DeltaError::UnknownEdge(TaskId(1), TaskId(2))
        );
        assert_eq!(
            parent
                .apply_deltas(&[Delta::EtcEntry {
                    task: TaskId(0),
                    proc: ProcId(7),
                    time: 1.0,
                }])
                .unwrap_err(),
            DeltaError::UnknownProc(ProcId(7))
        );
        assert!(matches!(
            parent
                .apply_deltas(&[Delta::TaskWeight {
                    task: TaskId(0),
                    weight: f64::NAN,
                }])
                .unwrap_err(),
            DeltaError::InvalidValue { .. }
        ));
        assert_eq!(
            parent
                .apply_deltas(&[Delta::AddTask {
                    weight: 1.0,
                    exec: vec![1.0],
                    preds: vec![],
                    succs: vec![],
                }])
                .unwrap_err(),
            DeltaError::ExecLenMismatch {
                expected: 3,
                got: 1
            }
        );
        // New task with pred t1 and succ t0 closes the cycle 0 -> 1 -> new -> 0.
        assert!(matches!(
            parent
                .apply_deltas(&[Delta::AddTask {
                    weight: 1.0,
                    exec: vec![1.0, 1.0, 1.0],
                    preds: vec![(TaskId(1), 1.0)],
                    succs: vec![(TaskId(0), 1.0)],
                }])
                .unwrap_err(),
            DeltaError::Dag(DagError::Cycle(_))
        ));
        let one_proc = {
            let dag = dag_from_edges(&[1.0], &[]).unwrap();
            let sys = System::homogeneous_unit(&dag, 1);
            ProblemInstance::new(dag, sys)
        };
        assert_eq!(
            one_proc
                .apply_deltas(&[Delta::RemoveProc { proc: ProcId(0) }])
                .unwrap_err(),
            DeltaError::LastProc
        );
        assert_eq!(
            one_proc
                .apply_deltas(&[Delta::RemoveTask { task: TaskId(0) }])
                .unwrap_err(),
            DeltaError::LastTask
        );
    }

    #[test]
    fn delta_wire_format_round_trips() {
        let d = Delta::EtcEntry {
            task: TaskId(3),
            proc: ProcId(1),
            time: 6.5,
        };
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"kind\":\"etc_entry\""), "{json}");
        assert_eq!(serde_json::from_str::<Delta>(&json).unwrap(), d);
    }
}
