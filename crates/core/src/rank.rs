//! Task prioritization: upward/downward ranks and ALAP-style latest start
//! times, parameterized by a [`CostAggregation`] policy.
//!
//! All ranks here are *platform-aware* (they use the system's ETC matrix
//! and mean communication costs) unlike the abstract levels of
//! `hetsched_dag::analysis`, which work on raw weights.

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::System;

use crate::cost::CostAggregation;

/// Upward rank of every task (HEFT's `rank_u`):
///
/// ```text
/// rank_u(t) = ŵ(t) + max over successors s of ( c̄(t,s) + rank_u(s) )
/// ```
///
/// where `ŵ` is the aggregated execution cost and `c̄` the mean
/// communication time of the connecting edge over distinct processor
/// pairs. Scheduling tasks by non-increasing `rank_u` is a topological
/// order.
///
/// ```
/// use hetsched_core::{rank::upward_rank, CostAggregation};
/// use hetsched_dag::builder::dag_from_edges;
/// use hetsched_platform::System;
///
/// let dag = dag_from_edges(&[2.0, 3.0], &[(0, 1, 4.0)]).unwrap();
/// let sys = System::homogeneous_unit(&dag, 2);
/// let r = upward_rank(&dag, &sys, CostAggregation::Mean);
/// assert_eq!(r, vec![2.0 + 4.0 + 3.0, 3.0]);
/// ```
pub fn upward_rank(dag: &Dag, sys: &System, agg: CostAggregation) -> Vec<f64> {
    let mut rank = vec![0.0f64; dag.num_tasks()];
    for &t in dag.topo_order().iter().rev() {
        let tail = dag
            .successors(t)
            .map(|(s, data)| sys.mean_comm(data) + rank[s.index()])
            .fold(0.0f64, f64::max);
        rank[t.index()] = agg.exec(sys, t) + tail;
    }
    rank
}

/// Downward rank of every task (HEFT's `rank_d`):
///
/// ```text
/// rank_d(t) = max over predecessors p of ( rank_d(p) + ŵ(p) + c̄(p,t) )
/// ```
///
/// Entries have `rank_d = 0`. `rank_d(t) + rank_u(t)` is the length of the
/// longest aggregated-cost path through `t`; CPOP uses it to find the
/// critical path.
pub fn downward_rank(dag: &Dag, sys: &System, agg: CostAggregation) -> Vec<f64> {
    let mut rank = vec![0.0f64; dag.num_tasks()];
    for &t in dag.topo_order() {
        let best = dag
            .predecessors(t)
            .map(|(p, data)| rank[p.index()] + agg.exec(sys, p) + sys.mean_comm(data))
            .fold(0.0f64, f64::max);
        rank[t.index()] = best;
    }
    rank
}

/// Static level: like [`upward_rank`] but ignoring communication (the
/// `SL` of DLS).
pub fn static_level(dag: &Dag, sys: &System, agg: CostAggregation) -> Vec<f64> {
    let mut rank = vec![0.0f64; dag.num_tasks()];
    for &t in dag.topo_order().iter().rev() {
        let tail = dag
            .successors(t)
            .map(|(s, _)| rank[s.index()])
            .fold(0.0f64, f64::max);
        rank[t.index()] = agg.exec(sys, t) + tail;
    }
    rank
}

/// Earliest possible start times ignoring resource contention (ASAP times
/// under aggregated costs): `aest(t) = rank_d(t)`, exposed separately for
/// readability in HCPT-style algorithms.
pub fn aest(dag: &Dag, sys: &System, agg: CostAggregation) -> Vec<f64> {
    downward_rank(dag, sys, agg)
}

/// Latest start times without delaying the (aggregated-cost) critical
/// path: `alst(t) = CP − rank_u(t)` where `CP = max rank_u`. A task is
/// *critical* iff `alst(t) == aest(t)` (zero float).
pub fn alst(dag: &Dag, sys: &System, agg: CostAggregation) -> Vec<f64> {
    let up = upward_rank(dag, sys, agg);
    let cp = up.iter().copied().fold(0.0f64, f64::max);
    up.iter().map(|&r| cp - r).collect()
}

/// Indices of tasks sorted by **non-increasing** priority with a stable
/// smallest-id tie-break — the canonical list-scheduling order builder.
pub fn sort_by_priority_desc(priority: &[f64]) -> Vec<TaskId> {
    let mut order: Vec<TaskId> = (0..priority.len() as u32).map(TaskId).collect();
    order.sort_by(|&a, &b| {
        priority[b.index()]
            .total_cmp(&priority[a.index()])
            .then_with(|| a.cmp(&b))
    });
    order
}

/// The aggregated-cost critical path: tasks with maximal
/// `rank_u + rank_d`, returned in topological order. This is CPOP's
/// critical path set.
pub fn critical_path_tasks(dag: &Dag, sys: &System, agg: CostAggregation) -> Vec<TaskId> {
    let up = upward_rank(dag, sys, agg);
    let down = downward_rank(dag, sys, agg);
    let cp = up.iter().copied().fold(0.0f64, f64::max);
    let eps = 1e-9 * cp.max(1.0);
    dag.topo_order()
        .iter()
        .copied()
        .filter(|t| (up[t.index()] + down[t.index()] - cp).abs() <= eps)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::Dag;
    use hetsched_platform::System;

    /// Diamond with distinct weights; homogeneous unit system so aggregated
    /// costs equal raw weights and mean comm equals edge data.
    fn setup() -> (Dag, System) {
        let dag = dag_from_edges(
            &[1.0, 2.0, 3.0, 4.0],
            &[(0, 1, 10.0), (0, 2, 20.0), (1, 3, 30.0), (2, 3, 40.0)],
        )
        .unwrap();
        let sys = System::homogeneous_unit(&dag, 3);
        (dag, sys)
    }

    #[test]
    fn upward_rank_matches_hand_computation() {
        let (dag, sys) = setup();
        let r = upward_rank(&dag, &sys, CostAggregation::Mean);
        // t3 = 4; t1 = 2 + 30 + 4 = 36; t2 = 3 + 40 + 4 = 47
        // t0 = 1 + max(10 + 36, 20 + 47) = 68
        assert_eq!(r, vec![68.0, 36.0, 47.0, 4.0]);
    }

    #[test]
    fn downward_rank_matches_hand_computation() {
        let (dag, sys) = setup();
        let r = downward_rank(&dag, &sys, CostAggregation::Mean);
        // t0 = 0; t1 = 0 + 1 + 10 = 11; t2 = 0 + 1 + 20 = 21
        // t3 = max(11 + 2 + 30, 21 + 3 + 40) = 64
        assert_eq!(r, vec![0.0, 11.0, 21.0, 64.0]);
    }

    #[test]
    fn static_level_ignores_comm() {
        let (dag, sys) = setup();
        let r = static_level(&dag, &sys, CostAggregation::Mean);
        // t3 = 4; t1 = 6; t2 = 7; t0 = 1 + 7 = 8
        assert_eq!(r, vec![8.0, 6.0, 7.0, 4.0]);
    }

    #[test]
    fn rank_order_is_topological() {
        let (dag, sys) = setup();
        let r = upward_rank(&dag, &sys, CostAggregation::Mean);
        let order = sort_by_priority_desc(&r);
        assert!(hetsched_dag::topo::is_topological(&dag, &order));
    }

    #[test]
    fn critical_path_tasks_heavy_branch() {
        let (dag, sys) = setup();
        let cp = critical_path_tasks(&dag, &sys, CostAggregation::Mean);
        assert_eq!(cp, vec![TaskId(0), TaskId(2), TaskId(3)]);
    }

    #[test]
    fn alst_zero_on_critical_path() {
        let (dag, sys) = setup();
        let a = aest(&dag, &sys, CostAggregation::Mean);
        let l = alst(&dag, &sys, CostAggregation::Mean);
        for t in critical_path_tasks(&dag, &sys, CostAggregation::Mean) {
            assert!((a[t.index()] - l[t.index()]).abs() < 1e-9, "{t} critical");
        }
        // non-critical task 1 has slack
        assert!(l[1] > a[1]);
    }

    #[test]
    fn single_proc_system_mean_comm_is_zero() {
        let dag = dag_from_edges(&[1.0, 1.0], &[(0, 1, 100.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 1);
        let r = upward_rank(&dag, &sys, CostAggregation::Mean);
        // comm collapses to zero on one processor
        assert_eq!(r, vec![2.0, 1.0]);
    }

    #[test]
    fn ties_break_by_task_id() {
        let pri = vec![5.0, 7.0, 5.0];
        let order = sort_by_priority_desc(&pri);
        assert_eq!(order, vec![TaskId(1), TaskId(0), TaskId(2)]);
    }
}
