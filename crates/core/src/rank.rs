//! Task prioritization: upward/downward ranks and ALAP-style latest start
//! times, parameterized by a [`CostAggregation`] policy.
//!
//! All ranks here are *platform-aware* (they use the system's ETC matrix
//! and mean communication costs) unlike the abstract levels of
//! `hetsched_dag::analysis`, which work on raw weights.
//!
//! The public functions take a [`ProblemInstance`] and return shared
//! `Arc` vectors served from its memo, so every algorithm run against the
//! same instance computes each `(rank, aggregation)` pair once. The
//! `*_raw` kernels hold the actual folds; the memo only caches their
//! results, so values are bit-identical to a fresh computation.

use std::sync::Arc;

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::System;

use crate::cost::CostAggregation;
use crate::instance::ProblemInstance;

/// Upward rank of every task (HEFT's `rank_u`):
///
/// ```text
/// rank_u(t) = ŵ(t) + max over successors s of ( c̄(t,s) + rank_u(s) )
/// ```
///
/// where `ŵ` is the aggregated execution cost and `c̄` the mean
/// communication time of the connecting edge over distinct processor
/// pairs. Scheduling tasks by non-increasing `rank_u` is a topological
/// order.
///
/// ```
/// use hetsched_core::{rank::upward_rank, CostAggregation, ProblemInstance};
/// use hetsched_dag::builder::dag_from_edges;
/// use hetsched_platform::System;
///
/// let dag = dag_from_edges(&[2.0, 3.0], &[(0, 1, 4.0)]).unwrap();
/// let sys = System::homogeneous_unit(&dag, 2);
/// let inst = ProblemInstance::new(dag, sys);
/// let r = upward_rank(&inst, CostAggregation::Mean);
/// assert_eq!(*r, vec![2.0 + 4.0 + 3.0, 3.0]);
/// ```
pub fn upward_rank(inst: &ProblemInstance, agg: CostAggregation) -> Arc<Vec<f64>> {
    inst.upward_rank(agg)
}

pub(crate) fn upward_rank_raw(dag: &Dag, sys: &System, agg: CostAggregation) -> Vec<f64> {
    let mut rank = vec![0.0f64; dag.num_tasks()];
    for &t in dag.topo_order().iter().rev() {
        rank[t.index()] = upward_entry(dag, sys, agg, t, &rank);
    }
    rank
}

/// The per-task fold of [`upward_rank_raw`], shared with the incremental
/// dirty-region recompute of [`ProblemInstance::apply_deltas`]
/// (`crate::delta`) so both paths evaluate the identical expression — the
/// basis of the bit-identity argument for seeded rank memos.
#[inline]
pub(crate) fn upward_entry(
    dag: &Dag,
    sys: &System,
    agg: CostAggregation,
    t: TaskId,
    rank: &[f64],
) -> f64 {
    let tail = dag
        .successors(t)
        .map(|(s, data)| sys.mean_comm(data) + rank[s.index()])
        .fold(0.0f64, f64::max);
    agg.exec(sys, t) + tail
}

/// Downward rank of every task (HEFT's `rank_d`):
///
/// ```text
/// rank_d(t) = max over predecessors p of ( rank_d(p) + ŵ(p) + c̄(p,t) )
/// ```
///
/// Entries have `rank_d = 0`. `rank_d(t) + rank_u(t)` is the length of the
/// longest aggregated-cost path through `t`; CPOP uses it to find the
/// critical path.
pub fn downward_rank(inst: &ProblemInstance, agg: CostAggregation) -> Arc<Vec<f64>> {
    inst.downward_rank(agg)
}

pub(crate) fn downward_rank_raw(dag: &Dag, sys: &System, agg: CostAggregation) -> Vec<f64> {
    let mut rank = vec![0.0f64; dag.num_tasks()];
    for &t in dag.topo_order() {
        rank[t.index()] = downward_entry(dag, sys, agg, t, &rank);
    }
    rank
}

/// The per-task fold of [`downward_rank_raw`] (see [`upward_entry`]).
#[inline]
pub(crate) fn downward_entry(
    dag: &Dag,
    sys: &System,
    agg: CostAggregation,
    t: TaskId,
    rank: &[f64],
) -> f64 {
    dag.predecessors(t)
        .map(|(p, data)| rank[p.index()] + agg.exec(sys, p) + sys.mean_comm(data))
        .fold(0.0f64, f64::max)
}

/// Static level: like [`upward_rank`] but ignoring communication (the
/// `SL` of DLS).
pub fn static_level(inst: &ProblemInstance, agg: CostAggregation) -> Arc<Vec<f64>> {
    inst.static_level(agg)
}

pub(crate) fn static_level_raw(dag: &Dag, sys: &System, agg: CostAggregation) -> Vec<f64> {
    let mut rank = vec![0.0f64; dag.num_tasks()];
    for &t in dag.topo_order().iter().rev() {
        rank[t.index()] = static_level_entry(dag, sys, agg, t, &rank);
    }
    rank
}

/// The per-task fold of [`static_level_raw`] (see [`upward_entry`]).
#[inline]
pub(crate) fn static_level_entry(
    dag: &Dag,
    sys: &System,
    agg: CostAggregation,
    t: TaskId,
    rank: &[f64],
) -> f64 {
    let tail = dag
        .successors(t)
        .map(|(s, _)| rank[s.index()])
        .fold(0.0f64, f64::max);
    agg.exec(sys, t) + tail
}

/// Earliest possible start times ignoring resource contention (ASAP times
/// under aggregated costs): `aest(t) = rank_d(t)`, exposed separately for
/// readability in HCPT-style algorithms.
pub fn aest(inst: &ProblemInstance, agg: CostAggregation) -> Arc<Vec<f64>> {
    inst.aest(agg)
}

/// Latest start times without delaying the (aggregated-cost) critical
/// path: `alst(t) = CP − rank_u(t)` where `CP = max rank_u`. A task is
/// *critical* iff `alst(t) == aest(t)` (zero float).
pub fn alst(inst: &ProblemInstance, agg: CostAggregation) -> Arc<Vec<f64>> {
    inst.alst(agg)
}

/// PETS rank: the rounded `ACC + DTC + RPT` recurrence over topological
/// order, where `ACC` is the aggregated execution cost, `DTC` the total
/// outgoing mean communication, and `RPT` the maximal rank of any
/// predecessor.
pub fn pets_rank(inst: &ProblemInstance, agg: CostAggregation) -> Arc<Vec<f64>> {
    inst.pets_rank(agg)
}

pub(crate) fn pets_rank_raw(dag: &Dag, sys: &System, agg: CostAggregation) -> Vec<f64> {
    let mut rank = vec![0.0f64; dag.num_tasks()];
    for &t in dag.topo_order() {
        rank[t.index()] = pets_entry(dag, sys, agg, t, &rank);
    }
    rank
}

/// The per-task fold of [`pets_rank_raw`] (see [`upward_entry`]).
#[inline]
pub(crate) fn pets_entry(
    dag: &Dag,
    sys: &System,
    agg: CostAggregation,
    t: TaskId,
    rank: &[f64],
) -> f64 {
    let acc = agg.exec(sys, t);
    let dtc: f64 = dag.successors(t).map(|(_, data)| sys.mean_comm(data)).sum();
    let rpt = dag
        .predecessors(t)
        .map(|(p, _)| rank[p.index()])
        .fold(0.0f64, f64::max);
    (acc + dtc + rpt).round()
}

/// Indices of tasks sorted by **non-increasing** priority with a stable
/// smallest-id tie-break — the canonical list-scheduling order builder.
pub fn sort_by_priority_desc(priority: &[f64]) -> Vec<TaskId> {
    let mut order: Vec<TaskId> = (0..priority.len() as u32).map(TaskId).collect();
    order.sort_by(|&a, &b| {
        priority[b.index()]
            .total_cmp(&priority[a.index()])
            .then_with(|| a.cmp(&b))
    });
    order
}

/// The aggregated-cost critical path: tasks with maximal
/// `rank_u + rank_d`, returned in topological order. This is CPOP's
/// critical path set.
pub fn critical_path_tasks(inst: &ProblemInstance, agg: CostAggregation) -> Arc<Vec<TaskId>> {
    inst.critical_path_tasks(agg)
}

/// Critical-path extraction given already-computed ranks (the memoized
/// path used by [`ProblemInstance::critical_path_tasks`]).
pub(crate) fn critical_path_from_ranks(dag: &Dag, up: &[f64], down: &[f64]) -> Vec<TaskId> {
    let cp = up.iter().copied().fold(0.0f64, f64::max);
    let eps = 1e-9 * cp.max(1.0);
    dag.topo_order()
        .iter()
        .copied()
        .filter(|t| (up[t.index()] + down[t.index()] - cp).abs() <= eps)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_dag::Dag;
    use hetsched_platform::System;

    /// Diamond with distinct weights; homogeneous unit system so aggregated
    /// costs equal raw weights and mean comm equals edge data.
    fn setup() -> (Dag, System) {
        let dag = dag_from_edges(
            &[1.0, 2.0, 3.0, 4.0],
            &[(0, 1, 10.0), (0, 2, 20.0), (1, 3, 30.0), (2, 3, 40.0)],
        )
        .unwrap();
        let sys = System::homogeneous_unit(&dag, 3);
        (dag, sys)
    }

    fn setup_instance() -> ProblemInstance<'static> {
        let (dag, sys) = setup();
        ProblemInstance::new(dag, sys)
    }

    #[test]
    fn upward_rank_matches_hand_computation() {
        let inst = setup_instance();
        let r = upward_rank(&inst, CostAggregation::Mean);
        // t3 = 4; t1 = 2 + 30 + 4 = 36; t2 = 3 + 40 + 4 = 47
        // t0 = 1 + max(10 + 36, 20 + 47) = 68
        assert_eq!(*r, vec![68.0, 36.0, 47.0, 4.0]);
    }

    #[test]
    fn downward_rank_matches_hand_computation() {
        let inst = setup_instance();
        let r = downward_rank(&inst, CostAggregation::Mean);
        // t0 = 0; t1 = 0 + 1 + 10 = 11; t2 = 0 + 1 + 20 = 21
        // t3 = max(11 + 2 + 30, 21 + 3 + 40) = 64
        assert_eq!(*r, vec![0.0, 11.0, 21.0, 64.0]);
    }

    #[test]
    fn static_level_ignores_comm() {
        let inst = setup_instance();
        let r = static_level(&inst, CostAggregation::Mean);
        // t3 = 4; t1 = 6; t2 = 7; t0 = 1 + 7 = 8
        assert_eq!(*r, vec![8.0, 6.0, 7.0, 4.0]);
    }

    #[test]
    fn rank_order_is_topological() {
        let inst = setup_instance();
        let r = upward_rank(&inst, CostAggregation::Mean);
        let order = sort_by_priority_desc(&r);
        assert!(hetsched_dag::topo::is_topological(inst.dag(), &order));
    }

    #[test]
    fn critical_path_tasks_heavy_branch() {
        let inst = setup_instance();
        let cp = critical_path_tasks(&inst, CostAggregation::Mean);
        assert_eq!(*cp, vec![TaskId(0), TaskId(2), TaskId(3)]);
    }

    #[test]
    fn alst_zero_on_critical_path() {
        let inst = setup_instance();
        let a = aest(&inst, CostAggregation::Mean);
        let l = alst(&inst, CostAggregation::Mean);
        for &t in critical_path_tasks(&inst, CostAggregation::Mean).iter() {
            assert!((a[t.index()] - l[t.index()]).abs() < 1e-9, "{t} critical");
        }
        // non-critical task 1 has slack
        assert!(l[1] > a[1]);
    }

    #[test]
    fn single_proc_system_mean_comm_is_zero() {
        let dag = dag_from_edges(&[1.0, 1.0], &[(0, 1, 100.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 1);
        let r = upward_rank_raw(&dag, &sys, CostAggregation::Mean);
        // comm collapses to zero on one processor
        assert_eq!(r, vec![2.0, 1.0]);
    }

    #[test]
    fn ties_break_by_task_id() {
        let pri = vec![5.0, 7.0, 5.0];
        let order = sort_by_priority_desc(&pri);
        assert_eq!(order, vec![TaskId(1), TaskId(0), TaskId(2)]);
    }

    #[test]
    fn raw_and_memoized_agree_bitwise() {
        let (dag, sys) = setup();
        let inst = ProblemInstance::from_refs(&dag, &sys);
        for agg in [
            CostAggregation::Mean,
            CostAggregation::Median,
            CostAggregation::Best,
            CostAggregation::Worst,
            CostAggregation::MeanStd(1.0),
        ] {
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&upward_rank(&inst, agg)),
                bits(&upward_rank_raw(&dag, &sys, agg))
            );
            assert_eq!(
                bits(&downward_rank(&inst, agg)),
                bits(&downward_rank_raw(&dag, &sys, agg))
            );
            assert_eq!(
                bits(&static_level(&inst, agg)),
                bits(&static_level_raw(&dag, &sys, agg))
            );
            assert_eq!(
                bits(&pets_rank(&inst, agg)),
                bits(&pets_rank_raw(&dag, &sys, agg))
            );
        }
    }
}
