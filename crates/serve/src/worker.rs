//! Worker layer: the threads that actually compute schedules.
//!
//! The routing layer ([`crate::service`]) validates requests, consults the
//! reply memo, and enqueues [`Job`]s on a bounded crossbeam channel; the
//! workers here pick them up, run the scheduler inside `catch_unwind`
//! (panic isolation), validate the produced schedule, optionally replay it
//! through the zero-noise simulator, and publish the body to the reply
//! channel and the memoization cache.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};

use hetsched_core::{validate, ProblemInstance, Scheduler};
use hetsched_metrics::{slr, speedup};
use hetsched_sim::{simulate, SimConfig};

use crate::metrics::ServiceMetrics;
use crate::protocol::{RepairBody, RequestOptions, Response, ScheduleBody, SimBody, TraceBody};
use crate::service::Shared;

/// Everything a worker needs to *repair* the parent's schedule instead of
/// computing from scratch: the patch path attaches this when the algorithm
/// is repair-capable and the parent's schedule is still memoized. The
/// produced schedule is bit-identical either way (the [`Heft::repair`]
/// contract), so repair needs no cache-key treatment.
///
/// [`Heft::repair`]: hetsched_core::algorithms::Heft::repair
pub(crate) struct RepairCtx {
    /// The repair-capable scheduler, configured exactly as the registry
    /// entry the request named.
    pub(crate) heft: hetsched_core::algorithms::Heft,
    /// Dirty-region report from applying the deltas.
    pub(crate) dirty: hetsched_core::DirtyInfo,
    /// The instance the deltas were applied to.
    pub(crate) parent_inst: Arc<ProblemInstance<'static>>,
    /// The parent's memoized schedule under the same algorithm + options.
    pub(crate) parent_sched: hetsched_core::Schedule,
}

/// One queued scheduling job. The instance is shared: concurrent jobs on
/// the same (DAG, system) pair — portfolio members especially — hold the
/// same `Arc` and reuse each other's memoized rank vectors.
pub(crate) struct Job {
    pub(crate) inst: Arc<ProblemInstance<'static>>,
    pub(crate) algorithm: String,
    pub(crate) alg: Box<dyn Scheduler + Send + Sync>,
    pub(crate) options: RequestOptions,
    pub(crate) fingerprint: u64,
    pub(crate) repair: Option<RepairCtx>,
    pub(crate) reply: Sender<Response>,
}

pub(crate) fn worker_loop(rx: Receiver<Job>, shared: Arc<Shared>) {
    while let Ok(job) = rx.recv() {
        let reply = job.reply.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| compute(job, &shared)));
        let resp = match outcome {
            Ok(resp) => resp,
            Err(panic) => {
                ServiceMetrics::bump(&shared.metrics.panics);
                ServiceMetrics::bump(&shared.metrics.errors);
                let msg = panic_message(&panic);
                Response::error(format!("scheduler panicked: {msg}"))
            }
        };
        // The requester may have timed out and dropped its receiver; a
        // failed send is expected then.
        let _ = reply.send(resp);
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "unknown panic payload"
    }
}

fn compute(job: Job, shared: &Shared) -> Response {
    if let Some(ms) = job.options.debug_sleep_ms {
        std::thread::sleep(Duration::from_millis(ms));
    }
    if job.options.debug_panic {
        panic!("debug_panic requested by client");
    }

    let (dag, sys) = (job.inst.dag(), job.inst.sys());
    let run = || {
        if job.options.trace {
            let (sched, trace) = hetsched_core::traced_schedule_instance(&*job.alg, &job.inst);
            (
                sched,
                Some(TraceBody {
                    counters: trace.counters,
                    phases: trace.phases,
                    events: trace.events,
                }),
                None,
            )
        } else if let Some(ctx) = &job.repair {
            let (sched, stats) =
                ctx.heft
                    .repair(&job.inst, &ctx.dirty, &ctx.parent_inst, &ctx.parent_sched);
            (
                sched,
                None,
                Some(RepairBody {
                    replayed: stats.replayed,
                    rescheduled: stats.rescheduled,
                    fresh: stats.fresh,
                }),
            )
        } else {
            (job.alg.schedule_instance(&job.inst), None, None)
        }
    };
    // Per-request search parallelism, capped by the pool size so one
    // request cannot oversubscribe the host. Schedules are bit-identical
    // at any thread count, so this needs no cache-key treatment.
    let (sched, trace, repair) = match job.options.jobs {
        Some(j) => hetsched_core::par::with_jobs(j.clamp(1, shared.config.workers), run),
        None => run(),
    };
    if repair.as_ref().is_some_and(|r| !r.fresh) {
        ServiceMetrics::bump(&shared.metrics.repairs);
    }
    if let Err(e) = validate(dag, sys, &sched) {
        ServiceMetrics::bump(&shared.metrics.errors);
        return Response::error(format!(
            "scheduler `{}` produced an invalid schedule: {e:?}",
            job.algorithm
        ));
    }
    let makespan = sched.makespan();
    let sim = job.options.simulate.then(|| {
        let result = simulate(dag, sys, &sched, &SimConfig::default());
        let tol = 1e-6 * makespan.abs().max(1.0);
        SimBody {
            matches_prediction: (result.makespan - makespan).abs() <= tol,
            result,
        }
    });
    let body = ScheduleBody {
        algorithm: job.algorithm,
        makespan,
        slr: slr(dag, sys, makespan),
        speedup: speedup(dag, sys, makespan),
        fingerprint: format!("{:016x}", job.fingerprint),
        problem: format!("{:016x}", job.inst.fingerprint()),
        cached: false,
        schedule: sched,
        sim,
        trace,
        repair,
    };
    shared.cache.lock().insert(job.fingerprint, body.clone());
    ServiceMetrics::bump(&shared.metrics.computed);
    Response::schedule(body)
}
