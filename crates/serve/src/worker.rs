//! Worker layer: the threads that actually compute schedules.
//!
//! The routing layer ([`crate::service`]) validates requests, consults the
//! reply memo, and enqueues [`Job`]s on a bounded crossbeam channel; the
//! workers here pick them up, run the scheduler inside `catch_unwind`
//! (panic isolation), validate the produced schedule, optionally replay it
//! through the zero-noise simulator, and publish the body to the reply
//! channel and the memoization cache.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};

use hetsched_core::{validate, ProblemInstance, Scheduler};
use hetsched_metrics::{slr, speedup};
use hetsched_sim::{simulate, SimConfig};

use crate::metrics::ServiceMetrics;
use crate::protocol::{
    RepairBody, RequestOptions, Response, ScheduleBody, ServeTiming, SimBody, SpanRecord,
    TimingBody, TraceBody,
};
use crate::service::Shared;

/// Everything a worker needs to *repair* the parent's schedule instead of
/// computing from scratch: the patch path attaches this when the algorithm
/// is repair-capable and the parent's schedule is still memoized. The
/// produced schedule is bit-identical either way (the [`Heft::repair`]
/// contract), so repair needs no cache-key treatment.
///
/// [`Heft::repair`]: hetsched_core::algorithms::Heft::repair
pub(crate) struct RepairCtx {
    /// The repair-capable scheduler, configured exactly as the registry
    /// entry the request named.
    pub(crate) scheduler: hetsched_core::RepairScheduler,
    /// Dirty-region report from applying the deltas.
    pub(crate) dirty: hetsched_core::DirtyInfo,
    /// The instance the deltas were applied to.
    pub(crate) parent_inst: Arc<ProblemInstance<'static>>,
    /// The parent's memoized schedule under the same algorithm + options.
    pub(crate) parent_sched: hetsched_core::Schedule,
}

/// Distributed-trace context of one queued job: set only when the
/// request carried `options.trace_ctx`. Span offsets are relative to
/// `arrival` (the moment this tier received the request line), matching
/// the routing layer's root `request` span.
pub(crate) struct JobCtx {
    pub(crate) trace_id: String,
    pub(crate) arrival: Instant,
}

impl JobCtx {
    /// The context for a request's options, or `None` when untraced.
    pub(crate) fn for_options(options: &RequestOptions, arrival: Instant) -> Option<JobCtx> {
        options.trace_ctx.as_ref().map(|ctx| JobCtx {
            trace_id: ctx.trace_id.clone(),
            arrival,
        })
    }
}

/// One queued scheduling job. The instance is shared: concurrent jobs on
/// the same (DAG, system) pair — portfolio members especially — hold the
/// same `Arc` and reuse each other's memoized rank vectors.
pub(crate) struct Job {
    pub(crate) inst: Arc<ProblemInstance<'static>>,
    pub(crate) algorithm: String,
    pub(crate) alg: Box<dyn Scheduler + Send + Sync>,
    pub(crate) options: RequestOptions,
    pub(crate) fingerprint: u64,
    pub(crate) repair: Option<RepairCtx>,
    /// When the routing layer put this job on the bounded queue; the
    /// worker turns it into the queue-wait measurement on dequeue.
    pub(crate) enqueued: Instant,
    /// Distributed-trace context (traced requests only).
    pub(crate) ctx: Option<JobCtx>,
    pub(crate) reply: Sender<Response>,
}

pub(crate) fn worker_loop(rx: Receiver<Job>, shared: Arc<Shared>) {
    while let Ok(job) = rx.recv() {
        let reply = job.reply.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| compute(job, &shared)));
        let resp = match outcome {
            Ok(resp) => resp,
            Err(panic) => {
                ServiceMetrics::bump(&shared.metrics.panics);
                ServiceMetrics::bump(&shared.metrics.errors);
                let msg = panic_message(&panic);
                Response::error(format!("scheduler panicked: {msg}"))
            }
        };
        // The requester may have timed out and dropped its receiver; a
        // failed send is expected then.
        let _ = reply.send(resp);
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "unknown panic payload"
    }
}

fn compute(job: Job, shared: &Shared) -> Response {
    let dequeued = Instant::now();
    shared
        .metrics
        .queue_wait
        .record(dequeued.duration_since(job.enqueued));
    if let Some(ms) = job.options.debug_sleep_ms {
        std::thread::sleep(Duration::from_millis(ms));
    }
    if job.options.debug_panic {
        panic!("debug_panic requested by client");
    }

    let (dag, sys) = (job.inst.dag(), job.inst.sys());
    // Traced requests (distributed trace context) harvest the engine's
    // phase spans even when the client did not ask for the full decision
    // log; the capture never changes a schedule byte (the PR 3 tracing
    // contract), so the produced body memoizes identically.
    let want_phases = job.ctx.is_some();
    let run = || {
        if job.options.trace {
            let (sched, trace) = hetsched_core::traced_schedule_instance(&*job.alg, &job.inst);
            let phases = trace.phases.clone();
            (
                sched,
                Some(TraceBody {
                    counters: trace.counters,
                    phases: trace.phases,
                    events: trace.events,
                }),
                None,
                phases,
            )
        } else if let Some(ctx) = &job.repair {
            let (sched, stats) =
                ctx.scheduler
                    .repair(&job.inst, &ctx.dirty, &ctx.parent_inst, &ctx.parent_sched);
            (
                sched,
                None,
                Some(RepairBody {
                    replayed: stats.replayed,
                    rescheduled: stats.rescheduled,
                    fresh: stats.fresh,
                }),
                Vec::new(),
            )
        } else if want_phases {
            let (sched, trace) = hetsched_core::traced_schedule_instance(&*job.alg, &job.inst);
            (sched, None, None, trace.phases)
        } else {
            (job.alg.schedule_instance(&job.inst), None, None, Vec::new())
        }
    };
    // Per-request search parallelism, capped by the pool size so one
    // request cannot oversubscribe the host. Schedules are bit-identical
    // at any thread count, so this needs no cache-key treatment.
    let engine_start = Instant::now();
    let (sched, trace, repair, phases) = match job.options.jobs {
        Some(j) => hetsched_core::par::with_jobs(j.clamp(1, shared.config.workers), run),
        None => run(),
    };
    if repair.as_ref().is_some_and(|r| !r.fresh) {
        ServiceMetrics::bump(&shared.metrics.repairs);
    }
    if let Err(e) = validate(dag, sys, &sched) {
        ServiceMetrics::bump(&shared.metrics.errors);
        return Response::error(format!(
            "scheduler `{}` produced an invalid schedule: {e:?}",
            job.algorithm
        ));
    }
    let makespan = sched.makespan();
    let sim = job.options.simulate.then(|| {
        let result = simulate(dag, sys, &sched, &SimConfig::default());
        let tol = 1e-6 * makespan.abs().max(1.0);
        SimBody {
            matches_prediction: (result.makespan - makespan).abs() <= tol,
            result,
        }
    });
    let computed_at = Instant::now();
    shared
        .metrics
        .compute
        .record(computed_at.duration_since(dequeued));
    let (cache_kind, repair_note) = match &repair {
        Some(r) if !r.fresh => (
            "repaired",
            format!("replayed={} rescheduled={}", r.replayed, r.rescheduled),
        ),
        _ => ("computed", String::new()),
    };
    let body = ScheduleBody {
        algorithm: job.algorithm.clone(),
        makespan,
        slr: slr(dag, sys, makespan),
        speedup: speedup(dag, sys, makespan),
        fingerprint: format!("{:016x}", job.fingerprint),
        problem: format!("{:016x}", job.inst.fingerprint()),
        cached: false,
        schedule: sched,
        sim,
        trace,
        repair,
    };
    // The memo line (these bytes with `cached: true`) is serialized
    // lazily by the first memo hit, so a one-shot compute pays nothing
    // for a repeat that never comes; every repeat after that — routing
    // memo hit or wire-cache hit — shares the hit's exact bytes.
    let evicted = shared.cache.lock().insert(
        job.fingerprint,
        crate::service::MemoEntry {
            body: body.clone(),
            line: std::sync::OnceLock::new(),
        },
    );
    shared.note_eviction(evicted);
    ServiceMetrics::bump(&shared.metrics.computed);
    let mut resp = Response::schedule(body);
    if let Some(ctx) = &job.ctx {
        let timing = record_job_spans(
            &job,
            ctx,
            shared,
            dequeued,
            engine_start,
            computed_at,
            phases,
            cache_kind,
            repair_note,
        );
        resp = resp.with_timing(timing);
    }
    resp
}

/// Push the worker-side spans of one traced job — `queue`, `compute`,
/// and the engine phases nested inside `compute` — and build the partial
/// serve timing the routing layer completes with `total_us`/`parse_us`.
#[allow(clippy::too_many_arguments)] // one-call-site plumbing of timestamps
fn record_job_spans(
    job: &Job,
    ctx: &JobCtx,
    shared: &Shared,
    dequeued: Instant,
    engine_start: Instant,
    computed_at: Instant,
    phases: Vec<hetsched_trace::PhaseSpan>,
    cache_kind: &str,
    detail: String,
) -> TimingBody {
    let off = |i: Instant| i.saturating_duration_since(ctx.arrival).as_micros() as u64;
    let (queue_start, compute_start) = (off(job.enqueued), off(dequeued));
    let compute_end = off(computed_at).max(compute_start + 1);
    let queue_us = compute_start.saturating_sub(queue_start);
    let compute_us = compute_end - compute_start;
    let mut spans = vec![
        SpanRecord {
            trace_id: ctx.trace_id.clone(),
            name: "queue".to_string(),
            start_us: queue_start,
            dur_us: queue_us.max(1),
            detail: String::new(),
        },
        SpanRecord {
            trace_id: ctx.trace_id.clone(),
            name: "compute".to_string(),
            start_us: compute_start,
            dur_us: compute_us,
            detail,
        },
    ];
    let engine_base = off(engine_start);
    for p in &phases {
        let start = engine_base + p.start_ns / 1_000;
        let start = start.clamp(compute_start, compute_end.saturating_sub(1));
        let dur = (p.dur_ns / 1_000).max(1).min(compute_end - start);
        spans.push(SpanRecord {
            trace_id: ctx.trace_id.clone(),
            name: format!("engine:{}", p.name),
            start_us: start,
            dur_us: dur,
            detail: String::new(),
        });
    }
    shared.journal.extend(spans);
    TimingBody {
        trace_id: ctx.trace_id.clone(),
        hops: Vec::new(),
        serve: Some(ServeTiming {
            total_us: 0,
            parse_us: 0,
            queue_us,
            compute_us,
            cache: cache_kind.to_string(),
        }),
        gateway: None,
    }
}
