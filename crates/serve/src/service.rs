//! Routing layer: request validation, memoization, deadlines, and
//! admission to the bounded worker queue.
//!
//! Life of a `schedule` request:
//!
//! 1. The submitting thread (a TCP connection thread or the stdin loop)
//!    parses and validates the request, builds the `Dag`/`System`, and
//!    computes the request's content fingerprint.
//! 2. On a cache hit the response is returned immediately (`cached: true`).
//! 3. Otherwise the job goes into a bounded crossbeam channel. A full
//!    queue answers `busy` right away — backpressure is explicit, never
//!    an unbounded pile-up.
//! 4. A worker (`crate::worker`) picks the job up and runs the scheduler
//!    inside `catch_unwind`, so a panicking algorithm poisons nothing: the
//!    client gets `error` and the daemon keeps serving.
//! 5. The submitting thread waits for the reply with a deadline
//!    (`options.deadline_ms`, else the configured default) and answers
//!    `timeout` if it passes. The worker still finishes and populates the
//!    cache, so an identical retry can hit.
//!
//! Shutdown is drain-then-exit: [`Service::shutdown`] closes the queue,
//! lets workers finish every queued job (replies included), then joins
//! them.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::Mutex;

use hetsched_core::{algorithms, repairable, Delta, ProblemInstance, Scheduler};
use hetsched_dag::io::DagSpec;
use hetsched_dag::{Dag, Fingerprint};
use hetsched_platform::{System, SystemSpec};

use crate::cache::LruCache;
use crate::journal::Journal;
use crate::metrics::{GaugeSnapshot, RequestStatus, ServiceMetrics};
use crate::protocol::{
    HelloBody, InstanceSpec, JournalBody, PortfolioBody, PortfolioEntryBody, Request,
    RequestOptions, Response, ScheduleBody, ScheduleManyBody, ServeTiming, SpanRecord, StatsBody,
    TimingBody,
};
use crate::wire::{self, WireScan};
use crate::worker::{worker_loop, Job, JobCtx, RepairCtx};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads computing schedules.
    pub workers: usize,
    /// Bounded queue capacity; a full queue answers `busy`.
    pub queue_capacity: usize,
    /// Memoization cache capacity (entries).
    pub cache_capacity: usize,
    /// Problem-instance cache capacity (entries). Instances are keyed by
    /// the (DAG, system) content fingerprint only, so requests differing
    /// in algorithm or options share one instance — and its memoized rank
    /// vectors.
    pub instance_cache_capacity: usize,
    /// Deadline applied when a request carries no `deadline_ms`.
    pub default_deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2);
        ServeConfig {
            workers,
            queue_capacity: 64,
            cache_capacity: 256,
            instance_cache_capacity: 64,
            default_deadline_ms: 30_000,
        }
    }
}

/// One reply-memo entry: the computed body plus its reply line,
/// serialized **once** — lazily, on the first memo hit, so a one-shot
/// compute pays nothing for a repeat that never comes. Every later hit
/// clones the `Arc` and re-serializes nothing; the wire-level cache
/// shares the same bytes.
pub(crate) struct MemoEntry {
    /// The body as computed (`cached: false`); memo hits clone it and
    /// flip the flag when a typed response is needed (tracing, batch
    /// composition).
    pub(crate) body: ScheduleBody,
    /// `Response::schedule` of the body with `cached: true`, serialized —
    /// exactly the line a slow-path memo hit would produce. Empty until
    /// the first hit materializes it.
    pub(crate) line: OnceLock<Arc<[u8]>>,
}

/// One wire-cache entry: preserialized reply bytes valid only while the
/// epoch they were stored under is still current (see
/// [`Shared::note_eviction`]).
pub(crate) struct WireEntry {
    bytes: Arc<[u8]>,
    epoch: u64,
}

/// State shared between the routing layer and the worker pool.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) metrics: ServiceMetrics,
    pub(crate) cache: Mutex<LruCache<MemoEntry>>,
    pub(crate) instances: Mutex<LruCache<Arc<ProblemInstance<'static>>>>,
    /// Wire digest → preserialized reply bytes: the raw-byte hot-line
    /// cache consulted before any parsing. Write-through from the reply
    /// memo (only memo-hit-shaped replies are stored) and invalidated
    /// wholesale by epoch whenever either underlying cache evicts.
    pub(crate) wire: Mutex<LruCache<WireEntry>>,
    /// Invalidation epoch of the wire cache. Bumped on every memo-cache
    /// *or* instance-cache eviction: a memo eviction can flip a repeat
    /// from `cached: true` to a fresh compute, and an instance eviction
    /// can flip a `patch` from answered to `unknown_parent` — either way
    /// the preserialized bytes may no longer match the slow path, so all
    /// of them are retired at once. Evictions are rare at steady state
    /// (the working set fits or the memo is thrashing anyway), so the
    /// blunt epoch beats per-digest dependency tracking.
    pub(crate) wire_epoch: AtomicU64,
    pub(crate) shutting: AtomicBool,
    /// Bounded span journal for traced requests, drained by the
    /// `journal` op. Untraced requests never touch it.
    pub(crate) journal: Journal,
}

impl Shared {
    /// Register an eviction reported by [`LruCache::insert`] on the memo
    /// or instance cache: bump the wire epoch, invalidating every
    /// wire-cache entry stored under earlier epochs.
    pub(crate) fn note_eviction(&self, evicted: Option<u64>) {
        if evicted.is_some() {
            self.wire_epoch.fetch_add(1, Ordering::Release);
        }
    }
}

/// The resident scheduling service. Cheap to share behind an `Arc`; every
/// public method takes `&self`.
pub struct Service {
    shared: Arc<Shared>,
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Content fingerprint of a scheduling request: DAG structure and weights,
/// full system (ETC + network), algorithm name, and the options that
/// influence the response body. `deadline_ms` is deliberately excluded —
/// it bounds how long the client waits, not what is computed. `jobs` is
/// excluded for the same reason: parallel search is bit-identical at any
/// thread count, so it changes speed, never the response.
pub fn request_fingerprint(
    dag: &Dag,
    sys: &System,
    algorithm: &str,
    options: &RequestOptions,
) -> u64 {
    let mut fp = Fingerprint::new();
    dag.fold_fingerprint(&mut fp);
    sys.fold_fingerprint(&mut fp);
    fp.tag("algorithm");
    fp.push_str(algorithm);
    fp.tag("options");
    fp.push_u8(options.simulate as u8);
    fp.push_u8(options.debug_panic as u8);
    fp.push_u64(options.debug_sleep_ms.unwrap_or(0));
    fp.push_u8(options.trace as u8);
    fp.finish()
}

impl Service {
    /// Start the worker pool and return the ready service.
    ///
    /// # Panics
    /// Panics if `workers` or `queue_capacity` or `cache_capacity` is zero.
    pub fn start(config: ServeConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let (tx, rx) = channel::bounded::<Job>(config.queue_capacity);
        let shared = Arc::new(Shared {
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            instances: Mutex::new(LruCache::new(config.instance_cache_capacity)),
            wire: Mutex::new(LruCache::new(config.cache_capacity)),
            wire_epoch: AtomicU64::new(0),
            metrics: ServiceMetrics::new(),
            shutting: AtomicBool::new(false),
            journal: Journal::default(),
            config,
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let rx = rx.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("hetsched-worker-{i}"))
                    .spawn(move || worker_loop(rx, shared))
                    .expect("spawning worker thread")
            })
            .collect();
        Service {
            shared,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
        }
    }

    /// Service metrics (live counters).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.shared.metrics
    }

    /// Whether graceful shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting.load(Ordering::SeqCst)
    }

    /// Request graceful shutdown without blocking: new `schedule` requests
    /// are refused, in-flight ones keep running until [`Service::shutdown`]
    /// drains them.
    pub fn begin_shutdown(&self) {
        self.shared.shutting.store(true, Ordering::SeqCst);
    }

    /// Drain and stop: close the queue, let workers answer every queued
    /// job, join them. Idempotent; safe to call from any thread.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        drop(self.tx.lock().take());
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }

    /// Handle one NDJSON request line, returning the response (never
    /// panics, never blocks past the request deadline).
    pub fn handle_line(&self, line: &str) -> Response {
        let arrival = Instant::now();
        match Request::parse(line) {
            Ok(req) => {
                let parse_us = arrival.elapsed().as_micros() as u64;
                self.handle_at(req, LineMeta { arrival, parse_us }, false)
                    .into_response()
            }
            Err(e) => {
                ServiceMetrics::bump(&self.shared.metrics.errors);
                Response::error(format!("bad request: {e}"))
            }
        }
    }

    /// Handle one NDJSON request line entirely in bytes: the transport's
    /// hot path. Repeat lines are answered from the wire cache without
    /// any JSON parsing, instance construction, or serialization — one
    /// digest probe returns the `Arc` of the exact bytes the slow path
    /// would have produced. Everything else takes the ordinary
    /// [`Service::handle_line`] route, preserialized where the memo
    /// allows, serialized on the spot otherwise.
    pub fn handle_line_bytes(&self, line: &str) -> Arc<[u8]> {
        let arrival = Instant::now();
        let m = &self.shared.metrics;
        let Some(scan) = wire::scan(line.as_bytes()) else {
            ServiceMetrics::bump(&m.wire_fallbacks);
            return self.slow_line(line, arrival, None);
        };
        // During shutdown the slow path refuses scheduling ops; a wire
        // hit must not answer what the slow path would refuse.
        if !self.is_shutting_down() {
            let epoch = self.shared.wire_epoch.load(Ordering::Acquire);
            let hit = self
                .shared
                .wire
                .lock()
                .get(scan.digest)
                .filter(|e| e.epoch == epoch)
                .map(|e| e.bytes.clone());
            if let Some(bytes) = hit {
                self.record_wire_hit(&scan, arrival);
                return bytes;
            }
            ServiceMetrics::bump(&m.wire_misses);
            // The epoch is captured *before* the slow path runs: if any
            // eviction lands while we compute, the entry we store is
            // already stale and will never be served.
            return self.slow_line(line, arrival, Some((scan.digest, epoch)));
        }
        ServiceMetrics::bump(&m.wire_fallbacks);
        self.slow_line(line, arrival, None)
    }

    /// Account one wire-cache hit: it is a request, a cache hit, and a
    /// success, with deadline slack measured from the scanner's raw
    /// capture. The per-algorithm histogram is deliberately skipped —
    /// knowing the algorithm would require the parse the fast path
    /// exists to avoid.
    fn record_wire_hit(&self, scan: &WireScan, arrival: Instant) {
        let m = &self.shared.metrics;
        ServiceMetrics::bump(&m.requests);
        ServiceMetrics::bump(&m.cache_hits);
        ServiceMetrics::bump(&m.wire_hits);
        let elapsed = arrival.elapsed();
        m.latency.record(RequestStatus::Success, elapsed);
        m.op_outcomes.bump(scan.op.as_str(), RequestStatus::Success);
        if let Some(d) = scan.deadline_ms {
            m.deadline_slack
                .record(Duration::from_millis(d).saturating_sub(elapsed));
        }
    }

    /// Full-parse tail of [`Service::handle_line_bytes`]; when `store`
    /// carries a scanned digest and its pre-captured epoch, a stable
    /// reply is written through to the wire cache.
    fn slow_line(&self, line: &str, arrival: Instant, store: Option<(u64, u64)>) -> Arc<[u8]> {
        let reply = match Request::parse(line) {
            Ok(req) => {
                let parse_us = arrival.elapsed().as_micros() as u64;
                self.handle_at(req, LineMeta { arrival, parse_us }, true)
            }
            Err(e) => {
                ServiceMetrics::bump(&self.shared.metrics.errors);
                Reply::Typed(Response::error(format!("bad request: {e}")))
            }
        };
        let bytes = reply.into_bytes();
        if let Some((digest, epoch)) = store {
            if wire::reply_stable(&bytes) {
                self.shared.wire.lock().insert(
                    digest,
                    WireEntry {
                        bytes: bytes.clone(),
                        epoch,
                    },
                );
            }
        }
        bytes
    }

    /// Handle one parsed request.
    pub fn handle(&self, req: Request) -> Response {
        self.handle_at(
            req,
            LineMeta {
                arrival: Instant::now(),
                parse_us: 0,
            },
            false,
        )
        .into_response()
    }

    fn handle_at(&self, req: Request, meta: LineMeta, want_bytes: bool) -> Reply {
        let record = |op: &str, deadline_ms: Option<u64>, reply: &Reply| {
            if let Some(status) = reply.status() {
                self.record_outcome(op, deadline_ms, meta.arrival, status);
            }
        };
        match req {
            Request::Hello => Reply::Typed(Response::hello(self.hello_body())),
            Request::Stats => Reply::Typed(Response::stats(self.stats_body())),
            Request::Metrics => Reply::Typed(Response::metrics(self.metrics_text())),
            Request::Journal => Reply::Typed(Response::journal(JournalBody {
                source: "shard".to_string(),
                spans: self.shared.journal.drain(),
            })),
            Request::Shutdown => {
                self.begin_shutdown();
                Reply::Typed(Response::ShuttingDown)
            }
            Request::Schedule {
                dag,
                system,
                algorithm,
                options,
            } => {
                let deadline_ms = options.deadline_ms;
                let reply = self.handle_schedule(dag, system, algorithm, options, meta, want_bytes);
                record("schedule", deadline_ms, &reply);
                reply
            }
            Request::Portfolio {
                dag,
                system,
                algorithms,
                options,
            } => {
                let deadline_ms = options.deadline_ms;
                let reply =
                    Reply::Typed(self.handle_portfolio(dag, system, algorithms, options, meta));
                record("portfolio", deadline_ms, &reply);
                reply
            }
            Request::ScheduleMany {
                instances,
                algorithm,
                options,
            } => {
                let deadline_ms = options.deadline_ms;
                let reply = Reply::Typed(self.handle_many(instances, algorithm, options, meta));
                record("schedule_many", deadline_ms, &reply);
                reply
            }
            Request::Patch {
                parent,
                algorithm,
                deltas,
                options,
            } => {
                let deadline_ms = options.deadline_ms;
                let reply =
                    self.handle_patch(&parent, algorithm, &deltas, options, meta, want_bytes);
                record("patch", deadline_ms, &reply);
                reply
            }
        }
    }

    /// Record the end-of-request SLO accounting in one place: the
    /// status-labeled latency histogram, the per-op outcome counter, and —
    /// for deadlined requests that made it — the remaining deadline slack.
    fn record_outcome(
        &self,
        op: &str,
        deadline_ms: Option<u64>,
        started: Instant,
        status: RequestStatus,
    ) {
        let m = &self.shared.metrics;
        let elapsed = started.elapsed();
        m.latency.record(status, elapsed);
        m.op_outcomes.bump(op, status);
        if status == RequestStatus::Success {
            if let Some(d) = deadline_ms {
                m.deadline_slack
                    .record(Duration::from_millis(d).saturating_sub(elapsed));
            }
        }
    }

    /// Finish a traced request at this tier: push the root `request` (and
    /// `parse`) spans to the journal and attach the reply's `timing`
    /// block, merging whatever partial serve timing the worker recorded.
    /// Untraced requests pass through untouched.
    fn finalize_timing(
        &self,
        resp: Response,
        options: &RequestOptions,
        meta: LineMeta,
        fallback_cache: &str,
    ) -> Response {
        let Some(ctx) = options.trace_ctx.as_ref() else {
            return resp;
        };
        let total_us = (meta.arrival.elapsed().as_micros() as u64).max(1);
        let mut serve = match &resp {
            Response::Ok {
                timing: Some(t), ..
            } => t.serve.clone().unwrap_or_default(),
            _ => ServeTiming::default(),
        };
        if serve.cache.is_empty() {
            serve.cache = fallback_cache.to_string();
        }
        serve.total_us = total_us;
        serve.parse_us = meta.parse_us;
        self.shared.journal.push(SpanRecord {
            trace_id: ctx.trace_id.clone(),
            name: "parse".to_string(),
            start_us: 0,
            dur_us: meta.parse_us,
            detail: String::new(),
        });
        self.shared.journal.push(SpanRecord {
            trace_id: ctx.trace_id.clone(),
            name: "request".to_string(),
            start_us: 0,
            dur_us: total_us,
            detail: serve.cache.clone(),
        });
        resp.with_timing(TimingBody {
            trace_id: ctx.trace_id.clone(),
            hops: ctx.hops.clone(),
            serve: Some(serve),
            gateway: None,
        })
    }

    /// Identification payload for the `hello` handshake.
    pub fn hello_body(&self) -> HelloBody {
        HelloBody {
            service: "hetsched-serve".to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            workers: self.shared.config.workers,
            queue_capacity: self.shared.config.queue_capacity,
        }
    }

    /// Current counters as a stats payload.
    pub fn stats_body(&self) -> StatsBody {
        let m = &self.shared.metrics;
        StatsBody {
            requests: ServiceMetrics::read(&m.requests),
            cache_hits: ServiceMetrics::read(&m.cache_hits),
            computed: ServiceMetrics::read(&m.computed),
            errors: ServiceMetrics::read(&m.errors),
            panics: ServiceMetrics::read(&m.panics),
            timeouts: ServiceMetrics::read(&m.timeouts),
            busy_rejections: ServiceMetrics::read(&m.busy_rejections),
            connection_panics: ServiceMetrics::read(&m.connection_panics),
            cache_entries: self.shared.cache.lock().len(),
            instance_cache_hits: ServiceMetrics::read(&m.instance_cache_hits),
            instance_cache_misses: ServiceMetrics::read(&m.instance_cache_misses),
            instance_cache_entries: self.shared.instances.lock().len(),
            patches: ServiceMetrics::read(&m.patches),
            repairs: ServiceMetrics::read(&m.repairs),
            wire_hits: ServiceMetrics::read(&m.wire_hits),
            wire_misses: ServiceMetrics::read(&m.wire_misses),
            wire_fallbacks: ServiceMetrics::read(&m.wire_fallbacks),
            workers: self.shared.config.workers,
            queue_capacity: self.shared.config.queue_capacity,
            latency_samples: m.latency.success().count(),
            latency_p50_us: m.latency.success().quantile_us(0.50),
            latency_p99_us: m.latency.success().quantile_us(0.99),
            qwait_p50_us: m.queue_wait.quantile_us(0.50),
            qwait_p99_us: m.queue_wait.quantile_us(0.99),
            compute_p50_us: m.compute.quantile_us(0.50),
            compute_p99_us: m.compute.quantile_us(0.99),
        }
    }

    /// All metric families in Prometheus text exposition format.
    pub fn metrics_text(&self) -> String {
        let queue_depth = self
            .tx
            .lock()
            .as_ref()
            .map(|tx| tx.len() as u64)
            .unwrap_or(0);
        let gauges = GaugeSnapshot {
            queue_depth,
            cache_entries: self.shared.cache.lock().len() as u64,
            instance_cache_entries: self.shared.instances.lock().len() as u64,
            workers: self.shared.config.workers as u64,
            queue_capacity: self.shared.config.queue_capacity as u64,
        };
        self.shared.metrics.render_prometheus(&gauges)
    }

    /// Build the `Dag` and `System` from their wire specs, reporting
    /// protocol errors uniformly.
    #[allow(clippy::result_large_err)] // the Err is the wire `Response`; see `protocol::Response`
    fn build_problem(&self, dag: DagSpec, system: SystemSpec) -> Result<(Dag, System), Response> {
        let m = &self.shared.metrics;
        let dag = match dag.build() {
            Ok(d) => d,
            Err(e) => {
                ServiceMetrics::bump(&m.errors);
                return Err(Response::error(format!("invalid dag: {e}")));
            }
        };
        let sys = match system.build(&dag) {
            Ok(s) => s,
            Err(e) => {
                ServiceMetrics::bump(&m.errors);
                return Err(Response::error(format!("invalid system: {e}")));
            }
        };
        Ok((dag, sys))
    }

    /// Fetch the shared [`ProblemInstance`] for `(dag, sys)` from the
    /// instance cache, building and inserting it on a miss. The cache is
    /// keyed by the (DAG, system) content fingerprint alone — algorithm
    /// and options are deliberately excluded, so a portfolio's members and
    /// repeat requests with different algorithms all share one instance
    /// and its memoized rank vectors.
    fn instance_for(&self, dag: Dag, sys: System) -> Arc<ProblemInstance<'static>> {
        let m = &self.shared.metrics;
        let key = ProblemInstance::content_fingerprint(&dag, &sys);
        if let Some(inst) = self.shared.instances.lock().get(key) {
            ServiceMetrics::bump(&m.instance_cache_hits);
            return inst.clone();
        }
        // Build outside the lock: construction clones nothing (it takes
        // the arenas by value) but hashing large DAGs under the lock would
        // stall concurrent lookups.
        let inst = Arc::new(ProblemInstance::new(dag, sys));
        ServiceMetrics::bump(&m.instance_cache_misses);
        let evicted = self.shared.instances.lock().insert(key, inst.clone());
        self.shared.note_eviction(evicted);
        inst
    }

    /// Enqueue one scheduling job. With `block_until: None` a full queue
    /// answers `busy` immediately (the single-request path). With a
    /// deadline, the send blocks until a slot frees or the deadline
    /// passes — the portfolio path, whose members arrive as one burst
    /// that may legitimately exceed the queue capacity; the workers drain
    /// the queue while the submitter waits.
    #[allow(clippy::result_large_err)] // the Err is the wire `Response`; see `protocol::Response`
    fn enqueue(&self, job: Job, block_until: Option<Instant>) -> Result<(), Response> {
        let guard = self.tx.lock();
        let Some(tx) = guard.as_ref() else {
            return Err(Response::ShuttingDown);
        };
        let busy = |m: &ServiceMetrics| {
            ServiceMetrics::bump(&m.busy_rejections);
            Err(Response::Busy {
                message: format!(
                    "request queue full ({} pending)",
                    self.shared.config.queue_capacity
                ),
            })
        };
        match block_until {
            None => match tx.try_send(job) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(_)) => busy(&self.shared.metrics),
                Err(TrySendError::Disconnected(_)) => Err(Response::ShuttingDown),
            },
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match tx.send_timeout(job, remaining) {
                    Ok(()) => Ok(()),
                    Err(channel::SendTimeoutError::Timeout(_)) => busy(&self.shared.metrics),
                    Err(channel::SendTimeoutError::Disconnected(_)) => Err(Response::ShuttingDown),
                }
            }
        }
    }

    /// Reply-memo lookup or job submission for one `(instance, algorithm)`
    /// pair: returns the cached body immediately on a memo hit, otherwise
    /// enqueues the job and hands back the reply channel to wait on.
    ///
    /// `want_line` asks for the entry's preserialized memo line alongside
    /// the body; only the bytes path sets it, so typed callers (portfolio
    /// and batch composition, traced requests, in-process [`Service::handle`])
    /// never pay the serialization.
    #[allow(clippy::result_large_err)] // the Err is the wire `Response`; see `protocol::Response`
    #[allow(clippy::too_many_arguments)] // one-call-site-per-op plumbing of request state
    fn memo_or_submit(
        &self,
        inst: &Arc<ProblemInstance<'static>>,
        algorithm: &str,
        alg: Box<dyn Scheduler + Send + Sync>,
        options: &RequestOptions,
        block_until: Option<Instant>,
        repair: Option<RepairCtx>,
        ctx: Option<JobCtx>,
        want_line: bool,
    ) -> Result<MemberState, Response> {
        let m = &self.shared.metrics;
        ServiceMetrics::bump(&m.requests);
        let fp = request_fingerprint(inst.dag(), inst.sys(), algorithm, options);
        if let Some(hit) = self.shared.cache.lock().get(fp) {
            let mut body = hit.body.clone();
            body.cached = true;
            // The first bytes-path hit serializes the memo line (under
            // the cache lock — once per entry, and contenders would
            // otherwise each serialize it themselves); every later hit
            // clones the Arc. Typed hits skip the line entirely.
            let line = want_line.then(|| {
                hit.line
                    .get_or_init(|| {
                        let mut memo = hit.body.clone();
                        memo.cached = true;
                        Arc::from(Response::schedule(memo).to_line().into_bytes())
                    })
                    .clone()
            });
            ServiceMetrics::bump(&m.cache_hits);
            return Ok(MemberState::Cached {
                body: Box::new(body),
                line,
            });
        }
        let (reply_tx, reply_rx) = channel::bounded::<Response>(1);
        self.enqueue(
            Job {
                inst: inst.clone(),
                algorithm: algorithm.to_string(),
                alg,
                options: options.clone(),
                fingerprint: fp,
                repair,
                enqueued: Instant::now(),
                ctx,
                reply: reply_tx,
            },
            block_until,
        )?;
        Ok(MemberState::Pending(reply_rx))
    }

    fn handle_schedule(
        &self,
        dag: DagSpec,
        system: SystemSpec,
        algorithm: String,
        options: RequestOptions,
        meta: LineMeta,
        want_bytes: bool,
    ) -> Reply {
        let started = meta.arrival;
        let m = &self.shared.metrics;
        if self.is_shutting_down() {
            return Reply::Typed(Response::ShuttingDown);
        }

        let (dag, sys) = match self.build_problem(dag, system) {
            Ok(v) => v,
            Err(resp) => return Reply::Typed(resp),
        };
        let Some(alg) = algorithms::by_name(&algorithm) else {
            ServiceMetrics::bump(&m.errors);
            return Reply::Typed(Response::error(format!(
                "unknown algorithm `{algorithm}` (known: {})",
                algorithms::known_names().join(", ")
            )));
        };

        let inst = self.instance_for(dag, sys);
        let ctx = JobCtx::for_options(&options, started);
        let want_line = want_bytes && options.trace_ctx.is_none();
        let state = match self
            .memo_or_submit(&inst, &algorithm, alg, &options, None, None, ctx, want_line)
        {
            Ok(state) => state,
            Err(resp) => return Reply::Typed(self.finalize_timing(resp, &options, meta, "none")),
        };
        self.finish_single(started, &algorithm, &options, meta, state, want_bytes)
    }

    /// Incrementally reschedule a cached problem: resolve `parent` through
    /// the instance cache, apply the deltas, and answer exactly what a
    /// `schedule` request for the patched problem would answer. For the
    /// EFT family the worker gets a [`RepairCtx`] so it can replay the
    /// parent's unaffected placements instead of recomputing them — the
    /// response is bit-identical either way (the core repair contract).
    fn handle_patch(
        &self,
        parent: &str,
        algorithm: String,
        deltas: &[Delta],
        options: RequestOptions,
        meta: LineMeta,
        want_bytes: bool,
    ) -> Reply {
        let started = meta.arrival;
        let m = &self.shared.metrics;
        if self.is_shutting_down() {
            return Reply::Typed(Response::ShuttingDown);
        }

        let parent_key = match u64::from_str_radix(parent, 16) {
            Ok(k) if parent.len() == 16 => k,
            _ => {
                ServiceMetrics::bump(&m.errors);
                return Reply::Typed(Response::error(format!(
                    "unknown_parent: `{parent}` is not a 16-hex-digit problem fingerprint \
                     (use the `problem` field of an earlier schedule response)"
                )));
            }
        };
        let Some(parent_inst) = self.shared.instances.lock().get(parent_key).cloned() else {
            ServiceMetrics::bump(&m.errors);
            return Reply::Typed(Response::error(format!(
                "unknown_parent: no cached problem with fingerprint {parent} (never seen or \
                 evicted); re-send the full problem as a `schedule` request to re-seed the cache"
            )));
        };
        let Some(alg) = algorithms::by_name(&algorithm) else {
            ServiceMetrics::bump(&m.errors);
            return Reply::Typed(Response::error(format!(
                "unknown algorithm `{algorithm}` (known: {})",
                algorithms::known_names().join(", ")
            )));
        };

        let (inst, dirty) = match parent_inst.apply_deltas(deltas) {
            Ok(patched) => (Arc::new(patched.instance.into_owned()), patched.dirty),
            Err(e) => {
                ServiceMetrics::bump(&m.errors);
                return Reply::Typed(Response::error(format!("invalid delta: {e}")));
            }
        };
        ServiceMetrics::bump(&m.patches);
        // Register the patched problem under its own content fingerprint
        // so follow-up patches can chain off this one, exactly like a full
        // request for the patched problem would have.
        let evicted = self
            .shared
            .instances
            .lock()
            .insert(inst.fingerprint(), inst.clone());
        self.shared.note_eviction(evicted);

        // Repair wants the parent's schedule under the same algorithm and
        // options; when it is no longer memoized (or the algorithm is not
        // repair-capable) the worker simply computes from scratch. Traced
        // requests also compute fresh: a replayed prefix would truncate
        // the decision log the client asked for.
        let repair = repairable(&algorithm)
            .filter(|_| !options.trace)
            .and_then(|scheduler| {
                let parent_fp =
                    request_fingerprint(parent_inst.dag(), parent_inst.sys(), &algorithm, &options);
                let parent_sched = self
                    .shared
                    .cache
                    .lock()
                    .get(parent_fp)
                    .map(|e| e.body.schedule.clone())?;
                Some(RepairCtx {
                    scheduler,
                    dirty,
                    parent_inst: parent_inst.clone(),
                    parent_sched,
                })
            });

        let ctx = JobCtx::for_options(&options, started);
        let want_line = want_bytes && options.trace_ctx.is_none();
        let state = match self.memo_or_submit(
            &inst, &algorithm, alg, &options, None, repair, ctx, want_line,
        ) {
            Ok(state) => state,
            Err(resp) => return Reply::Typed(self.finalize_timing(resp, &options, meta, "none")),
        };
        self.finish_single(started, &algorithm, &options, meta, state, want_bytes)
    }

    /// Single-request tail shared by `schedule` and `patch`: answer a memo
    /// hit immediately — from the preserialized memo line when the caller
    /// wants bytes and nothing per-request (timing) has to be injected —
    /// otherwise wait for the worker under the request deadline.
    fn finish_single(
        &self,
        started: Instant,
        algorithm: &str,
        options: &RequestOptions,
        meta: LineMeta,
        state: MemberState,
        want_bytes: bool,
    ) -> Reply {
        let m = &self.shared.metrics;
        let reply_rx = match state {
            MemberState::Cached { body, line } => {
                m.record_algorithm(algorithm, started.elapsed());
                if want_bytes && options.trace_ctx.is_none() {
                    if let Some(line) = line {
                        // The memo line is byte-for-byte what serializing
                        // `Response::schedule(*body)` would produce from
                        // the identical memoized body. Zero serialization
                        // on this path.
                        return Reply::Bytes(line);
                    }
                }
                let resp = Response::schedule(*body);
                return Reply::Typed(self.finalize_timing(resp, options, meta, "memo"));
            }
            MemberState::Pending(rx) => rx,
        };

        let deadline = Duration::from_millis(
            options
                .deadline_ms
                .unwrap_or(self.shared.config.default_deadline_ms),
        );
        let remaining = deadline.saturating_sub(started.elapsed());
        let resp = match await_reply(&reply_rx, remaining) {
            Ok(resp) => {
                if matches!(resp, Response::Ok { .. }) {
                    m.record_algorithm(algorithm, started.elapsed());
                }
                resp
            }
            Err(channel::RecvTimeoutError::Timeout) => {
                ServiceMetrics::bump(&m.timeouts);
                Response::Timeout {
                    message: format!(
                        "deadline of {} ms exceeded; the schedule keeps computing and will be cached",
                        deadline.as_millis()
                    ),
                }
            }
            Err(channel::RecvTimeoutError::Disconnected) => {
                // Workers always reply, even on panic; reaching this means
                // the pool is gone mid-request (shutdown race).
                ServiceMetrics::bump(&m.errors);
                Response::error("worker pool shut down before replying")
            }
        };
        Reply::Typed(self.finalize_timing(resp, options, meta, "none"))
    }

    fn handle_portfolio(
        &self,
        dag: DagSpec,
        system: SystemSpec,
        algorithm_names: Vec<String>,
        options: RequestOptions,
        meta: LineMeta,
    ) -> Response {
        let started = meta.arrival;
        let m = &self.shared.metrics;
        if self.is_shutting_down() {
            return Response::ShuttingDown;
        }

        let names = if algorithm_names.is_empty() {
            algorithms::known_names()
                .iter()
                .map(|s| s.to_string())
                .collect()
        } else {
            algorithm_names
        };
        let mut members = Vec::with_capacity(names.len());
        for name in &names {
            let Some(alg) = algorithms::by_name(name) else {
                ServiceMetrics::bump(&m.errors);
                return Response::error(format!(
                    "unknown algorithm `{name}` (known: {})",
                    algorithms::known_names().join(", ")
                ));
            };
            members.push(alg);
        }

        let (dag, sys) = match self.build_problem(dag, system) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let inst = self.instance_for(dag, sys);

        let deadline = Duration::from_millis(
            options
                .deadline_ms
                .unwrap_or(self.shared.config.default_deadline_ms),
        );
        let deadline_at = started + deadline;

        // Fan the members out across the worker pool: every one is an
        // ordinary memoized job sharing the same instance `Arc`, so a
        // later single-algorithm request for any member hits the cache.
        // Submission blocks (up to the deadline) when the burst exceeds
        // the queue capacity — workers drain it while we wait.
        let mut states = Vec::with_capacity(members.len());
        for (name, alg) in names.iter().zip(members) {
            match self.memo_or_submit(
                &inst,
                name,
                alg,
                &options,
                Some(deadline_at),
                None,
                None,
                false,
            ) {
                Ok(state) => states.push(state),
                Err(resp) => return self.finalize_timing(resp, &options, meta, "none"),
            }
        }
        let mut bodies: Vec<ScheduleBody> = Vec::with_capacity(states.len());
        for (name, state) in names.iter().zip(states) {
            let body = match state {
                MemberState::Cached { body, .. } => *body,
                MemberState::Pending(rx) => {
                    let remaining = deadline.saturating_sub(started.elapsed());
                    match await_reply(&rx, remaining) {
                        Ok(Response::Ok {
                            schedule: Some(body),
                            ..
                        }) => body,
                        Ok(other) => return other,
                        Err(channel::RecvTimeoutError::Timeout) => {
                            ServiceMetrics::bump(&m.timeouts);
                            return Response::Timeout {
                                message: format!(
                                    "deadline of {} ms exceeded waiting for `{name}`; members keep computing and will be cached",
                                    deadline.as_millis()
                                ),
                            };
                        }
                        Err(channel::RecvTimeoutError::Disconnected) => {
                            ServiceMetrics::bump(&m.errors);
                            return Response::error("worker pool shut down before replying");
                        }
                    }
                }
            };
            bodies.push(body);
        }

        let best = bodies
            .iter()
            .enumerate()
            .min_by(|(ia, a), (ib, b)| a.makespan.total_cmp(&b.makespan).then_with(|| ia.cmp(ib)))
            .map(|(i, _)| i)
            .expect("at least one member");
        let entries = bodies
            .iter()
            .map(|b| PortfolioEntryBody {
                algorithm: b.algorithm.clone(),
                makespan: b.makespan,
                cached: b.cached,
            })
            .collect();
        let resp = Response::portfolio(PortfolioBody {
            entries,
            best,
            schedule: bodies.swap_remove(best),
        });
        self.finalize_timing(resp, &options, meta, "portfolio")
    }

    /// Batched scheduling: one request line carrying N `(dag, system)`
    /// instances, answered with N schedule bodies **in request order**.
    /// Every instance is an ordinary memoized job — the reply memo is
    /// consulted per instance, repeats *within* the batch are served
    /// single-flight from the first occurrence, and the whole burst is
    /// submitted before any reply is awaited so the worker pool overlaps
    /// the members (submission blocks up to the deadline when the burst
    /// exceeds the queue capacity, exactly like a portfolio).
    fn handle_many(
        &self,
        instances: Vec<InstanceSpec>,
        algorithm: String,
        options: RequestOptions,
        meta: LineMeta,
    ) -> Response {
        let started = meta.arrival;
        let m = &self.shared.metrics;
        if self.is_shutting_down() {
            return Response::ShuttingDown;
        }
        if instances.is_empty() {
            ServiceMetrics::bump(&m.errors);
            return Response::error("schedule_many requires at least one instance");
        }
        if algorithms::by_name(&algorithm).is_none() {
            ServiceMetrics::bump(&m.errors);
            return Response::error(format!(
                "unknown algorithm `{algorithm}` (known: {})",
                algorithms::known_names().join(", ")
            ));
        }

        let deadline = Duration::from_millis(
            options
                .deadline_ms
                .unwrap_or(self.shared.config.default_deadline_ms),
        );
        let deadline_at = started + deadline;

        /// One batch member after submission: in flight (or memoized), or
        /// a duplicate of an earlier member answered from its entry.
        enum Member {
            State(MemberState),
            DupOf(usize),
        }
        let mut seen: Vec<(u64, usize)> = Vec::with_capacity(instances.len());
        let mut members = Vec::with_capacity(instances.len());
        for (i, spec) in instances.into_iter().enumerate() {
            let (dag, sys) = match self.build_problem(spec.dag, spec.system) {
                Ok(v) => v,
                Err(resp) => return self.finalize_timing(resp, &options, meta, "none"),
            };
            let fp = request_fingerprint(&dag, &sys, &algorithm, &options);
            if let Some(&(_, first)) = seen.iter().find(|(k, _)| *k == fp) {
                members.push(Member::DupOf(first));
                continue;
            }
            seen.push((fp, i));
            let inst = self.instance_for(dag, sys);
            let alg = algorithms::by_name(&algorithm).expect("validated above");
            match self.memo_or_submit(
                &inst,
                &algorithm,
                alg,
                &options,
                Some(deadline_at),
                None,
                None,
                false,
            ) {
                Ok(state) => members.push(Member::State(state)),
                Err(resp) => return self.finalize_timing(resp, &options, meta, "none"),
            }
        }

        let mut cached = 0usize;
        let mut entries: Vec<ScheduleBody> = Vec::with_capacity(members.len());
        for (i, member) in members.into_iter().enumerate() {
            let body = match member {
                Member::DupOf(first) => {
                    let mut body = entries[first].clone();
                    body.cached = true;
                    cached += 1;
                    body
                }
                Member::State(MemberState::Cached { body, .. }) => {
                    cached += 1;
                    *body
                }
                Member::State(MemberState::Pending(rx)) => {
                    let remaining = deadline.saturating_sub(started.elapsed());
                    match await_reply(&rx, remaining) {
                        Ok(Response::Ok {
                            schedule: Some(body),
                            ..
                        }) => body,
                        Ok(other) => return other,
                        Err(channel::RecvTimeoutError::Timeout) => {
                            ServiceMetrics::bump(&m.timeouts);
                            return Response::Timeout {
                                message: format!(
                                    "deadline of {} ms exceeded waiting for batch entry {i}; members keep computing and will be cached",
                                    deadline.as_millis()
                                ),
                            };
                        }
                        Err(channel::RecvTimeoutError::Disconnected) => {
                            ServiceMetrics::bump(&m.errors);
                            return Response::error("worker pool shut down before replying");
                        }
                    }
                }
            };
            entries.push(body);
        }
        m.record_algorithm(&algorithm, started.elapsed());
        let computed = entries.len() - cached;
        let resp = Response::many(ScheduleManyBody {
            entries,
            cached,
            computed,
        });
        self.finalize_timing(resp, &options, meta, "many")
    }
}

/// Per-line request metadata stamped by the transport-facing entry
/// point: when the line arrived and how long it took to parse. `handle`
/// (the parsed-request entry point) uses a zero-parse stamp.
#[derive(Clone, Copy)]
struct LineMeta {
    arrival: Instant,
    parse_us: u64,
}

/// A portfolio member after the memo lookup: already answered from the
/// cache, or in flight on the worker pool.
enum MemberState {
    /// Answered from the reply memo: the typed body (for batch
    /// composition and traced requests) plus — only when the caller asked
    /// for it — the preserialized memo line (for the bytes path).
    Cached {
        /// Boxed so the in-flight variant stays small.
        body: Box<ScheduleBody>,
        line: Option<Arc<[u8]>>,
    },
    Pending(Receiver<Response>),
}

/// One finished request, typed or preserialized. `Bytes` only ever
/// carries a memo-hit-shaped `ok` line; everything that needs
/// per-request mutation (timing injection, error text) stays `Typed`.
// Transient return value consumed immediately by the dispatcher — never
// stored or collected, so the Typed/Bytes size gap costs nothing.
#[allow(clippy::large_enum_variant)]
enum Reply {
    Typed(Response),
    Bytes(Arc<[u8]>),
}

impl Reply {
    /// The outcome class for SLO accounting; `None` for responses that
    /// are not accounted (`shutting_down`).
    fn status(&self) -> Option<RequestStatus> {
        match self {
            Reply::Bytes(_) => Some(RequestStatus::Success),
            Reply::Typed(resp) => match resp {
                Response::Ok { .. } => Some(RequestStatus::Success),
                Response::Busy { .. } | Response::Shed { .. } => Some(RequestStatus::Shed),
                Response::Timeout { .. } => Some(RequestStatus::Timeout),
                Response::Error { .. } => Some(RequestStatus::Error),
                Response::ShuttingDown => None,
            },
        }
    }

    /// The typed response, deserializing a preserialized line if one got
    /// this far (the typed entry points never request bytes, so this
    /// branch is defensive).
    fn into_response(self) -> Response {
        match self {
            Reply::Typed(resp) => resp,
            Reply::Bytes(bytes) => {
                let text = std::str::from_utf8(&bytes).expect("memo lines are UTF-8 JSON");
                serde_json::from_str(text).expect("memo lines are serialized Responses")
            }
        }
    }

    /// The reply as wire bytes (no trailing newline), serializing typed
    /// responses on the spot.
    fn into_bytes(self) -> Arc<[u8]> {
        match self {
            Reply::Bytes(bytes) => bytes,
            Reply::Typed(resp) => Arc::from(resp.to_line().into_bytes()),
        }
    }
}

/// Wait for the worker's reply until `remaining` elapses, then make one
/// last non-blocking check before giving up: a reply that slipped into the
/// channel between the timeout firing and this thread reporting it means
/// the schedule *was* computed inside the client's window, and answering
/// `timeout` would discard a finished result for no reason.
fn await_reply(
    reply_rx: &Receiver<Response>,
    remaining: Duration,
) -> Result<Response, channel::RecvTimeoutError> {
    match reply_rx.recv_timeout(remaining) {
        Err(channel::RecvTimeoutError::Timeout) => match reply_rx.try_recv() {
            Ok(resp) => Ok(resp),
            Err(channel::TryRecvError::Empty) => Err(channel::RecvTimeoutError::Timeout),
            Err(channel::TryRecvError::Disconnected) => {
                Err(channel::RecvTimeoutError::Disconnected)
            }
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_request(n_tasks: usize, algorithm: &str, options: &str) -> String {
        let tasks: Vec<String> = (0..n_tasks)
            .map(|i| format!("{{\"weight\":{}}}", i + 1))
            .collect();
        let edges: Vec<String> = (1..n_tasks)
            .map(|i| format!("{{\"src\":0,\"dst\":{i},\"data\":2.0}}"))
            .collect();
        format!(
            "{{\"op\":\"schedule\",\"dag\":{{\"tasks\":[{}],\"edges\":[{}]}},\
             \"system\":{{\"processors\":{{\"kind\":\"homogeneous\",\"count\":3}},\
             \"network\":{{\"topology\":\"fully_connected\",\"bandwidth\":1.0}}}},\
             \"algorithm\":\"{algorithm}\",\"options\":{options}}}",
            tasks.join(","),
            edges.join(","),
        )
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 4,
            cache_capacity: 8,
            instance_cache_capacity: 4,
            default_deadline_ms: 10_000,
        }
    }

    #[test]
    fn schedule_roundtrip_and_cache_hit() {
        let svc = Service::start(test_config());
        let line = small_request(5, "HEFT", "{\"simulate\":true}");

        let first = svc.handle_line(&line);
        let Response::Ok {
            schedule: Some(body),
            ..
        } = &first
        else {
            panic!("unexpected response: {first:?}");
        };
        assert!(!body.cached);
        assert!(body.makespan > 0.0);
        assert!(body.slr >= 1.0 - 1e-9);
        let sim = body.sim.as_ref().expect("simulate requested");
        assert!(sim.matches_prediction, "zero-noise replay must agree");

        let second = svc.handle_line(&line);
        let Response::Ok {
            schedule: Some(body2),
            ..
        } = &second
        else {
            panic!("unexpected response: {second:?}");
        };
        assert!(body2.cached);
        assert_eq!(body2.makespan, body.makespan);
        assert_eq!(body2.fingerprint, body.fingerprint);

        let stats = svc.stats_body();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.cache_entries, 1);
        assert_eq!(stats.latency_samples, 2);
        svc.shutdown();
    }

    #[test]
    fn different_algorithm_misses_cache_but_shares_instance() {
        let svc = Service::start(test_config());
        svc.handle_line(&small_request(5, "HEFT", "{}"));
        svc.handle_line(&small_request(5, "CPOP", "{}"));
        let stats = svc.stats_body();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.computed, 2);
        assert_eq!(stats.cache_entries, 2);
        // The reply memo missed, but the second request reused the first
        // request's ProblemInstance: same (dag, system) content key.
        assert_eq!(stats.instance_cache_misses, 1);
        assert_eq!(stats.instance_cache_hits, 1);
        assert_eq!(stats.instance_cache_entries, 1);
        svc.shutdown();
    }

    fn portfolio_request(n_tasks: usize, algorithms: &[&str], options: &str) -> String {
        let tasks: Vec<String> = (0..n_tasks)
            .map(|i| format!("{{\"weight\":{}}}", i + 1))
            .collect();
        let edges: Vec<String> = (1..n_tasks)
            .map(|i| format!("{{\"src\":0,\"dst\":{i},\"data\":2.0}}"))
            .collect();
        let algs: Vec<String> = algorithms.iter().map(|a| format!("\"{a}\"")).collect();
        format!(
            "{{\"op\":\"portfolio\",\"dag\":{{\"tasks\":[{}],\"edges\":[{}]}},\
             \"system\":{{\"processors\":{{\"kind\":\"homogeneous\",\"count\":3}},\
             \"network\":{{\"topology\":\"fully_connected\",\"bandwidth\":1.0}}}},\
             \"algorithms\":[{}],\"options\":{options}}}",
            tasks.join(","),
            edges.join(","),
            algs.join(","),
        )
    }

    #[test]
    fn portfolio_returns_per_member_table_and_minimum() {
        let svc = Service::start(test_config());
        let algs = ["HEFT", "CPOP", "PETS", "ILS-H"];
        let resp = svc.handle_line(&portfolio_request(6, &algs, "{}"));
        let Response::Ok {
            portfolio: Some(body),
            ..
        } = &resp
        else {
            panic!("unexpected response: {resp:?}");
        };
        assert_eq!(body.entries.len(), algs.len());
        // entries come back in request order and the winner is the min
        let mut min = f64::INFINITY;
        for (entry, name) in body.entries.iter().zip(&algs) {
            assert_eq!(&entry.algorithm, name);
            min = min.min(entry.makespan);
        }
        assert_eq!(body.entries[body.best].makespan, min);
        assert_eq!(body.schedule.makespan, min);
        assert_eq!(body.schedule.algorithm, body.entries[body.best].algorithm);
        // one instance, built once, shared by all members
        let stats = svc.stats_body();
        assert_eq!(stats.instance_cache_misses, 1);
        assert_eq!(stats.computed, algs.len() as u64);

        // Portfolio members memoize individually: a follow-up single
        // request for any member is a pure cache hit.
        let follow = svc.handle_line(&small_request(6, "CPOP", "{}"));
        let Response::Ok {
            schedule: Some(follow),
            ..
        } = &follow
        else {
            panic!("follow-up: {follow:?}");
        };
        assert!(follow.cached);
        svc.shutdown();
    }

    #[test]
    fn portfolio_rejects_unknown_member() {
        let svc = Service::start(test_config());
        let resp = svc.handle_line(&portfolio_request(4, &["HEFT", "NO-SUCH"], "{}"));
        let Response::Error { message } = &resp else {
            panic!("expected error, got {resp:?}");
        };
        assert!(message.contains("NO-SUCH"), "message: {message}");
        svc.shutdown();
    }

    #[test]
    fn empty_portfolio_runs_every_registered_algorithm() {
        let svc = Service::start(test_config());
        let resp = svc.handle_line(&portfolio_request(4, &[], "{}"));
        let Response::Ok {
            portfolio: Some(body),
            ..
        } = &resp
        else {
            panic!("unexpected response: {resp:?}");
        };
        assert_eq!(
            body.entries.len(),
            hetsched_core::algorithms::known_names().len()
        );
        svc.shutdown();
    }

    /// A `schedule_many` line whose instances are star DAGs of the given
    /// sizes (distinct sizes → distinct fingerprints; repeated sizes →
    /// within-batch duplicates).
    fn many_request(sizes: &[usize], algorithm: &str, options: &str) -> String {
        let instances: Vec<String> = sizes
            .iter()
            .map(|&n| {
                let tasks: Vec<String> = (0..n)
                    .map(|i| format!("{{\"weight\":{}}}", i + 1))
                    .collect();
                let edges: Vec<String> = (1..n)
                    .map(|i| format!("{{\"src\":0,\"dst\":{i},\"data\":2.0}}"))
                    .collect();
                format!(
                    "{{\"dag\":{{\"tasks\":[{}],\"edges\":[{}]}},\
                     \"system\":{{\"processors\":{{\"kind\":\"homogeneous\",\"count\":3}},\
                     \"network\":{{\"topology\":\"fully_connected\",\"bandwidth\":1.0}}}}}}",
                    tasks.join(","),
                    edges.join(","),
                )
            })
            .collect();
        format!(
            "{{\"op\":\"schedule_many\",\"instances\":[{}],\
             \"algorithm\":\"{algorithm}\",\"options\":{options}}}",
            instances.join(","),
        )
    }

    #[test]
    fn schedule_many_answers_in_request_order_and_matches_singles() {
        let svc = Service::start(test_config());
        let sizes = [4usize, 6, 5];
        // standalone answers first, so the batch below is all memo hits —
        // and must still come back in *request* order, not cache order
        let singles: Vec<f64> = sizes
            .iter()
            .map(|&n| {
                let resp = svc.handle_line(&small_request(n, "HEFT", "{}"));
                schedule_body(&resp).makespan
            })
            .collect();
        let resp = svc.handle_line(&many_request(&sizes, "HEFT", "{}"));
        let Response::Ok {
            many: Some(body), ..
        } = &resp
        else {
            panic!("unexpected response: {resp:?}");
        };
        assert_eq!(body.entries.len(), sizes.len());
        assert_eq!(body.cached, sizes.len());
        assert_eq!(body.computed, 0);
        for (entry, &makespan) in body.entries.iter().zip(&singles) {
            assert!(entry.cached);
            assert_eq!(entry.makespan, makespan);
        }
        svc.shutdown();
    }

    #[test]
    fn schedule_many_computes_fresh_and_seeds_the_memo() {
        let svc = Service::start(test_config());
        let resp = svc.handle_line(&many_request(&[4, 6], "HEFT", "{}"));
        let Response::Ok {
            many: Some(body), ..
        } = &resp
        else {
            panic!("unexpected response: {resp:?}");
        };
        assert_eq!((body.cached, body.computed), (0, 2));
        assert!(body.entries.iter().all(|e| !e.cached));
        // a later standalone request for a batch member is a memo hit
        let single = svc.handle_line(&small_request(6, "HEFT", "{}"));
        let sb = schedule_body(&single);
        assert!(sb.cached);
        assert_eq!(sb.makespan, body.entries[1].makespan);
        svc.shutdown();
    }

    #[test]
    fn schedule_many_dedups_repeats_within_the_batch() {
        let svc = Service::start(test_config());
        let resp = svc.handle_line(&many_request(&[5, 5, 7], "HEFT", "{}"));
        let Response::Ok {
            many: Some(body), ..
        } = &resp
        else {
            panic!("unexpected response: {resp:?}");
        };
        assert_eq!(body.entries.len(), 3);
        // the repeat is answered single-flight from the first occurrence
        assert_eq!((body.cached, body.computed), (1, 2));
        assert!(!body.entries[0].cached);
        assert!(body.entries[1].cached);
        assert_eq!(body.entries[1].makespan, body.entries[0].makespan);
        assert_eq!(body.entries[1].fingerprint, body.entries[0].fingerprint);
        // only two jobs were actually computed
        assert_eq!(svc.stats_body().computed, 2);
        svc.shutdown();
    }

    #[test]
    fn schedule_many_rejects_empty_batch_and_unknown_algorithm() {
        let svc = Service::start(test_config());
        let unknown_alg = many_request(&[4], "NO-SUCH-ALG", "{}");
        for line in [
            "{\"op\":\"schedule_many\",\"instances\":[],\"algorithm\":\"HEFT\"}",
            unknown_alg.as_str(),
        ] {
            let resp = svc.handle_line(line);
            assert!(
                matches!(resp, Response::Error { .. }),
                "line {line} gave {resp:?}"
            );
        }
        svc.shutdown();
    }

    #[test]
    fn bad_inputs_are_errors_not_panics() {
        let svc = Service::start(test_config());
        for line in [
            "not json at all",
            r#"{"op":"schedule","dag":{"tasks":[]},"system":{"processors":{"kind":"homogeneous","count":1},"network":{"topology":"fully_connected","bandwidth":1.0}},"algorithm":"HEFT"}"#,
            &small_request(3, "NO-SUCH-ALG", "{}"),
        ] {
            let resp = svc.handle_line(line);
            assert!(
                matches!(resp, Response::Error { .. }),
                "line {line} gave {resp:?}"
            );
        }
        assert_eq!(svc.stats_body().errors, 3);
        svc.shutdown();
    }

    fn patch_request(parent: &str, algorithm: &str, deltas: &str, options: &str) -> String {
        format!(
            "{{\"op\":\"patch\",\"parent\":\"{parent}\",\"algorithm\":\"{algorithm}\",\
             \"deltas\":{deltas},\"options\":{options}}}"
        )
    }

    fn schedule_body(resp: &Response) -> &ScheduleBody {
        let Response::Ok {
            schedule: Some(body),
            ..
        } = resp
        else {
            panic!("expected a schedule response, got {resp:?}");
        };
        body
    }

    #[test]
    fn patch_repairs_and_aliases_the_equivalent_fresh_request() {
        let svc = Service::start(test_config());
        let parent_body = {
            let resp = svc.handle_line(&small_request(5, "HEFT", "{}"));
            schedule_body(&resp).clone()
        };
        assert_eq!(parent_body.problem.len(), 16, "problem key is 16 hex");

        // An edge-data delta: only edge (0, 4) grows, so it has an exact
        // full-request equivalent (a `task_weight` delta would not — the
        // homogeneous system spec derives ETC from weights, while the
        // delta deliberately leaves the ETC alone).
        let deltas = r#"[{"kind":"edge_data","src":0,"dst":4,"data":7.5}]"#;
        let resp = svc.handle_line(&patch_request(&parent_body.problem, "HEFT", deltas, "{}"));
        let body = schedule_body(&resp).clone();
        assert!(!body.cached, "a patch is never the parent's reply");
        assert_ne!(body.problem, parent_body.problem);
        assert_ne!(body.fingerprint, parent_body.fingerprint);
        let repair = body
            .repair
            .as_ref()
            .expect("HEFT patch takes the repair path");
        assert!(!repair.fresh);
        assert_eq!(repair.replayed + repair.rescheduled, 5);

        // The equivalent full request on a *fresh* service computes from
        // scratch; the repaired schedule must match it bit for bit.
        let full = "{\"op\":\"schedule\",\"dag\":{\"tasks\":[{\"weight\":1},{\"weight\":2},\
             {\"weight\":3},{\"weight\":4},{\"weight\":5}],\"edges\":[\
             {\"src\":0,\"dst\":1,\"data\":2.0},{\"src\":0,\"dst\":2,\"data\":2.0},\
             {\"src\":0,\"dst\":3,\"data\":2.0},{\"src\":0,\"dst\":4,\"data\":7.5}]},\
             \"system\":{\"processors\":{\"kind\":\"homogeneous\",\"count\":3},\
             \"network\":{\"topology\":\"fully_connected\",\"bandwidth\":1.0}},\
             \"algorithm\":\"HEFT\",\"options\":{}}";
        let other = Service::start(test_config());
        let fresh = schedule_body(&other.handle_line(full)).clone();
        assert_eq!(fresh.fingerprint, body.fingerprint, "same request key");
        assert_eq!(fresh.problem, body.problem, "same problem key");
        assert_eq!(
            serde_json::to_string(&fresh.schedule).unwrap(),
            serde_json::to_string(&body.schedule).unwrap(),
            "repair must be bit-identical to from-scratch"
        );
        other.shutdown();

        // And on the original service the patch reply memoized under the
        // patched problem's request key, so the full request aliases it.
        let aliased = schedule_body(&svc.handle_line(full)).clone();
        assert!(aliased.cached);
        assert_eq!(aliased.fingerprint, body.fingerprint);

        let stats = svc.stats_body();
        assert_eq!(stats.patches, 1);
        assert_eq!(stats.repairs, 1);
        svc.shutdown();
    }

    #[test]
    fn patch_never_coalesces_with_its_parent_and_chains() {
        let svc = Service::start(test_config());
        let parent = {
            let resp = svc.handle_line(&small_request(4, "HEFT", "{}"));
            schedule_body(&resp).clone()
        };
        // An ETC delta slows task 1 on proc 0: a genuinely different
        // problem whose reply must be computed, not pulled from the
        // parent's memo slot.
        let deltas = r#"[{"kind":"etc_entry","task":1,"proc":0,"time":50.0}]"#;
        let resp = svc.handle_line(&patch_request(&parent.problem, "HEFT", deltas, "{}"));
        let child = schedule_body(&resp).clone();
        assert!(!child.cached);
        assert_ne!(child.problem, parent.problem);
        assert_ne!(child.fingerprint, parent.fingerprint);

        // The patched problem registered under its own key: chain off it.
        let deltas2 = r#"[{"kind":"edge_data","src":0,"dst":2,"data":7.5}]"#;
        let resp = svc.handle_line(&patch_request(&child.problem, "HEFT", deltas2, "{}"));
        let grand = schedule_body(&resp).clone();
        assert_ne!(grand.problem, child.problem);
        assert_eq!(svc.stats_body().patches, 2);

        // Re-sending the same patch line hits the reply memo.
        let resp = svc.handle_line(&patch_request(&parent.problem, "HEFT", deltas, "{}"));
        assert!(schedule_body(&resp).cached);
        svc.shutdown();
    }

    #[test]
    fn patch_without_a_memoized_parent_schedule_still_answers() {
        // The instance cache knows the parent but the reply memo does not
        // (different algorithm): no repair context, plain computation.
        let svc = Service::start(test_config());
        let parent = {
            let resp = svc.handle_line(&small_request(4, "CPOP", "{}"));
            schedule_body(&resp).clone()
        };
        let deltas = r#"[{"kind":"etc_entry","task":2,"proc":1,"time":30.0}]"#;
        // HEFT is repair-capable, but no HEFT parent schedule is cached.
        let resp = svc.handle_line(&patch_request(&parent.problem, "HEFT", deltas, "{}"));
        let body = schedule_body(&resp).clone();
        assert!(body.repair.is_none(), "no parent schedule, no repair");
        // CPOP is not repair-capable: patch works, computing from scratch.
        let resp = svc.handle_line(&patch_request(&parent.problem, "CPOP", deltas, "{}"));
        assert!(schedule_body(&resp).repair.is_none());
        assert_eq!(svc.stats_body().repairs, 0);
        svc.shutdown();
    }

    #[test]
    fn patch_unknown_parent_is_an_error_and_daemon_survives() {
        let svc = Service::start(test_config());
        for parent in ["0123456789abcdef", "not-hex", "abc"] {
            let resp = svc.handle_line(&patch_request(
                parent,
                "HEFT",
                r#"[{"kind":"task_weight","task":0,"weight":2.0}]"#,
                "{}",
            ));
            let Response::Error { message } = &resp else {
                panic!("expected error for parent `{parent}`, got {resp:?}");
            };
            assert!(
                message.starts_with("unknown_parent"),
                "parent `{parent}`: {message}"
            );
        }
        // Invalid deltas against a known parent are errors too.
        let parent = {
            let resp = svc.handle_line(&small_request(3, "HEFT", "{}"));
            schedule_body(&resp).clone()
        };
        let resp = svc.handle_line(&patch_request(
            &parent.problem,
            "HEFT",
            r#"[{"kind":"task_weight","task":99,"weight":2.0}]"#,
            "{}",
        ));
        let Response::Error { message } = &resp else {
            panic!("expected error, got {resp:?}");
        };
        assert!(message.starts_with("invalid delta"), "{message}");
        // The daemon keeps serving.
        let ok = svc.handle_line(&small_request(3, "HEFT", "{}"));
        assert!(schedule_body(&ok).cached);
        svc.shutdown();
    }

    #[test]
    fn evicted_parent_is_unknown() {
        // instance_cache_capacity is 4: five distinct problems evict the
        // first, after which a patch naming it must answer unknown_parent.
        let svc = Service::start(test_config());
        let parent = {
            let resp = svc.handle_line(&small_request(3, "HEFT", "{}"));
            schedule_body(&resp).clone()
        };
        for n in 4..8 {
            svc.handle_line(&small_request(n, "HEFT", "{}"));
        }
        let resp = svc.handle_line(&patch_request(
            &parent.problem,
            "HEFT",
            r#"[{"kind":"task_weight","task":0,"weight":2.0}]"#,
            "{}",
        ));
        let Response::Error { message } = &resp else {
            panic!("expected error, got {resp:?}");
        };
        assert!(message.starts_with("unknown_parent"), "{message}");
        svc.shutdown();
    }

    #[test]
    fn worker_panic_is_isolated() {
        let svc = Service::start(test_config());
        let resp = svc.handle_line(&small_request(4, "HEFT", "{\"debug_panic\":true}"));
        let Response::Error { message } = &resp else {
            panic!("expected error, got {resp:?}");
        };
        assert!(message.contains("panicked"), "message: {message}");
        // The daemon survives and still schedules.
        let ok = svc.handle_line(&small_request(4, "HEFT", "{}"));
        assert!(matches!(ok, Response::Ok { .. }), "got {ok:?}");
        let stats = svc.stats_body();
        assert_eq!(stats.panics, 1);
        svc.shutdown();
    }

    #[test]
    fn await_reply_claims_queued_reply_even_after_deadline() {
        // A reply already sitting in the channel at the deadline is a
        // computed result, not a timeout — even with zero time remaining.
        let (tx, rx) = channel::bounded::<Response>(1);
        tx.send(Response::ShuttingDown).unwrap();
        let got = await_reply(&rx, Duration::ZERO);
        assert!(matches!(got, Ok(Response::ShuttingDown)), "got {got:?}");

        // Same zero-deadline call with an empty channel is a real timeout.
        let got = await_reply(&rx, Duration::ZERO);
        assert_eq!(got.unwrap_err(), channel::RecvTimeoutError::Timeout);

        // Dropped worker side surfaces as Disconnected, not Timeout.
        drop(tx);
        let got = await_reply(&rx, Duration::ZERO);
        assert_eq!(got.unwrap_err(), channel::RecvTimeoutError::Disconnected);
    }

    #[test]
    fn deadline_timeout_leaves_daemon_alive_and_caches() {
        let svc = Service::start(test_config());
        let slow = small_request(4, "HEFT", "{\"debug_sleep_ms\":300,\"deadline_ms\":25}");
        let resp = svc.handle_line(&slow);
        assert!(matches!(resp, Response::Timeout { .. }), "got {resp:?}");
        assert_eq!(svc.stats_body().timeouts, 1);

        // The worker finishes in the background and caches the result; an
        // identical retry is a cache hit (options are part of the key, so
        // retry with identical options).
        std::thread::sleep(Duration::from_millis(500));
        let retry = svc.handle_line(&slow);
        let Response::Ok {
            schedule: Some(body),
            ..
        } = &retry
        else {
            panic!("retry got {retry:?}");
        };
        assert!(body.cached);
        svc.shutdown();
    }

    #[test]
    fn full_queue_answers_busy() {
        let svc = Service::start(ServeConfig {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 8,
            instance_cache_capacity: 4,
            default_deadline_ms: 10_000,
        });
        // Occupy the single worker, then fill the one-slot queue, with
        // sleeping jobs submitted from background threads (each submitter
        // blocks on its reply, so they must be separate threads). The
        // submissions are staggered so the first is reliably dequeued by
        // the worker before the second enqueues. Distinct dag sizes keep
        // them from hitting the cache.
        let svc = std::sync::Arc::new(svc);
        let mut submitters = Vec::new();
        for n in [5usize, 6] {
            let svc = svc.clone();
            let line = small_request(n, "HEFT", "{\"debug_sleep_ms\":600}");
            submitters.push(std::thread::spawn(move || svc.handle_line(&line)));
            std::thread::sleep(Duration::from_millis(150));
        }
        let resp = svc.handle_line(&small_request(7, "HEFT", "{}"));
        assert!(matches!(resp, Response::Busy { .. }), "got {resp:?}");
        assert_eq!(svc.stats_body().busy_rejections, 1);
        for s in submitters {
            let r = s.join().unwrap();
            assert!(matches!(r, Response::Ok { .. }), "submitter got {r:?}");
        }
        svc.shutdown();
    }

    #[test]
    fn shutdown_drains_in_flight_work() {
        let svc = std::sync::Arc::new(Service::start(test_config()));
        let line = small_request(5, "HEFT", "{\"debug_sleep_ms\":200}");
        let bg = {
            let svc = svc.clone();
            let line = line.clone();
            std::thread::spawn(move || svc.handle_line(&line))
        };
        std::thread::sleep(Duration::from_millis(50));
        // Shutdown must wait for the in-flight job and deliver its reply.
        svc.shutdown();
        let resp = bg.join().unwrap();
        assert!(matches!(resp, Response::Ok { .. }), "got {resp:?}");
        // New requests after shutdown are refused.
        let refused = svc.handle_line(&line);
        assert!(matches!(refused, Response::ShuttingDown), "got {refused:?}");
    }

    #[test]
    fn metrics_op_renders_prometheus_text() {
        let svc = Service::start(test_config());
        svc.handle_line(&small_request(5, "HEFT", "{}"));
        svc.handle_line(&small_request(5, "HEFT", "{}")); // cache hit
        let resp = svc.handle_line(r#"{"op":"metrics"}"#);
        let Response::Ok {
            metrics: Some(text),
            ..
        } = &resp
        else {
            panic!("expected metrics payload, got {resp:?}");
        };
        for family in [
            "hetsched_requests_total 2",
            "hetsched_cache_hits_total 1",
            "hetsched_cache_misses_total 1",
            "hetsched_computed_total 1",
            "hetsched_queue_depth 0",
            "hetsched_queue_capacity 4",
            "hetsched_cache_entries 1",
            "hetsched_workers 2",
            "# TYPE hetsched_request_latency_seconds histogram",
            "hetsched_algorithm_latency_seconds_count{algorithm=\"HEFT\"} 2",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
        svc.shutdown();
    }

    #[test]
    fn traced_request_attaches_trace_and_matches_untraced_schedule() {
        let svc = Service::start(test_config());
        let plain = svc.handle_line(&small_request(6, "HEFT", "{}"));
        let traced = svc.handle_line(&small_request(6, "HEFT", "{\"trace\":true}"));
        let Response::Ok {
            schedule: Some(plain),
            ..
        } = &plain
        else {
            panic!("plain: {plain:?}");
        };
        let Response::Ok {
            schedule: Some(traced),
            ..
        } = &traced
        else {
            panic!("traced: {traced:?}");
        };
        assert!(plain.trace.is_none());
        let trace = traced.trace.as_ref().expect("trace requested");
        // Tracing must not perturb the schedule.
        assert_eq!(traced.makespan, plain.makespan);
        assert_eq!(
            serde_json::to_string(&traced.schedule).unwrap(),
            serde_json::to_string(&plain.schedule).unwrap()
        );
        // One placement event per task, and the engine was exercised.
        let placements = trace.events.iter().filter(|e| e.is_placement()).count();
        assert_eq!(placements, 6);
        assert!(trace.counters.eft_best_queries >= 6);
        assert!(!trace.phases.is_empty());
        // Traced and untraced requests memoize separately; a traced retry
        // hits the cache and still carries the stored trace.
        let retry = svc.handle_line(&small_request(6, "HEFT", "{\"trace\":true}"));
        let Response::Ok {
            schedule: Some(retry),
            ..
        } = &retry
        else {
            panic!("retry: {retry:?}");
        };
        assert!(retry.cached);
        assert!(retry.trace.is_some());
        assert_eq!(svc.stats_body().cache_hits, 1);
        svc.shutdown();
    }

    #[test]
    fn traced_request_journals_spans_and_shares_the_untraced_memo_entry() {
        let svc = Service::start(test_config());
        let traced = svc.handle_line(&small_request(
            5,
            "HEFT",
            r#"{"trace_ctx":{"trace_id":"00aa00aa00aa00aa"}}"#,
        ));
        let Response::Ok {
            schedule: Some(body),
            timing: Some(timing),
            ..
        } = &traced
        else {
            panic!("traced: {traced:?}");
        };
        assert!(!body.cached);
        assert!(body.trace.is_none(), "trace_ctx is not the decision log");
        assert_eq!(timing.trace_id, "00aa00aa00aa00aa");
        let serve = timing.serve.as_ref().expect("serve timing");
        assert_eq!(serve.cache, "computed");
        assert!(serve.compute_us >= 1);
        assert!(
            serve.total_us >= serve.queue_us + serve.compute_us,
            "total {} < queue {} + compute {}",
            serve.total_us,
            serve.queue_us,
            serve.compute_us
        );

        // The trace context is not part of the memo key: the identical
        // untraced request is a pure cache hit, byte-identical, no timing.
        let plain = svc.handle_line(&small_request(5, "HEFT", "{}"));
        let Response::Ok {
            schedule: Some(pb),
            timing: plain_timing,
            ..
        } = &plain
        else {
            panic!("plain: {plain:?}");
        };
        assert!(plain_timing.is_none());
        assert!(pb.cached, "trace_ctx must not split the memo key");
        assert_eq!(
            serde_json::to_string(&pb.schedule).unwrap(),
            serde_json::to_string(&body.schedule).unwrap()
        );

        // A traced retry answers from the memo and says so.
        let retry = svc.handle_line(&small_request(
            5,
            "HEFT",
            r#"{"trace_ctx":{"trace_id":"00bb00bb00bb00bb"}}"#,
        ));
        let Response::Ok {
            timing: Some(retry_timing),
            ..
        } = &retry
        else {
            panic!("retry: {retry:?}");
        };
        assert_eq!(retry_timing.serve.as_ref().unwrap().cache, "memo");

        // The journal drained the spans of both traced requests; spans of
        // one request nest inside its root `request` span.
        let resp = svc.handle_line(r#"{"op":"journal"}"#);
        let Response::Ok {
            journal: Some(journal),
            ..
        } = &resp
        else {
            panic!("journal: {resp:?}");
        };
        assert_eq!(journal.source, "shard");
        let of_first: Vec<_> = journal
            .spans
            .iter()
            .filter(|s| s.trace_id == "00aa00aa00aa00aa")
            .collect();
        let names: Vec<&str> = of_first.iter().map(|s| s.name.as_str()).collect();
        for expect in ["request", "queue", "compute"] {
            assert!(names.contains(&expect), "missing {expect} in {names:?}");
        }
        assert!(
            names.iter().any(|n| n.starts_with("engine:")),
            "engine phases in {names:?}"
        );
        let root = of_first.iter().find(|s| s.name == "request").unwrap();
        for s in &of_first {
            assert!(
                s.start_us + s.dur_us <= root.start_us + root.dur_us + 1,
                "span {} [{}, +{}] escapes root [{}, +{}]",
                s.name,
                s.start_us,
                s.dur_us,
                root.start_us,
                root.dur_us
            );
        }
        // The memo-hit retry journaled a root span too, but no compute.
        let of_retry: Vec<&str> = journal
            .spans
            .iter()
            .filter(|s| s.trace_id == "00bb00bb00bb00bb")
            .map(|s| s.name.as_str())
            .collect();
        assert!(of_retry.contains(&"request"));
        assert!(!of_retry.contains(&"compute"));

        // Draining again yields nothing; untraced requests journal nothing.
        svc.handle_line(&small_request(4, "CPOP", "{}"));
        let resp = svc.handle_line(r#"{"op":"journal"}"#);
        let Response::Ok {
            journal: Some(journal),
            ..
        } = &resp
        else {
            panic!("journal: {resp:?}");
        };
        assert!(journal.spans.is_empty(), "{:?}", journal.spans);
        svc.shutdown();
    }

    #[test]
    fn outcome_accounting_labels_statuses() {
        use crate::metrics::RequestStatus;
        let svc = Service::start(test_config());
        svc.handle_line(&small_request(5, "HEFT", "{\"deadline_ms\":5000}"));
        svc.handle_line(&small_request(5, "NO-SUCH", "{}"));
        let slow = small_request(6, "HEFT", "{\"debug_sleep_ms\":300,\"deadline_ms\":25}");
        let resp = svc.handle_line(&slow);
        assert!(matches!(resp, Response::Timeout { .. }), "got {resp:?}");
        let m = svc.metrics();
        assert_eq!(m.latency.get(RequestStatus::Success).count(), 1);
        assert_eq!(m.latency.get(RequestStatus::Error).count(), 1);
        assert_eq!(m.latency.get(RequestStatus::Timeout).count(), 1);
        assert_eq!(m.op_outcomes.get("schedule", RequestStatus::Success), 1);
        assert_eq!(m.op_outcomes.get("schedule", RequestStatus::Timeout), 1);
        // The deadlined success recorded its remaining slack.
        assert_eq!(m.deadline_slack.count(), 1);
        // Queue-wait/compute histograms see every computed job.
        assert!(m.queue_wait.count() >= 1);
        assert!(m.compute.count() >= 1);
        let stats = svc.stats_body();
        assert!(stats.compute_p99_us > 0.0);
        svc.shutdown();
    }

    #[test]
    fn jobs_option_is_byte_identical_to_direct_library_call() {
        // A request carrying `jobs > 1` must produce exactly the schedule
        // the library computes directly — parallel search is bit-identical
        // — and must share the memo entry with a jobs-less request, since
        // `jobs` is excluded from the fingerprint.
        let svc = Service::start(test_config());
        let resp = svc.handle_line(&small_request(8, "DUP-HEFT", "{\"jobs\":2}"));
        let Response::Ok {
            schedule: Some(body),
            ..
        } = &resp
        else {
            panic!("unexpected response: {resp:?}");
        };
        assert!(!body.cached);

        // Rebuild the same problem through the same wire specs the service
        // used, then call the library directly.
        let dag = hetsched_dag::builder::dag_from_edges(
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            &(1..8u32).map(|i| (0, i, 2.0)).collect::<Vec<_>>(),
        )
        .unwrap();
        let sys = SystemSpec {
            processors: hetsched_platform::spec::ProcessorsSpec::Homogeneous { count: 3 },
            network: hetsched_platform::spec::NetworkSpec {
                topology: "fully_connected".to_string(),
                startup: 0.0,
                bandwidth: 1.0,
                rows: None,
                cols: None,
            },
        }
        .build(&dag)
        .unwrap();
        let direct = algorithms::by_name("DUP-HEFT")
            .expect("registered algorithm")
            .schedule(&dag, &sys);
        assert_eq!(
            serde_json::to_string(&body.schedule).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "serve with jobs=2 must be byte-identical to the direct call"
        );

        // Identical request without `jobs` is a pure cache hit: the option
        // is not part of the fingerprint.
        let retry = svc.handle_line(&small_request(8, "DUP-HEFT", "{}"));
        let Response::Ok {
            schedule: Some(retry),
            ..
        } = &retry
        else {
            panic!("retry: {retry:?}");
        };
        assert!(retry.cached);
        assert_eq!(retry.fingerprint, body.fingerprint);
        svc.shutdown();
    }

    #[test]
    fn hello_identifies_the_service() {
        let svc = Service::start(test_config());
        let resp = svc.handle_line(r#"{"op":"hello"}"#);
        let Response::Ok { hello: Some(h), .. } = resp else {
            panic!("expected hello payload");
        };
        assert_eq!(h.service, "hetsched-serve");
        assert_eq!(h.workers, 2);
        assert_eq!(h.queue_capacity, 4);
        assert!(!h.version.is_empty());
        svc.shutdown();
    }

    #[test]
    fn stats_and_shutdown_ops() {
        let svc = Service::start(test_config());
        let resp = svc.handle_line(r#"{"op":"stats"}"#);
        let Response::Ok { stats: Some(s), .. } = resp else {
            panic!("expected stats payload");
        };
        assert_eq!(s.requests, 0);
        assert_eq!(s.workers, 2);
        let resp = svc.handle_line(r#"{"op":"shutdown"}"#);
        assert!(matches!(resp, Response::ShuttingDown));
        assert!(svc.is_shutting_down());
        svc.shutdown();
    }
}
